//! Workspace-level integration tests spanning all crates: the Figure 4 workflow on
//! the assembled platform, the analysis funnel of §4.2 and the DEFCon-vs-baseline
//! comparison of §6.2, exercised through the umbrella crate's public API.

use defcon::prelude::*;
use defcon_baseline::{BaselineConfig, BaselinePlatform};
use defcon_isolation::{ClassGraph, StaticAnalysis, TargetCatalog};
use defcon_trading::{TradingPlatform, TradingPlatformConfig};
use defcon_workload::TickGeneratorConfig;

fn platform_config(mode: SecurityMode, traders: usize) -> TradingPlatformConfig {
    TradingPlatformConfig {
        mode,
        traders,
        symbols: 8,
        regulator_sample: 2,
        volume_quota: 500,
        event_cache: 500,
        tick_config: TickGeneratorConfig {
            seed: 11,
            ..TickGeneratorConfig::default()
        },
        ..TradingPlatformConfig::default()
    }
}

#[test]
fn figure4_workflow_end_to_end_through_umbrella_crate() {
    let mut platform = TradingPlatform::build(platform_config(
        SecurityMode::LabelsFreezeIsolation,
        10,
    ))
    .expect("platform builds");
    let report = platform.run_ticks(1_500).expect("run completes");

    assert!(report.orders > 0);
    assert!(report.trades > 0);
    assert!(report.latency_p70_ms > 0.0);
    assert!(report.memory_mib > 0.0);
    // The engine enforced label checks along the way.
    assert!(platform.engine().stats().label_rejections() > 0);
}

#[test]
fn isolation_analysis_funnel_reproduces_papers_shape() {
    // §4.2: thousands of targets in the JDK, hundreds reachable from unit code after
    // heuristics, tens requiring manual attention.
    let mut catalog = TargetCatalog::synthetic_jdk(1000);
    let graph = ClassGraph::synthetic_for(&catalog);
    let analysis = StaticAnalysis::with_default_whitelist(&catalog);
    let report = analysis.run(&mut catalog, &graph);

    assert!(report.total_targets > 5_000);
    assert!(report.used < report.total_targets);
    assert!(report.intercepted() < report.used);
    assert!(report.whitelisted_heuristic > 0);
}

#[test]
fn defcon_outperforms_baseline_latency_at_scale() {
    // The paper's headline (§6.2): DEFCon's tick-to-trade latency stays in the
    // low-millisecond range while the per-JVM baseline pays per-hop serialisation
    // and per-agent filtering. Compare both on the same (small) workload.
    let traders = 8;
    let ticks = 2_000;

    let mut defcon =
        TradingPlatform::build(platform_config(SecurityMode::LabelsFreezeIsolation, traders))
            .expect("platform builds");
    let defcon_report = defcon.run_ticks(ticks).expect("run completes");

    let baseline_report = BaselinePlatform::new(BaselineConfig {
        traders,
        symbols: 8,
        ticks,
        feed_rate: Some(2_000.0),
        ..BaselineConfig::default()
    })
    .run();

    assert!(defcon_report.trades > 0);
    assert!(baseline_report.trades > 0);
    // Relative claim only: the baseline's end-to-end latency must not be lower than
    // DEFCon's. (Absolute values are host-dependent.)
    assert!(
        baseline_report.total_p70_ms >= defcon_report.latency_p70_ms,
        "baseline p70 {} ms must be >= DEFCon p70 {} ms",
        baseline_report.total_p70_ms,
        defcon_report.latency_p70_ms
    );
    // And the per-client-domain baseline occupies more memory than the shared engine.
    assert!(baseline_report.memory_mib > defcon_report.memory_mib);
}

#[test]
fn prelude_covers_the_common_api_surface() {
    // Compile-time check that the umbrella prelude exposes the types an application
    // needs, plus a small runtime smoke test.
    let engine = Engine::new(EngineConfig::new(SecurityMode::LabelsFreeze));
    let unit = engine
        .register_unit(UnitSpec::new("u"), Box::new(defcon::core::unit::NullUnit))
        .unwrap();
    engine
        .with_unit(unit, |_, ctx| {
            let tag = ctx.create_owned_tag("t");
            let draft = ctx.create_event();
            ctx.add_part(
                &draft,
                Label::confidential(TagSet::singleton(tag)),
                "type",
                Value::str("x"),
            )?;
            ctx.publish(draft)?;
            Ok(())
        })
        .unwrap();
    assert_eq!(engine.pump_until_idle().unwrap(), 1);
}
