//! Workspace-level integration tests spanning all crates: the Figure 4 workflow on
//! the assembled platform, the analysis funnel of §4.2 and the DEFCon-vs-baseline
//! comparison of §6.2, exercised through the umbrella crate's public API.

use defcon::prelude::*;
use defcon_baseline::{BaselineConfig, BaselinePlatform};
use defcon_isolation::{ClassGraph, StaticAnalysis, TargetCatalog};
use defcon_trading::{TradingPlatform, TradingPlatformConfig};
use defcon_workload::TickGeneratorConfig;

fn platform_config(mode: SecurityMode, traders: usize) -> TradingPlatformConfig {
    TradingPlatformConfig {
        mode,
        traders,
        symbols: 8,
        regulator_sample: 2,
        volume_quota: 500,
        event_cache: 500,
        tick_config: TickGeneratorConfig {
            seed: 11,
            ..TickGeneratorConfig::default()
        },
        ..TradingPlatformConfig::default()
    }
}

#[test]
fn figure4_workflow_end_to_end_through_umbrella_crate() {
    let mut platform =
        TradingPlatform::build(platform_config(SecurityMode::LabelsFreezeIsolation, 10))
            .expect("platform builds");
    let report = platform.run_ticks(1_500).expect("run completes");

    assert!(report.orders > 0);
    assert!(report.trades > 0);
    assert!(report.latency_p70_ms > 0.0);
    assert!(report.memory_mib > 0.0);
    // The engine enforced label checks along the way.
    assert!(platform.engine().stats().label_rejections() > 0);
}

#[test]
fn isolation_analysis_funnel_reproduces_papers_shape() {
    // §4.2: thousands of targets in the JDK, hundreds reachable from unit code after
    // heuristics, tens requiring manual attention.
    let mut catalog = TargetCatalog::synthetic_jdk(1000);
    let graph = ClassGraph::synthetic_for(&catalog);
    let analysis = StaticAnalysis::with_default_whitelist(&catalog);
    let report = analysis.run(&mut catalog, &graph);

    assert!(report.total_targets > 5_000);
    assert!(report.used < report.total_targets);
    assert!(report.intercepted() < report.used);
    assert!(report.whitelisted_heuristic > 0);
}

#[test]
fn defcon_outperforms_baseline_latency_at_scale() {
    // The paper's headline (§6.2): DEFCon's tick-to-trade latency stays in the
    // low-millisecond range while the per-JVM baseline pays per-hop serialisation
    // and per-agent filtering. Compare both on the same (small) workload.
    let traders = 8;
    let ticks = 2_000;

    let mut defcon = TradingPlatform::build(platform_config(
        SecurityMode::LabelsFreezeIsolation,
        traders,
    ))
    .expect("platform builds");
    let defcon_report = defcon.run_ticks(ticks).expect("run completes");

    let baseline_report = BaselinePlatform::new(BaselineConfig {
        traders,
        symbols: 8,
        ticks,
        feed_rate: Some(2_000.0),
        // A loopback socket plus FIX-gateway hop costs well above the in-process
        // default; modelling it explicitly also keeps this comparison from
        // flapping on hosts where both platforms run in the same few hundred
        // microseconds.
        hop_delay: std::time::Duration::from_micros(100),
        ..BaselineConfig::default()
    })
    .run();

    assert!(defcon_report.trades > 0);
    assert!(baseline_report.trades > 0);
    // Relative claim: the baseline's end-to-end latency must not be lower than
    // DEFCon's. (Absolute values are host-dependent.)
    assert!(
        baseline_report.total_p70_ms >= defcon_report.latency_p70_ms,
        "baseline p70 {} ms must be >= DEFCon p70 {} ms",
        baseline_report.total_p70_ms,
        defcon_report.latency_p70_ms
    );
    // The injected hop delay above makes the latency comparison robust but also
    // lenient, so pin DEFCon's own behaviour independently of the baseline: at 8
    // traders its tick-to-trade p70 runs well under a millisecond even in debug
    // builds, and a catastrophic engine regression (e.g. dispatch-path lock
    // contention) must not hide behind the slowed-down baseline. The bound is
    // generous on purpose — oversubscribed CI hosts run debug tests several
    // times slower than the measured ~0.1 ms, but not 500× slower. The unpaced
    // engine must also out-process the per-JVM baseline's paced feed outright.
    assert!(
        defcon_report.latency_p70_ms < 50.0,
        "DEFCon p70 {} ms is orders of magnitude above expectations",
        defcon_report.latency_p70_ms
    );
    assert!(
        defcon_report.throughput_eps > baseline_report.throughput_eps,
        "DEFCon {} ev/s must out-process the baseline {} ev/s",
        defcon_report.throughput_eps,
        baseline_report.throughput_eps
    );
    // And the per-client-domain baseline occupies more memory than the shared engine.
    assert!(baseline_report.memory_mib > defcon_report.memory_mib);
}

#[test]
fn prelude_covers_the_common_api_surface() {
    // Compile-time check that the umbrella prelude exposes the types an application
    // needs — including the v2 builder/handle/publisher surface — plus a small
    // runtime smoke test.
    let engine: Engine = EngineBuilder::new()
        .mode(SecurityMode::LabelsFreeze)
        .build();
    let unit = engine
        .register_unit(UnitSpec::new("u"), Box::new(defcon::core::unit::NullUnit))
        .unwrap();
    let handle: EngineHandle = engine.start();
    let publisher: Publisher = handle.publisher(unit).unwrap();
    let tag = publisher
        .with_context(|ctx| Ok(ctx.create_owned_tag("t")))
        .unwrap();
    publisher
        .publish(EventDraft::new().part(
            "type",
            Label::confidential(TagSet::singleton(tag)),
            Value::str("x"),
        ))
        .unwrap();
    assert_eq!(handle.pump_until_idle().unwrap(), 1);
    handle.shutdown().unwrap();
}

#[test]
fn multi_worker_platform_processes_the_figure4_workflow() {
    // The acceptance scenario of the v2 runtime API: the assembled platform on a
    // four-worker engine still produces orders, trades and label rejections.
    let config = TradingPlatformConfig {
        workers: 4,
        ..platform_config(SecurityMode::LabelsFreeze, 8)
    };
    let mut platform = TradingPlatform::build(config).expect("platform builds");
    let report = platform.run_ticks(800).expect("run completes");
    assert!(report.orders > 0);
    assert!(report.trades > 0);
    assert!(platform.engine().stats().label_rejections() > 0);
}
