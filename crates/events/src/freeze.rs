//! Freezable objects: constant-time freezing via a shared frozen flag.
//!
//! §5 of the paper ("Freezing shared objects"): DEFCon avoids serialising or
//! deep-copying event data when it is passed between isolates by only allowing
//! *immutable* objects to be shared. Mutable values must extend a `Freezable` base
//! class; after `freeze()` has been called, every mutating operation fails.
//!
//! To make `freeze()` constant-time even for collections, every value that is
//! attached to a collection shares the collection's frozen flag: freezing the
//! collection implicitly freezes all its members. The cost of mutating operations is
//! then linear in the number of collections an object belongs to — exactly the
//! trade-off described in the paper.

use std::fmt;
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;

/// Error returned when a mutation is attempted on a frozen object.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FreezeError;

impl fmt::Display for FreezeError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str("object is frozen and can no longer be mutated")
    }
}

impl std::error::Error for FreezeError {}

/// A shareable frozen flag.
///
/// Cloning a `FreezeFlag` yields a handle to the *same* flag, which is what allows a
/// collection to freeze all of its members in constant time: members simply hold a
/// clone of the collection's flag in their watch list.
#[derive(Clone, Default)]
pub struct FreezeFlag {
    frozen: Arc<AtomicBool>,
}

impl FreezeFlag {
    /// Creates a new, unfrozen flag.
    pub fn new() -> Self {
        FreezeFlag::default()
    }

    /// Marks the flag as frozen. Freezing is irreversible.
    pub fn freeze(&self) {
        self.frozen.store(true, Ordering::Release);
    }

    /// Returns `true` if the flag has been frozen.
    pub fn is_frozen(&self) -> bool {
        self.frozen.load(Ordering::Acquire)
    }

    /// Returns `true` if the two handles refer to the same underlying flag.
    pub fn same_flag(&self, other: &FreezeFlag) -> bool {
        Arc::ptr_eq(&self.frozen, &other.frozen)
    }
}

impl fmt::Debug for FreezeFlag {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "FreezeFlag({})", self.is_frozen())
    }
}

/// The freeze protocol implemented by values that may be shared between isolates.
///
/// Implementors must:
///
/// 1. fail every mutating operation once [`Freezable::is_frozen`] returns `true`, and
/// 2. propagate [`Freezable::attach_to`] to nested values so that a parent
///    collection's flag reaches every member (making the parent's `freeze()`
///    constant-time).
pub trait Freezable {
    /// Irreversibly freezes this value (and, through shared flags, all its members).
    fn freeze(&self);

    /// Returns `true` if this value has been frozen, either directly or through any
    /// collection it has been attached to.
    fn is_frozen(&self) -> bool;

    /// Registers `flag` as an additional frozen-flag to consult; called when the
    /// value is inserted into a collection that owns `flag`.
    fn attach_to(&mut self, flag: &FreezeFlag);

    /// Helper for implementors: returns `Err(FreezeError)` if the value is frozen.
    fn check_mutable(&self) -> Result<(), FreezeError> {
        if self.is_frozen() {
            Err(FreezeError)
        } else {
            Ok(())
        }
    }
}

/// A set of frozen flags watched by a value: its own flag plus one per collection it
/// has been attached to.
///
/// `is_frozen()` is true as soon as *any* watched flag is frozen. The watch list is
/// expected to stay very small (an event-part value typically belongs to exactly one
/// collection), matching the paper's "linear with the number of collections the
/// object is part of" cost statement.
#[derive(Clone, Debug, Default)]
pub struct FreezeState {
    own: FreezeFlag,
    watched: Vec<FreezeFlag>,
}

impl FreezeState {
    /// Creates a new unfrozen state with no watched collections.
    pub fn new() -> Self {
        FreezeState::default()
    }

    /// Returns the value's own flag (shared with clones of this state).
    pub fn own_flag(&self) -> &FreezeFlag {
        &self.own
    }

    /// Freezes the value's own flag.
    pub fn freeze(&self) {
        self.own.freeze();
    }

    /// Returns `true` if the own flag or any watched collection flag is frozen.
    pub fn is_frozen(&self) -> bool {
        self.own.is_frozen() || self.watched.iter().any(FreezeFlag::is_frozen)
    }

    /// Adds a collection flag to the watch list (idempotent per flag).
    pub fn attach_to(&mut self, flag: &FreezeFlag) {
        if !self.watched.iter().any(|w| w.same_flag(flag)) && !self.own.same_flag(flag) {
            self.watched.push(flag.clone());
        }
    }

    /// Number of collection flags watched (exposed for tests and cost accounting).
    pub fn watch_count(&self) -> usize {
        self.watched.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn flag_starts_unfrozen_and_freezes_irreversibly() {
        let f = FreezeFlag::new();
        assert!(!f.is_frozen());
        f.freeze();
        assert!(f.is_frozen());
        f.freeze();
        assert!(f.is_frozen());
    }

    #[test]
    fn cloned_flags_share_state() {
        let f = FreezeFlag::new();
        let g = f.clone();
        assert!(f.same_flag(&g));
        f.freeze();
        assert!(g.is_frozen());
        let other = FreezeFlag::new();
        assert!(!f.same_flag(&other));
    }

    #[test]
    fn state_freezes_via_own_or_watched_flag() {
        let mut s = FreezeState::new();
        assert!(!s.is_frozen());

        let collection = FreezeFlag::new();
        s.attach_to(&collection);
        assert_eq!(s.watch_count(), 1);
        assert!(!s.is_frozen());

        collection.freeze();
        assert!(s.is_frozen(), "freezing the collection freezes the member");

        let s2 = FreezeState::new();
        s2.freeze();
        assert!(s2.is_frozen());
    }

    #[test]
    fn attach_is_idempotent_per_flag() {
        let mut s = FreezeState::new();
        let flag = FreezeFlag::new();
        s.attach_to(&flag);
        s.attach_to(&flag);
        assert_eq!(s.watch_count(), 1);

        let own = s.own_flag().clone();
        s.attach_to(&own);
        assert_eq!(s.watch_count(), 1, "own flag is never watched twice");
    }

    #[test]
    fn check_mutable_helper() {
        struct V(FreezeState);
        impl Freezable for V {
            fn freeze(&self) {
                self.0.freeze();
            }
            fn is_frozen(&self) -> bool {
                self.0.is_frozen()
            }
            fn attach_to(&mut self, flag: &FreezeFlag) {
                self.0.attach_to(flag);
            }
        }
        let v = V(FreezeState::new());
        assert!(v.check_mutable().is_ok());
        v.freeze();
        assert_eq!(v.check_mutable(), Err(FreezeError));
    }
}
