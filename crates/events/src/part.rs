//! Event parts: named, individually labelled pieces of an event.
//!
//! §3.1.2: "An event consists of a number of event parts. Each part has a name,
//! associated data and a security label." Parts may additionally carry privileges
//! (§3.1.5), turning a read of the part into an in-band privilege delegation.

use std::fmt;
use std::sync::Arc;

use defcon_defc::{Label, Privilege};

use crate::freeze::Freezable;
use crate::value::Value;

/// The name of an event part (`"type"`, `"body"`, `"trader_id"`, ...).
///
/// Part names are interned into `Arc<str>` so that events replicated across many
/// subscribers share a single allocation per distinct name.
pub type PartName = Arc<str>;

/// Creates a [`PartName`] from a string-like value.
///
/// Names are interned in a process-wide table: the distinct part names of a
/// deployment form a tiny, stable vocabulary (`"type"`, `"price"`, ...), so
/// after warm-up this is a hash lookup plus a reference-count bump instead of
/// an allocation per part constructed — which matters on the publish hot path,
/// where every event allocates its parts.
pub fn part_name(name: impl AsRef<str>) -> PartName {
    use std::cell::RefCell;
    use std::collections::HashSet;
    use std::sync::OnceLock;

    // The table is bounded: a deployment that generates part names
    // dynamically (per-order, per-client, ...) must not grow a process-wide
    // strong-reference table forever. Past the cap, new names fall back to a
    // plain (un-shared) allocation — correctness is unaffected, only the
    // sharing optimisation stops applying to the long tail.
    const NAME_INTERN_CAP: usize = 4096;

    static NAMES: OnceLock<parking_lot::RwLock<HashSet<PartName>>> = OnceLock::new();
    // One-entry per-thread cache for the overwhelmingly common case of
    // consecutive constructions sharing a name (a feed building "type" parts
    // in a loop): a short string compare instead of the table's lock + hash.
    thread_local! {
        static LAST: RefCell<Option<PartName>> = const { RefCell::new(None) };
    }
    let name = name.as_ref();
    LAST.with(|last| {
        if let Some(cached) = last.borrow().as_deref() {
            if cached == name {
                return last.borrow().clone().expect("just observed");
            }
        }
        let names = NAMES.get_or_init(|| parking_lot::RwLock::new(HashSet::new()));
        // The read guard must be fully released before taking the write lock
        // (scoped explicitly: an `if let` over `names.read().get(..)` would
        // keep the read guard alive through its else branch).
        let interned = {
            let table = names.read();
            table.get(name).cloned()
        };
        let interned = interned.unwrap_or_else(|| {
            let mut table = names.write();
            if let Some(existing) = table.get(name) {
                Arc::clone(existing)
            } else {
                let fresh: PartName = Arc::from(name);
                if table.len() < NAME_INTERN_CAP {
                    table.insert(Arc::clone(&fresh));
                }
                fresh
            }
        });
        *last.borrow_mut() = Some(Arc::clone(&interned));
        interned
    })
}

/// The shared empty privilege list: almost every part carries no privileges,
/// so they all point at one allocation instead of allocating an empty
/// `Arc<[Privilege]>` each.
fn no_privileges() -> Arc<[Privilege]> {
    static EMPTY: std::sync::OnceLock<Arc<[Privilege]>> = std::sync::OnceLock::new();
    Arc::clone(EMPTY.get_or_init(|| Arc::from(Vec::new().into_boxed_slice())))
}

/// A single named, labelled piece of event data.
///
/// A part is immutable once constructed: the DEFCon engine freezes the contained
/// [`Value`] when the part enters the system, and "modification" of a part by a unit
/// produces a new version (see `Event::parts_named` and §3.1.6 on conflicting
/// modifications).
#[derive(Clone, Debug)]
pub struct Part {
    name: PartName,
    label: Label,
    data: Value,
    privileges: Arc<[Privilege]>,
}

impl Part {
    /// Creates a new part with the given name, label and data.
    ///
    /// The data is frozen as a side effect: from this point on it may safely be
    /// shared by reference between isolates.
    pub fn new(name: impl AsRef<str>, label: Label, data: Value) -> Self {
        Part::from_name_handle(part_name(name), label, data)
    }

    /// Creates a new part from an already-interned [`PartName`] handle,
    /// skipping the name lookup — the allocation-free constructor for callers
    /// (drafts, codecs) that resolve names ahead of time.
    pub fn from_name_handle(name: PartName, label: Label, data: Value) -> Self {
        data.freeze();
        Part {
            name,
            label,
            data,
            privileges: no_privileges(),
        }
    }

    /// Raises the part's label to a publishing unit's output label **in
    /// place** (contamination independence, Table 1).
    ///
    /// This is the allocation-free publish-path variant of rebuilding the
    /// part: an [`EventDraft`](crate::Event)-style buffer of pre-built parts
    /// can be moved into an event after raising each label, instead of being
    /// reconstructed part by part. It does not break part immutability as
    /// observed by units — it is only callable while the publisher still owns
    /// the part exclusively, before the event enters the engine.
    pub fn raise_label_to_output(&mut self, output: &Label) {
        self.label = self.label.raised_to_output(output);
    }

    /// Creates a privilege-carrying part (§3.1.5).
    ///
    /// Reading the part bestows `privileges` on the reader, provided the reader's
    /// input label already allows it to see the part's data.
    pub fn with_privileges(
        name: impl AsRef<str>,
        label: Label,
        data: Value,
        privileges: Vec<Privilege>,
    ) -> Self {
        data.freeze();
        let privileges = if privileges.is_empty() {
            no_privileges()
        } else {
            Arc::from(privileges.into_boxed_slice())
        };
        Part {
            name: part_name(name),
            label,
            data,
            privileges,
        }
    }

    /// Returns the part name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Returns the interned part name handle.
    pub fn name_handle(&self) -> PartName {
        self.name.clone()
    }

    /// Returns the part's security label.
    pub fn label(&self) -> &Label {
        &self.label
    }

    /// Returns the part's (frozen) data.
    pub fn data(&self) -> &Value {
        &self.data
    }

    /// Returns the privileges attached to this part.
    pub fn privileges(&self) -> &[Privilege] {
        &self.privileges
    }

    /// Returns `true` if this part carries at least one privilege.
    pub fn is_privilege_carrying(&self) -> bool {
        !self.privileges.is_empty()
    }

    /// Returns a copy of this part with an additional privilege attached.
    ///
    /// Used by the engine's `attachPrivilegeToPart` call (Table 1); the privilege
    /// check (caller holds `t±auth`) happens in the engine, not here.
    pub fn with_additional_privilege(&self, privilege: Privilege) -> Part {
        let mut privileges: Vec<Privilege> = self.privileges.to_vec();
        privileges.push(privilege);
        Part {
            name: self.name.clone(),
            label: self.label.clone(),
            data: self.data.clone(),
            privileges: Arc::from(privileges.into_boxed_slice()),
        }
    }

    /// Returns a copy of this part with its label replaced.
    ///
    /// Used when cloning events at a unit's output label (`cloneEvent`, Table 1).
    pub fn with_label(&self, label: Label) -> Part {
        Part {
            name: self.name.clone(),
            label,
            data: self.data.clone(),
            privileges: self.privileges.clone(),
        }
    }

    /// Produces a deep copy of this part, duplicating the data.
    ///
    /// Only used by the `labels+clone` dispatch configuration and the baseline;
    /// normal DEFCon dispatch shares the frozen data by reference.
    pub fn deep_clone(&self) -> Part {
        Part {
            name: self.name.clone(),
            label: self.label.clone(),
            data: self.data.deep_clone(),
            privileges: self.privileges.clone(),
        }
    }

    /// Estimated heap footprint in bytes (for Figure 7 style accounting).
    pub fn estimated_size(&self) -> usize {
        self.name.len()
            + self.label.tag_count() * 16
            + self.data.estimated_size()
            + self.privileges.len() * 24
    }
}

impl fmt::Display for Part {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{} {} = {}", self.name, self.label, self.data)?;
        if self.is_privilege_carrying() {
            write!(f, " [+{} privileges]", self.privileges.len())?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_defc::{Tag, TagSet};

    use crate::value::ValueMap;

    #[test]
    fn new_part_freezes_data() {
        let map = ValueMap::new();
        map.insert("price", Value::Float(10.0)).unwrap();
        let part = Part::new("body", Label::public(), Value::Map(map.clone()));
        assert!(map.is_frozen(), "constructing a part freezes the data");
        assert_eq!(part.name(), "body");
        assert!(!part.is_privilege_carrying());
    }

    #[test]
    fn privilege_carrying_part() {
        let t = Tag::with_name("t");
        let part = Part::with_privileges(
            "grant",
            Label::public(),
            Value::Tag(t.id()),
            vec![Privilege::add(t.clone())],
        );
        assert!(part.is_privilege_carrying());
        assert_eq!(part.privileges().len(), 1);
        assert_eq!(part.data().as_tag(), Some(t.id()));

        let more = part.with_additional_privilege(Privilege::remove(t.clone()));
        assert_eq!(more.privileges().len(), 2);
        assert_eq!(part.privileges().len(), 1, "original part unchanged");
    }

    #[test]
    fn with_label_replaces_label_only() {
        let dark = Tag::with_name("dark-pool");
        let part = Part::new("body", Label::public(), Value::Int(1));
        let secret = part.with_label(Label::confidential(TagSet::singleton(dark.clone())));
        assert!(secret.label().confidentiality().contains(&dark));
        assert_eq!(secret.data(), part.data());
        assert!(part.label().is_public());
    }

    #[test]
    fn deep_clone_duplicates_data() {
        let map = ValueMap::new();
        map.insert("a", Value::Int(1)).unwrap();
        let part = Part::new("body", Label::public(), Value::Map(map));
        let copy = part.deep_clone();
        // The copied data is unfrozen (independent) while the original stays frozen.
        match copy.data() {
            Value::Map(m) => assert!(!m.is_frozen()),
            _ => panic!("expected map"),
        }
        match part.data() {
            Value::Map(m) => assert!(m.is_frozen()),
            _ => panic!("expected map"),
        }
    }

    #[test]
    fn estimated_size_grows_with_content() {
        let small = Part::new("t", Label::public(), Value::Int(1));
        let big = Part::new("t", Label::public(), Value::str("x".repeat(1000)));
        assert!(big.estimated_size() > small.estimated_size());
    }

    #[test]
    fn display_mentions_name_and_privileges() {
        let t = Tag::with_name("t");
        let p = Part::with_privileges(
            "grant",
            Label::public(),
            Value::Null,
            vec![Privilege::add(t)],
        );
        let s = p.to_string();
        assert!(s.contains("grant"));
        assert!(s.contains("privileges"));
    }
}
