//! Subscription filters: expressions over the name and data of event parts.
//!
//! Table 1 (`subscribe(filter)`): a unit subscribes with a *non-empty* filter, an
//! expression over part names and data. A filter clause only sees parts that the
//! subscriber's input label allows it to see at matching time; the dispatcher passes
//! the visibility predicate in, keeping all label logic in the engine.

use std::fmt;

use crate::event::Event;
use crate::part::Part;
use crate::value::Value;

/// A predicate applied to the data of a single named part.
#[derive(Clone, Debug, PartialEq)]
pub enum Predicate {
    /// The part exists (any data).
    Exists,
    /// The part data equals the given value (structural equality).
    Equals(Value),
    /// The part data differs from the given value.
    NotEquals(Value),
    /// The part data, interpreted as a number, is strictly greater than the bound.
    GreaterThan(f64),
    /// The part data, interpreted as a number, is strictly smaller than the bound.
    LessThan(f64),
    /// The part data is a string equal to one of the listed alternatives.
    OneOf(Vec<String>),
}

impl Predicate {
    /// Evaluates the predicate against a part's data.
    pub fn matches(&self, data: &Value) -> bool {
        match self {
            Predicate::Exists => true,
            Predicate::Equals(v) => data.structurally_equals(v),
            Predicate::NotEquals(v) => !data.structurally_equals(v),
            Predicate::GreaterThan(bound) => data.as_float().is_some_and(|x| x > *bound),
            Predicate::LessThan(bound) => data.as_float().is_some_and(|x| x < *bound),
            Predicate::OneOf(options) => data
                .as_str()
                .is_some_and(|s| options.iter().any(|o| o == s)),
        }
    }
}

impl fmt::Display for Predicate {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Predicate::Exists => write!(f, "exists"),
            Predicate::Equals(v) => write!(f, "== {v}"),
            Predicate::NotEquals(v) => write!(f, "!= {v}"),
            Predicate::GreaterThan(b) => write!(f, "> {b}"),
            Predicate::LessThan(b) => write!(f, "< {b}"),
            Predicate::OneOf(opts) => write!(f, "in {opts:?}"),
        }
    }
}

/// A conjunction of per-part predicates.
///
/// Every clause must be satisfied by at least one *visible* part carrying the
/// clause's name. Filters must contain at least one clause — the engine rejects
/// empty filters because a subscription matching everything would let a unit infer
/// the existence of events it cannot read.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct Filter {
    clauses: Vec<(String, Predicate)>,
}

impl Filter {
    /// Creates an empty filter (must be populated before use).
    pub fn new() -> Self {
        Filter::default()
    }

    /// Convenience: a filter requiring the `type` part to equal `event_type`.
    pub fn for_type(event_type: &str) -> Self {
        Filter::new().where_part("type", Predicate::Equals(Value::str(event_type)))
    }

    /// Adds a clause on the named part.
    pub fn where_part(mut self, name: impl Into<String>, predicate: Predicate) -> Self {
        self.clauses.push((name.into(), predicate));
        self
    }

    /// Convenience: adds an equality clause.
    pub fn where_eq(self, name: impl Into<String>, value: impl Into<Value>) -> Self {
        self.where_part(name, Predicate::Equals(value.into()))
    }

    /// Convenience: adds an existence clause.
    pub fn where_exists(self, name: impl Into<String>) -> Self {
        self.where_part(name, Predicate::Exists)
    }

    /// Returns the clauses of the filter.
    pub fn clauses(&self) -> &[(String, Predicate)] {
        &self.clauses
    }

    /// Returns `true` if the filter has no clauses (and is therefore invalid).
    pub fn is_empty(&self) -> bool {
        self.clauses.is_empty()
    }

    /// Evaluates the filter over the parts of `event` that satisfy `visible`.
    ///
    /// `visible` is the label check `label_of_part can-flow-to input_label_of_unit`
    /// supplied by the dispatcher; the filter itself is label-agnostic.
    pub fn matches<F>(&self, event: &Event, mut visible: F) -> bool
    where
        F: FnMut(&Part) -> bool,
    {
        if self.clauses.is_empty() {
            return false;
        }
        self.clauses.iter().all(|(name, predicate)| {
            event
                .parts_named(name)
                .any(|part| visible(part) && predicate.matches(part.data()))
        })
    }

    /// Evaluates the filter ignoring visibility (used by tests and by the baseline
    /// platform, which has no label checks).
    pub fn matches_any_visibility(&self, event: &Event) -> bool {
        self.matches(event, |_| true)
    }
}

impl fmt::Display for Filter {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "filter(")?;
        for (i, (name, pred)) in self.clauses.iter().enumerate() {
            if i > 0 {
                write!(f, " && ")?;
            }
            write!(f, "{name} {pred}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventBuilder;
    use defcon_defc::{Label, Tag, TagSet};

    fn tick(symbol: &str, price: f64) -> Event {
        EventBuilder::new()
            .part("type", Label::public(), Value::str("tick"))
            .part("symbol", Label::public(), Value::str(symbol))
            .part("price", Label::public(), Value::Float(price))
            .build()
            .unwrap()
    }

    #[test]
    fn empty_filter_never_matches() {
        let f = Filter::new();
        assert!(f.is_empty());
        assert!(!f.matches_any_visibility(&tick("MSFT", 10.0)));
    }

    #[test]
    fn type_and_symbol_filter() {
        let f = Filter::for_type("tick").where_eq("symbol", "MSFT");
        assert!(f.matches_any_visibility(&tick("MSFT", 10.0)));
        assert!(!f.matches_any_visibility(&tick("GOOG", 10.0)));
    }

    #[test]
    fn numeric_predicates() {
        let gt = Filter::new().where_part("price", Predicate::GreaterThan(9.0));
        let lt = Filter::new().where_part("price", Predicate::LessThan(9.0));
        let e = tick("MSFT", 10.0);
        assert!(gt.matches_any_visibility(&e));
        assert!(!lt.matches_any_visibility(&e));
        // Non-numeric data never satisfies numeric predicates.
        let weird = Filter::new().where_part("symbol", Predicate::GreaterThan(0.0));
        assert!(!weird.matches_any_visibility(&e));
    }

    #[test]
    fn one_of_and_not_equals() {
        let f = Filter::new().where_part(
            "symbol",
            Predicate::OneOf(vec!["MSFT".into(), "GOOG".into()]),
        );
        assert!(f.matches_any_visibility(&tick("GOOG", 1.0)));
        assert!(!f.matches_any_visibility(&tick("AAPL", 1.0)));

        let ne = Filter::new().where_part("symbol", Predicate::NotEquals(Value::str("MSFT")));
        assert!(!ne.matches_any_visibility(&tick("MSFT", 1.0)));
        assert!(ne.matches_any_visibility(&tick("AAPL", 1.0)));
    }

    #[test]
    fn visibility_is_enforced_per_part() {
        // The filter clause on a confidential part must not match when the
        // visibility predicate rejects that part.
        let secret_tag = Tag::with_name("s");
        let secret = Label::confidential(TagSet::singleton(secret_tag));
        let event = EventBuilder::new()
            .part("type", Label::public(), Value::str("order"))
            .part("body", secret.clone(), Value::Float(99.0))
            .build()
            .unwrap();

        let f = Filter::for_type("order").where_exists("body");
        assert!(f.matches(&event, |_| true));
        assert!(!f.matches(&event, |p| p.label().is_public()));
    }

    #[test]
    fn exists_clause() {
        let f = Filter::new().where_exists("price");
        assert!(f.matches_any_visibility(&tick("MSFT", 1.0)));
        let no_price = EventBuilder::new()
            .part("type", Label::public(), Value::str("tick"))
            .build()
            .unwrap();
        assert!(!f.matches_any_visibility(&no_price));
    }

    #[test]
    fn display_renders_clauses() {
        let f = Filter::for_type("tick").where_eq("symbol", "MSFT");
        let s = f.to_string();
        assert!(s.contains("type"));
        assert!(s.contains("symbol"));
        assert!(s.contains("&&"));
    }
}
