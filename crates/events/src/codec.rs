//! A compact binary codec for events.
//!
//! DEFCon itself never serialises events: the entire point of sharing a single
//! address space (§4) is that frozen event data can be passed between isolates by
//! reference. The codec exists to model the systems DEFCon is compared against:
//!
//! * the `labels+clone` configuration of Figure 5 (deep copies per dispatch), and
//! * the Marketcetera-style baseline (Figures 8 and 9), where every message crossing
//!   a JVM boundary must be serialised, copied through the kernel and deserialised.
//!
//! The format is a straightforward length-prefixed, little-endian encoding with no
//! external dependencies beyond the `bytes` crate.

use bytes::{Buf, BufMut, Bytes, BytesMut};

use defcon_defc::{Label, Privilege, PrivilegeKind, Tag, TagId, TagSet};

use crate::event::{Event, EventId};
use crate::part::Part;
use crate::value::{Value, ValueList, ValueMap};
use crate::EventError;

/// Serialises an event into a freshly allocated byte buffer.
pub fn encode_event(event: &Event) -> Bytes {
    let mut buf = BytesMut::with_capacity(128);
    encode_event_into(&mut buf, event);
    buf.freeze()
}

fn encode_event_into(buf: &mut BytesMut, event: &Event) {
    buf.put_u64_le(event.id().as_u64());
    buf.put_u64_le(event.origin_ns());
    encode_parts_into(buf, event.parts());
}

/// Deserialises an event previously produced by [`encode_event`].
///
/// The decoded event receives a fresh [`EventId`](crate::EventId) internally via
/// [`Event::with_origin`]; the encoded identifier is only used for diagnostics and
/// is returned alongside the event. Recovery and replay paths, which need the
/// original identity, use [`decode_event_preserving_id`] instead.
pub fn decode_event(mut data: &[u8]) -> Result<(u64, Event), EventError> {
    let buf = &mut data;
    let original_id = take_u64(buf)?;
    let origin_ns = take_u64(buf)?;
    let parts = decode_parts_from(buf)?;
    let event = Event::with_origin(parts, origin_ns)?;
    Ok((original_id, event))
}

/// Deserialises an event, keeping the encoded [`EventId`](crate::EventId) as the
/// decoded event's identity.
///
/// [`decode_event`] always mints a fresh id, which is correct for the
/// copy-cost-modelling baselines but breaks replay determinism and exactly-once
/// accounting across recovery: the write-ahead log must hand back the *same*
/// event it logged. Construction goes through [`Event::with_identity`], which
/// also advances the process-wide id sequence past the recovered id so freshly
/// minted events never collide with it.
pub fn decode_event_preserving_id(mut data: &[u8]) -> Result<Event, EventError> {
    decode_event_from(&mut data)
}

fn decode_event_from(buf: &mut &[u8]) -> Result<Event, EventError> {
    let id = take_u64(buf)?;
    let origin_ns = take_u64(buf)?;
    let parts = decode_parts_from(buf)?;
    Event::with_identity(EventId::from_raw(id), parts, origin_ns)
}

/// Serialises a bare part list (count-prefixed, no event header).
///
/// This is the unit of the recorded arrival-trace format: a draft captured
/// before publish has no identity, label raise or timestamp yet, only parts.
pub fn encode_parts(parts: &[Part]) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    encode_parts_into(&mut buf, parts);
    buf.freeze()
}

/// Deserialises a part list produced by [`encode_parts`], rejecting trailing
/// bytes.
pub fn decode_parts(mut data: &[u8]) -> Result<Vec<Part>, EventError> {
    let parts = decode_parts_from(&mut data)?;
    if !data.is_empty() {
        return Err(EventError::Codec("trailing bytes after parts".into()));
    }
    Ok(parts)
}

fn encode_parts_into(buf: &mut BytesMut, parts: &[Part]) {
    buf.put_u32_le(parts.len() as u32);
    for part in parts {
        encode_part(buf, part);
    }
}

fn decode_parts_from(buf: &mut &[u8]) -> Result<Vec<Part>, EventError> {
    let part_count = take_u32(buf)? as usize;
    if part_count > 1_000_000 {
        return Err(EventError::Codec(format!(
            "implausible part count {part_count}"
        )));
    }
    let mut parts = Vec::with_capacity(part_count.min(4096));
    for _ in 0..part_count {
        parts.push(decode_part(buf)?);
    }
    Ok(parts)
}

/// One write-ahead-log record: everything the engine needs to re-feed an
/// externally published batch through normal dispatch after a crash.
#[derive(Debug)]
pub struct WalRecord {
    /// Raw id of the publishing unit.
    pub publisher_unit: u64,
    /// The publisher's output label at publish time (diagnostics: events carry
    /// their raised labels themselves).
    pub output_label: Label,
    /// The arrival timestamp stamped on the whole batch, in nanoseconds.
    pub arrival_ns: u64,
    /// The batch's events, in publish order, identities preserved.
    pub events: Vec<Event>,
}

/// Serialises a [`WalRecord`]: publisher unit, output label and arrival
/// timestamp round-trip alongside the batch's events (ids preserved).
pub fn encode_wal_record(record: &WalRecord) -> Bytes {
    let mut buf = BytesMut::with_capacity(256);
    buf.put_u64_le(record.publisher_unit);
    encode_label(&mut buf, &record.output_label);
    buf.put_u64_le(record.arrival_ns);
    buf.put_u32_le(record.events.len() as u32);
    for event in &record.events {
        encode_event_into(&mut buf, event);
    }
    buf.freeze()
}

/// Deserialises a [`WalRecord`] produced by [`encode_wal_record`], preserving
/// every event's identity and rejecting trailing bytes.
pub fn decode_wal_record(mut data: &[u8]) -> Result<WalRecord, EventError> {
    let buf = &mut data;
    let publisher_unit = take_u64(buf)?;
    let output_label = decode_label(buf)?;
    let arrival_ns = take_u64(buf)?;
    let event_count = take_u32(buf)? as usize;
    if event_count > 1_000_000 {
        return Err(EventError::Codec(format!(
            "implausible event count {event_count}"
        )));
    }
    let mut events = Vec::with_capacity(event_count.min(4096));
    for _ in 0..event_count {
        events.push(decode_event_from(buf)?);
    }
    if !buf.is_empty() {
        return Err(EventError::Codec("trailing bytes after wal record".into()));
    }
    Ok(WalRecord {
        publisher_unit,
        output_label,
        arrival_ns,
        events,
    })
}

fn encode_part(buf: &mut BytesMut, part: &Part) {
    put_str(buf, part.name());
    encode_label(buf, part.label());
    encode_value(buf, part.data());
    buf.put_u32_le(part.privileges().len() as u32);
    for privilege in part.privileges() {
        buf.put_u8(encode_privilege_kind(privilege.kind));
        buf.put_u128_le(privilege.tag.id().as_raw());
    }
}

fn decode_part(buf: &mut &[u8]) -> Result<Part, EventError> {
    let name = take_str(buf)?;
    let label = decode_label(buf)?;
    let data = decode_value(buf)?;
    let privilege_count = take_u32(buf)? as usize;
    let mut privileges = Vec::with_capacity(privilege_count);
    for _ in 0..privilege_count {
        let kind = decode_privilege_kind(take_u8(buf)?)?;
        let tag = Tag::from_id(TagId::from_raw(take_u128(buf)?));
        privileges.push(Privilege::new(tag, kind));
    }
    Ok(if privileges.is_empty() {
        Part::new(name, label, data)
    } else {
        Part::with_privileges(name, label, data, privileges)
    })
}

fn encode_label(buf: &mut BytesMut, label: &Label) {
    encode_tagset(buf, label.confidentiality());
    encode_tagset(buf, label.integrity());
}

fn decode_label(buf: &mut &[u8]) -> Result<Label, EventError> {
    let conf = decode_tagset(buf)?;
    let integ = decode_tagset(buf)?;
    Ok(Label::new(conf, integ))
}

fn encode_tagset(buf: &mut BytesMut, set: &TagSet) {
    buf.put_u32_le(set.len() as u32);
    for tag in set.iter() {
        buf.put_u128_le(tag.id().as_raw());
    }
}

fn decode_tagset(buf: &mut &[u8]) -> Result<TagSet, EventError> {
    let len = take_u32(buf)? as usize;
    let mut set = TagSet::empty();
    for _ in 0..len {
        set.insert(Tag::from_id(TagId::from_raw(take_u128(buf)?)));
    }
    Ok(set)
}

const TAG_NULL: u8 = 0;
const TAG_BOOL: u8 = 1;
const TAG_INT: u8 = 2;
const TAG_FLOAT: u8 = 3;
const TAG_STR: u8 = 4;
const TAG_BYTES: u8 = 5;
const TAG_TIMESTAMP: u8 = 6;
const TAG_TAGREF: u8 = 7;
const TAG_LIST: u8 = 8;
const TAG_MAP: u8 = 9;

fn encode_value(buf: &mut BytesMut, value: &Value) {
    match value {
        Value::Null => buf.put_u8(TAG_NULL),
        Value::Bool(v) => {
            buf.put_u8(TAG_BOOL);
            buf.put_u8(u8::from(*v));
        }
        Value::Int(v) => {
            buf.put_u8(TAG_INT);
            buf.put_i64_le(*v);
        }
        Value::Float(v) => {
            buf.put_u8(TAG_FLOAT);
            buf.put_f64_le(*v);
        }
        Value::Str(s) => {
            buf.put_u8(TAG_STR);
            put_str(buf, s);
        }
        Value::Bytes(b) => {
            buf.put_u8(TAG_BYTES);
            buf.put_u32_le(b.len() as u32);
            buf.put_slice(b);
        }
        Value::Timestamp(t) => {
            buf.put_u8(TAG_TIMESTAMP);
            buf.put_u64_le(*t);
        }
        Value::Tag(t) => {
            buf.put_u8(TAG_TAGREF);
            buf.put_u128_le(t.as_raw());
        }
        Value::List(list) => {
            buf.put_u8(TAG_LIST);
            let items = list.to_vec();
            buf.put_u32_le(items.len() as u32);
            for item in &items {
                encode_value(buf, item);
            }
        }
        Value::Map(map) => {
            buf.put_u8(TAG_MAP);
            let entries = map.entries();
            buf.put_u32_le(entries.len() as u32);
            for (key, item) in &entries {
                put_str(buf, key);
                encode_value(buf, item);
            }
        }
    }
}

fn decode_value(buf: &mut &[u8]) -> Result<Value, EventError> {
    let tag = take_u8(buf)?;
    Ok(match tag {
        TAG_NULL => Value::Null,
        TAG_BOOL => Value::Bool(take_u8(buf)? != 0),
        TAG_INT => Value::Int(take_i64(buf)?),
        TAG_FLOAT => Value::Float(take_f64(buf)?),
        TAG_STR => Value::str(take_str(buf)?),
        TAG_BYTES => {
            let len = take_u32(buf)? as usize;
            Value::bytes(take_slice(buf, len)?.to_vec())
        }
        TAG_TIMESTAMP => Value::Timestamp(take_u64(buf)?),
        TAG_TAGREF => Value::Tag(TagId::from_raw(take_u128(buf)?)),
        TAG_LIST => {
            let len = take_u32(buf)? as usize;
            let list = ValueList::new();
            for _ in 0..len {
                list.push(decode_value(buf)?)
                    .map_err(|_| EventError::Codec("frozen list during decode".into()))?;
            }
            Value::List(list)
        }
        TAG_MAP => {
            let len = take_u32(buf)? as usize;
            let map = ValueMap::new();
            for _ in 0..len {
                let key = take_str(buf)?;
                let value = decode_value(buf)?;
                map.insert(key, value)
                    .map_err(|_| EventError::Codec("frozen map during decode".into()))?;
            }
            Value::Map(map)
        }
        other => return Err(EventError::Codec(format!("unknown value tag {other}"))),
    })
}

fn encode_privilege_kind(kind: PrivilegeKind) -> u8 {
    match kind {
        PrivilegeKind::Add => 0,
        PrivilegeKind::Remove => 1,
        PrivilegeKind::AddAuthority => 2,
        PrivilegeKind::RemoveAuthority => 3,
    }
}

fn decode_privilege_kind(raw: u8) -> Result<PrivilegeKind, EventError> {
    Ok(match raw {
        0 => PrivilegeKind::Add,
        1 => PrivilegeKind::Remove,
        2 => PrivilegeKind::AddAuthority,
        3 => PrivilegeKind::RemoveAuthority,
        other => return Err(EventError::Codec(format!("unknown privilege kind {other}"))),
    })
}

fn put_str(buf: &mut BytesMut, s: &str) {
    buf.put_u32_le(s.len() as u32);
    buf.put_slice(s.as_bytes());
}

fn take_slice<'a>(buf: &mut &'a [u8], len: usize) -> Result<&'a [u8], EventError> {
    if buf.remaining() < len {
        return Err(EventError::Codec("unexpected end of input".into()));
    }
    let (head, tail) = buf.split_at(len);
    *buf = tail;
    Ok(head)
}

fn take_str(buf: &mut &[u8]) -> Result<String, EventError> {
    let len = take_u32(buf)? as usize;
    let bytes = take_slice(buf, len)?;
    String::from_utf8(bytes.to_vec()).map_err(|_| EventError::Codec("invalid utf-8".into()))
}

macro_rules! take_primitive {
    ($name:ident, $ty:ty, $get:ident, $size:expr) => {
        fn $name(buf: &mut &[u8]) -> Result<$ty, EventError> {
            if buf.remaining() < $size {
                return Err(EventError::Codec("unexpected end of input".into()));
            }
            Ok(buf.$get())
        }
    };
}

take_primitive!(take_u8, u8, get_u8, 1);
take_primitive!(take_u32, u32, get_u32_le, 4);
take_primitive!(take_u64, u64, get_u64_le, 8);
take_primitive!(take_i64, i64, get_i64_le, 8);
take_primitive!(take_f64, f64, get_f64_le, 8);
take_primitive!(take_u128, u128, get_u128_le, 16);

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::EventBuilder;
    use defcon_defc::TagSet;

    fn rich_event() -> Event {
        let t = Tag::with_name("dark-pool");
        let map = ValueMap::new();
        map.insert("price", Value::Float(1234.5)).unwrap();
        map.insert("qty", Value::Int(100)).unwrap();
        let list: ValueList = [Value::str("a"), Value::Int(2), Value::Null]
            .into_iter()
            .collect();
        EventBuilder::new()
            .part("type", Label::public(), Value::str("bid"))
            .part(
                "body",
                Label::confidential(TagSet::singleton(t.clone())),
                Value::Map(map),
            )
            .part("history", Label::public(), Value::List(list))
            .privileged_part(
                "grant",
                Label::public(),
                Value::Tag(t.id()),
                vec![Privilege::add(t.clone()), Privilege::remove_authority(t)],
            )
            .part("blob", Label::public(), Value::bytes(vec![1, 2, 3, 255]))
            .part("stamp", Label::public(), Value::Timestamp(42))
            .part("flag", Label::public(), Value::Bool(true))
            .build()
            .unwrap()
    }

    #[test]
    fn round_trip_preserves_structure() {
        let event = rich_event();
        let encoded = encode_event(&event);
        let (original_id, decoded) = decode_event(&encoded).unwrap();

        assert_eq!(original_id, event.id().as_u64());
        assert_eq!(decoded.origin_ns(), event.origin_ns());
        assert_eq!(decoded.part_count(), event.part_count());

        for (a, b) in decoded.parts().iter().zip(event.parts()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.label(), b.label());
            assert!(a.data().structurally_equals(b.data()));
            assert_eq!(a.privileges().len(), b.privileges().len());
            for (pa, pb) in a.privileges().iter().zip(b.privileges()) {
                assert_eq!(pa.kind, pb.kind);
                assert_eq!(pa.tag.id(), pb.tag.id());
            }
        }
    }

    #[test]
    fn decode_preserving_id_round_trips_identity() {
        let event = rich_event();
        let encoded = encode_event(&event);
        let decoded = decode_event_preserving_id(&encoded).unwrap();
        assert_eq!(decoded.id(), event.id());
        assert_eq!(decoded.origin_ns(), event.origin_ns());
        assert_eq!(decoded.part_count(), event.part_count());
        // The sequence was advanced past the recovered id: fresh events do not
        // collide with it.
        assert!(rich_event().id().as_u64() > decoded.id().as_u64());
    }

    #[test]
    fn parts_round_trip_and_reject_trailing_bytes() {
        let event = rich_event();
        let encoded = encode_parts(event.parts());
        let decoded = decode_parts(&encoded).unwrap();
        assert_eq!(decoded.len(), event.part_count());
        for (a, b) in decoded.iter().zip(event.parts()) {
            assert_eq!(a.name(), b.name());
            assert_eq!(a.label(), b.label());
            assert!(a.data().structurally_equals(b.data()));
        }
        let mut padded = encoded.to_vec();
        padded.push(0);
        assert!(decode_parts(&padded).is_err());
    }

    #[test]
    fn wal_record_round_trips_batch_metadata() {
        let t = Tag::with_name("wal-test");
        let label = Label::confidential(TagSet::singleton(t));
        let events = vec![rich_event(), rich_event()];
        let record = WalRecord {
            publisher_unit: 17,
            output_label: label.clone(),
            arrival_ns: 12345,
            events: events.clone(),
        };
        let encoded = encode_wal_record(&record);
        let decoded = decode_wal_record(&encoded).unwrap();
        assert_eq!(decoded.publisher_unit, 17);
        assert_eq!(decoded.output_label, label);
        assert_eq!(decoded.arrival_ns, 12345);
        assert_eq!(decoded.events.len(), 2);
        for (a, b) in decoded.events.iter().zip(&events) {
            assert_eq!(a.id(), b.id(), "wal decode preserves event identity");
            assert_eq!(a.part_count(), b.part_count());
        }
        // Truncation anywhere must fail cleanly, and trailing bytes are rejected.
        assert!(decode_wal_record(&encoded[..encoded.len() - 1]).is_err());
        let mut padded = encoded.to_vec();
        padded.push(0);
        assert!(decode_wal_record(&padded).is_err());
    }

    #[test]
    fn decode_rejects_truncated_input() {
        let event = rich_event();
        let encoded = encode_event(&event);
        for cut in [0, 1, 5, encoded.len() / 2, encoded.len() - 1] {
            let result = decode_event(&encoded[..cut]);
            assert!(result.is_err(), "cut at {cut} should fail");
        }
    }

    #[test]
    fn decode_rejects_unknown_value_tag() {
        let event = EventBuilder::new()
            .part("x", Label::public(), Value::Int(1))
            .build()
            .unwrap();
        let mut encoded = encode_event(&event).to_vec();
        // Corrupt the value type tag of the first part: it lives after the header
        // (8+8+4), the name (4+1) and the label (4+4).
        let offset = 8 + 8 + 4 + 4 + 1 + 4 + 4;
        encoded[offset] = 0xEE;
        assert!(decode_event(&encoded).is_err());
    }

    #[test]
    fn encoded_size_scales_with_payload() {
        let small = EventBuilder::new()
            .part("x", Label::public(), Value::Int(1))
            .build()
            .unwrap();
        let big = EventBuilder::new()
            .part("x", Label::public(), Value::str("y".repeat(10_000)))
            .build()
            .unwrap();
        assert!(encode_event(&big).len() > encode_event(&small).len() + 9_000);
    }

    #[test]
    fn empty_event_cannot_be_decoded_into_existence() {
        // Craft a buffer claiming zero parts: decoding must fail because events
        // without parts are invalid.
        let mut buf = BytesMut::new();
        buf.put_u64_le(1);
        buf.put_u64_le(0);
        buf.put_u32_le(0);
        assert!(decode_event(&buf).is_err());
    }
}
