//! DEFCon event model: multi-part events, freezable values, filters and a codec.
//!
//! This crate implements §3.1.2 ("Anatomy of events"), §3.1.5 (privilege-carrying
//! parts), §3.1.6 (partial event processing) and the "Freezing shared objects"
//! mechanism of §5 of the DEFCon paper.
//!
//! An [`Event`] is a collection of named [`Part`]s. Each part carries:
//!
//! * a name (`"type"`, `"body"`, `"trader_id"`, ...),
//! * a security [`Label`](defcon_defc::Label),
//! * a data [`Value`] which is *frozen* (made immutable) when the part enters the
//!   engine, and
//! * optionally a set of [`Privilege`](defcon_defc::Privilege)s, making the part a
//!   *privilege-carrying* part.
//!
//! Values use the [`freeze`] module's shared-flag scheme so that freezing an entire
//! collection is a constant-time operation, as required by §5.
//!
//! The [`codec`] module provides a compact binary encoding of events. The DEFCon
//! engine itself never serialises events (that is the point of the shared-address
//! -space design); the codec exists to model the *cost* of the alternatives that the
//! paper compares against: the `labels+clone` configuration and the
//! process-isolated Marketcetera-style baseline.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod codec;
pub mod event;
pub mod filter;
pub mod freeze;
pub mod part;
pub mod value;

pub use event::{now_ns, Event, EventBuilder, EventId};
pub use filter::{Filter, Predicate};
pub use freeze::{Freezable, FreezeError, FreezeFlag};
pub use part::{part_name, Part, PartName};
pub use value::{Value, ValueList, ValueMap};

/// Errors arising from event construction and manipulation.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EventError {
    /// A mutation was attempted on a frozen value.
    Frozen(FreezeError),
    /// The requested part does not exist (or is not visible).
    NoSuchPart(String),
    /// An event without parts was published (§5: such events are dropped).
    EmptyEvent,
    /// The codec encountered malformed input.
    Codec(String),
}

impl std::fmt::Display for EventError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            EventError::Frozen(e) => write!(f, "frozen value: {e}"),
            EventError::NoSuchPart(name) => write!(f, "no such part: {name}"),
            EventError::EmptyEvent => write!(f, "event has no parts"),
            EventError::Codec(msg) => write!(f, "codec error: {msg}"),
        }
    }
}

impl std::error::Error for EventError {}

impl From<FreezeError> for EventError {
    fn from(e: FreezeError) -> Self {
        EventError::Frozen(e)
    }
}
