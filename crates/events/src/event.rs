//! Events: connected collections of labelled parts.
//!
//! §3.1.2: dispatching a single event with secured parts supports the principle of
//! least privilege — units only gain access to the parts their input label allows
//! them to read. §3.1.6: units may modify *some* parts of an event on the main
//! dataflow path; when multiple units make conflicting modifications to a part the
//! event carries both versions.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use defcon_defc::{Label, Privilege};

use crate::part::Part;
use crate::value::Value;
use crate::EventError;

/// A unique identifier for an event instance.
///
/// Identifiers are assigned from a process-wide counter; they have no security
/// meaning (units never observe identifiers of events they cannot read) and exist
/// for diagnostics, deduplication and latency bookkeeping.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct EventId(u64);

static EVENT_SEQUENCE: AtomicU64 = AtomicU64::new(1);

impl EventId {
    /// Allocates the next event identifier.
    pub fn next() -> Self {
        EventId(EVENT_SEQUENCE.fetch_add(1, Ordering::Relaxed))
    }

    /// Returns the raw counter value.
    pub fn as_u64(&self) -> u64 {
        self.0
    }

    /// Reconstitutes an identifier from its raw value, as stored by the codec.
    ///
    /// Callers that mint events with a recovered id must also call
    /// [`EventId::advance_past`] (or construct via [`Event::with_identity`],
    /// which does so) to keep future fresh ids collision-free.
    pub fn from_raw(raw: u64) -> Self {
        EventId(raw)
    }

    /// Advances the process-wide id sequence past `raw`, so that identifiers
    /// recovered from a log can never collide with freshly minted ones.
    pub fn advance_past(raw: u64) {
        EVENT_SEQUENCE.fetch_max(raw.saturating_add(1), Ordering::Relaxed);
    }
}

impl fmt::Display for EventId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "evt#{}", self.0)
    }
}

/// An immutable event: an identifier plus a list of parts.
///
/// Events are cheap to clone (`Arc` internally) and safe to share across threads;
/// all part data has been frozen on construction. "Adding a part" produces a new
/// `Event` value that shares the unchanged parts with its predecessor, which is how
/// partial event processing (§3.1.6) avoids relabelling untouched parts.
#[derive(Clone)]
pub struct Event {
    id: EventId,
    /// Monotonic timestamp (nanoseconds) recorded when the originating event was
    /// created; carried across derived events for end-to-end latency measurement.
    origin_ns: u64,
    /// The parts live behind one `Arc<Vec<..>>`: constructing an event is a
    /// single small allocation that adopts the builder's buffer, instead of a
    /// shrink-to-fit plus an `Arc<[Part]>` copy — the publish hot path builds
    /// millions of these.
    parts: Arc<Vec<Part>>,
}

impl Event {
    /// Creates an event from parts. Returns an error if `parts` is empty, since the
    /// engine drops empty events on publish (Table 1, `publish`).
    pub fn new(parts: Vec<Part>) -> Result<Self, EventError> {
        Event::with_origin(parts, now_ns())
    }

    /// Creates an event carrying an explicit origin timestamp, used when an event is
    /// derived from an earlier one and should inherit its latency baseline — or when
    /// a batched publisher stamps a whole batch with one clock read.
    pub fn with_origin(parts: Vec<Part>, origin_ns: u64) -> Result<Self, EventError> {
        if parts.is_empty() {
            return Err(EventError::EmptyEvent);
        }
        Ok(Event {
            id: EventId::next(),
            origin_ns,
            parts: Arc::new(parts),
        })
    }

    /// Reconstitutes an event with an explicit identity, used by recovery and
    /// replay: the decoded event must *be* the original — same id — for
    /// exactly-once accounting and run-to-run delivery comparison to hold
    /// across a crash. Advances the process-wide id sequence past `id` so
    /// later fresh events cannot collide with the recovered one.
    pub fn with_identity(
        id: EventId,
        parts: Vec<Part>,
        origin_ns: u64,
    ) -> Result<Self, EventError> {
        if parts.is_empty() {
            return Err(EventError::EmptyEvent);
        }
        EventId::advance_past(id.as_u64());
        Ok(Event {
            id,
            origin_ns,
            parts: Arc::new(parts),
        })
    }

    /// Returns the event identifier.
    pub fn id(&self) -> EventId {
        self.id
    }

    /// Returns the origin timestamp in nanoseconds.
    pub fn origin_ns(&self) -> u64 {
        self.origin_ns
    }

    /// Returns all parts of the event, regardless of visibility.
    ///
    /// This accessor is intended for the trusted engine; units go through the
    /// engine's `readPart`, which filters by the unit's input label.
    pub fn parts(&self) -> &[Part] {
        self.parts.as_slice()
    }

    /// Returns the number of parts.
    pub fn part_count(&self) -> usize {
        self.parts.len()
    }

    /// Returns every part (version) with the given name.
    pub fn parts_named<'a>(&'a self, name: &'a str) -> impl Iterator<Item = &'a Part> + 'a {
        self.parts.iter().filter(move |p| p.name() == name)
    }

    /// Returns the first part with the given name, if any.
    pub fn first_part(&self, name: &str) -> Option<&Part> {
        self.parts.iter().find(|p| p.name() == name)
    }

    /// Returns the distinct part names in this event, in part order.
    pub fn part_names(&self) -> Vec<&str> {
        let mut names: Vec<&str> = Vec::with_capacity(self.parts.len());
        for p in self.parts.iter() {
            if !names.contains(&p.name()) {
                names.push(p.name());
            }
        }
        names
    }

    /// Returns a new event with `part` appended, sharing all existing parts.
    ///
    /// This models partial event processing (§3.1.6): the labels of unrelated parts
    /// are not affected by the addition.
    pub fn with_part(&self, part: Part) -> Event {
        let mut parts: Vec<Part> = self.parts.to_vec();
        parts.push(part);
        Event {
            id: self.id,
            origin_ns: self.origin_ns,
            parts: Arc::new(parts),
        }
    }

    /// Returns a new event with all parts matching `name` *and* `label` removed
    /// (Table 1, `delPart`).
    pub fn without_part(&self, name: &str, label: &Label) -> Event {
        let parts: Vec<Part> = self
            .parts
            .iter()
            .filter(|p| !(p.name() == name && p.label() == label))
            .cloned()
            .collect();
        Event {
            id: self.id,
            origin_ns: self.origin_ns,
            parts: Arc::new(parts),
        }
    }

    /// Implements the label transformation of `cloneEvent` (Table 1): every part of
    /// the clone gets the caller's output confidentiality tags added and only the
    /// caller's output integrity tags retained. The clone receives a fresh
    /// [`EventId`], which is what prevents DEFC violations based on counting
    /// received events.
    pub fn clone_at_output_label(&self, output: &Label) -> Event {
        let parts: Vec<Part> = self
            .parts
            .iter()
            .map(|p| {
                // `S ∪ S_out, I ∩ I_out` is the lattice join; with interned
                // labels it returns the part's own label (by pointer) whenever
                // the part is already at or above the output label, making the
                // common all-parts-unchanged clone allocation-free per part.
                let label = p.label().join(output);
                if label.ptr_eq(p.label()) {
                    p.clone()
                } else {
                    p.with_label(label)
                }
            })
            .collect();
        Event {
            id: EventId::next(),
            origin_ns: self.origin_ns,
            parts: Arc::new(parts),
        }
    }

    /// Produces a deep copy of the event, duplicating all part data.
    ///
    /// This is the per-dispatch cost paid by the `labels+clone` configuration
    /// (Figure 5) and by serialising baselines; DEFCon's freeze-and-share dispatch
    /// never calls it on the hot path.
    pub fn deep_clone(&self) -> Event {
        let parts: Vec<Part> = self.parts.iter().map(Part::deep_clone).collect();
        Event {
            id: self.id,
            origin_ns: self.origin_ns,
            parts: Arc::new(parts),
        }
    }

    /// The least upper bound of all part labels: the contamination acquired by a
    /// unit that reads the whole event.
    pub fn overall_label(&self) -> Label {
        // With interned labels, each join step returns the higher operand by
        // reference whenever the accumulator and the next part label are
        // ordered — for the common single-label event this never allocates.
        self.parts
            .iter()
            .fold(Label::public(), |acc, p| acc.join(p.label()))
    }

    /// Estimated heap footprint in bytes (Figure 7 accounting).
    pub fn estimated_size(&self) -> usize {
        std::mem::size_of::<Event>() + self.parts.iter().map(Part::estimated_size).sum::<usize>()
    }
}

impl fmt::Debug for Event {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        writeln!(f, "{} {{", self.id)?;
        for part in self.parts.iter() {
            writeln!(f, "  {part}")?;
        }
        write!(f, "}}")
    }
}

/// A convenience builder for events with several parts.
///
/// ```
/// use defcon_defc::Label;
/// use defcon_events::{EventBuilder, Value};
///
/// let event = EventBuilder::new()
///     .part("type", Label::public(), Value::str("bid"))
///     .part("price", Label::public(), Value::Float(123.4))
///     .build()
///     .unwrap();
/// assert_eq!(event.part_count(), 2);
/// ```
#[derive(Default)]
pub struct EventBuilder {
    parts: Vec<Part>,
    origin_ns: Option<u64>,
}

impl EventBuilder {
    /// Creates an empty builder.
    pub fn new() -> Self {
        EventBuilder::default()
    }

    /// Adds a plain part.
    pub fn part(mut self, name: impl AsRef<str>, label: Label, data: Value) -> Self {
        self.parts.push(Part::new(name, label, data));
        self
    }

    /// Adds a privilege-carrying part.
    pub fn privileged_part(
        mut self,
        name: impl AsRef<str>,
        label: Label,
        data: Value,
        privileges: Vec<Privilege>,
    ) -> Self {
        self.parts
            .push(Part::with_privileges(name, label, data, privileges));
        self
    }

    /// Adds an already-constructed part.
    pub fn raw_part(mut self, part: Part) -> Self {
        self.parts.push(part);
        self
    }

    /// Sets the origin timestamp explicitly (inherited latency baseline).
    pub fn origin_ns(mut self, origin_ns: u64) -> Self {
        self.origin_ns = Some(origin_ns);
        self
    }

    /// Builds the event; fails if no parts were added.
    pub fn build(self) -> Result<Event, EventError> {
        match self.origin_ns {
            Some(origin) => Event::with_origin(self.parts, origin),
            None => Event::new(self.parts),
        }
    }
}

/// Returns a monotonic timestamp in nanoseconds.
pub fn now_ns() -> u64 {
    use std::time::Instant;
    // A process-wide anchor gives readings that are comparable across threads.
    static ANCHOR: std::sync::OnceLock<Instant> = std::sync::OnceLock::new();
    let anchor = ANCHOR.get_or_init(Instant::now);
    anchor.elapsed().as_nanos() as u64
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_defc::{Tag, TagSet};

    fn simple_event() -> Event {
        EventBuilder::new()
            .part("type", Label::public(), Value::str("bid"))
            .part("price", Label::public(), Value::Float(10.0))
            .build()
            .unwrap()
    }

    #[test]
    fn empty_events_are_rejected() {
        assert_eq!(Event::new(vec![]).unwrap_err(), EventError::EmptyEvent);
        assert!(EventBuilder::new().build().is_err());
    }

    #[test]
    fn event_ids_are_unique_and_increasing() {
        let a = simple_event();
        let b = simple_event();
        assert!(b.id().as_u64() > a.id().as_u64());
    }

    #[test]
    fn parts_named_returns_all_versions() {
        let event =
            simple_event().with_part(Part::new("price", Label::public(), Value::Float(11.0)));
        let versions: Vec<_> = event.parts_named("price").collect();
        assert_eq!(versions.len(), 2, "conflicting versions both retained");
        assert_eq!(event.part_names(), vec!["type", "price"]);
        assert_eq!(event.part_count(), 3);
    }

    #[test]
    fn with_part_shares_existing_parts_and_keeps_id() {
        let event = simple_event();
        let extended = event.with_part(Part::new("reason", Label::public(), Value::str("ok")));
        assert_eq!(
            extended.id(),
            event.id(),
            "main-path augmentation keeps identity"
        );
        assert_eq!(extended.part_count(), 3);
        assert_eq!(event.part_count(), 2);
        assert_eq!(extended.origin_ns(), event.origin_ns());
    }

    #[test]
    fn without_part_requires_matching_label() {
        let t = Tag::with_name("t");
        let secret = Label::confidential(TagSet::singleton(t));
        let event = simple_event().with_part(Part::new("note", secret.clone(), Value::Int(1)));
        // Wrong label: nothing removed.
        let unchanged = event.without_part("note", &Label::public());
        assert_eq!(unchanged.part_count(), 3);
        // Correct label: removed.
        let removed = event.without_part("note", &secret);
        assert_eq!(removed.part_count(), 2);
    }

    #[test]
    fn clone_at_output_label_applies_table1_transform() {
        let d = Tag::with_name("d");
        let i = Tag::with_name("i");
        let event = EventBuilder::new()
            .part(
                "body",
                Label::new(TagSet::empty(), TagSet::singleton(i.clone())),
                Value::Int(1),
            )
            .build()
            .unwrap();

        // Caller output label: S={d}, I={} — integrity i must be dropped, d added.
        let out = Label::confidential(TagSet::singleton(d.clone()));
        let clone = event.clone_at_output_label(&out);
        assert_ne!(clone.id(), event.id(), "clone gets a fresh identity");
        let part = clone.first_part("body").unwrap();
        assert!(part.label().confidentiality().contains(&d));
        assert!(part.label().integrity().is_empty());
        // Origin timestamp is preserved for latency accounting.
        assert_eq!(clone.origin_ns(), event.origin_ns());
    }

    #[test]
    fn overall_label_joins_part_labels() {
        let a = Tag::with_name("a");
        let b = Tag::with_name("b");
        let event = EventBuilder::new()
            .part(
                "x",
                Label::confidential(TagSet::singleton(a.clone())),
                Value::Int(1),
            )
            .part(
                "y",
                Label::confidential(TagSet::singleton(b.clone())),
                Value::Int(2),
            )
            .build()
            .unwrap();
        let overall = event.overall_label();
        assert!(overall.confidentiality().contains(&a));
        assert!(overall.confidentiality().contains(&b));
    }

    #[test]
    fn deep_clone_duplicates_every_part() {
        let event = simple_event();
        let copy = event.deep_clone();
        assert_eq!(copy.part_count(), event.part_count());
        assert_eq!(copy.id(), event.id());
        for (a, b) in copy.parts().iter().zip(event.parts()) {
            assert_eq!(a.data(), b.data());
        }
    }

    #[test]
    fn builder_with_privileged_part_and_origin() {
        let t = Tag::with_name("t");
        let event = EventBuilder::new()
            .privileged_part(
                "grant",
                Label::public(),
                Value::Tag(t.id()),
                vec![Privilege::add(t.clone())],
            )
            .origin_ns(42)
            .build()
            .unwrap();
        assert_eq!(event.origin_ns(), 42);
        assert!(event.first_part("grant").unwrap().is_privilege_carrying());
    }

    #[test]
    fn with_identity_preserves_id_and_advances_sequence() {
        let raw = simple_event().id().as_u64() + 1000;
        let rebuilt = Event::with_identity(
            EventId::from_raw(raw),
            vec![Part::new("type", Label::public(), Value::str("bid"))],
            7,
        )
        .unwrap();
        assert_eq!(rebuilt.id().as_u64(), raw);
        assert_eq!(rebuilt.origin_ns(), 7);
        assert!(
            simple_event().id().as_u64() > raw,
            "sequence advanced past recovered id"
        );
        assert_eq!(
            Event::with_identity(EventId::from_raw(1), vec![], 0).unwrap_err(),
            EventError::EmptyEvent
        );
    }

    #[test]
    fn now_ns_is_monotonic() {
        let a = now_ns();
        let b = now_ns();
        assert!(b >= a);
    }

    #[test]
    fn estimated_size_accounts_for_parts() {
        let small = simple_event();
        let big = small.with_part(Part::new(
            "blob",
            Label::public(),
            Value::str("x".repeat(4096)),
        ));
        assert!(big.estimated_size() > small.estimated_size() + 4000);
    }
}
