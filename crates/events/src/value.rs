//! The data model for event part contents.
//!
//! §5 restricts the contents of event parts to "a subset of types ... either
//! immutable or extending a package-private `Freezable` base class". [`Value`]
//! mirrors that: scalar variants are immutable; the collection variants
//! ([`ValueList`], [`ValueMap`]) are interior-mutable containers that implement the
//! [`Freezable`] protocol, so that once a value is attached to a published event it
//! can be shared by reference between isolates without copying.
//!
//! The [`Value::Tag`] variant carries a tag *reference* inside data, which is how
//! privilege-carrying parts hand the receiving unit the tag it needs in order to
//! exercise a delegated privilege (§3.1.5).

use std::collections::BTreeMap;
use std::fmt;
use std::sync::Arc;

use defcon_defc::TagId;
use parking_lot::RwLock;

use crate::freeze::{Freezable, FreezeError, FreezeFlag, FreezeState};

/// A single datum stored in an event part.
#[derive(Clone, Debug, Default)]
pub enum Value {
    /// Absence of a value.
    #[default]
    Null,
    /// A boolean.
    Bool(bool),
    /// A 64-bit signed integer.
    Int(i64),
    /// A 64-bit float (prices, statistics).
    Float(f64),
    /// An immutable string (shared by reference).
    Str(Arc<str>),
    /// An immutable byte string (shared by reference).
    Bytes(Arc<[u8]>),
    /// A timestamp in nanoseconds since an arbitrary epoch; used for latency
    /// measurements of the kind Figure 6/9 report.
    Timestamp(u64),
    /// A reference to a security tag, carried as data (§3.1.5).
    Tag(TagId),
    /// A freezable, ordered list of values.
    List(ValueList),
    /// A freezable string-keyed map of values.
    Map(ValueMap),
}

impl Value {
    /// Convenience constructor for string values.
    pub fn str(s: impl AsRef<str>) -> Value {
        Value::Str(Arc::from(s.as_ref()))
    }

    /// Convenience constructor for byte-string values.
    pub fn bytes(b: impl Into<Vec<u8>>) -> Value {
        Value::Bytes(Arc::from(b.into().into_boxed_slice()))
    }

    /// Returns the integer if this is an `Int`.
    pub fn as_int(&self) -> Option<i64> {
        match self {
            Value::Int(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the float if this is a `Float` (or an `Int`, widened).
    pub fn as_float(&self) -> Option<f64> {
        match self {
            Value::Float(v) => Some(*v),
            Value::Int(v) => Some(*v as f64),
            _ => None,
        }
    }

    /// Returns the boolean if this is a `Bool`.
    pub fn as_bool(&self) -> Option<bool> {
        match self {
            Value::Bool(v) => Some(*v),
            _ => None,
        }
    }

    /// Returns the string slice if this is a `Str`.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            Value::Str(s) => Some(s),
            _ => None,
        }
    }

    /// Returns the byte slice if this is a `Bytes`.
    pub fn as_bytes(&self) -> Option<&[u8]> {
        match self {
            Value::Bytes(b) => Some(b),
            _ => None,
        }
    }

    /// Returns the timestamp if this is a `Timestamp`.
    pub fn as_timestamp(&self) -> Option<u64> {
        match self {
            Value::Timestamp(t) => Some(*t),
            _ => None,
        }
    }

    /// Returns the tag reference if this is a `Tag`.
    pub fn as_tag(&self) -> Option<TagId> {
        match self {
            Value::Tag(t) => Some(*t),
            _ => None,
        }
    }

    /// Returns the list if this is a `List`.
    pub fn as_list(&self) -> Option<&ValueList> {
        match self {
            Value::List(l) => Some(l),
            _ => None,
        }
    }

    /// Returns the map if this is a `Map`.
    pub fn as_map(&self) -> Option<&ValueMap> {
        match self {
            Value::Map(m) => Some(m),
            _ => None,
        }
    }

    /// Returns `true` if this value is `Null`.
    pub fn is_null(&self) -> bool {
        matches!(self, Value::Null)
    }

    /// Produces a deep, unfrozen copy of this value.
    ///
    /// This is the operation whose cost the `labels+clone` configuration of Figure 5
    /// pays on every event dispatch, and which the freeze-and-share design avoids.
    pub fn deep_clone(&self) -> Value {
        match self {
            Value::Null => Value::Null,
            Value::Bool(v) => Value::Bool(*v),
            Value::Int(v) => Value::Int(*v),
            Value::Float(v) => Value::Float(*v),
            Value::Str(s) => Value::Str(Arc::from(&**s)),
            Value::Bytes(b) => Value::Bytes(Arc::from(&**b)),
            Value::Timestamp(t) => Value::Timestamp(*t),
            Value::Tag(t) => Value::Tag(*t),
            Value::List(l) => Value::List(l.deep_clone()),
            Value::Map(m) => Value::Map(m.deep_clone()),
        }
    }

    /// Returns an estimate of the heap footprint of this value in bytes.
    ///
    /// Used by the memory-accounting experiments (Figure 7); the estimate counts the
    /// enum discriminant plus any owned heap allocations.
    pub fn estimated_size(&self) -> usize {
        const BASE: usize = std::mem::size_of::<Value>();
        match self {
            Value::Str(s) => BASE + s.len(),
            Value::Bytes(b) => BASE + b.len(),
            Value::List(l) => BASE + l.estimated_size(),
            Value::Map(m) => BASE + m.estimated_size(),
            _ => BASE,
        }
    }

    /// Structural equality that looks through collections.
    pub fn structurally_equals(&self, other: &Value) -> bool {
        match (self, other) {
            (Value::Null, Value::Null) => true,
            (Value::Bool(a), Value::Bool(b)) => a == b,
            (Value::Int(a), Value::Int(b)) => a == b,
            (Value::Float(a), Value::Float(b)) => a.to_bits() == b.to_bits(),
            (Value::Str(a), Value::Str(b)) => a == b,
            (Value::Bytes(a), Value::Bytes(b)) => a == b,
            (Value::Timestamp(a), Value::Timestamp(b)) => a == b,
            (Value::Tag(a), Value::Tag(b)) => a == b,
            (Value::List(a), Value::List(b)) => a.structurally_equals(b),
            (Value::Map(a), Value::Map(b)) => a.structurally_equals(b),
            _ => false,
        }
    }
}

impl PartialEq for Value {
    fn eq(&self, other: &Self) -> bool {
        self.structurally_equals(other)
    }
}

impl From<i64> for Value {
    fn from(v: i64) -> Self {
        Value::Int(v)
    }
}

impl From<f64> for Value {
    fn from(v: f64) -> Self {
        Value::Float(v)
    }
}

impl From<bool> for Value {
    fn from(v: bool) -> Self {
        Value::Bool(v)
    }
}

impl From<&str> for Value {
    fn from(v: &str) -> Self {
        Value::str(v)
    }
}

impl From<String> for Value {
    fn from(v: String) -> Self {
        Value::str(v)
    }
}

impl From<TagId> for Value {
    fn from(v: TagId) -> Self {
        Value::Tag(v)
    }
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::Null => write!(f, "null"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Int(v) => write!(f, "{v}"),
            Value::Float(v) => write!(f, "{v}"),
            Value::Str(s) => write!(f, "{s:?}"),
            Value::Bytes(b) => write!(f, "bytes[{}]", b.len()),
            Value::Timestamp(t) => write!(f, "@{t}"),
            Value::Tag(t) => write!(f, "tag:{t}"),
            Value::List(l) => write!(f, "list[{}]", l.len()),
            Value::Map(m) => write!(f, "map[{}]", m.len()),
        }
    }
}

/// Shared state of a freezable collection.
///
/// Cloning the wrapper shares the same underlying storage, mirroring Java reference
/// semantics; [`deep_clone`](ValueList::deep_clone) produces an independent copy.
#[derive(Clone, Debug)]
struct Collection<T> {
    storage: Arc<RwLock<T>>,
    freeze: FreezeState,
}

impl<T: Default> Default for Collection<T> {
    fn default() -> Self {
        Collection {
            storage: Arc::new(RwLock::new(T::default())),
            freeze: FreezeState::new(),
        }
    }
}

/// A freezable, ordered list of [`Value`]s.
#[derive(Clone, Debug, Default)]
pub struct ValueList {
    inner: Collection<Vec<Value>>,
}

impl ValueList {
    /// Creates an empty, unfrozen list.
    pub fn new() -> Self {
        ValueList::default()
    }

    /// Appends a value; fails if the list is frozen.
    ///
    /// The inserted value is attached to this list's frozen flag so that freezing
    /// the list later freezes the member in constant time (§5).
    pub fn push(&self, mut value: Value) -> Result<(), FreezeError> {
        self.check_mutable()?;
        attach_value(&mut value, self.inner.freeze.own_flag());
        self.inner.storage.write().push(value);
        Ok(())
    }

    /// Returns a clone of the element at `index`.
    pub fn get(&self, index: usize) -> Option<Value> {
        self.inner.storage.read().get(index).cloned()
    }

    /// Returns the number of elements.
    pub fn len(&self) -> usize {
        self.inner.storage.read().len()
    }

    /// Returns `true` if the list has no elements.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a snapshot of the elements.
    pub fn to_vec(&self) -> Vec<Value> {
        self.inner.storage.read().clone()
    }

    /// Produces a deep, unfrozen copy.
    pub fn deep_clone(&self) -> ValueList {
        let copy = ValueList::new();
        for v in self.inner.storage.read().iter() {
            // A deep clone of each member detaches it from this list's flag.
            copy.push(v.deep_clone()).expect("fresh list is not frozen");
        }
        copy
    }

    /// Estimated heap footprint in bytes.
    pub fn estimated_size(&self) -> usize {
        self.inner
            .storage
            .read()
            .iter()
            .map(Value::estimated_size)
            .sum()
    }

    /// Structural equality.
    pub fn structurally_equals(&self, other: &ValueList) -> bool {
        let a = self.inner.storage.read();
        let b = other.inner.storage.read();
        a.len() == b.len()
            && a.iter()
                .zip(b.iter())
                .all(|(x, y)| x.structurally_equals(y))
    }
}

impl Freezable for ValueList {
    fn freeze(&self) {
        self.inner.freeze.freeze();
    }

    fn is_frozen(&self) -> bool {
        self.inner.freeze.is_frozen()
    }

    fn attach_to(&mut self, flag: &FreezeFlag) {
        self.inner.freeze.attach_to(flag);
    }
}

impl FromIterator<Value> for ValueList {
    fn from_iter<I: IntoIterator<Item = Value>>(iter: I) -> Self {
        let list = ValueList::new();
        for v in iter {
            list.push(v).expect("fresh list is not frozen");
        }
        list
    }
}

/// A freezable, string-keyed map of [`Value`]s.
#[derive(Clone, Debug, Default)]
pub struct ValueMap {
    inner: Collection<BTreeMap<String, Value>>,
}

impl ValueMap {
    /// Creates an empty, unfrozen map.
    pub fn new() -> Self {
        ValueMap::default()
    }

    /// Inserts a key/value pair; fails if the map is frozen.
    pub fn insert(&self, key: impl Into<String>, mut value: Value) -> Result<(), FreezeError> {
        self.check_mutable()?;
        attach_value(&mut value, self.inner.freeze.own_flag());
        self.inner.storage.write().insert(key.into(), value);
        Ok(())
    }

    /// Removes a key; fails if the map is frozen.
    pub fn remove(&self, key: &str) -> Result<Option<Value>, FreezeError> {
        self.check_mutable()?;
        Ok(self.inner.storage.write().remove(key))
    }

    /// Returns a clone of the value stored under `key`.
    pub fn get(&self, key: &str) -> Option<Value> {
        self.inner.storage.read().get(key).cloned()
    }

    /// Returns the number of entries.
    pub fn len(&self) -> usize {
        self.inner.storage.read().len()
    }

    /// Returns `true` if the map has no entries.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Returns a snapshot of the keys.
    pub fn keys(&self) -> Vec<String> {
        self.inner.storage.read().keys().cloned().collect()
    }

    /// Returns a snapshot of the entries.
    pub fn entries(&self) -> Vec<(String, Value)> {
        self.inner
            .storage
            .read()
            .iter()
            .map(|(k, v)| (k.clone(), v.clone()))
            .collect()
    }

    /// Produces a deep, unfrozen copy.
    pub fn deep_clone(&self) -> ValueMap {
        let copy = ValueMap::new();
        for (k, v) in self.inner.storage.read().iter() {
            copy.insert(k.clone(), v.deep_clone())
                .expect("fresh map is not frozen");
        }
        copy
    }

    /// Estimated heap footprint in bytes.
    pub fn estimated_size(&self) -> usize {
        self.inner
            .storage
            .read()
            .iter()
            .map(|(k, v)| k.len() + v.estimated_size())
            .sum()
    }

    /// Structural equality.
    pub fn structurally_equals(&self, other: &ValueMap) -> bool {
        let a = self.inner.storage.read();
        let b = other.inner.storage.read();
        a.len() == b.len()
            && a.iter()
                .zip(b.iter())
                .all(|((ka, va), (kb, vb))| ka == kb && va.structurally_equals(vb))
    }
}

impl Freezable for ValueMap {
    fn freeze(&self) {
        self.inner.freeze.freeze();
    }

    fn is_frozen(&self) -> bool {
        self.inner.freeze.is_frozen()
    }

    fn attach_to(&mut self, flag: &FreezeFlag) {
        self.inner.freeze.attach_to(flag);
    }
}

/// Implements the freeze protocol for the whole `Value` enum: scalars are immutable
/// (always "frozen" in the trivial sense of never being mutable), collections
/// delegate to their own state.
impl Freezable for Value {
    fn freeze(&self) {
        match self {
            Value::List(l) => l.freeze(),
            Value::Map(m) => m.freeze(),
            _ => {}
        }
    }

    fn is_frozen(&self) -> bool {
        match self {
            Value::List(l) => l.is_frozen(),
            Value::Map(m) => m.is_frozen(),
            // Scalars carry no mutable state.
            _ => true,
        }
    }

    fn attach_to(&mut self, flag: &FreezeFlag) {
        match self {
            Value::List(l) => l.attach_to(flag),
            Value::Map(m) => m.attach_to(flag),
            _ => {}
        }
    }
}

/// Attaches a value being inserted into a collection to the collection's flag.
fn attach_value(value: &mut Value, flag: &FreezeFlag) {
    value.attach_to(flag);
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scalar_accessors() {
        assert_eq!(Value::Int(7).as_int(), Some(7));
        assert_eq!(Value::Int(7).as_float(), Some(7.0));
        assert_eq!(Value::Float(1.5).as_float(), Some(1.5));
        assert_eq!(Value::Bool(true).as_bool(), Some(true));
        assert_eq!(Value::str("x").as_str(), Some("x"));
        assert_eq!(Value::bytes(vec![1, 2]).as_bytes(), Some(&[1u8, 2][..]));
        assert_eq!(Value::Timestamp(10).as_timestamp(), Some(10));
        assert!(Value::Null.is_null());
        let t = TagId::from_raw(5);
        assert_eq!(Value::Tag(t).as_tag(), Some(t));
        assert_eq!(Value::Int(7).as_str(), None);
    }

    #[test]
    fn from_impls() {
        assert_eq!(Value::from(3i64), Value::Int(3));
        assert_eq!(Value::from(true), Value::Bool(true));
        assert_eq!(Value::from("hi"), Value::str("hi"));
        assert_eq!(Value::from(2.0f64), Value::Float(2.0));
    }

    #[test]
    fn list_push_and_freeze() {
        let list = ValueList::new();
        list.push(Value::Int(1)).unwrap();
        list.push(Value::Int(2)).unwrap();
        assert_eq!(list.len(), 2);
        assert_eq!(list.get(0), Some(Value::Int(1)));

        list.freeze();
        assert!(list.is_frozen());
        assert_eq!(list.push(Value::Int(3)), Err(FreezeError));
        assert_eq!(list.len(), 2);
    }

    #[test]
    fn freezing_collection_freezes_members_constant_time() {
        // A nested list attached to a parent must become frozen when the parent is
        // frozen, without the parent iterating over members.
        let child = ValueList::new();
        child.push(Value::Int(1)).unwrap();

        let parent = ValueList::new();
        parent.push(Value::List(child.clone())).unwrap();

        assert!(!child.is_frozen());
        parent.freeze();

        // The member we pushed is frozen through the shared flag.
        let member = parent.get(0).unwrap();
        assert!(member.is_frozen());
        // And mutating it through any handle that was attached fails.
        if let Value::List(inner) = member {
            assert_eq!(inner.push(Value::Int(2)), Err(FreezeError));
        } else {
            panic!("expected list");
        }
    }

    #[test]
    fn map_operations_and_freeze() {
        let map = ValueMap::new();
        map.insert("price", Value::Float(12.5)).unwrap();
        map.insert("symbol", Value::str("MSFT")).unwrap();
        assert_eq!(map.len(), 2);
        assert_eq!(map.get("price"), Some(Value::Float(12.5)));
        assert_eq!(map.keys(), vec!["price".to_string(), "symbol".to_string()]);

        map.freeze();
        assert!(map.insert("x", Value::Null).is_err());
        assert!(map.remove("price").is_err());
        assert_eq!(map.len(), 2);
    }

    #[test]
    fn deep_clone_detaches_from_frozen_original() {
        let map = ValueMap::new();
        map.insert("a", Value::Int(1)).unwrap();
        map.freeze();

        let copy = map.deep_clone();
        assert!(!copy.is_frozen());
        copy.insert("b", Value::Int(2)).unwrap();
        assert_eq!(copy.len(), 2);
        assert_eq!(map.len(), 1);
    }

    #[test]
    fn shallow_clone_shares_storage() {
        let list = ValueList::new();
        let alias = list.clone();
        list.push(Value::Int(1)).unwrap();
        assert_eq!(alias.len(), 1, "clone shares the same storage");
    }

    #[test]
    fn structural_equality() {
        let a = ValueMap::new();
        a.insert("k", Value::Int(1)).unwrap();
        let b = ValueMap::new();
        b.insert("k", Value::Int(1)).unwrap();
        assert_eq!(Value::Map(a.clone()), Value::Map(b.clone()));
        b.insert("j", Value::Int(2)).unwrap();
        assert_ne!(Value::Map(a), Value::Map(b));
        assert_ne!(Value::Int(1), Value::Float(1.0));
    }

    #[test]
    fn estimated_size_counts_heap_data() {
        let s = Value::str("hello world");
        assert!(s.estimated_size() > std::mem::size_of::<Value>());
        let list: ValueList = (0..10).map(Value::Int).collect();
        assert!(Value::List(list).estimated_size() >= 10 * std::mem::size_of::<Value>());
    }

    #[test]
    fn display_formats() {
        assert_eq!(Value::Null.to_string(), "null");
        assert_eq!(Value::Int(3).to_string(), "3");
        assert!(Value::str("x").to_string().contains('x'));
        let l: ValueList = [Value::Int(1)].into_iter().collect();
        assert_eq!(Value::List(l).to_string(), "list[1]");
    }

    #[test]
    fn scalars_are_trivially_frozen() {
        assert!(Value::Int(1).is_frozen());
        assert!(Value::str("x").is_frozen());
        let list = ValueList::new();
        assert!(!Value::List(list).is_frozen());
    }
}
