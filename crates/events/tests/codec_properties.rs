//! Property tests for the event codec: decode(encode(e)) must reproduce the
//! event's structure for arbitrary nested values, labels and privileges.
//!
//! Events are generated from a drawn seed through a small deterministic PRNG
//! rather than a flattened strategy: the interesting inputs (nested
//! lists/maps, tag-ref values, interned labels with privilege-carrying parts)
//! are recursive, which a seed-driven generator expresses directly.

use defcon_defc::{Label, Privilege, PrivilegeKind, Tag, TagId, TagSet};
use defcon_events::codec::{
    decode_event, decode_event_preserving_id, decode_wal_record, encode_event, encode_wal_record,
    WalRecord,
};
use defcon_events::{Event, Part, Value, ValueList, ValueMap};
use proptest::prelude::*;

/// SplitMix64: tiny, deterministic, uniform enough for structure generation.
struct Gen(u64);

impl Gen {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9E37_79B9_7F4A_7C15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
        z ^ (z >> 31)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound.max(1)
    }
}

fn gen_tag(rng: &mut Gen) -> Tag {
    // A small pool of raw ids makes label/tag collisions across parts likely,
    // which is what exercises interning and set handling.
    Tag::from_id(TagId::from_raw(1 + rng.below(8) as u128))
}

fn gen_tagset(rng: &mut Gen) -> TagSet {
    let mut set = TagSet::empty();
    for _ in 0..rng.below(4) {
        set.insert(gen_tag(rng));
    }
    set
}

fn gen_label(rng: &mut Gen) -> Label {
    Label::new(gen_tagset(rng), gen_tagset(rng))
}

fn gen_value(rng: &mut Gen, depth: u32) -> Value {
    let choices = if depth == 0 { 8 } else { 10 };
    match rng.below(choices) {
        0 => Value::Null,
        1 => Value::Bool(rng.next() & 1 == 1),
        2 => Value::Int(rng.next() as i64),
        3 => Value::Float(rng.below(1_000_000) as f64 / 7.0),
        4 => Value::str(format!("s{}", rng.below(10_000))),
        5 => Value::bytes(
            (0..rng.below(16))
                .map(|_| rng.next() as u8)
                .collect::<Vec<u8>>(),
        ),
        6 => Value::Timestamp(rng.next()),
        7 => Value::Tag(gen_tag(rng).id()),
        8 => {
            let list = ValueList::new();
            for _ in 0..rng.below(4) {
                list.push(gen_value(rng, depth - 1)).unwrap();
            }
            Value::List(list)
        }
        _ => {
            let map = ValueMap::new();
            for i in 0..rng.below(4) {
                map.insert(format!("k{i}"), gen_value(rng, depth - 1))
                    .unwrap();
            }
            Value::Map(map)
        }
    }
}

fn gen_privileges(rng: &mut Gen) -> Vec<Privilege> {
    let kinds = [
        PrivilegeKind::Add,
        PrivilegeKind::Remove,
        PrivilegeKind::AddAuthority,
        PrivilegeKind::RemoveAuthority,
    ];
    (0..rng.below(3))
        .map(|_| Privilege::new(gen_tag(rng), kinds[rng.below(4) as usize]))
        .collect()
}

fn gen_event(rng: &mut Gen) -> Event {
    let part_count = 1 + rng.below(5) as usize;
    let parts = (0..part_count)
        .map(|_| {
            // Names collide on purpose: multi-version parts are valid events.
            let name = format!("part-{}", rng.below(4));
            let label = gen_label(rng);
            let data = gen_value(rng, 2);
            let privileges = gen_privileges(rng);
            if privileges.is_empty() {
                Part::new(name, label, data)
            } else {
                Part::with_privileges(name, label, data, privileges)
            }
        })
        .collect();
    Event::new(parts).unwrap()
}

fn assert_parts_structurally_equal(a: &Event, b: &Event) {
    assert_eq!(a.part_count(), b.part_count());
    for (pa, pb) in a.parts().iter().zip(b.parts()) {
        assert_eq!(pa.name(), pb.name());
        assert_eq!(pa.label(), pb.label());
        assert!(pa.data().structurally_equals(pb.data()));
        assert_eq!(pa.privileges().len(), pb.privileges().len());
        for (qa, qb) in pa.privileges().iter().zip(pb.privileges()) {
            assert_eq!(qa.kind, qb.kind);
            assert_eq!(qa.tag.id(), qb.tag.id());
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    #[test]
    fn round_trip_preserves_structure(seed in 0u64..) {
        let mut rng = Gen(seed);
        let event = gen_event(&mut rng);
        let encoded = encode_event(&event);

        let (original_id, decoded) = decode_event(&encoded).unwrap();
        assert_eq!(original_id, event.id().as_u64());
        assert_eq!(decoded.origin_ns(), event.origin_ns());
        assert_parts_structurally_equal(&decoded, &event);

        let preserved = decode_event_preserving_id(&encoded).unwrap();
        assert_eq!(preserved.id(), event.id());
        assert_parts_structurally_equal(&preserved, &event);
    }

    #[test]
    fn wal_record_round_trips(seed in 0u64..) {
        let mut rng = Gen(seed);
        let events: Vec<Event> = (0..1 + rng.below(4)).map(|_| gen_event(&mut rng)).collect();
        let record = WalRecord {
            publisher_unit: rng.next(),
            output_label: gen_label(&mut rng),
            arrival_ns: rng.next(),
            events: events.clone(),
        };
        let decoded = decode_wal_record(&encode_wal_record(&record)).unwrap();
        assert_eq!(decoded.publisher_unit, record.publisher_unit);
        assert_eq!(decoded.output_label, record.output_label);
        assert_eq!(decoded.arrival_ns, record.arrival_ns);
        assert_eq!(decoded.events.len(), events.len());
        for (a, b) in decoded.events.iter().zip(&events) {
            assert_eq!(a.id(), b.id());
            assert_parts_structurally_equal(a, b);
        }
    }

    #[test]
    fn truncated_event_never_decodes(seed in 0u64..) {
        let mut rng = Gen(seed);
        let event = gen_event(&mut rng);
        let encoded = encode_event(&event);
        // Any strict prefix must fail cleanly — never panic, never yield an event.
        let cut = rng.below(encoded.len() as u64) as usize;
        assert!(decode_event(&encoded[..cut]).is_err());
        assert!(decode_event_preserving_id(&encoded[..cut]).is_err());
    }
}
