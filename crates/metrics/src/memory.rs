//! Memory accounting for the Figure 7 experiment.
//!
//! The paper measures "occupied memory" of the JVM heap for each configuration.
//! A Rust reproduction has no garbage-collected heap to sample, so we account for
//! the same object populations explicitly: live events (the tick cache), per-unit
//! state, per-isolate duplicated static state and weaving/bookkeeping overhead.
//! Accounting the identical populations reproduces the *comparison* the figure
//! makes between configurations, deterministically and without allocator noise.

use std::sync::atomic::{AtomicI64, Ordering};

use parking_lot::RwLock;

/// Categories of accounted memory, mirroring the contributors discussed in §6.2.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum MemoryCategory {
    /// Cached/live event objects (the paper attributes ~300 MiB to the tick cache).
    Events,
    /// Per-unit application state (order books, pair statistics, ...).
    UnitState,
    /// Engine bookkeeping: subscriptions, labels, tag store.
    Engine,
    /// Per-isolate duplicated static state and interceptor bookkeeping
    /// (the "weaving framework" overhead of Figure 7).
    Isolation,
    /// Serialisation buffers and per-process duplication in the baseline platform.
    Baseline,
}

const CATEGORIES: [MemoryCategory; 5] = [
    MemoryCategory::Events,
    MemoryCategory::UnitState,
    MemoryCategory::Engine,
    MemoryCategory::Isolation,
    MemoryCategory::Baseline,
];

/// Tracks live bytes per category.
///
/// All operations are lock-free on the hot path (atomic adds); the category list is
/// fixed. Negative balances are clamped at zero when read, so release-before-charge
/// races in tests cannot underflow.
#[derive(Debug, Default)]
pub struct MemoryAccountant {
    events: AtomicI64,
    unit_state: AtomicI64,
    engine: AtomicI64,
    isolation: AtomicI64,
    baseline: AtomicI64,
    peak: RwLock<i64>,
}

impl MemoryAccountant {
    /// Creates an accountant with all balances at zero.
    pub fn new() -> Self {
        MemoryAccountant::default()
    }

    fn cell(&self, category: MemoryCategory) -> &AtomicI64 {
        match category {
            MemoryCategory::Events => &self.events,
            MemoryCategory::UnitState => &self.unit_state,
            MemoryCategory::Engine => &self.engine,
            MemoryCategory::Isolation => &self.isolation,
            MemoryCategory::Baseline => &self.baseline,
        }
    }

    /// Records an allocation of `bytes` in `category`.
    pub fn charge(&self, category: MemoryCategory, bytes: usize) {
        self.cell(category)
            .fetch_add(bytes as i64, Ordering::Relaxed);
        let total = self.total_bytes() as i64;
        let mut peak = self.peak.write();
        if total > *peak {
            *peak = total;
        }
    }

    /// Records a release of `bytes` in `category`.
    pub fn release(&self, category: MemoryCategory, bytes: usize) {
        self.cell(category)
            .fetch_sub(bytes as i64, Ordering::Relaxed);
    }

    /// Returns the live bytes currently accounted in `category`.
    pub fn bytes(&self, category: MemoryCategory) -> usize {
        self.cell(category).load(Ordering::Relaxed).max(0) as usize
    }

    /// Returns total live bytes across all categories.
    pub fn total_bytes(&self) -> usize {
        CATEGORIES.iter().map(|&c| self.bytes(c)).sum()
    }

    /// Returns total live memory in MiB (Figure 7's unit).
    pub fn total_mib(&self) -> f64 {
        self.total_bytes() as f64 / (1024.0 * 1024.0)
    }

    /// Returns the highest total observed since creation or the last reset, in MiB.
    pub fn peak_mib(&self) -> f64 {
        (*self.peak.read()).max(0) as f64 / (1024.0 * 1024.0)
    }

    /// Returns a `(category, bytes)` breakdown for reporting.
    pub fn breakdown(&self) -> Vec<(MemoryCategory, usize)> {
        CATEGORIES.iter().map(|&c| (c, self.bytes(c))).collect()
    }

    /// Resets all balances and the recorded peak.
    pub fn reset(&self) {
        for category in CATEGORIES {
            self.cell(category).store(0, Ordering::Relaxed);
        }
        *self.peak.write() = 0;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn charges_and_releases_balance() {
        let m = MemoryAccountant::new();
        m.charge(MemoryCategory::Events, 1024);
        m.charge(MemoryCategory::Events, 1024);
        m.release(MemoryCategory::Events, 1024);
        assert_eq!(m.bytes(MemoryCategory::Events), 1024);
        assert_eq!(m.total_bytes(), 1024);
    }

    #[test]
    fn categories_are_independent() {
        let m = MemoryAccountant::new();
        m.charge(MemoryCategory::Events, 10);
        m.charge(MemoryCategory::Isolation, 20);
        assert_eq!(m.bytes(MemoryCategory::Events), 10);
        assert_eq!(m.bytes(MemoryCategory::Isolation), 20);
        assert_eq!(m.bytes(MemoryCategory::Engine), 0);
        assert_eq!(m.total_bytes(), 30);
    }

    #[test]
    fn over_release_clamps_to_zero() {
        let m = MemoryAccountant::new();
        m.charge(MemoryCategory::UnitState, 5);
        m.release(MemoryCategory::UnitState, 50);
        assert_eq!(m.bytes(MemoryCategory::UnitState), 0);
    }

    #[test]
    fn peak_tracks_high_water_mark() {
        let m = MemoryAccountant::new();
        m.charge(MemoryCategory::Events, 4 * 1024 * 1024);
        m.release(MemoryCategory::Events, 4 * 1024 * 1024);
        assert_eq!(m.total_bytes(), 0);
        assert!((m.peak_mib() - 4.0).abs() < 1e-9);
    }

    #[test]
    fn breakdown_and_mib_conversion() {
        let m = MemoryAccountant::new();
        m.charge(MemoryCategory::Baseline, 2 * 1024 * 1024);
        let breakdown = m.breakdown();
        assert_eq!(breakdown.len(), 5);
        assert!(breakdown.contains(&(MemoryCategory::Baseline, 2 * 1024 * 1024)));
        assert!((m.total_mib() - 2.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_peak_and_balances() {
        let m = MemoryAccountant::new();
        m.charge(MemoryCategory::Engine, 100);
        m.reset();
        assert_eq!(m.total_bytes(), 0);
        assert_eq!(m.peak_mib(), 0.0);
    }

    #[test]
    fn concurrent_charging_is_consistent() {
        use std::sync::Arc;
        let m = Arc::new(MemoryAccountant::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let m = Arc::clone(&m);
                std::thread::spawn(move || {
                    for _ in 0..1000 {
                        m.charge(MemoryCategory::Events, 8);
                        m.release(MemoryCategory::Events, 8);
                    }
                })
            })
            .collect();
        for h in handles {
            h.join().unwrap();
        }
        assert_eq!(m.bytes(MemoryCategory::Events), 0);
    }
}
