//! Small statistics helpers shared by the benchmark harness.
//!
//! These operate on plain `f64` slices and are used to post-process per-window
//! throughput samples and per-series latency arrays before printing figure rows.

/// Returns the arithmetic mean, or `None` for an empty slice.
pub fn mean(values: &[f64]) -> Option<f64> {
    if values.is_empty() {
        None
    } else {
        Some(values.iter().sum::<f64>() / values.len() as f64)
    }
}

/// Returns the population standard deviation, or `None` for an empty slice.
pub fn std_dev(values: &[f64]) -> Option<f64> {
    let m = mean(values)?;
    let var = values.iter().map(|v| (v - m) * (v - m)).sum::<f64>() / values.len() as f64;
    Some(var.sqrt())
}

/// Returns the median, or `None` for an empty slice.
pub fn median(values: &[f64]) -> Option<f64> {
    percentile(values, 50.0)
}

/// Returns the given percentile (0–100) using linear interpolation between ranks,
/// or `None` for an empty slice.
pub fn percentile(values: &[f64], pct: f64) -> Option<f64> {
    if values.is_empty() {
        return None;
    }
    let mut sorted: Vec<f64> = values.to_vec();
    sorted.sort_by(|a, b| a.partial_cmp(b).expect("values must not contain NaN"));
    let pct = pct.clamp(0.0, 100.0);
    if sorted.len() == 1 {
        return Some(sorted[0]);
    }
    let rank = pct / 100.0 * (sorted.len() - 1) as f64;
    let lower = rank.floor() as usize;
    let upper = rank.ceil() as usize;
    let weight = rank - lower as f64;
    Some(sorted[lower] * (1.0 - weight) + sorted[upper] * weight)
}

/// A five-number summary of a sample, convenient for printing figure rows.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct Summary {
    /// Number of samples.
    pub count: usize,
    /// Arithmetic mean.
    pub mean: f64,
    /// Median (50th percentile).
    pub median: f64,
    /// 70th percentile (the paper's latency metric).
    pub p70: f64,
    /// 99th percentile.
    pub p99: f64,
    /// Minimum value.
    pub min: f64,
    /// Maximum value.
    pub max: f64,
}

impl Summary {
    /// Computes a summary, or `None` for an empty slice.
    pub fn of(values: &[f64]) -> Option<Summary> {
        if values.is_empty() {
            return None;
        }
        let min = values.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = values.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        Some(Summary {
            count: values.len(),
            mean: mean(values)?,
            median: median(values)?,
            p70: percentile(values, 70.0)?,
            p99: percentile(values, 99.0)?,
            min,
            max,
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_slices_return_none() {
        assert_eq!(mean(&[]), None);
        assert_eq!(median(&[]), None);
        assert_eq!(std_dev(&[]), None);
        assert_eq!(percentile(&[], 50.0), None);
        assert!(Summary::of(&[]).is_none());
    }

    #[test]
    fn mean_and_std_dev() {
        let values = [2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0];
        assert_eq!(mean(&values), Some(5.0));
        assert!((std_dev(&values).unwrap() - 2.0).abs() < 1e-12);
    }

    #[test]
    fn median_even_and_odd() {
        assert_eq!(median(&[1.0, 3.0, 2.0]), Some(2.0));
        assert_eq!(median(&[1.0, 2.0, 3.0, 4.0]), Some(2.5));
    }

    #[test]
    fn percentile_interpolates() {
        let values: Vec<f64> = (1..=100).map(|v| v as f64).collect();
        assert!((percentile(&values, 70.0).unwrap() - 70.3).abs() < 0.5);
        assert_eq!(percentile(&values, 0.0), Some(1.0));
        assert_eq!(percentile(&values, 100.0), Some(100.0));
    }

    #[test]
    fn percentile_single_value() {
        assert_eq!(percentile(&[42.0], 99.0), Some(42.0));
    }

    #[test]
    fn summary_fields_are_consistent() {
        let values: Vec<f64> = (1..=10).map(|v| v as f64).collect();
        let s = Summary::of(&values).unwrap();
        assert_eq!(s.count, 10);
        assert_eq!(s.min, 1.0);
        assert_eq!(s.max, 10.0);
        assert!(s.median <= s.p70 && s.p70 <= s.p99);
        assert_eq!(s.mean, 5.5);
    }
}
