//! Windowed throughput measurement.
//!
//! §6.2: "we had the Stock Exchange unit replay tick event traces as quickly as
//! possible, while measuring the achieved throughput every 100 ms. Figure 5 shows
//! the *median* throughput." [`ThroughputRecorder`] reproduces that procedure: it
//! counts completed events, closes a sample window every `window` of elapsed time
//! and reports the median of the per-window rates.

use std::time::{Duration, Instant};

use parking_lot::Mutex;

/// Records event completions and derives windowed rates.
#[derive(Debug)]
pub struct ThroughputRecorder {
    window: Duration,
    inner: Mutex<State>,
}

#[derive(Debug)]
struct State {
    window_start: Instant,
    window_count: u64,
    total_count: u64,
    samples: Vec<f64>,
    started: Option<Instant>,
    finished: Option<Instant>,
}

impl ThroughputRecorder {
    /// Creates a recorder using the paper's 100 ms sampling window.
    pub fn new() -> Self {
        ThroughputRecorder::with_window(Duration::from_millis(100))
    }

    /// Creates a recorder with a custom sampling window.
    pub fn with_window(window: Duration) -> Self {
        let now = Instant::now();
        ThroughputRecorder {
            window,
            inner: Mutex::new(State {
                window_start: now,
                window_count: 0,
                total_count: 0,
                samples: Vec::new(),
                started: None,
                finished: None,
            }),
        }
    }

    /// Records `n` completed events at the current instant.
    pub fn record(&self, n: u64) {
        let now = Instant::now();
        let mut state = self.inner.lock();
        if state.started.is_none() {
            state.started = Some(now);
            state.window_start = now;
        }
        state.finished = Some(now);
        state.total_count += n;
        state.window_count += n;

        // Close as many full windows as have elapsed. The first closed window
        // carries the events counted since the last close; fully idle windows in a
        // long gap are skipped rather than recorded as zero samples, because the
        // paper's measurement runs while the system is saturated and a zero window
        // would only reflect measurement scheduling, not system throughput.
        let mut first_window = true;
        while now.duration_since(state.window_start) >= self.window {
            let rate = state.window_count as f64 / self.window.as_secs_f64();
            if first_window || rate > 0.0 {
                state.samples.push(rate);
            }
            first_window = false;
            state.window_count = 0;
            state.window_start += self.window;
        }
    }

    /// Records a single completed event.
    pub fn record_one(&self) {
        self.record(1);
    }

    /// Total number of events recorded.
    pub fn total(&self) -> u64 {
        self.inner.lock().total_count
    }

    /// Number of closed sampling windows.
    pub fn sample_count(&self) -> usize {
        self.inner.lock().samples.len()
    }

    /// Median of the per-window rates in events per second (Figure 5's metric).
    ///
    /// Falls back to the overall average rate when fewer than two windows have
    /// closed (short benchmark runs).
    pub fn median_rate(&self) -> Option<f64> {
        let state = self.inner.lock();
        if state.samples.len() >= 2 {
            let mut sorted = state.samples.clone();
            sorted.sort_by(|a, b| a.partial_cmp(b).expect("rates are finite"));
            let mid = sorted.len() / 2;
            let median = if sorted.len().is_multiple_of(2) {
                (sorted[mid - 1] + sorted[mid]) / 2.0
            } else {
                sorted[mid]
            };
            return Some(median);
        }
        drop(state);
        self.overall_rate()
    }

    /// Overall events/second across the whole run.
    pub fn overall_rate(&self) -> Option<f64> {
        let state = self.inner.lock();
        let (start, end) = (state.started?, state.finished?);
        let elapsed = end.duration_since(start).as_secs_f64();
        if elapsed <= 0.0 {
            // All events arrived within one clock tick; report based on window size
            // to avoid dividing by zero.
            return Some(state.total_count as f64 / self.window.as_secs_f64());
        }
        Some(state.total_count as f64 / elapsed)
    }

    /// Returns a copy of the raw per-window samples.
    pub fn samples(&self) -> Vec<f64> {
        self.inner.lock().samples.clone()
    }

    /// Clears all recorded state.
    pub fn reset(&self) {
        let mut state = self.inner.lock();
        state.window_start = Instant::now();
        state.window_count = 0;
        state.total_count = 0;
        state.samples.clear();
        state.started = None;
        state.finished = None;
    }
}

impl Default for ThroughputRecorder {
    fn default() -> Self {
        ThroughputRecorder::new()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_recorder_has_no_rate() {
        let r = ThroughputRecorder::new();
        assert_eq!(r.total(), 0);
        assert_eq!(r.overall_rate(), None);
        assert_eq!(r.median_rate(), None);
    }

    #[test]
    fn counts_accumulate() {
        let r = ThroughputRecorder::new();
        r.record(10);
        r.record_one();
        assert_eq!(r.total(), 11);
    }

    #[test]
    fn windows_close_with_a_tiny_window() {
        let r = ThroughputRecorder::with_window(Duration::from_millis(1));
        for _ in 0..5 {
            r.record(100);
            std::thread::sleep(Duration::from_millis(2));
        }
        r.record(100);
        assert!(r.sample_count() >= 1, "at least one window closed");
        // Every closed window saw events, so the median per-window rate is positive.
        assert!(r.median_rate().unwrap() > 0.0);
        assert_eq!(r.total(), 600);
    }

    #[test]
    fn overall_rate_reflects_elapsed_time() {
        let r = ThroughputRecorder::with_window(Duration::from_millis(1));
        r.record(1000);
        std::thread::sleep(Duration::from_millis(10));
        r.record(1000);
        let rate = r.overall_rate().unwrap();
        // 2000 events over >= 10 ms -> at most 200k/s and clearly positive.
        assert!(rate > 0.0 && rate <= 2_000_000.0, "rate {rate}");
    }

    #[test]
    fn reset_clears_state() {
        let r = ThroughputRecorder::new();
        r.record(5);
        r.reset();
        assert_eq!(r.total(), 0);
        assert_eq!(r.sample_count(), 0);
    }

    #[test]
    fn median_is_robust_to_an_outlier_window() {
        let r = ThroughputRecorder::with_window(Duration::from_millis(1));
        // Generate several busy windows and one idle gap.
        for _ in 0..5 {
            r.record(500);
            std::thread::sleep(Duration::from_millis(2));
        }
        std::thread::sleep(Duration::from_millis(10));
        r.record(1);
        let median = r.median_rate().unwrap();
        let samples = r.samples();
        assert!(samples.len() >= 3);
        assert!(median >= 0.0);
    }
}
