//! Latency histogram with logarithmic buckets.
//!
//! Figure 6 and Figure 9 report the 70th percentile of per-trade latencies: the 70th
//! percentile is chosen by the paper because higher percentiles are dominated by
//! workload spikes and garbage-collection pauses. The histogram uses log-spaced
//! buckets from 1 µs to ~17 s, giving a worst-case relative error of ~5% per bucket,
//! which is far below the effects the figures visualise.

use parking_lot::Mutex;

/// Number of buckets per power of two (resolution of the histogram).
const SUB_BUCKETS: usize = 16;
/// Number of powers of two covered (2^0 .. 2^34 nanoseconds ≈ 17 s).
const POWERS: usize = 35;

/// A concurrent, log-bucketed latency histogram over `u64` nanosecond samples.
#[derive(Debug)]
pub struct LatencyHistogram {
    inner: Mutex<State>,
}

#[derive(Debug, Clone)]
struct State {
    buckets: Vec<u64>,
    count: u64,
    sum_ns: u128,
    min_ns: u64,
    max_ns: u64,
}

impl Default for LatencyHistogram {
    fn default() -> Self {
        LatencyHistogram::new()
    }
}

impl LatencyHistogram {
    /// Creates an empty histogram.
    pub fn new() -> Self {
        LatencyHistogram {
            inner: Mutex::new(State {
                buckets: vec![0; SUB_BUCKETS * POWERS],
                count: 0,
                sum_ns: 0,
                min_ns: u64::MAX,
                max_ns: 0,
            }),
        }
    }

    /// Records one latency sample, in nanoseconds.
    pub fn record(&self, latency_ns: u64) {
        let idx = bucket_index(latency_ns);
        let mut state = self.inner.lock();
        state.buckets[idx] += 1;
        state.count += 1;
        state.sum_ns += latency_ns as u128;
        state.min_ns = state.min_ns.min(latency_ns);
        state.max_ns = state.max_ns.max(latency_ns);
    }

    /// Records a latency expressed as a `Duration`.
    pub fn record_duration(&self, latency: std::time::Duration) {
        self.record(latency.as_nanos().min(u64::MAX as u128) as u64);
    }

    /// Returns the number of recorded samples.
    pub fn count(&self) -> u64 {
        self.inner.lock().count
    }

    /// Returns the arithmetic mean in nanoseconds, or `None` if empty.
    pub fn mean_ns(&self) -> Option<f64> {
        let state = self.inner.lock();
        if state.count == 0 {
            None
        } else {
            Some(state.sum_ns as f64 / state.count as f64)
        }
    }

    /// Returns the smallest recorded sample, or `None` if empty.
    pub fn min_ns(&self) -> Option<u64> {
        let state = self.inner.lock();
        (state.count > 0).then_some(state.min_ns)
    }

    /// Returns the largest recorded sample, or `None` if empty.
    pub fn max_ns(&self) -> Option<u64> {
        let state = self.inner.lock();
        (state.count > 0).then_some(state.max_ns)
    }

    /// Returns the value at the given percentile (0.0–100.0) in nanoseconds.
    ///
    /// The returned value is the representative (upper bound) of the bucket in which
    /// the requested rank falls, clamped to the observed maximum.
    pub fn percentile_ns(&self, pct: f64) -> Option<u64> {
        let state = self.inner.lock();
        if state.count == 0 {
            return None;
        }
        let pct = pct.clamp(0.0, 100.0);
        let rank = ((pct / 100.0) * state.count as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for (idx, &count) in state.buckets.iter().enumerate() {
            seen += count;
            if seen >= rank {
                return Some(bucket_upper_bound(idx).min(state.max_ns));
            }
        }
        Some(state.max_ns)
    }

    /// Convenience: the paper's headline metric, the 70th percentile in
    /// milliseconds.
    pub fn p70_ms(&self) -> Option<f64> {
        self.percentile_ns(70.0).map(|ns| ns as f64 / 1e6)
    }

    /// Convenience: the median in milliseconds.
    pub fn p50_ms(&self) -> Option<f64> {
        self.percentile_ns(50.0).map(|ns| ns as f64 / 1e6)
    }

    /// Convenience: the 99th percentile in milliseconds.
    pub fn p99_ms(&self) -> Option<f64> {
        self.percentile_ns(99.0).map(|ns| ns as f64 / 1e6)
    }

    /// Returns a one-shot summary of the recorded samples — the quantities a
    /// machine-readable bench report records per configuration. Intended for
    /// quiescent histograms (after a run), where the fields are consistent.
    pub fn summary(&self) -> LatencySummary {
        let count = self.count();
        LatencySummary {
            count,
            mean_ms: self.mean_ns().map_or(0.0, |ns| ns / 1e6),
            p50_ms: self.p50_ms().unwrap_or(0.0),
            p70_ms: self.p70_ms().unwrap_or(0.0),
            p99_ms: self.p99_ms().unwrap_or(0.0),
            max_ms: self.max_ns().map_or(0.0, |ns| ns as f64 / 1e6),
        }
    }

    /// Clears all recorded samples.
    pub fn reset(&self) {
        let mut state = self.inner.lock();
        state.buckets.iter_mut().for_each(|b| *b = 0);
        state.count = 0;
        state.sum_ns = 0;
        state.min_ns = u64::MAX;
        state.max_ns = 0;
    }

    /// Merges another histogram into this one.
    pub fn merge(&self, other: &LatencyHistogram) {
        let other_state = other.inner.lock().clone();
        let mut state = self.inner.lock();
        for (a, b) in state.buckets.iter_mut().zip(&other_state.buckets) {
            *a += *b;
        }
        state.count += other_state.count;
        state.sum_ns += other_state.sum_ns;
        if other_state.count > 0 {
            state.min_ns = state.min_ns.min(other_state.min_ns);
            state.max_ns = state.max_ns.max(other_state.max_ns);
        }
    }
}

/// A consistent snapshot of a [`LatencyHistogram`]'s headline statistics, in
/// the units bench reports record (milliseconds). Empty histograms summarise to
/// all-zero fields.
#[derive(Debug, Clone, Copy, PartialEq, Default)]
pub struct LatencySummary {
    /// Number of recorded samples.
    pub count: u64,
    /// Arithmetic mean, ms.
    pub mean_ms: f64,
    /// Median, ms.
    pub p50_ms: f64,
    /// 70th percentile, ms — the paper's headline latency metric (Figures 6
    /// and 9), computed from the same sample buckets as p50/p99.
    pub p70_ms: f64,
    /// 99th percentile, ms.
    pub p99_ms: f64,
    /// Largest recorded sample, ms.
    pub max_ms: f64,
}

/// Maps a nanosecond value to its bucket index.
fn bucket_index(value_ns: u64) -> usize {
    let value = value_ns.max(1);
    let power = 63 - value.leading_zeros() as usize;
    let power = power.min(POWERS - 1);
    // Position within the power-of-two range, quantised into SUB_BUCKETS slots.
    let base = 1u64 << power;
    let offset = ((value - base) as u128 * SUB_BUCKETS as u128 / base as u128) as usize;
    power * SUB_BUCKETS + offset.min(SUB_BUCKETS - 1)
}

/// Returns the inclusive upper bound of a bucket, used as its representative value.
fn bucket_upper_bound(index: usize) -> u64 {
    let power = index / SUB_BUCKETS;
    let slot = index % SUB_BUCKETS;
    let base = 1u64 << power;
    base + (base as u128 * (slot as u128 + 1) / SUB_BUCKETS as u128) as u64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn empty_histogram_reports_none() {
        let h = LatencyHistogram::new();
        assert_eq!(h.count(), 0);
        assert_eq!(h.mean_ns(), None);
        assert_eq!(h.percentile_ns(70.0), None);
        assert_eq!(h.min_ns(), None);
        assert_eq!(h.max_ns(), None);
    }

    #[test]
    fn single_sample_is_every_percentile() {
        let h = LatencyHistogram::new();
        h.record(1_000_000); // 1 ms
        for pct in [0.0, 50.0, 70.0, 99.0, 100.0] {
            let v = h.percentile_ns(pct).unwrap();
            assert!((950_000..=1_050_000).contains(&v), "pct {pct}: {v}");
        }
        assert_eq!(h.min_ns(), Some(1_000_000));
        assert_eq!(h.max_ns(), Some(1_000_000));
    }

    #[test]
    fn percentiles_are_ordered_and_accurate() {
        let h = LatencyHistogram::new();
        // 1..=1000 µs uniformly.
        for i in 1..=1000u64 {
            h.record(i * 1_000);
        }
        let p50 = h.percentile_ns(50.0).unwrap();
        let p70 = h.percentile_ns(70.0).unwrap();
        let p99 = h.percentile_ns(99.0).unwrap();
        assert!(p50 <= p70 && p70 <= p99);
        // 70th percentile of 1..1000 µs is ~700 µs; allow bucket error.
        assert!((650_000..=780_000).contains(&p70), "p70 = {p70}");
        assert!((450_000..=560_000).contains(&p50), "p50 = {p50}");
    }

    #[test]
    fn mean_and_count() {
        let h = LatencyHistogram::new();
        h.record(100);
        h.record(300);
        assert_eq!(h.count(), 2);
        assert_eq!(h.mean_ns(), Some(200.0));
    }

    #[test]
    fn reset_clears_everything() {
        let h = LatencyHistogram::new();
        h.record(5_000);
        h.reset();
        assert_eq!(h.count(), 0);
        assert_eq!(h.percentile_ns(50.0), None);
    }

    #[test]
    fn merge_combines_histograms() {
        let a = LatencyHistogram::new();
        let b = LatencyHistogram::new();
        a.record(1_000);
        b.record(1_000_000);
        a.merge(&b);
        assert_eq!(a.count(), 2);
        assert_eq!(a.min_ns(), Some(1_000));
        assert_eq!(a.max_ns(), Some(1_000_000));
    }

    #[test]
    fn bucket_error_is_bounded() {
        // The representative value of a bucket is within ~7% above the sample.
        for value in [1u64, 10, 1_000, 123_456, 9_999_999, 1_000_000_000] {
            let idx = bucket_index(value);
            let upper = bucket_upper_bound(idx);
            assert!(upper >= value, "upper {upper} < value {value}");
            assert!(
                (upper - value) as f64 <= value as f64 * 0.07 + 1.0,
                "value {value} upper {upper}"
            );
        }
    }

    #[test]
    fn record_duration_matches_record() {
        let h = LatencyHistogram::new();
        h.record_duration(std::time::Duration::from_micros(500));
        assert!(h.percentile_ns(100.0).unwrap() >= 500_000);
    }

    #[test]
    fn concurrent_recording_is_safe() {
        use std::sync::Arc;
        let h = Arc::new(LatencyHistogram::new());
        let handles: Vec<_> = (0..4)
            .map(|_| {
                let h = Arc::clone(&h);
                std::thread::spawn(move || {
                    for i in 0..10_000u64 {
                        h.record(i + 1);
                    }
                })
            })
            .collect();
        for handle in handles {
            handle.join().unwrap();
        }
        assert_eq!(h.count(), 40_000);
    }
}
