//! Measurement infrastructure for the DEFCon reproduction.
//!
//! §6.2 of the paper quantifies event processing performance using:
//!
//! * **event throughput** — events processed per second, sampled every 100 ms and
//!   reported as the median of the samples (Figures 5 and 8);
//! * **event latency** — the delay between the originating tick and the derived
//!   trade, reported as the 70th percentile (Figures 6 and 9); and
//! * **memory consumption** — occupied heap memory (Figure 7).
//!
//! This crate provides exactly those three instruments plus small statistics
//! helpers, so that the benchmark harness reports the same rows the paper plots.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod histogram;
pub mod memory;
pub mod stats;
pub mod throughput;

pub use histogram::{LatencyHistogram, LatencySummary};
pub use memory::MemoryAccountant;
pub use stats::{mean, median, percentile, std_dev, Summary};
pub use throughput::ThroughputRecorder;
