//! The shared on-disk frame discipline for logs and traces.
//!
//! A framed file is an 8-byte magic header followed by frames of
//! `len: u32 LE | crc32: u32 LE | payload`, where the checksum covers the
//! payload only. The format is deliberately dumb: any prefix of a file cut at
//! an arbitrary byte offset — the failure mode of a crash mid-write — decodes
//! to a prefix of the frames that were appended, never to a corrupt payload,
//! because a cut frame fails either the length bound or the checksum.

use std::fs::File;
use std::io::{self, Read, Write};
use std::path::Path;

/// Upper bound on a single frame payload. A length prefix beyond this is
/// treated as corruption rather than an allocation request.
pub const MAX_FRAME_BYTES: u32 = 256 * 1024 * 1024;

const FRAME_HEADER_BYTES: usize = 8;

const fn build_crc_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static CRC_TABLE: [u32; 256] = build_crc_table();

/// CRC-32 (IEEE 802.3 polynomial), the checksum guarding every frame.
pub fn crc32(data: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &byte in data {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ byte as u32) & 0xFF) as usize];
    }
    !crc
}

/// Appends one frame (header + payload) to `out`; returns the bytes written.
pub fn write_frame(out: &mut File, payload: &[u8]) -> io::Result<u64> {
    debug_assert!(payload.len() as u64 <= MAX_FRAME_BYTES as u64);
    let mut header = [0u8; FRAME_HEADER_BYTES];
    header[..4].copy_from_slice(&(payload.len() as u32).to_le_bytes());
    header[4..].copy_from_slice(&crc32(payload).to_le_bytes());
    out.write_all(&header)?;
    out.write_all(payload)?;
    Ok((FRAME_HEADER_BYTES + payload.len()) as u64)
}

/// Writes the 8-byte magic header that starts every framed file.
pub fn write_magic(out: &mut File, magic: &[u8; 8]) -> io::Result<u64> {
    out.write_all(magic)?;
    Ok(magic.len() as u64)
}

/// The outcome of scanning one framed file.
#[derive(Debug)]
pub struct FileScan {
    /// Every payload whose frame was intact, in file order.
    pub payloads: Vec<Vec<u8>>,
    /// Offset just past the last intact frame (or past the magic header if no
    /// frame survived). Truncating the file here removes the torn tail.
    pub valid_len: u64,
    /// Total file length as read.
    pub file_len: u64,
}

impl FileScan {
    /// Whether the file ended in a torn (incomplete or checksum-failing) frame.
    pub fn torn(&self) -> bool {
        self.valid_len < self.file_len
    }
}

/// Reads a framed file and splits it into intact payloads plus a torn tail.
///
/// Never fails on truncation: a file cut at any byte offset yields the frames
/// before the cut. A magic header that *mismatches* (rather than being a cut
/// prefix) is a different file format and reports `InvalidData`.
pub fn scan_file(path: &Path, magic: &[u8; 8]) -> io::Result<FileScan> {
    let mut bytes = Vec::new();
    File::open(path)?.read_to_end(&mut bytes)?;
    let file_len = bytes.len() as u64;

    if bytes.len() < magic.len() {
        if !magic.starts_with(&bytes) {
            return Err(io::Error::new(
                io::ErrorKind::InvalidData,
                format!("{}: not a framed file (bad magic)", path.display()),
            ));
        }
        // Torn inside the header: nothing recoverable, whole file is tail.
        return Ok(FileScan {
            payloads: Vec::new(),
            valid_len: 0,
            file_len,
        });
    }
    if bytes[..magic.len()] != magic[..] {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("{}: not a framed file (bad magic)", path.display()),
        ));
    }

    let mut payloads = Vec::new();
    let mut offset = magic.len();
    let mut valid_len = offset as u64;
    while offset < bytes.len() {
        let Some(header) = bytes.get(offset..offset + FRAME_HEADER_BYTES) else {
            break; // torn inside a frame header
        };
        let len = u32::from_le_bytes(header[..4].try_into().unwrap());
        let crc = u32::from_le_bytes(header[4..].try_into().unwrap());
        if len > MAX_FRAME_BYTES {
            break; // implausible length: treat as torn/corrupt tail
        }
        let start = offset + FRAME_HEADER_BYTES;
        let Some(payload) = bytes.get(start..start + len as usize) else {
            break; // torn inside the payload
        };
        if crc32(payload) != crc {
            break; // checksum failure: torn or corrupt tail
        }
        payloads.push(payload.to_vec());
        offset = start + len as usize;
        valid_len = offset as u64;
    }

    Ok(FileScan {
        payloads,
        valid_len,
        file_len,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use std::fs;

    const MAGIC: &[u8; 8] = b"DEFCTST1";

    fn temp_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("defcon-frame-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("framed.bin")
    }

    #[test]
    fn crc32_matches_known_vectors() {
        // Standard IEEE CRC-32 check values.
        assert_eq!(crc32(b""), 0);
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn frames_round_trip() {
        let path = temp_path("roundtrip");
        let mut file = File::create(&path).unwrap();
        write_magic(&mut file, MAGIC).unwrap();
        for payload in [b"alpha".as_slice(), b"".as_slice(), b"gamma!".as_slice()] {
            write_frame(&mut file, payload).unwrap();
        }
        drop(file);
        let scan = scan_file(&path, MAGIC).unwrap();
        assert!(!scan.torn());
        assert_eq!(
            scan.payloads,
            vec![b"alpha".to_vec(), vec![], b"gamma!".to_vec()]
        );
        assert_eq!(scan.valid_len, scan.file_len);
    }

    #[test]
    fn truncation_at_every_offset_yields_a_clean_prefix() {
        let path = temp_path("torn");
        let mut file = File::create(&path).unwrap();
        write_magic(&mut file, MAGIC).unwrap();
        let payloads = [
            b"first-frame".as_slice(),
            b"second".as_slice(),
            b"third-x".as_slice(),
        ];
        let mut boundaries = vec![MAGIC.len() as u64];
        for payload in payloads {
            let written = write_frame(&mut file, payload).unwrap();
            boundaries.push(boundaries.last().unwrap() + written);
        }
        drop(file);
        let full = fs::read(&path).unwrap();

        for cut in 0..=full.len() {
            fs::write(&path, &full[..cut]).unwrap();
            let scan = scan_file(&path, MAGIC).unwrap();
            // Intact frames are exactly those whose end lies at or before the cut.
            let expect = boundaries[1..]
                .iter()
                .filter(|end| **end <= cut as u64)
                .count();
            assert_eq!(scan.payloads.len(), expect, "cut at {cut}");
            for (i, payload) in scan.payloads.iter().enumerate() {
                assert_eq!(payload.as_slice(), payloads[i], "cut at {cut}");
            }
            let clean = cut == 0 || (cut as u64) == boundaries[expect];
            assert_eq!(scan.torn(), !clean, "cut at {cut}");
        }
    }

    #[test]
    fn corrupt_byte_is_detected() {
        let path = temp_path("corrupt");
        let mut file = File::create(&path).unwrap();
        write_magic(&mut file, MAGIC).unwrap();
        write_frame(&mut file, b"payload-bytes").unwrap();
        drop(file);
        let mut bytes = fs::read(&path).unwrap();
        let last = bytes.len() - 1;
        bytes[last] ^= 0x40;
        fs::write(&path, &bytes).unwrap();
        let scan = scan_file(&path, MAGIC).unwrap();
        assert!(scan.payloads.is_empty());
        assert!(scan.torn());
    }

    #[test]
    fn wrong_magic_is_an_error() {
        let path = temp_path("magic");
        fs::write(&path, b"NOTAFMT0rest").unwrap();
        assert!(scan_file(&path, MAGIC).is_err());
    }
}
