//! The segmented write-ahead event log.
//!
//! One frame per externally published batch, mirroring the engine's
//! one-transaction-per-chunk `publish_batch` discipline: the payload is a
//! [`WalRecord`](defcon_events::codec::WalRecord) — publisher unit, output
//! label, batch arrival timestamp and the batch's events with their identities.
//! Cascade publications (events a unit emits while processing) are *not*
//! logged: dispatch regenerates them deterministically when the log is
//! replayed, so logging them would double-deliver.
//!
//! The log is a directory of `wal-NNNNNNNN.seg` files. A writer always starts
//! a fresh segment (it never appends to a file that may have a torn tail) and
//! rotates when the current segment exceeds the configured size. Recovery
//! scans segments in order, truncates a torn tail at the last valid frame and
//! returns the surviving records.

use std::fs::{self, File, OpenOptions};
use std::io;
use std::path::{Path, PathBuf};
use std::time::{Duration, Instant};

use defcon_events::codec::{decode_wal_record, encode_wal_record, WalRecord};

use crate::frame;

const SEGMENT_MAGIC: &[u8; 8] = b"DEFCWAL1";

/// When, relative to the batched append path, the log file is flushed to disk.
///
/// This is the durability/throughput dial: `Never` leaves flushing to the OS
/// (fast, loses the page-cache tail on power failure), `EveryBatch` makes each
/// acknowledged publish durable (one `fdatasync` per batch — the cost the
/// batched path amortises over the batch), `IntervalMs` bounds the loss window
/// by time instead.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum FsyncPolicy {
    /// Never fsync; rely on the OS to write back dirty pages.
    Never,
    /// Fsync once per appended batch, before the publish is acknowledged.
    EveryBatch,
    /// Fsync at most once per interval, piggybacked on appends.
    IntervalMs(u64),
}

/// Configuration for the write-ahead log, handed to `EngineBuilder::wal`.
#[derive(Debug, Clone)]
pub struct WalConfig {
    /// Directory holding the log segments (created if absent).
    pub dir: PathBuf,
    /// Flush policy; defaults to [`FsyncPolicy::EveryBatch`].
    pub fsync: FsyncPolicy,
    /// Segment rotation threshold in bytes; defaults to 64 MiB.
    pub segment_bytes: u64,
}

impl WalConfig {
    /// A log in `dir` with `EveryBatch` fsync and 64 MiB segments.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        WalConfig {
            dir: dir.into(),
            fsync: FsyncPolicy::EveryBatch,
            segment_bytes: 64 * 1024 * 1024,
        }
    }

    /// Sets the fsync policy.
    pub fn fsync(mut self, policy: FsyncPolicy) -> Self {
        self.fsync = policy;
        self
    }

    /// Sets the segment rotation threshold.
    pub fn segment_bytes(mut self, bytes: u64) -> Self {
        self.segment_bytes = bytes.max(1);
        self
    }
}

fn segment_path(dir: &Path, index: u64) -> PathBuf {
    dir.join(format!("wal-{index:08}.seg"))
}

/// Lists existing segment files in `dir`, sorted by index.
fn list_segments(dir: &Path) -> io::Result<Vec<(u64, PathBuf)>> {
    let mut segments = Vec::new();
    for entry in fs::read_dir(dir)? {
        let entry = entry?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        let Some(index) = name
            .strip_prefix("wal-")
            .and_then(|rest| rest.strip_suffix(".seg"))
            .and_then(|digits| digits.parse::<u64>().ok())
        else {
            continue;
        };
        segments.push((index, entry.path()));
    }
    segments.sort_unstable_by_key(|(index, _)| *index);
    Ok(segments)
}

/// The appender side of the log, held by the engine behind a mutex and driven
/// from the publish path.
#[derive(Debug)]
pub struct WalWriter {
    config: WalConfig,
    file: File,
    segment_index: u64,
    segment_len: u64,
    last_sync: Instant,
    records_appended: u64,
}

impl WalWriter {
    /// Opens the log for appending: creates the directory if needed and starts
    /// a fresh segment after any existing ones (never appends to a file whose
    /// tail might be torn).
    pub fn open(config: WalConfig) -> io::Result<Self> {
        fs::create_dir_all(&config.dir)?;
        let next_index = list_segments(&config.dir)?
            .last()
            .map(|(index, _)| index + 1)
            .unwrap_or(0);
        let (file, segment_len) = Self::new_segment(&config.dir, next_index)?;
        Ok(WalWriter {
            config,
            file,
            segment_index: next_index,
            segment_len,
            last_sync: Instant::now(),
            records_appended: 0,
        })
    }

    fn new_segment(dir: &Path, index: u64) -> io::Result<(File, u64)> {
        let mut file = OpenOptions::new()
            .create_new(true)
            .write(true)
            .open(segment_path(dir, index))?;
        let len = frame::write_magic(&mut file, SEGMENT_MAGIC)?;
        Ok((file, len))
    }

    /// Appends one publish batch as a single frame, rotating and flushing
    /// according to the configuration. Returns only after the bytes are handed
    /// to the OS (and, under `EveryBatch`, after they are on disk) — the
    /// write-ahead contract the engine relies on before enqueueing.
    pub fn append(&mut self, record: &WalRecord) -> io::Result<()> {
        if self.segment_len >= self.config.segment_bytes {
            self.rotate()?;
        }
        let payload = encode_wal_record(record);
        self.segment_len += frame::write_frame(&mut self.file, &payload)?;
        self.records_appended += 1;
        match self.config.fsync {
            FsyncPolicy::Never => {}
            FsyncPolicy::EveryBatch => self.sync()?,
            FsyncPolicy::IntervalMs(ms) => {
                if self.last_sync.elapsed() >= Duration::from_millis(ms) {
                    self.sync()?;
                }
            }
        }
        Ok(())
    }

    fn rotate(&mut self) -> io::Result<()> {
        // Make the finished segment durable before moving on, regardless of
        // policy: a rotation is a natural (and rare) durability point.
        self.file.sync_data()?;
        self.segment_index += 1;
        let (file, len) = Self::new_segment(&self.config.dir, self.segment_index)?;
        self.file = file;
        self.segment_len = len;
        Ok(())
    }

    /// Forces the current segment to disk.
    pub fn sync(&mut self) -> io::Result<()> {
        self.file.sync_data()?;
        self.last_sync = Instant::now();
        Ok(())
    }

    /// Number of batches appended through this writer.
    pub fn records_appended(&self) -> u64 {
        self.records_appended
    }
}

/// What a recovery scan found (and repaired) in a log directory.
#[derive(Debug, Default)]
pub struct WalScan {
    /// Surviving records in append order, event identities preserved.
    pub records: Vec<WalRecord>,
    /// Number of segment files scanned.
    pub segments: u64,
    /// Whether a torn tail was found and truncated away.
    pub torn_tail_truncated: bool,
    /// Bytes removed by the truncation.
    pub truncated_bytes: u64,
}

impl WalScan {
    /// Total events across all surviving records.
    pub fn event_count(&self) -> u64 {
        self.records.iter().map(|r| r.events.len() as u64).sum()
    }
}

/// Scans a log directory, truncates a torn tail in the final segment at the
/// last valid frame, and returns the surviving records in append order.
///
/// Appends are strictly sequential across segments, so only the final segment
/// can legitimately end mid-frame; a CRC-valid frame that fails to decode, or
/// a broken frame in a non-final segment, indicates corruption beyond a torn
/// write and reports `InvalidData` instead of silently dropping records.
pub fn recover(dir: &Path) -> io::Result<WalScan> {
    if !dir.exists() {
        return Ok(WalScan::default());
    }
    let segments = list_segments(dir)?;
    let mut scan = WalScan {
        segments: segments.len() as u64,
        ..WalScan::default()
    };
    let last = segments.len().saturating_sub(1);
    for (position, (_, path)) in segments.iter().enumerate() {
        let file_scan = frame::scan_file(path, SEGMENT_MAGIC)?;
        if file_scan.torn() {
            if position != last {
                return Err(io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!(
                        "{}: broken frame in non-final segment — corruption beyond a torn tail",
                        path.display()
                    ),
                ));
            }
            scan.torn_tail_truncated = true;
            scan.truncated_bytes = file_scan.file_len - file_scan.valid_len;
            OpenOptions::new()
                .write(true)
                .open(path)?
                .set_len(file_scan.valid_len)?;
        }
        for payload in &file_scan.payloads {
            let record = decode_wal_record(payload).map_err(|err| {
                io::Error::new(
                    io::ErrorKind::InvalidData,
                    format!("{}: undecodable wal record: {err}", path.display()),
                )
            })?;
            scan.records.push(record);
        }
    }
    Ok(scan)
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_defc::Label;
    use defcon_events::{Event, EventBuilder, Value};

    fn temp_dir(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("defcon-wal-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        dir
    }

    fn event(seq: i64) -> Event {
        EventBuilder::new()
            .part("type", Label::public(), Value::str("tick"))
            .part("seq", Label::public(), Value::Int(seq))
            .build()
            .unwrap()
    }

    fn record(unit: u64, seqs: &[i64]) -> WalRecord {
        WalRecord {
            publisher_unit: unit,
            output_label: Label::public(),
            arrival_ns: 42,
            events: seqs.iter().map(|s| event(*s)).collect(),
        }
    }

    #[test]
    fn append_then_recover_round_trips_batches() {
        let dir = temp_dir("roundtrip");
        let mut writer = WalWriter::open(WalConfig::new(&dir)).unwrap();
        writer.append(&record(1, &[1, 2, 3])).unwrap();
        writer.append(&record(2, &[4])).unwrap();
        assert_eq!(writer.records_appended(), 2);
        drop(writer);

        let scan = recover(&dir).unwrap();
        assert_eq!(scan.records.len(), 2);
        assert_eq!(scan.event_count(), 4);
        assert!(!scan.torn_tail_truncated);
        assert_eq!(scan.records[0].publisher_unit, 1);
        assert_eq!(scan.records[0].events.len(), 3);
        assert_eq!(scan.records[1].publisher_unit, 2);
    }

    #[test]
    fn rotation_splits_segments_and_recovery_reads_all() {
        let dir = temp_dir("rotate");
        let config = WalConfig::new(&dir)
            .fsync(FsyncPolicy::Never)
            .segment_bytes(64); // force rotation on nearly every batch
        let mut writer = WalWriter::open(config).unwrap();
        for seq in 0..10 {
            writer.append(&record(1, &[seq])).unwrap();
        }
        drop(writer);

        assert!(list_segments(&dir).unwrap().len() > 1, "rotation happened");
        let scan = recover(&dir).unwrap();
        assert_eq!(scan.records.len(), 10);
        for (i, rec) in scan.records.iter().enumerate() {
            let part = rec.events[0].first_part("seq").unwrap();
            assert!(part.data().structurally_equals(&Value::Int(i as i64)));
        }
    }

    #[test]
    fn reopen_starts_a_fresh_segment_and_keeps_history() {
        let dir = temp_dir("reopen");
        let mut writer = WalWriter::open(WalConfig::new(&dir)).unwrap();
        writer.append(&record(1, &[1])).unwrap();
        drop(writer);
        let mut writer = WalWriter::open(WalConfig::new(&dir)).unwrap();
        writer.append(&record(1, &[2])).unwrap();
        drop(writer);

        assert_eq!(list_segments(&dir).unwrap().len(), 2);
        let scan = recover(&dir).unwrap();
        assert_eq!(scan.records.len(), 2);
    }

    #[test]
    fn torn_tail_is_truncated_and_prefix_survives() {
        let dir = temp_dir("torn");
        let mut writer = WalWriter::open(WalConfig::new(&dir).fsync(FsyncPolicy::Never)).unwrap();
        writer.append(&record(1, &[1])).unwrap();
        writer.append(&record(1, &[2])).unwrap();
        drop(writer);

        let (_, path) = list_segments(&dir).unwrap().pop().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 3]).unwrap();

        let scan = recover(&dir).unwrap();
        assert_eq!(scan.records.len(), 1, "only the intact prefix survives");
        assert!(scan.torn_tail_truncated);
        assert!(scan.truncated_bytes > 0);

        // After truncation the log is clean: a second recovery sees no tear,
        // and a reopened writer can append past it.
        let scan = recover(&dir).unwrap();
        assert_eq!(scan.records.len(), 1);
        assert!(!scan.torn_tail_truncated);
        let mut writer = WalWriter::open(WalConfig::new(&dir)).unwrap();
        writer.append(&record(1, &[3])).unwrap();
        drop(writer);
        assert_eq!(recover(&dir).unwrap().records.len(), 2);
    }

    #[test]
    fn missing_directory_recovers_empty() {
        let dir = temp_dir("missing");
        let scan = recover(&dir).unwrap();
        assert!(scan.records.is_empty());
        assert_eq!(scan.segments, 0);
    }

    #[test]
    fn recovered_events_keep_their_identity() {
        let dir = temp_dir("identity");
        let original = event(7);
        let mut writer = WalWriter::open(WalConfig::new(&dir)).unwrap();
        writer
            .append(&WalRecord {
                publisher_unit: 9,
                output_label: Label::public(),
                arrival_ns: 1,
                events: vec![original.clone()],
            })
            .unwrap();
        drop(writer);

        let scan = recover(&dir).unwrap();
        assert_eq!(scan.records[0].events[0].id(), original.id());
        // Fresh events minted after recovery never collide with recovered ids.
        assert!(event(0).id().as_u64() > original.id().as_u64());
    }
}
