//! Durability spine for the DEFCon engine: a write-ahead event log and a
//! recorded arrival-trace format.
//!
//! The DEFCon paper's engine processes events entirely in memory; a production
//! deployment of its trading platform cannot lose accepted orders on a crash.
//! This crate adds the two mechanisms that make the in-memory design
//! recoverable and auditable without touching the dispatch hot path's sharing
//! semantics:
//!
//! * [`wal`] — a segmented, CRC32-framed append-only log of externally
//!   published batches. Appends piggyback on the engine's
//!   one-transaction-per-chunk `publish_batch` path: one frame per batch, one
//!   optional fsync per batch (policy [`FsyncPolicy`]). Recovery scans the
//!   segments, truncates a torn tail at the last valid frame and re-feeds the
//!   surviving records through normal dispatch.
//! * [`trace`] — a recorded arrival trace: the exact burst/batch structure a
//!   workload scenario published, captured *before* label raising and id
//!   assignment. Replaying a trace re-feeds it byte-for-byte — same batch
//!   boundaries, same inter-burst schedule — so two runs of the same binary
//!   produce identical delivery sequences.
//!
//! Both formats share one frame discipline ([`frame`]): a little-endian
//! `len: u32` + `crc32: u32` header per payload, with a magic-prefixed file
//! header, so a partially flushed tail is always detectable.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod frame;
pub mod trace;
pub mod wal;

pub use frame::crc32;
pub use trace::{Trace, TraceBurst, TraceWriter};
pub use wal::{recover, FsyncPolicy, WalConfig, WalScan, WalWriter};

// The record type lives in the events crate (the codec owns its wire format);
// re-exported here so durability users see one coherent API.
pub use defcon_events::codec::WalRecord;
