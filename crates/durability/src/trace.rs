//! Recorded arrival traces for deterministic replay.
//!
//! A trace captures what a workload *asked* the engine to do — the burst and
//! batch structure handed to `publish_batch`, with each draft's parts exactly
//! as built, before label raising, id assignment or timestamping. Replaying a
//! trace therefore exercises the full publish path byte-for-byte: same batch
//! boundaries, same inter-burst schedule, same part payloads. Two replays of
//! the same trace through the same binary produce identical dispatched and
//! delivered counts, which is what makes A/B benching of hot-path changes
//! noise-free.
//!
//! The file is a single [`frame`](crate::frame)-disciplined stream: a meta
//! frame (lane count) followed by one frame per burst.

use std::fs::File;
use std::io;
use std::path::Path;

use bytes::{BufMut, BytesMut};
use defcon_events::codec::{decode_parts, encode_parts};
use defcon_events::Part;

use crate::frame;

const TRACE_MAGIC: &[u8; 8] = b"DEFCTRC1";

/// One recorded burst: the drafts published as one batch, and the pause the
/// scenario slept *before* publishing it.
#[derive(Debug, Clone, Default)]
pub struct TraceBurst {
    /// Inter-burst schedule: nanoseconds slept before this burst.
    pub pause_ns: u64,
    /// Each draft's parts, in publish order.
    pub drafts: Vec<Vec<Part>>,
}

fn encode_burst(burst: &TraceBurst) -> Vec<u8> {
    let mut buf = BytesMut::with_capacity(64);
    buf.put_u64_le(burst.pause_ns);
    buf.put_u32_le(burst.drafts.len() as u32);
    for draft in &burst.drafts {
        let parts = encode_parts(draft);
        buf.put_u32_le(parts.len() as u32);
        buf.put_slice(&parts);
    }
    buf.to_vec()
}

fn invalid(msg: impl Into<String>) -> io::Error {
    io::Error::new(io::ErrorKind::InvalidData, msg.into())
}

fn decode_burst(mut payload: &[u8]) -> io::Result<TraceBurst> {
    let take_u32 = |buf: &mut &[u8]| -> io::Result<u32> {
        let Some(head) = buf.get(..4) else {
            return Err(invalid("trace burst: unexpected end of input"));
        };
        let value = u32::from_le_bytes(head.try_into().unwrap());
        *buf = &buf[4..];
        Ok(value)
    };
    let Some(head) = payload.get(..8) else {
        return Err(invalid("trace burst: unexpected end of input"));
    };
    let pause_ns = u64::from_le_bytes(head.try_into().unwrap());
    payload = &payload[8..];
    let draft_count = take_u32(&mut payload)? as usize;
    let mut drafts = Vec::with_capacity(draft_count.min(65_536));
    for _ in 0..draft_count {
        let len = take_u32(&mut payload)? as usize;
        let Some(bytes) = payload.get(..len) else {
            return Err(invalid("trace burst: draft overruns frame"));
        };
        payload = &payload[len..];
        let parts = decode_parts(bytes).map_err(|err| invalid(format!("trace draft: {err}")))?;
        drafts.push(parts);
    }
    if !payload.is_empty() {
        return Err(invalid("trace burst: trailing bytes"));
    }
    Ok(TraceBurst { pause_ns, drafts })
}

/// Streams bursts into a trace file as a scenario runs.
#[derive(Debug)]
pub struct TraceWriter {
    file: File,
    bursts: u64,
}

impl TraceWriter {
    /// Creates (truncating) a trace file and writes the meta frame.
    pub fn create(path: &Path, lane_count: usize) -> io::Result<Self> {
        let mut file = File::create(path)?;
        frame::write_magic(&mut file, TRACE_MAGIC)?;
        let mut meta = BytesMut::with_capacity(4);
        meta.put_u32_le(lane_count as u32);
        frame::write_frame(&mut file, &meta)?;
        Ok(TraceWriter { file, bursts: 0 })
    }

    /// Appends one burst.
    pub fn append(&mut self, burst: &TraceBurst) -> io::Result<()> {
        frame::write_frame(&mut self.file, &encode_burst(burst))?;
        self.bursts += 1;
        Ok(())
    }

    /// Number of bursts written so far.
    pub fn bursts(&self) -> u64 {
        self.bursts
    }

    /// Flushes the trace to disk. Dropping without `finish` leaves durability
    /// to the OS.
    pub fn finish(self) -> io::Result<()> {
        self.file.sync_data()
    }
}

/// A fully loaded trace, ready to be replayed.
#[derive(Debug, Clone)]
pub struct Trace {
    /// Lane count recorded by the capturing scenario (sink topology).
    pub lane_count: usize,
    /// The bursts, in recorded order.
    pub bursts: Vec<TraceBurst>,
}

impl Trace {
    /// Loads a trace file. Unlike the write-ahead log, a trace is only useful
    /// complete: a torn tail (recording crashed mid-burst) is an error, not
    /// something to silently truncate.
    pub fn load(path: &Path) -> io::Result<Trace> {
        let scan = frame::scan_file(path, TRACE_MAGIC)?;
        if scan.torn() {
            return Err(invalid(format!(
                "{}: trace has a torn tail — incomplete recording",
                path.display()
            )));
        }
        let Some((meta, bursts)) = scan.payloads.split_first() else {
            return Err(invalid(format!(
                "{}: trace has no meta frame",
                path.display()
            )));
        };
        if meta.len() != 4 {
            return Err(invalid(format!("{}: malformed meta frame", path.display())));
        }
        let lane_count = u32::from_le_bytes(meta.as_slice().try_into().unwrap()) as usize;
        let bursts = bursts
            .iter()
            .map(|payload| decode_burst(payload))
            .collect::<io::Result<Vec<_>>>()?;
        Ok(Trace { lane_count, bursts })
    }

    /// Total drafts across all bursts — the events a replay will publish.
    pub fn total_events(&self) -> u64 {
        self.bursts.iter().map(|b| b.drafts.len() as u64).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_defc::Label;
    use defcon_events::Value;
    use std::fs;
    use std::path::PathBuf;

    fn temp_path(name: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("defcon-trace-{}-{name}", std::process::id()));
        let _ = fs::remove_dir_all(&dir);
        fs::create_dir_all(&dir).unwrap();
        dir.join("trace.bin")
    }

    fn draft(lane: usize, seq: i64) -> Vec<Part> {
        vec![
            Part::new(format!("lane-{lane}"), Label::public(), Value::str("tick")),
            Part::new("seq", Label::public(), Value::Int(seq)),
        ]
    }

    #[test]
    fn record_then_load_round_trips_bursts() {
        let path = temp_path("roundtrip");
        let mut writer = TraceWriter::create(&path, 3).unwrap();
        writer
            .append(&TraceBurst {
                pause_ns: 1_000,
                drafts: vec![draft(0, 1), draft(1, 2)],
            })
            .unwrap();
        writer
            .append(&TraceBurst {
                pause_ns: 0,
                drafts: vec![draft(2, 3)],
            })
            .unwrap();
        assert_eq!(writer.bursts(), 2);
        writer.finish().unwrap();

        let trace = Trace::load(&path).unwrap();
        assert_eq!(trace.lane_count, 3);
        assert_eq!(trace.bursts.len(), 2);
        assert_eq!(trace.total_events(), 3);
        assert_eq!(trace.bursts[0].pause_ns, 1_000);
        assert_eq!(trace.bursts[0].drafts.len(), 2);
        let part = &trace.bursts[1].drafts[0][1];
        assert!(part.data().structurally_equals(&Value::Int(3)));
    }

    #[test]
    fn torn_trace_is_rejected() {
        let path = temp_path("torn");
        let mut writer = TraceWriter::create(&path, 1).unwrap();
        writer
            .append(&TraceBurst {
                pause_ns: 0,
                drafts: vec![draft(0, 1)],
            })
            .unwrap();
        writer.finish().unwrap();
        let bytes = fs::read(&path).unwrap();
        fs::write(&path, &bytes[..bytes.len() - 2]).unwrap();
        assert!(Trace::load(&path).is_err());
    }

    #[test]
    fn empty_trace_round_trips() {
        let path = temp_path("empty");
        TraceWriter::create(&path, 2).unwrap().finish().unwrap();
        let trace = Trace::load(&path).unwrap();
        assert_eq!(trace.lane_count, 2);
        assert!(trace.bursts.is_empty());
        assert_eq!(trace.total_events(), 0);
    }
}
