//! Torn-write property: truncating a log segment at *every* byte offset must
//! leave recovery panic-free, yielding a clean prefix of the appended batches
//! and never a corrupt event.

use std::fs;
use std::path::PathBuf;

use defcon_defc::Label;
use defcon_durability::{recover, FsyncPolicy, WalConfig, WalRecord, WalWriter};
use defcon_events::{Event, EventBuilder, Value};

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("defcon-torn-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

fn event(seq: i64) -> Event {
    EventBuilder::new()
        .part("type", Label::public(), Value::str("order"))
        .part("seq", Label::public(), Value::Int(seq))
        .part("qty", Label::public(), Value::Float(seq as f64 * 1.5))
        .build()
        .unwrap()
}

#[test]
fn recovery_survives_truncation_at_every_byte_offset() {
    // Build a reference log of several batches in one segment.
    let source = temp_dir("source");
    let mut writer = WalWriter::open(WalConfig::new(&source).fsync(FsyncPolicy::Never)).unwrap();
    let mut batch_ids: Vec<Vec<u64>> = Vec::new();
    for batch in 0..4i64 {
        let events: Vec<Event> = (0..3).map(|i| event(batch * 3 + i)).collect();
        batch_ids.push(events.iter().map(|e| e.id().as_u64()).collect());
        writer
            .append(&WalRecord {
                publisher_unit: 1,
                output_label: Label::public(),
                arrival_ns: batch as u64,
                events,
            })
            .unwrap();
    }
    drop(writer);

    let segments: Vec<_> = fs::read_dir(&source)
        .unwrap()
        .map(|e| e.unwrap().path())
        .collect();
    assert_eq!(segments.len(), 1, "test expects a single segment");
    let full = fs::read(&segments[0]).unwrap();
    let segment_name = segments[0].file_name().unwrap().to_owned();

    let scratch = temp_dir("scratch");
    fs::create_dir_all(&scratch).unwrap();
    let scratch_segment = scratch.join(segment_name);

    let mut prefix_counts = vec![0usize; full.len() + 1];
    for cut in 0..=full.len() {
        fs::write(&scratch_segment, &full[..cut]).unwrap();

        // Recovery must never panic and must yield a clean prefix of batches.
        let scan = recover(&scratch).unwrap();
        assert!(
            scan.records.len() <= batch_ids.len(),
            "cut at {cut}: more records than were written"
        );
        for (i, record) in scan.records.iter().enumerate() {
            assert_eq!(record.publisher_unit, 1, "cut at {cut}");
            assert_eq!(record.arrival_ns, i as u64, "cut at {cut}");
            let ids: Vec<u64> = record.events.iter().map(|e| e.id().as_u64()).collect();
            assert_eq!(ids, batch_ids[i], "cut at {cut}: batch {i} ids");
            for (j, ev) in record.events.iter().enumerate() {
                let seq = (i * 3 + j) as i64;
                assert!(
                    ev.first_part("seq")
                        .unwrap()
                        .data()
                        .structurally_equals(&Value::Int(seq)),
                    "cut at {cut}: corrupt event payload"
                );
            }
        }
        prefix_counts[cut] = scan.records.len();

        // The truncation repaired the tail: scanning again finds a clean log
        // with the same surviving prefix.
        let rescan = recover(&scratch).unwrap();
        assert!(!rescan.torn_tail_truncated, "cut at {cut}");
        assert_eq!(rescan.records.len(), scan.records.len(), "cut at {cut}");
    }

    // Sanity on the sweep itself: recovery is monotone in the cut offset and
    // the untouched file yields every batch.
    assert!(prefix_counts.windows(2).all(|w| w[0] <= w[1]));
    assert_eq!(prefix_counts[full.len()], batch_ids.len());
    assert_eq!(prefix_counts[0], 0);
}
