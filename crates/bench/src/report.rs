//! Machine-readable benchmark reports.
//!
//! Every bench binary writes its results as a `BENCH_*.json` file so that CI
//! can archive them as artifacts and diff them across commits: a perf claim
//! that is not a recorded data point cannot be regression-tested. The schema is
//! deliberately flat — one [`BenchRecord`] per measured configuration, with the
//! quantities the paper's figures (and our dispatch micro-bench) care about:
//! throughput, latency percentiles, worker count, batch size — plus the git SHA
//! of the build so a stored report is attributable to a commit.
//!
//! Serialisation is a small hand-rolled JSON emitter: the vendored `serde` is
//! an API shim without real serialisation machinery (the build environment has
//! no registry access), and the schema is flat enough that emitting it directly
//! is simpler than growing the shim.

use std::io::Write as _;
use std::path::Path;

use defcon_baseline::BaselineReport;
use defcon_metrics::LatencySummary;
use defcon_trading::PlatformReport;

/// Version tag embedded in every report; bump on breaking schema changes.
pub const SCHEMA: &str = "defcon-bench-report/v1";

/// One measured configuration — one row of a figure, or one cell of the
/// dispatch micro-bench grid.
#[derive(Debug, Clone, PartialEq)]
pub struct BenchRecord {
    /// Which measurement produced the record (`"fig5"`, `"dispatch"`, ...).
    pub name: String,
    /// Security mode label (`"labels+freeze"`, ...) or `"baseline"`.
    pub mode: String,
    /// Dispatcher worker threads (0 = driver-pumped). For an elastic run this
    /// is the band's upper edge (the spawned thread count); the band itself is
    /// in `workers_band` and the observed count in `workers_high_water`.
    pub workers: usize,
    /// The configured elastic worker band as `"min..max"`, or empty for fixed
    /// pools and manual runs. The regression gate matches elastic cells on
    /// this band — the run's *configuration* — never on the instantaneous
    /// worker count, which is load-dependent by design.
    pub workers_band: String,
    /// Highest concurrently active worker count the run observed (equals
    /// `workers` for fixed pools; meaningful for elastic bands).
    pub workers_high_water: usize,
    /// Dispatch/publish batch size.
    pub batch_size: usize,
    /// Deployment scale: traders for the platform figures, subscriber units
    /// for micro-benches.
    pub traders: usize,
    /// Events processed during the measurement.
    pub events: u64,
    /// Throughput in events per second.
    pub throughput_eps: f64,
    /// Median latency, ms (0 when the measurement has no latency axis).
    pub latency_p50_ms: f64,
    /// 70th-percentile latency, ms (the paper's headline percentile).
    pub latency_p70_ms: f64,
    /// 99th-percentile latency, ms.
    pub latency_p99_ms: f64,
    /// Occupied memory in MiB (0 when not measured).
    pub memory_mib: f64,
    /// `true` when the cell replayed a recorded arrival trace instead of
    /// generating its workload. The regression gate keys on this, so replay
    /// cells only ever compare against replay baselines — a trace's arrival
    /// shape is not comparable with a generator's.
    pub replay: bool,
    /// The full-queue admission policy the cell ran under (`"block"`,
    /// `"shed-newest"`, `"shed-oldest"`), or empty for cells that publish on
    /// the direct unbounded path. The regression gate keys on this too:
    /// a shedding cell's throughput is not comparable with a blocking one's.
    pub policy: String,
    /// The dispatcher scheduler the cell ran under (`"v3"` for the stealing
    /// scheduler, `"v2"` for the shared-queue baseline), or empty for legacy
    /// records and cells where the scheduler cannot matter (manual pumping,
    /// baselines). The regression gate keys on this as well: the two
    /// schedulers are deliberately different dispatch strategies, so their
    /// cells must never cross-match.
    pub scheduler: String,
    /// The subscription matcher the cell ran under (`"on"` for the inverted
    /// subscription index, `"off"` for the linear scan), or empty for legacy
    /// records and cells where planning cost cannot matter. Gate-keyed like
    /// `scheduler`: the two matchers have deliberately different planning
    /// complexity, so their cells must never cross-match.
    pub index: String,
}

impl BenchRecord {
    /// Builds a record from a DEFCon trading-platform run. The platform row
    /// carries both the configured band and the observed worker high-water
    /// mark; both flow into the record.
    pub fn from_platform(name: &str, report: &PlatformReport) -> Self {
        BenchRecord {
            name: name.to_string(),
            mode: report.mode.figure_label().to_string(),
            workers: report.workers,
            workers_band: if report.workers_min < report.workers {
                format!("{}..{}", report.workers_min, report.workers)
            } else {
                String::new()
            },
            workers_high_water: report.workers_high_water,
            batch_size: report.batch_size,
            traders: report.traders,
            events: report.ticks,
            throughput_eps: report.throughput_eps,
            latency_p50_ms: report.latency_p50_ms,
            latency_p70_ms: report.latency_p70_ms,
            latency_p99_ms: report.latency_p99_ms,
            memory_mib: report.memory_mib,
            replay: false,
            policy: String::new(),
            scheduler: String::new(),
            index: String::new(),
        }
    }

    /// Marks the record as a trace replay (see [`BenchRecord::replay`]).
    pub fn as_replay(mut self) -> Self {
        self.replay = true;
        self
    }

    /// Stamps the admission policy the cell ran under (see
    /// [`BenchRecord::policy`]).
    pub fn with_policy(mut self, policy: &str) -> Self {
        self.policy = policy.to_string();
        self
    }

    /// Stamps the dispatcher scheduler the cell ran under (see
    /// [`BenchRecord::scheduler`]).
    pub fn with_scheduler(mut self, scheduler: &str) -> Self {
        self.scheduler = scheduler.to_string();
        self
    }

    /// Stamps the subscription matcher the cell ran under (see
    /// [`BenchRecord::index`]).
    pub fn with_index(mut self, index: &str) -> Self {
        self.index = index.to_string();
        self
    }

    /// Builds a record from a Marketcetera-style baseline run. The baseline
    /// measures p70 only (Figure 9's percentile); the other percentiles are
    /// reported as 0.
    pub fn from_baseline(name: &str, report: &BaselineReport) -> Self {
        BenchRecord {
            name: name.to_string(),
            mode: "baseline".to_string(),
            workers: 0,
            workers_band: String::new(),
            workers_high_water: 0,
            batch_size: 1,
            traders: report.traders,
            events: report.ticks,
            throughput_eps: report.throughput_eps,
            latency_p50_ms: 0.0,
            latency_p70_ms: report.total_p70_ms,
            latency_p99_ms: 0.0,
            memory_mib: report.memory_mib,
            replay: false,
            policy: String::new(),
            scheduler: String::new(),
            index: String::new(),
        }
    }

    /// Builds a micro-bench record from raw counters and a latency summary
    /// (see [`defcon_metrics::LatencyHistogram::summary`]).
    #[allow(clippy::too_many_arguments)]
    pub fn from_summary(
        name: &str,
        mode: &str,
        workers: usize,
        batch_size: usize,
        units: usize,
        events: u64,
        throughput_eps: f64,
        latency: &LatencySummary,
    ) -> Self {
        BenchRecord {
            name: name.to_string(),
            mode: mode.to_string(),
            workers,
            workers_band: String::new(),
            workers_high_water: workers,
            batch_size,
            traders: units,
            events,
            throughput_eps,
            latency_p50_ms: latency.p50_ms,
            latency_p70_ms: latency.p70_ms,
            latency_p99_ms: latency.p99_ms,
            memory_mib: 0.0,
            replay: false,
            policy: String::new(),
            scheduler: String::new(),
            index: String::new(),
        }
    }

    fn to_json(&self) -> String {
        format!(
            "{{\"name\":{},\"mode\":{},\"workers\":{},\"workers_band\":{},\"workers_high_water\":{},\"batch_size\":{},\"traders\":{},\"events\":{},\"throughput_eps\":{},\"latency_p50_ms\":{},\"latency_p70_ms\":{},\"latency_p99_ms\":{},\"memory_mib\":{},\"replay\":{},\"policy\":{},\"scheduler\":{},\"index\":{}}}",
            json_string(&self.name),
            json_string(&self.mode),
            self.workers,
            json_string(&self.workers_band),
            self.workers_high_water,
            self.batch_size,
            self.traders,
            self.events,
            json_number(self.throughput_eps),
            json_number(self.latency_p50_ms),
            json_number(self.latency_p70_ms),
            json_number(self.latency_p99_ms),
            json_number(self.memory_mib),
            self.replay,
            json_string(&self.policy),
            json_string(&self.scheduler),
            json_string(&self.index),
        )
    }
}

/// A full report: what one bench binary writes to its `BENCH_*.json`.
#[derive(Debug, Clone)]
pub struct BenchReport {
    /// The suite this report belongs to (`"figures"`, `"dispatch"`).
    pub suite: String,
    /// Whether the reduced `--quick` sweep was used.
    pub quick: bool,
    /// Git SHA of the working tree (or `"unknown"` outside a checkout).
    pub git_sha: String,
    /// Host hardware fingerprint (CPU count plus a short CPU-model hash,
    /// e.g. `"4cpu-1a2b3c4d"`; see [`host_fingerprint`]). The regression
    /// gate only compares reports with equal fingerprints, so a CI runner
    /// hardware change re-baselines instead of tripping (or
    /// warning-skipping) the gate.
    pub host: String,
    /// Named derived metrics (e.g. the batch-8-over-batch-1 speedup) that do
    /// not belong to a single record.
    pub metrics: Vec<(String, f64)>,
    /// One record per measured configuration.
    pub records: Vec<BenchRecord>,
}

impl BenchReport {
    /// Creates an empty report for `suite`, resolving the git SHA.
    pub fn new(suite: &str, quick: bool) -> Self {
        BenchReport {
            suite: suite.to_string(),
            quick,
            git_sha: current_git_sha(),
            host: host_fingerprint(),
            metrics: Vec::new(),
            records: Vec::new(),
        }
    }

    /// Appends one record.
    pub fn push(&mut self, record: BenchRecord) {
        self.records.push(record);
    }

    /// Records a named derived metric.
    pub fn metric(&mut self, name: &str, value: f64) {
        self.metrics.push((name.to_string(), value));
    }

    /// Serialises the report to its JSON document.
    pub fn to_json(&self) -> String {
        let records: Vec<String> = self.records.iter().map(BenchRecord::to_json).collect();
        let metrics: Vec<String> = self
            .metrics
            .iter()
            .map(|(name, value)| format!("{}:{}", json_string(name), json_number(*value)))
            .collect();
        format!(
            "{{\"schema\":{},\"suite\":{},\"quick\":{},\"git_sha\":{},\"host\":{},\"metrics\":{{{}}},\"records\":[{}]}}\n",
            json_string(SCHEMA),
            json_string(&self.suite),
            self.quick,
            json_string(&self.git_sha),
            json_string(&self.host),
            metrics.join(","),
            records.join(",")
        )
    }

    /// Writes the report to `path`, creating or truncating the file.
    pub fn write(&self, path: &Path) -> std::io::Result<()> {
        let mut file = std::fs::File::create(path)?;
        file.write_all(self.to_json().as_bytes())
    }
}

/// Escapes a string into a JSON string literal (with surrounding quotes).
fn json_string(value: &str) -> String {
    let mut out = String::with_capacity(value.len() + 2);
    out.push('"');
    for c in value.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => out.push_str(&format!("\\u{:04x}", c as u32)),
            c => out.push(c),
        }
    }
    out.push('"');
    out
}

/// Formats a float as a JSON number; non-finite values (which JSON cannot
/// express) become `null`.
fn json_number(value: f64) -> String {
    if value.is_finite() {
        format!("{value}")
    } else {
        "null".to_string()
    }
}

/// The host hardware fingerprint recorded in every report: the CPU count
/// (quota-aware via `available_parallelism`, so a container limited to 2 of
/// 16 cores stamps `2cpu`) plus, where `/proc/cpuinfo` is readable, a short
/// hash of the CPU model string — two runners with the same core count but
/// different CPU SKUs must not be compared as "same hardware", since single-
/// thread performance differences between SKUs exceed the gate's threshold.
pub fn host_fingerprint() -> String {
    let cpus = std::thread::available_parallelism().map_or(0, |n| n.get());
    match cpu_model_hash() {
        Some(model) => format!("{cpus}cpu-{model}"),
        None => format!("{cpus}cpu"),
    }
}

/// An 8-hex-digit FNV-1a hash of the first `model name` line of
/// `/proc/cpuinfo`, or `None` where that is unavailable (non-Linux hosts).
fn cpu_model_hash() -> Option<String> {
    let cpuinfo = std::fs::read_to_string("/proc/cpuinfo").ok()?;
    let model = cpuinfo
        .lines()
        .find(|line| line.starts_with("model name"))?
        .split(':')
        .nth(1)?
        .trim();
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for byte in model.bytes() {
        hash ^= byte as u64;
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    Some(format!("{:08x}", (hash as u32) ^ ((hash >> 32) as u32)))
}

/// Resolves the git SHA the report is attributable to: `GITHUB_SHA` in CI,
/// `git rev-parse HEAD` in a checkout, `"unknown"` otherwise.
fn current_git_sha() -> String {
    if let Ok(sha) = std::env::var("GITHUB_SHA") {
        if !sha.is_empty() {
            return sha;
        }
    }
    std::process::Command::new("git")
        .args(["rev-parse", "HEAD"])
        .output()
        .ok()
        .filter(|output| output.status.success())
        .and_then(|output| String::from_utf8(output.stdout).ok())
        .map(|sha| sha.trim().to_string())
        .filter(|sha| !sha.is_empty())
        .unwrap_or_else(|| "unknown".to_string())
}

/// Parses `--out <path>` style arguments (`--out=path` also accepted) from a
/// bench binary's argument list.
pub fn arg_value(args: &[String], flag: &str) -> Option<String> {
    let mut iter = args.iter();
    while let Some(arg) = iter.next() {
        if arg == flag {
            return iter.next().cloned();
        }
        if let Some(value) = arg.strip_prefix(&format!("{flag}=")) {
            return Some(value.to_string());
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    /// A minimal JSON syntax checker, enough to assert the emitted report is a
    /// well-formed document (the schema-validity gate CI relies on via `jq`).
    mod json {
        pub fn validate(input: &str) -> Result<(), String> {
            let bytes: Vec<char> = input.chars().collect();
            let mut pos = 0;
            value(&bytes, &mut pos)?;
            skip_ws(&bytes, &mut pos);
            if pos != bytes.len() {
                return Err(format!("trailing garbage at {pos}"));
            }
            Ok(())
        }

        fn skip_ws(b: &[char], pos: &mut usize) {
            while *pos < b.len() && b[*pos].is_whitespace() {
                *pos += 1;
            }
        }

        fn value(b: &[char], pos: &mut usize) -> Result<(), String> {
            skip_ws(b, pos);
            match b.get(*pos) {
                Some('{') => object(b, pos),
                Some('[') => array(b, pos),
                Some('"') => string(b, pos),
                Some('t') => literal(b, pos, "true"),
                Some('f') => literal(b, pos, "false"),
                Some('n') => literal(b, pos, "null"),
                Some(c) if *c == '-' || c.is_ascii_digit() => number(b, pos),
                other => Err(format!("unexpected {other:?} at {pos}")),
            }
        }

        fn object(b: &[char], pos: &mut usize) -> Result<(), String> {
            *pos += 1; // '{'
            skip_ws(b, pos);
            if b.get(*pos) == Some(&'}') {
                *pos += 1;
                return Ok(());
            }
            loop {
                skip_ws(b, pos);
                string(b, pos)?;
                skip_ws(b, pos);
                if b.get(*pos) != Some(&':') {
                    return Err(format!("expected ':' at {pos}"));
                }
                *pos += 1;
                value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some('}') => {
                        *pos += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or '}}', got {other:?} at {pos}")),
                }
            }
        }

        fn array(b: &[char], pos: &mut usize) -> Result<(), String> {
            *pos += 1; // '['
            skip_ws(b, pos);
            if b.get(*pos) == Some(&']') {
                *pos += 1;
                return Ok(());
            }
            loop {
                value(b, pos)?;
                skip_ws(b, pos);
                match b.get(*pos) {
                    Some(',') => *pos += 1,
                    Some(']') => {
                        *pos += 1;
                        return Ok(());
                    }
                    other => return Err(format!("expected ',' or ']', got {other:?} at {pos}")),
                }
            }
        }

        fn string(b: &[char], pos: &mut usize) -> Result<(), String> {
            if b.get(*pos) != Some(&'"') {
                return Err(format!("expected string at {pos}"));
            }
            *pos += 1;
            while let Some(&c) = b.get(*pos) {
                *pos += 1;
                match c {
                    '"' => return Ok(()),
                    '\\' => {
                        *pos += 1; // escaped char (\uXXXX hex digits also pass `value` opaquely)
                    }
                    _ => {}
                }
            }
            Err("unterminated string".to_string())
        }

        fn number(b: &[char], pos: &mut usize) -> Result<(), String> {
            let start = *pos;
            while let Some(&c) = b.get(*pos) {
                if c.is_ascii_digit() || matches!(c, '-' | '+' | '.' | 'e' | 'E') {
                    *pos += 1;
                } else {
                    break;
                }
            }
            if *pos == start {
                Err(format!("expected number at {pos}"))
            } else {
                Ok(())
            }
        }

        fn literal(b: &[char], pos: &mut usize, lit: &str) -> Result<(), String> {
            for expected in lit.chars() {
                if b.get(*pos) != Some(&expected) {
                    return Err(format!("bad literal at {pos}"));
                }
                *pos += 1;
            }
            Ok(())
        }
    }

    fn sample_record() -> BenchRecord {
        BenchRecord {
            name: "dispatch".into(),
            mode: "labels+freeze".into(),
            workers: 4,
            workers_band: String::new(),
            workers_high_water: 4,
            batch_size: 8,
            traders: 8,
            events: 30_000,
            throughput_eps: 123_456.78,
            latency_p50_ms: 0.12,
            latency_p70_ms: 0.0,
            latency_p99_ms: 1.5,
            memory_mib: 10.25,
            replay: false,
            policy: String::new(),
            scheduler: String::new(),
            index: String::new(),
        }
    }

    #[test]
    fn report_serialises_to_valid_json() {
        let mut report = BenchReport::new("dispatch", true);
        report.push(sample_record());
        report.push(BenchRecord {
            name: "weird \"quotes\"\nand\tcontrol".into(),
            throughput_eps: f64::NAN,
            ..sample_record()
        });
        report.metric("speedup_batch8_over_batch1", 1.34);
        let json = report.to_json();
        json::validate(&json).expect("emitted report must be well-formed JSON");
        assert!(json.contains("\"schema\":\"defcon-bench-report/v1\""));
        assert!(json.contains("\"git_sha\":"));
        assert!(json.contains(&format!("\"host\":\"{}\"", host_fingerprint())));
        assert!(json.contains("\"speedup_batch8_over_batch1\":1.34"));
        assert!(json.contains("\"workers\":4"));
        assert!(json.contains("\"batch_size\":8"));
        assert!(
            json.contains("\"throughput_eps\":null"),
            "non-finite numbers must serialise as null, not NaN"
        );
        assert!(json.contains("\"replay\":false"));
        assert!(
            json.contains("\"policy\":\"\""),
            "direct-path cells carry an empty policy key"
        );
        assert!(
            json.contains("\"scheduler\":\"\""),
            "unstamped cells carry an empty scheduler key"
        );
        assert!(
            json.contains("\"index\":\"\""),
            "unstamped cells carry an empty index key"
        );
    }

    #[test]
    fn index_stamped_records_carry_the_stamp_in_the_json() {
        let mut report = BenchReport::new("scenarios", true);
        report.push(sample_record().with_index("on"));
        report.push(sample_record().with_index("off").as_replay());
        let json = report.to_json();
        json::validate(&json).unwrap();
        assert!(json.contains("\"index\":\"on\""));
        assert!(json.contains("\"index\":\"off\""));
    }

    #[test]
    fn scheduler_stamped_records_carry_the_stamp_in_the_json() {
        let mut report = BenchReport::new("dispatch", true);
        report.push(sample_record().with_scheduler("v3"));
        report.push(sample_record().with_scheduler("v2").as_replay());
        let json = report.to_json();
        json::validate(&json).unwrap();
        assert!(json.contains("\"scheduler\":\"v3\""));
        assert!(json.contains("\"scheduler\":\"v2\""));
    }

    #[test]
    fn replay_records_are_flagged_in_the_json() {
        let mut report = BenchReport::new("dispatch", true);
        report.push(sample_record().as_replay());
        let json = report.to_json();
        json::validate(&json).unwrap();
        assert!(json.contains("\"replay\":true"));
    }

    #[test]
    fn platform_and_baseline_conversions_carry_the_figures() {
        let platform = PlatformReport {
            mode: defcon_core::SecurityMode::LabelsFreeze,
            traders: 200,
            workers: 4,
            workers_min: 1,
            workers_high_water: 3,
            batch_size: 8,
            ticks: 1000,
            orders: 500,
            trades: 250,
            warnings: 1,
            throughput_eps: 9_000.5,
            latency_p70_ms: 0.7,
            latency_p50_ms: 0.5,
            latency_p99_ms: 2.0,
            memory_mib: 42.0,
        };
        let record = BenchRecord::from_platform("fig5", &platform);
        assert_eq!(record.mode, "labels+freeze");
        assert_eq!(record.workers, 4);
        assert_eq!(
            record.workers_band, "1..4",
            "elastic bands flow into records"
        );
        assert_eq!(record.workers_high_water, 3);
        assert_eq!(record.batch_size, 8);
        assert_eq!(record.throughput_eps, 9_000.5);
        assert_eq!(record.latency_p99_ms, 2.0);

        let mut report = BenchReport::new("figures", false);
        report.push(record);
        json::validate(&report.to_json()).unwrap();
    }

    #[test]
    fn empty_report_is_still_valid_json() {
        let report = BenchReport::new("figures", false);
        json::validate(&report.to_json()).unwrap();
    }

    #[test]
    fn arg_value_parses_both_forms() {
        let args: Vec<String> = ["bin", "--quick", "--out", "a.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--out").as_deref(), Some("a.json"));
        let args: Vec<String> = ["bin", "--out=b.json"]
            .iter()
            .map(|s| s.to_string())
            .collect();
        assert_eq!(arg_value(&args, "--out").as_deref(), Some("b.json"));
        assert_eq!(arg_value(&args, "--missing"), None);
    }
}
