//! Benchmark harness regenerating the evaluation of the DEFCon paper (§6.2).
//!
//! Each figure of the paper has a sweep function here and a binary under
//! `src/bin/`; the `figures` bench target (run by `cargo bench`) executes reduced
//! versions of all sweeps so that a single command reproduces the shape of every
//! figure. Absolute numbers depend on the host; the reproduced quantities are the
//! orderings and ratios between configurations (see EXPERIMENTS.md).
//!
//! Beyond the human-readable rows printed to stdout, every bench binary also
//! writes a machine-readable [`BenchReport`] (`BENCH_figures.json`,
//! `BENCH_dispatch.json`) so CI can archive the perf trajectory and fail on
//! regressions — see the [`report`] module.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod report;

pub use report::{BenchRecord, BenchReport};

use std::time::Duration;

use defcon_baseline::{BaselineConfig, BaselinePlatform, BaselineReport};
use defcon_core::SecurityMode;
use defcon_trading::{PlatformReport, TradingPlatform, TradingPlatformConfig};

/// Scale factors for a sweep: which trader counts to run and how many ticks to
/// replay per configuration.
#[derive(Debug, Clone)]
pub struct SweepScale {
    /// Trader counts for the DEFCon platform (Figures 5–7).
    pub defcon_traders: Vec<usize>,
    /// Ticks replayed per DEFCon configuration.
    pub defcon_ticks: usize,
    /// Trader counts for the baseline platform (Figures 8–9).
    pub baseline_traders: Vec<usize>,
    /// Ticks replayed per baseline configuration.
    pub baseline_ticks: usize,
}

impl SweepScale {
    /// The paper's full scale: 200–2,000 traders for DEFCon, 2–40 (Fig. 8) and
    /// 20–100 (Fig. 9) for the baseline.
    pub fn paper() -> Self {
        SweepScale {
            defcon_traders: vec![200, 400, 600, 800, 1000, 1200, 1400, 1600, 1800, 2000],
            defcon_ticks: 20_000,
            baseline_traders: vec![2, 5, 10, 20, 30, 40],
            baseline_ticks: 20_000,
        }
    }

    /// A reduced scale suitable for CI and `cargo bench`.
    pub fn quick() -> Self {
        SweepScale {
            defcon_traders: vec![50, 100, 200],
            defcon_ticks: 1_500,
            baseline_traders: vec![2, 4, 8],
            baseline_ticks: 2_000,
        }
    }
}

/// Runs one DEFCon platform configuration and returns its report.
///
/// The worker band is elastic (`1..auto_worker_count()`): the figure rows
/// report the *observed* worker high-water mark next to the band, so the
/// fig5–fig7 sweeps exercise the elastic scale-up/park-down path — including
/// scheduler v3's depth-aware wake placement — instead of pinning a fixed
/// pool.
pub fn run_defcon(mode: SecurityMode, traders: usize, ticks: usize) -> PlatformReport {
    let config = TradingPlatformConfig {
        mode,
        traders,
        symbols: 64,
        event_cache: 5_000,
        workers_min: 1,
        ..TradingPlatformConfig::default()
    };
    let mut platform = TradingPlatform::build(config).expect("platform builds");
    platform.run_ticks(ticks).expect("run completes")
}

/// Runs one baseline configuration and returns its report.
pub fn run_baseline(traders: usize, ticks: usize, feed_rate: Option<f64>) -> BaselineReport {
    let config = BaselineConfig {
        traders,
        symbols: 64,
        ticks,
        feed_rate,
        hop_delay: Duration::from_micros(20),
        per_agent_overhead_mib: 96.0,
        ..BaselineConfig::default()
    };
    BaselinePlatform::new(config).run()
}

/// Figure 5: maximum supported event rate in DEFCon as a function of the number of
/// traders, for the four security configurations.
pub fn figure5(scale: &SweepScale) -> Vec<PlatformReport> {
    let mut rows = Vec::new();
    println!("== Figure 5: DEFCon maximum event rate vs number of traders ==");
    for mode in SecurityMode::all() {
        for &traders in &scale.defcon_traders {
            let report = run_defcon(mode, traders, scale.defcon_ticks);
            println!("{}", report.as_row());
            rows.push(report);
        }
    }
    rows
}

/// Figure 6: event processing latency (70th percentile tick-to-trade) in DEFCon.
pub fn figure6(scale: &SweepScale) -> Vec<PlatformReport> {
    let mut rows = Vec::new();
    println!("== Figure 6: DEFCon trade latency (p70) vs number of traders ==");
    for mode in SecurityMode::all() {
        for &traders in &scale.defcon_traders {
            let report = run_defcon(mode, traders, scale.defcon_ticks);
            println!(
                "{:<26} traders={:<5} p70={:.3} ms  p50={:.3} ms",
                report.mode.figure_label(),
                report.traders,
                report.latency_p70_ms,
                report.latency_p50_ms
            );
            rows.push(report);
        }
    }
    rows
}

/// Figure 7: occupied memory in DEFCon as a function of the number of traders.
pub fn figure7(scale: &SweepScale) -> Vec<PlatformReport> {
    let mut rows = Vec::new();
    println!("== Figure 7: DEFCon occupied memory vs number of traders ==");
    for mode in SecurityMode::all() {
        for &traders in &scale.defcon_traders {
            let report = run_defcon(mode, traders, scale.defcon_ticks);
            println!(
                "{:<26} traders={:<5} memory={:.1} MiB",
                report.mode.figure_label(),
                report.traders,
                report.memory_mib
            );
            rows.push(report);
        }
    }
    rows
}

/// Figure 8: maximum supported event rate in the Marketcetera-style baseline.
pub fn figure8(scale: &SweepScale) -> Vec<BaselineReport> {
    let mut rows = Vec::new();
    println!("== Figure 8: baseline maximum event rate vs number of traders ==");
    for &traders in &scale.baseline_traders {
        let report = run_baseline(traders, scale.baseline_ticks, None);
        println!("{}", report.as_row());
        rows.push(report);
    }
    rows
}

/// Figure 9: baseline latency broken down into processing, ticks+processing and
/// ticks+orders+processing, at a paced feed of 1,000 ticks/s.
pub fn figure9(scale: &SweepScale) -> Vec<BaselineReport> {
    let mut rows = Vec::new();
    println!("== Figure 9: baseline latency breakdown (p70, paced feed) ==");
    for &traders in &scale.baseline_traders {
        let ticks = scale.baseline_ticks.min(5_000);
        let report = run_baseline(traders, ticks, Some(1_000.0));
        println!(
            "marketcetera-like          traders={:<5} processing={:.3} ms  ticks+processing={:.3} ms  ticks+orders+processing={:.3} ms",
            report.traders,
            report.processing_p70_ms,
            report.ticks_processing_p70_ms,
            report.total_p70_ms
        );
        rows.push(report);
    }
    rows
}

/// One of the paper's evaluation figures, as selected by the `fig*` binaries.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Figure {
    /// Figure 5: DEFCon maximum event rate.
    Fig5,
    /// Figure 6: DEFCon trade latency.
    Fig6,
    /// Figure 7: DEFCon occupied memory.
    Fig7,
    /// Figure 8: baseline maximum event rate.
    Fig8,
    /// Figure 9: baseline latency breakdown.
    Fig9,
}

impl Figure {
    /// All figures, in paper order.
    pub fn all() -> [Figure; 5] {
        [
            Figure::Fig5,
            Figure::Fig6,
            Figure::Fig7,
            Figure::Fig8,
            Figure::Fig9,
        ]
    }

    /// The record name rows of this figure carry in a bench report.
    pub fn name(&self) -> &'static str {
        match self {
            Figure::Fig5 => "fig5",
            Figure::Fig6 => "fig6",
            Figure::Fig7 => "fig7",
            Figure::Fig8 => "fig8",
            Figure::Fig9 => "fig9",
        }
    }

    /// Runs this figure's sweep (printing the human-readable rows) and returns
    /// its machine-readable records.
    pub fn run(&self, scale: &SweepScale) -> Vec<BenchRecord> {
        match self {
            // The platform figures run on the engine's default scheduler;
            // stamping the records keeps the regression gate from comparing
            // them against rows a different scheduler produced.
            Figure::Fig5 => figure5(scale)
                .iter()
                .map(|row| BenchRecord::from_platform(self.name(), row).with_scheduler("v3"))
                .collect(),
            Figure::Fig6 => figure6(scale)
                .iter()
                .map(|row| BenchRecord::from_platform(self.name(), row).with_scheduler("v3"))
                .collect(),
            Figure::Fig7 => figure7(scale)
                .iter()
                .map(|row| BenchRecord::from_platform(self.name(), row).with_scheduler("v3"))
                .collect(),
            Figure::Fig8 => figure8(scale)
                .iter()
                .map(|row| BenchRecord::from_baseline(self.name(), row))
                .collect(),
            Figure::Fig9 => figure9(scale)
                .iter()
                .map(|row| BenchRecord::from_baseline(self.name(), row))
                .collect(),
        }
    }
}

/// The CLI driver shared by the `fig*` binaries: `--quick` selects the reduced
/// sweep, `--out <path>` overrides the report path (default
/// `BENCH_figures.json`). Runs the given figures and writes one machine-
/// readable [`BenchReport`] covering all of them.
pub fn run_figures_cli(figures: &[Figure]) {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = report::arg_value(&args, "--out").unwrap_or_else(|| "BENCH_figures.json".to_string());
    let scale = if quick {
        SweepScale::quick()
    } else {
        SweepScale::paper()
    };
    let mut bench_report = BenchReport::new("figures", quick);
    for figure in figures {
        for record in figure.run(&scale) {
            bench_report.push(record);
        }
    }
    assert!(
        !bench_report.records.is_empty(),
        "a figures run must produce records"
    );
    bench_report
        .write(std::path::Path::new(&out))
        .expect("write bench report");
    println!("wrote {out}");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_defcon_run_produces_metrics() {
        let report = run_defcon(SecurityMode::LabelsFreeze, 20, 600);
        assert_eq!(report.traders, 20);
        assert!(report.throughput_eps > 0.0);
    }

    #[test]
    fn quick_baseline_run_produces_metrics() {
        let report = run_baseline(2, 500, None);
        assert_eq!(report.traders, 2);
        assert!(report.throughput_eps > 0.0);
    }
}
