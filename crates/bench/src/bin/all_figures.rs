//! Regenerates every figure of the paper's evaluation in one run and writes
//! the machine-readable rows to `BENCH_figures.json` (override with `--out`).
//! Pass `--quick` for a reduced sweep suitable for CI.

fn main() {
    defcon_bench::run_figures_cli(&defcon_bench::Figure::all());
}
