//! Regenerates every figure of the paper's evaluation in one run.
//! Pass `--quick` for a reduced sweep suitable for CI.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        defcon_bench::SweepScale::quick()
    } else {
        defcon_bench::SweepScale::paper()
    };
    defcon_bench::figure5(&scale);
    defcon_bench::figure6(&scale);
    defcon_bench::figure7(&scale);
    defcon_bench::figure8(&scale);
    defcon_bench::figure9(&scale);
}
