//! Scenario-driver benchmark: replays the adversarial load shapes of
//! `defcon_workload::scenario` (Zipf-skewed lanes, bursty open/close arrival,
//! slow-consumer backpressure, mixed batch sizes) through an engine sized by
//! `workers_auto()`, and records what the engine absorbed.
//!
//! Writes `BENCH_scenarios.json` (override with `--out <path>`) in the
//! `defcon-bench-report/v1` schema; pass `--quick` for the reduced CI sweep.
//! The per-record `workers` field carries the *resolved* auto worker count, so
//! reports stay comparable across hosts of different widths.

use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use defcon_bench::report::arg_value;
use defcon_bench::{BenchRecord, BenchReport};
use defcon_core::unit::NullUnit;
use defcon_core::{auto_worker_count, Engine, SecurityMode, UnitSpec};
use defcon_metrics::LatencyHistogram;
use defcon_trading::PlatformReport;
use defcon_workload::scenario::{
    BurstyOpenClose, CountingSink, MixedBatches, Scenario, ScenarioDriver, SlowConsumerFlood,
    ZipfLanes,
};

/// One measured replay: outcome counters plus the merged sink-side latency.
struct ScenarioRun {
    record: BenchRecord,
    peak_queue_depth: usize,
}

/// Replays one scenario on a fresh `workers_auto()` engine, one latency-tracked
/// counting sink per lane (optionally slowed), and returns its bench record.
fn run_scenario(
    scenario: &mut dyn Scenario,
    batch_size: usize,
    sink_delay: Duration,
) -> ScenarioRun {
    let engine = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .workers_auto()
        .batch_size(batch_size)
        // The recently-dispatched cache is not part of the replayed path.
        .event_cache(0)
        .build();

    let lanes = scenario.lane_count();
    let mut counters = Vec::with_capacity(lanes);
    let mut histograms = Vec::with_capacity(lanes);
    for lane in 0..lanes {
        let histogram = Arc::new(LatencyHistogram::new());
        let (sink, received) = CountingSink::new(ZipfLanes::lane_name(lane));
        let sink = sink
            .with_latency(Arc::clone(&histogram))
            .with_delay(sink_delay);
        engine
            .register_unit(UnitSpec::new(format!("sink-{lane}")), Box::new(sink))
            .expect("sink registers");
        counters.push(received);
        histograms.push(histogram);
    }
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .expect("feed registers");

    let handle = engine.start();
    let driver = ScenarioDriver::new(&handle, source).expect("driver");
    let outcome = driver.run(scenario);
    handle.shutdown().expect("shutdown");

    assert!(
        outcome.completed && outcome.drained,
        "{}: a bench replay must complete and drain",
        outcome.scenario
    );
    let delivered: u64 = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    assert_eq!(
        delivered, outcome.published,
        "{}: exactly-once delivery across lane sinks",
        outcome.scenario
    );

    let latency = LatencyHistogram::new();
    for histogram in &histograms {
        latency.merge(histogram);
    }
    // Wire the sink-side latency percentiles into a PlatformReport-style row
    // (the shape of the paper's figures, p70 included), then record that row.
    let row = PlatformReport::from_scenario(
        &outcome,
        SecurityMode::LabelsFreeze,
        engine.configured_workers(),
        batch_size,
        lanes,
        &latency.summary(),
    );
    println!("  {}", row.as_row());
    ScenarioRun {
        record: BenchRecord::from_platform(&outcome.scenario, &row),
        peak_queue_depth: outcome.peak_queue_depth,
    }
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_scenarios.json".to_string());

    let events: u64 = if quick { 60_000 } else { 300_000 };
    let slow_events: u64 = if quick { 8_000 } else { 40_000 };
    let lanes = 8;
    let batch_size = 8;
    let workers = auto_worker_count();

    println!("== scenario bench: workers_auto() resolved to {workers} worker(s) ==");
    let mut report = BenchReport::new("scenarios", quick);
    report.metric("workers_auto_resolved", workers as f64);

    let mut scenarios: Vec<(Box<dyn Scenario>, Duration)> = vec![
        (
            Box::new(ZipfLanes::new(lanes, 1.0, 32, events, 2010)),
            Duration::ZERO,
        ),
        (
            Box::new(BurstyOpenClose::new(
                lanes,
                256,
                8,
                Duration::from_millis(1),
                events,
            )),
            Duration::ZERO,
        ),
        (
            Box::new(SlowConsumerFlood::new(64, slow_events)),
            Duration::from_micros(20),
        ),
        (
            Box::new(MixedBatches::new(lanes, vec![1, 8, 64], events)),
            Duration::ZERO,
        ),
    ];

    for (scenario, sink_delay) in &mut scenarios {
        let run = run_scenario(scenario.as_mut(), batch_size, *sink_delay);
        println!(
            "{:<16} workers={} batch={} events={:>8} throughput={:>12.0} ev/s  p50={:.4} ms  p99={:.4} ms  peak-queue={}",
            run.record.name,
            run.record.workers,
            run.record.batch_size,
            run.record.events,
            run.record.throughput_eps,
            run.record.latency_p50_ms,
            run.record.latency_p99_ms,
            run.peak_queue_depth,
        );
        if run.record.name == "slow-consumer" {
            report.metric(
                "slow_consumer_peak_queue_depth",
                run.peak_queue_depth as f64,
            );
        }
        report.push(run.record);
    }

    assert!(
        !report.records.is_empty(),
        "a scenario bench run must produce records"
    );
    report
        .write(Path::new(&out))
        .expect("write BENCH_scenarios.json");
    println!("wrote {out}");
}
