//! Scenario-driver benchmark: replays the adversarial load shapes of
//! `defcon_workload::scenario` (Zipf-skewed lanes, bursty open/close arrival,
//! slow-consumer backpressure, mixed batch sizes) through an engine running an
//! *elastic* worker band (`1..max(2, workers_auto())`), and records what the
//! engine absorbed — including each run's worker high-water mark, the pool
//! scale the load actually recruited. `SlowConsumerFlood` is the shape that
//! provably stretches the band: its backlog holds queue depth above the
//! scale-up threshold until the pool reaches the top of the band.
//!
//! It also replays two arrival shapes through the *full trading platform*
//! (`TradingPlatform::replay_scenario` → `publish_tick_batch`), recording
//! Figure-5-style p70 rows per shape as `platform-zipf` / `platform-bursty`.
//!
//! Writes `BENCH_scenarios.json` (override with `--out <path>`) in the
//! `defcon-bench-report/v1` schema; pass `--quick` for the reduced CI sweep.
//! `--replay <trace>` re-feeds an arrival trace captured by
//! `ScenarioDriver::record` (e.g. via `bench_dispatch --record`) instead of
//! the generated shapes, reporting `replay`-flagged rows.
//! Elastic records carry the configured band in `workers_band` (what the
//! regression gate matches on) and the observed scale in
//! `workers_high_water`.

use std::path::Path;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::Duration;

use defcon_bench::report::arg_value;
use defcon_bench::{BenchRecord, BenchReport};
use defcon_core::unit::NullUnit;
use defcon_core::{
    auto_worker_count, Engine, EngineResult, FaultPolicy, FullQueuePolicy, IngressConfig,
    SecurityMode, Unit, UnitContext, UnitSpec,
};
use defcon_events::{Event, Filter, Predicate};
use defcon_ingress::IngressTier;
use defcon_metrics::LatencyHistogram;
use defcon_trading::{PlatformReport, TradingPlatform, TradingPlatformConfig};
use defcon_workload::scenario::{
    lane_name, BurstyOpenClose, CountingSink, CreditStorm, FanOutBurst, FaultSwap, MixedBatches,
    ReplayTrace, Scenario, ScenarioDriver, SlowConsumerFlood, ZipfLanes,
};
use defcon_workload::IngressScenarioDriver;

/// One measured replay: outcome counters plus the merged sink-side latency.
struct ScenarioRun {
    record: BenchRecord,
    peak_queue_depth: usize,
}

/// The elastic band every scenario replay runs under: one worker floor, a
/// ceiling of at least two so the pool has somewhere to scale even on a
/// single-core host (the run queue's stealing tolerates mild
/// oversubscription; what the record captures is how far load pushed the
/// band).
fn worker_band() -> (usize, usize) {
    (1, auto_worker_count().max(2))
}

/// Replays one scenario on a fresh elastic-band engine, one latency-tracked
/// counting sink per lane (optionally slowed), and returns its bench record.
fn run_scenario(
    scenario: &mut dyn Scenario,
    batch_size: usize,
    sink_delay: Duration,
) -> ScenarioRun {
    let (workers_min, workers_max) = worker_band();
    let engine = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .workers_min(workers_min)
        .workers_max(workers_max)
        .batch_size(batch_size)
        // The recently-dispatched cache is not part of the replayed path.
        .event_cache(0)
        .build();

    let lanes = scenario.lane_count();
    let mut counters = Vec::with_capacity(lanes);
    let mut histograms = Vec::with_capacity(lanes);
    for lane in 0..lanes {
        let histogram = Arc::new(LatencyHistogram::new());
        let (sink, received) = CountingSink::new(ZipfLanes::lane_name(lane));
        let sink = sink
            .with_latency(Arc::clone(&histogram))
            .with_delay(sink_delay);
        engine
            .register_unit(UnitSpec::new(format!("sink-{lane}")), Box::new(sink))
            .expect("sink registers");
        counters.push(received);
        histograms.push(histogram);
    }
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .expect("feed registers");

    let handle = engine.start();
    let driver = ScenarioDriver::new(&handle, source).expect("driver");
    let outcome = driver.run(scenario);
    handle.shutdown().expect("shutdown");

    assert!(
        outcome.completed && outcome.drained,
        "{}: a bench replay must complete and drain",
        outcome.scenario
    );
    let delivered: u64 = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    assert_eq!(
        delivered, outcome.published,
        "{}: exactly-once delivery across lane sinks",
        outcome.scenario
    );

    let latency = LatencyHistogram::new();
    for histogram in &histograms {
        latency.merge(histogram);
    }
    // Wire the sink-side latency percentiles into a PlatformReport-style row
    // (the shape of the paper's figures, p70 included), then record that row.
    // The row carries the configured band plus the worker high-water mark the
    // replay actually recruited.
    let pool = engine.queue_stats();
    let row = PlatformReport::from_scenario(
        &outcome,
        SecurityMode::LabelsFreeze,
        pool.workers_min,
        engine.configured_workers(),
        pool.workers_high_water,
        batch_size,
        lanes,
        &latency.summary(),
    );
    println!("  {}", row.as_row());
    ScenarioRun {
        record: BenchRecord::from_platform(&outcome.scenario, &row).with_scheduler("v3"),
        peak_queue_depth: outcome.peak_queue_depth,
    }
}

/// One hot-replacement replay: the bench record plus the fault ledger —
/// whether every admitted event was accounted for across the swap.
struct FaultSwapRun {
    record: BenchRecord,
    exactly_once_holds: bool,
    panics: u64,
    fault_swaps: u64,
}

/// Replays the [`FaultSwap`] flood against a sink that panics every
/// `fault_every`-th delivery under `FaultPolicy::AutoSwap` with a healthy
/// standby registered: mid-replay the policy trips and hot-swaps the sink
/// while bursts keep arriving. The row's acceptance ledger: every admitted
/// event is either delivered (by the flaky incarnation or its replacement) or
/// was one of the counted panicking deliveries — zero admitted events lost,
/// exactly one fault-triggered swap, nothing quarantined.
fn run_fault_swap_scenario(events: u64, fault_every: u64, batch_size: usize) -> FaultSwapRun {
    let (workers_min, workers_max) = worker_band();
    let engine = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .workers_min(workers_min)
        .workers_max(workers_max)
        .batch_size(batch_size)
        .event_cache(0)
        // Three panics in any window trip the policy; the default action is
        // auto-swap to the registered standby.
        .fault(FaultPolicy::new(3))
        .build();

    let histogram = Arc::new(LatencyHistogram::new());
    let (sink, flaky_received) = CountingSink::new(ZipfLanes::lane_name(0));
    let sink = sink
        .with_latency(Arc::clone(&histogram))
        .with_fault_every(fault_every);
    let target = engine
        .register_unit(UnitSpec::new("sink-0"), Box::new(sink))
        .expect("flaky sink registers");
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .expect("feed registers");

    // The standby is built up front (so its delivery counter is observable)
    // and handed out by the factory exactly once, at the fault-triggered swap.
    let (standby, standby_received) = CountingSink::new(ZipfLanes::lane_name(0));
    let standby = standby.with_latency(Arc::clone(&histogram));
    let standby_cell = std::sync::Mutex::new(Some(standby));
    engine
        .set_standby(
            target,
            Box::new(move || {
                Box::new(
                    standby_cell
                        .lock()
                        .expect("standby cell")
                        .take()
                        .expect("the standby is consumed by at most one swap"),
                )
            }),
        )
        .expect("standby registers");

    let handle = engine.start();
    let driver = ScenarioDriver::new(&handle, source).expect("driver");
    let mut scenario = FaultSwap::new(64, events);
    let outcome = driver.run(&mut scenario);
    handle.shutdown().expect("shutdown");

    assert!(
        outcome.completed && outcome.drained,
        "fault-swap: a bench replay must complete and drain"
    );
    let stats = engine.queue_stats();
    let delivered =
        flaky_received.load(Ordering::Relaxed) + standby_received.load(Ordering::Relaxed);
    let exactly_once_holds = delivered + stats.unit_panics == outcome.published
        && stats.fault_swaps == 1
        && stats.unit_swaps == 1
        && stats.units_quarantined == 0
        && stats.quarantine_shed == 0;
    assert!(
        exactly_once_holds,
        "fault-swap: hot replacement must lose no admitted event \
         (delivered={delivered} panics={} published={} swaps={} quarantined={})",
        stats.unit_panics, outcome.published, stats.fault_swaps, stats.units_quarantined
    );

    let pool = engine.queue_stats();
    let row = PlatformReport::from_scenario(
        &outcome,
        SecurityMode::LabelsFreeze,
        pool.workers_min,
        engine.configured_workers(),
        pool.workers_high_water,
        batch_size,
        1,
        &histogram.summary(),
    );
    println!("  {}", row.as_row());
    FaultSwapRun {
        record: BenchRecord::from_platform(&outcome.scenario, &row).with_scheduler("v3"),
        exactly_once_holds,
        panics: stats.unit_panics,
        fault_swaps: stats.fault_swaps,
    }
}

/// One credit-gated replay: the bench record (policy-stamped) plus the
/// admission ledger the run left behind.
struct IngressRun {
    record: BenchRecord,
    peak_queue_depth: usize,
    bound_held: bool,
    shed: u64,
    credit_stalls: u64,
}

/// Replays one scenario through the credit-gated ingress tier on a fresh
/// elastic-band engine with a bounded run queue, and returns its
/// policy-stamped bench record plus the admission ledger. The exactly-once
/// check here is against the *admitted* count — under a shedding policy the
/// ledger accounts for the rest.
fn run_ingress_scenario(
    scenario: &mut dyn Scenario,
    policy: FullQueuePolicy,
    queue_bound: usize,
    batch_size: usize,
    sink_delay: Duration,
) -> IngressRun {
    let (workers_min, workers_max) = worker_band();
    let engine = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .workers_min(workers_min)
        .workers_max(workers_max)
        .batch_size(batch_size)
        .event_cache(0)
        .ingress(
            IngressConfig::new(queue_bound)
                .credit_window(queue_bound / 4)
                .policy(policy),
        )
        .build();

    let lanes = scenario.lane_count();
    let mut counters = Vec::with_capacity(lanes);
    let mut histograms = Vec::with_capacity(lanes);
    for lane in 0..lanes {
        let histogram = Arc::new(LatencyHistogram::new());
        let (sink, received) = CountingSink::new(ZipfLanes::lane_name(lane));
        let sink = sink
            .with_latency(Arc::clone(&histogram))
            .with_delay(sink_delay);
        engine
            .register_unit(UnitSpec::new(format!("sink-{lane}")), Box::new(sink))
            .expect("sink registers");
        counters.push(received);
        histograms.push(histogram);
    }
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .expect("feed registers");

    let handle = engine.start();
    let tier = IngressTier::new(&engine);
    let driver = IngressScenarioDriver::new(&tier, &engine, source, 4).expect("ingress driver");
    let outcome = driver.run(scenario);
    tier.shutdown();
    handle.shutdown().expect("shutdown");

    assert!(
        outcome.drained,
        "{}[{}]: a bench replay must drain",
        outcome.scenario,
        policy.as_str()
    );
    let stats = engine.queue_stats();
    let delivered: u64 = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
    assert_eq!(
        delivered,
        stats.ingress_admitted,
        "{}[{}]: exactly-once delivery of every admitted event",
        outcome.scenario,
        policy.as_str()
    );
    assert_eq!(
        stats.ingress_admitted + stats.ingress_shed,
        scenario.total_events(),
        "{}[{}]: admitted + shed must account for every submitted event",
        outcome.scenario,
        policy.as_str()
    );

    let latency = LatencyHistogram::new();
    for histogram in &histograms {
        latency.merge(histogram);
    }
    let pool = engine.queue_stats();
    let row = PlatformReport::from_scenario(
        &outcome,
        SecurityMode::LabelsFreeze,
        pool.workers_min,
        engine.configured_workers(),
        pool.workers_high_water,
        batch_size,
        lanes,
        &latency.summary(),
    );
    println!("  [{}] {}", policy.as_str(), row.as_row());
    IngressRun {
        record: BenchRecord::from_platform(&outcome.scenario, &row)
            .with_policy(policy.as_str())
            .with_scheduler("v3"),
        peak_queue_depth: outcome.peak_queue_depth,
        bound_held: outcome.peak_queue_depth <= queue_bound,
        shed: stats.ingress_shed,
        credit_stalls: stats.ingress_credit_stalls,
    }
}

/// One lane's whole subscriber population for the fan-out cell: a single unit
/// holding `matching` always-match subscriptions (`type == lane`) and
/// `near_miss` near-misses that name the lane but fail a `seq < 0` second
/// clause. The near-misses are what the exact filter must reject after the
/// index shortlists them — the committed `index_exact_rejects` signal — while
/// subscriptions of *other* lanes never even become candidates.
struct FanOutLane {
    lane: usize,
    matching: usize,
    near_miss: usize,
    received: Arc<std::sync::atomic::AtomicU64>,
}

impl Unit for FanOutLane {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        let lane = lane_name(self.lane);
        for _ in 0..self.matching {
            ctx.subscribe(Filter::for_type(&lane))?;
        }
        for _ in 0..self.near_miss {
            ctx.subscribe(Filter::for_type(&lane).where_part("seq", Predicate::LessThan(0.0)))?;
        }
        Ok(())
    }

    fn on_event(&mut self, _ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
        self.received.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// What one fan-out replay leg measured.
struct FanOutLeg {
    throughput_eps: f64,
    delivered: u64,
    published: u64,
    index_candidates: u64,
    index_exact_rejects: u64,
}

/// Replays the recorded fan-out trace against `lanes × subs_per_lane`
/// registered subscriptions with the subscription index on or off — the same
/// trace, the same fixed worker pool, the same population; the only variable
/// is the planner.
fn run_fanout_leg(
    trace: &Path,
    indexed: bool,
    lanes: usize,
    subs_per_lane: usize,
    matching_per_lane: usize,
) -> FanOutLeg {
    let engine = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .workers(auto_worker_count())
        .batch_size(8)
        .event_cache(0)
        .subscription_index(indexed)
        .build();
    let mut counters = Vec::with_capacity(lanes);
    for lane in 0..lanes {
        let received = Arc::new(std::sync::atomic::AtomicU64::new(0));
        engine
            .register_unit(
                UnitSpec::new(format!("fanout-lane-{lane}")),
                Box::new(FanOutLane {
                    lane,
                    matching: matching_per_lane,
                    near_miss: subs_per_lane - matching_per_lane,
                    received: Arc::clone(&received),
                }),
            )
            .expect("fan-out lane registers");
        counters.push(received);
    }
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .expect("feed registers");

    let handle = engine.start();
    let driver = ScenarioDriver::new(&handle, source).expect("driver");
    let mut replay = ReplayTrace::load(trace).expect("load fan-out trace");
    let outcome = driver.run(&mut replay);
    handle.shutdown().expect("shutdown");
    assert!(
        outcome.completed && outcome.drained,
        "fan-out: a bench replay must complete and drain"
    );

    let stats = engine.queue_stats();
    FanOutLeg {
        throughput_eps: outcome.throughput_eps(),
        delivered: counters.iter().map(|c| c.load(Ordering::Relaxed)).sum(),
        published: outcome.published,
        index_candidates: stats.index_candidates,
        index_exact_rejects: stats.index_exact_rejects,
    }
}

/// `--replay <trace>`: re-feeds a recorded arrival trace byte-for-byte through
/// the elastic lane harness and (as an arrival shape) the trading platform,
/// reporting `replay`-flagged rows that only ever gate against replay
/// baselines.
fn run_replay(path: &Path, out: &str, quick: bool) {
    let mut report = BenchReport::new("scenarios", quick);
    let mut replay = ReplayTrace::load(path).expect("load trace");
    let run = run_scenario(&mut replay, 8, Duration::ZERO);
    println!(
        "replayed {} events from {}",
        run.record.events,
        path.display()
    );
    report.push(run.record.as_replay());

    let config = TradingPlatformConfig {
        mode: SecurityMode::LabelsFreeze,
        traders: 40,
        batch_size: 8,
        event_cache: 0,
        ..TradingPlatformConfig::default()
    };
    let mut platform = TradingPlatform::build(config).expect("platform builds");
    let row = platform
        .replay_trace(path)
        .expect("platform replay completes");
    println!("  platform-replay: {}", row.as_row());
    report.push(
        BenchRecord::from_platform("platform-replay", &row)
            .as_replay()
            .with_scheduler("v3"),
    );
    report.write(Path::new(out)).expect("write replay report");
    println!("wrote {out}");
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_scenarios.json".to_string());
    if let Some(path) = arg_value(&args, "--replay") {
        run_replay(Path::new(&path), &out, quick);
        return;
    }

    let events: u64 = if quick { 60_000 } else { 300_000 };
    let slow_events: u64 = if quick { 8_000 } else { 40_000 };
    let platform_ticks: u64 = if quick { 1_200 } else { 8_000 };
    let lanes = 8;
    let batch_size = 8;
    let workers = auto_worker_count();
    let (band_min, band_max) = worker_band();

    println!(
        "== scenario bench: workers_auto() -> {workers}; elastic band {band_min}..{band_max} =="
    );
    let mut report = BenchReport::new("scenarios", quick);
    report.metric("workers_auto_resolved", workers as f64);

    let mut scenarios: Vec<(Box<dyn Scenario>, Duration)> = vec![
        (
            Box::new(ZipfLanes::new(lanes, 1.0, 32, events, 2010)),
            Duration::ZERO,
        ),
        (
            Box::new(BurstyOpenClose::new(
                lanes,
                256,
                8,
                Duration::from_millis(1),
                events,
            )),
            Duration::ZERO,
        ),
        (
            Box::new(SlowConsumerFlood::new(64, slow_events)),
            Duration::from_micros(20),
        ),
        (
            Box::new(MixedBatches::new(lanes, vec![1, 8, 64], events)),
            Duration::ZERO,
        ),
    ];

    for (scenario, sink_delay) in &mut scenarios {
        let run = run_scenario(scenario.as_mut(), batch_size, *sink_delay);
        println!(
            "{:<16} band={} high-water={} batch={} events={:>8} throughput={:>12.0} ev/s  p50={:.4} ms  p99={:.4} ms  peak-queue={}",
            run.record.name,
            run.record.workers_band,
            run.record.workers_high_water,
            run.record.batch_size,
            run.record.events,
            run.record.throughput_eps,
            run.record.latency_p50_ms,
            run.record.latency_p99_ms,
            run.peak_queue_depth,
        );
        if run.record.name == "slow-consumer" {
            report.metric(
                "slow_consumer_peak_queue_depth",
                run.peak_queue_depth as f64,
            );
            // The acceptance signal for the elastic pool: a backlogged flood
            // must recruit workers beyond the band's floor.
            report.metric(
                "slow_consumer_worker_high_water",
                run.record.workers_high_water as f64,
            );
        }
        report.push(run.record);
    }

    // Hot replacement under load: a flaky sink trips the engine's fault
    // policy mid-flood and is auto-swapped to its standby while bursts keep
    // arriving. The committed acceptance metric is `swap_exactly_once_holds`:
    // 1 iff every admitted event was delivered or counted as a panic — zero
    // lost — with exactly one fault-triggered swap.
    println!("== fault-swap hot replacement ({slow_events} events) ==");
    {
        let run = run_fault_swap_scenario(slow_events, 500, batch_size);
        println!(
            "{:<16} panics={} fault-swaps={} exactly-once={}",
            run.record.name, run.panics, run.fault_swaps, run.exactly_once_holds,
        );
        report.metric(
            "swap_exactly_once_holds",
            if run.exactly_once_holds { 1.0 } else { 0.0 },
        );
        report.metric("fault_swap_panics", run.panics as f64);
        report.metric("fault_swap_swaps", run.fault_swaps as f64);
        report.push(run.record);
    }

    // The credit-gated ingress sweep: the same SlowConsumerFlood that drives
    // the direct path to multi-thousand-event backlogs (the committed
    // slow_consumer_peak_queue_depth metric), replayed through bounded
    // admission under each full-queue policy — plus a CreditStorm cell that
    // hammers one session's credit window at a time. The headline metric is
    // `ingress_bound_holds`: 1 iff every credit-gated run's sampled peak
    // queue depth stayed within the configured bound.
    let ingress_bound = 128usize;
    let ingress_events = slow_events;
    println!("== credit-gated ingress sweep (queue bound {ingress_bound}) ==");
    let mut bound_holds = true;
    for policy in FullQueuePolicy::all() {
        let mut scenario = SlowConsumerFlood::new(64, ingress_events);
        let run = run_ingress_scenario(
            &mut scenario,
            policy,
            ingress_bound,
            batch_size,
            Duration::from_micros(20),
        );
        println!(
            "{:<16} policy={:<12} peak-queue={:>5} (bound {ingress_bound}) shed={:>6} credit-stalls={}",
            run.record.name,
            policy.as_str(),
            run.peak_queue_depth,
            run.shed,
            run.credit_stalls,
        );
        bound_holds &= run.bound_held;
        let policy_key = policy.as_str().replace('-', "_");
        report.metric(&format!("ingress_shed_{policy_key}"), run.shed as f64);
        report.metric(
            &format!("ingress_credit_stalls_{policy_key}"),
            run.credit_stalls as f64,
        );
        report.metric(
            &format!("ingress_peak_queue_depth_{policy_key}"),
            run.peak_queue_depth as f64,
        );
        report.push(run.record);
    }
    {
        let mut scenario = CreditStorm::new(lanes, 96, ingress_events);
        let run = run_ingress_scenario(
            &mut scenario,
            FullQueuePolicy::Block,
            ingress_bound,
            batch_size,
            Duration::from_micros(20),
        );
        bound_holds &= run.bound_held;
        report.metric("credit_storm_peak_queue_depth", run.peak_queue_depth as f64);
        report.metric("credit_storm_credit_stalls", run.credit_stalls as f64);
        report.push(run.record);
    }
    report.metric("ingress_bound_holds", if bound_holds { 1.0 } else { 0.0 });
    report.metric("ingress_queue_bound", ingress_bound as f64);

    // Scenario arrival shapes through the full trading platform: the same
    // bursts now drive tick cascades (monitors, traders, broker, regulator)
    // instead of synthetic lane sinks, and the rows read like Figure 5's.
    println!("== platform scenario replays ({platform_ticks} ticks per shape) ==");
    let platform_shapes: Vec<(&str, Box<dyn Scenario>)> = vec![
        (
            "platform-zipf",
            Box::new(ZipfLanes::new(lanes, 1.0, 32, platform_ticks, 2010)),
        ),
        (
            "platform-bursty",
            Box::new(BurstyOpenClose::new(
                lanes,
                256,
                8,
                Duration::from_millis(1),
                platform_ticks,
            )),
        ),
    ];
    for (name, mut shape) in platform_shapes {
        let config = TradingPlatformConfig {
            mode: SecurityMode::LabelsFreeze,
            traders: 40,
            batch_size,
            event_cache: 0,
            ..TradingPlatformConfig::default()
        };
        let mut platform = TradingPlatform::build(config).expect("platform builds");
        let row = platform
            .replay_scenario(shape.as_mut())
            .expect("platform replay completes");
        println!("  {name}: {}", row.as_row());
        report.push(BenchRecord::from_platform(name, &row).with_scheduler("v3"));
    }

    // Indexed fan-out A/B: the same recorded burst trace replayed against
    // 10^4 registered subscriptions (20 lanes x 500) with the subscription
    // index on and off. Per lane ~10 subscriptions always match and ~490 are
    // near-misses (they name the lane but fail a `seq < 0` clause), so
    // delivery stays small and the measured difference is the planner: the
    // linear scan evaluates all 10^4 filters per event, the index shortlists
    // one lane's 500 and rejects the near-misses exactly.
    let fanout_lanes = 20usize;
    let fanout_subs_per_lane = 500usize;
    let fanout_matching = 10usize;
    let fanout_events: u64 = if quick { 2_000 } else { 10_000 };
    let fanout_reps = if quick { 1 } else { 3 };
    let fanout_population = fanout_lanes * fanout_subs_per_lane;
    println!(
        "== indexed fan-out A/B ({fanout_population} subscriptions, {fanout_events} events) =="
    );
    let trace_path =
        std::env::temp_dir().join(format!("defcon-fanout-{}.trace", std::process::id()));
    {
        // Record the arrival trace once on a lightweight engine so both legs
        // replay byte-identical arrivals.
        let engine = Engine::builder()
            .mode(SecurityMode::LabelsFreeze)
            .workers(1)
            .batch_size(8)
            .event_cache(0)
            .build();
        let source = engine
            .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
            .expect("feed registers");
        let handle = engine.start();
        let driver = ScenarioDriver::new(&handle, source).expect("driver");
        let mut scenario = FanOutBurst::new(fanout_lanes, fanout_subs_per_lane, 64, fanout_events);
        driver
            .record(&mut scenario, &trace_path)
            .expect("record fan-out trace");
        handle.shutdown().expect("shutdown");
    }

    let mut best_linear: Option<FanOutLeg> = None;
    let mut best_indexed: Option<FanOutLeg> = None;
    for _ in 0..fanout_reps {
        for indexed in [false, true] {
            let leg = run_fanout_leg(
                &trace_path,
                indexed,
                fanout_lanes,
                fanout_subs_per_lane,
                fanout_matching,
            );
            // Every event lands in exactly one lane and matches that lane's
            // `matching` always-match subscriptions; the near-misses must all
            // fall to the exact filter, whichever planner shortlisted them.
            assert_eq!(
                leg.delivered,
                leg.published * fanout_matching as u64,
                "fan-out(indexed={indexed}): exact delivery count"
            );
            if indexed {
                assert!(
                    leg.index_candidates > 0 && leg.index_exact_rejects > 0,
                    "fan-out: the indexed leg must exercise the shortlist and \
                     the exact filter (candidates={} rejects={})",
                    leg.index_candidates,
                    leg.index_exact_rejects
                );
                // Sublinear candidate sets: the shortlist for an event is one
                // lane's population (500), never the full 10^4 — the whole
                // point of the inverted index.
                assert!(
                    leg.index_candidates <= leg.published * fanout_subs_per_lane as u64,
                    "fan-out: candidate sets must stay one lane wide \
                     (candidates={} events={})",
                    leg.index_candidates,
                    leg.published
                );
            } else {
                assert_eq!(
                    (leg.index_candidates, leg.index_exact_rejects),
                    (0, 0),
                    "fan-out: the linear leg must not touch the index"
                );
            }
            let slot = if indexed {
                &mut best_indexed
            } else {
                &mut best_linear
            };
            if slot
                .as_ref()
                .map(|b| leg.throughput_eps > b.throughput_eps)
                .unwrap_or(true)
            {
                *slot = Some(leg);
            }
        }
    }
    let _ = std::fs::remove_file(&trace_path);
    let best_linear = best_linear.expect("linear fan-out leg ran");
    let best_indexed = best_indexed.expect("indexed fan-out leg ran");
    let fanout_speedup = best_indexed.throughput_eps / best_linear.throughput_eps;
    println!(
        "  linear:  {:>10.0} events/s  indexed: {:>10.0} events/s  speedup {:.2}x \
         (candidates/event {:.0} of {fanout_population})",
        best_linear.throughput_eps,
        best_indexed.throughput_eps,
        fanout_speedup,
        best_indexed.index_candidates as f64 / best_indexed.published.max(1) as f64,
    );
    let empty_latency = LatencyHistogram::new();
    for (leg, stamp) in [(&best_linear, "off"), (&best_indexed, "on")] {
        report.push(
            BenchRecord::from_summary(
                "fan-out",
                SecurityMode::LabelsFreeze.figure_label(),
                auto_worker_count(),
                8,
                fanout_population,
                fanout_events,
                leg.throughput_eps,
                &empty_latency.summary(),
            )
            .with_scheduler("v3")
            .with_index(stamp),
        );
    }
    report.metric("speedup_indexed_fanout_s10k", fanout_speedup);
    report.metric(
        "fanout_candidates_per_event",
        best_indexed.index_candidates as f64 / best_indexed.published.max(1) as f64,
    );
    report.metric("fanout_registered_subscriptions", fanout_population as f64);

    assert!(
        !report.records.is_empty(),
        "a scenario bench run must produce records"
    );
    report
        .write(Path::new(&out))
        .expect("write BENCH_scenarios.json");
    println!("wrote {out}");
}
