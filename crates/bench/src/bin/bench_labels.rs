//! Micro-benchmark of the label hot path: what one flow check costs.
//!
//! Every dispatch decision pays `part_label ≺ owner_input` per part per
//! subscription, so the per-check cost bounds the whole engine (the paper's
//! Figure 5 overhead argument). This bench measures flow-check ns/op at 3-tag
//! labels in three representative situations —
//!
//! * **hit**: both sides are the same interned label (the common case after
//!   interning canonicalises repeated labels) — answered by pointer equality;
//! * **reject**: disjoint tag sets — answered by the fingerprint fast reject;
//! * **accept**: a genuine subset — fingerprint pass, confirmed by the exact
//!   sorted-vector scan;
//!
//! — each both through the interned fast path ([`Label::can_flow_to`]) and
//! through the exact linear scan ([`Label::can_flow_to_exact`]), which is the
//! representation the engine used before interning. It also times `join` on
//! already-ordered operands, where interning returns the bound by
//! reference-count bump instead of allocating.
//!
//! Writes `BENCH_labels.json` (override with `--out <path>`); `--quick`
//! reduces the iteration count. The headline derived metric is
//! `speedup_interned_over_scan`: mean exact-scan ns/op over mean fast-path
//! ns/op across the mixed hit/reject/accept workload.

use std::hint::black_box;
use std::path::Path;
use std::time::Instant;

use defcon_bench::report::arg_value;
use defcon_bench::{BenchRecord, BenchReport};
use defcon_defc::{Label, Tag, TagSet};
use defcon_metrics::LatencySummary;

/// Times `op` over `iters` iterations and returns ns/op.
fn time_ns_per_op(iters: u64, mut op: impl FnMut() -> bool) -> f64 {
    // Warm-up: touches lazily-computed caches and faults in the code path.
    for _ in 0..(iters / 10).max(1) {
        black_box(op());
    }
    let start = Instant::now();
    for _ in 0..iters {
        black_box(op());
    }
    start.elapsed().as_nanos() as f64 / iters as f64
}

struct Case {
    name: &'static str,
    a: Label,
    b: Label,
    expected: bool,
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_labels.json".to_string());
    let iters: u64 = if quick { 2_000_000 } else { 10_000_000 };

    // A shared tag universe: 3-tag labels, the size the trading workload's
    // order/trade parts actually carry.
    let tags: Vec<Tag> = (0..9).map(|i| Tag::with_name(format!("t{i}"))).collect();
    let three = |range: std::ops::Range<usize>| -> Label {
        Label::confidential(tags[range].iter().cloned().collect::<TagSet>())
    };
    let small = three(0..3);
    let small_same = three(0..3); // interned: ptr-identical to `small`
    let disjoint = three(3..6);
    let large = Label::confidential(tags[0..6].iter().cloned().collect::<TagSet>());
    assert!(small.ptr_eq(&small_same), "interning canonicalises");

    let cases = [
        Case {
            name: "hit",
            a: small.clone(),
            b: small_same,
            expected: true,
        },
        Case {
            name: "reject",
            a: small.clone(),
            b: disjoint,
            expected: false,
        },
        Case {
            name: "accept",
            a: small.clone(),
            b: large.clone(),
            expected: true,
        },
    ];

    println!("== label micro-bench: {iters} iterations per case, 3-tag labels ==");
    let mut report = BenchReport::new("labels", quick);
    let mut interned_total = 0.0;
    let mut scan_total = 0.0;
    for case in &cases {
        let (a, b, expected) = (&case.a, &case.b, case.expected);
        assert_eq!(a.can_flow_to(b), expected);
        assert_eq!(a.can_flow_to_exact(b), expected);
        let interned = time_ns_per_op(iters, || black_box(a).can_flow_to(black_box(b)));
        let scan = time_ns_per_op(iters, || black_box(a).can_flow_to_exact(black_box(b)));
        interned_total += interned;
        scan_total += scan;
        println!(
            "flow-check {:<7} interned={interned:>7.2} ns/op   exact-scan={scan:>7.2} ns/op   ({:.1}x)",
            case.name,
            scan / interned,
        );
        report.metric(&format!("flow_check_ns_interned_{}", case.name), interned);
        report.metric(&format!("flow_check_ns_scan_{}", case.name), scan);
        // One record per case so the regression gate tracks the fast path's
        // throughput (checks/sec) per situation across commits.
        for (mode, ns) in [("interned", interned), ("exact-scan", scan)] {
            report.push(BenchRecord::from_summary(
                "labels",
                &format!("flow/{}/{}", case.name, mode),
                0,
                1,
                3, // tags per label
                iters,
                1e9 / ns,
                &LatencySummary::default(),
            ));
        }
    }

    // Joins on ordered operands: interning returns the bound by refcount bump.
    let public = Label::public();
    let join_converged = time_ns_per_op(iters, || {
        black_box(black_box(&public).join(black_box(&large))).ptr_eq(&large)
    });
    println!("join (public ⊔ 6-tag, converged) = {join_converged:.2} ns/op");
    report.metric("join_converged_ns", join_converged);

    let interned_mean = interned_total / cases.len() as f64;
    let scan_mean = scan_total / cases.len() as f64;
    let speedup = scan_mean / interned_mean;
    println!(
        "flow-check mean: interned={interned_mean:.2} ns/op, exact-scan={scan_mean:.2} ns/op — {speedup:.1}x"
    );
    report.metric("flow_check_ns_interned", interned_mean);
    report.metric("flow_check_ns_scan", scan_mean);
    report.metric("speedup_interned_over_scan", speedup);

    assert!(
        !report.records.is_empty(),
        "a label bench run must produce records"
    );
    report
        .write(Path::new(&out))
        .expect("write BENCH_labels.json");
    println!("wrote {out}");
}
