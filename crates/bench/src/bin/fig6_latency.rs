//! Regenerates figure 6 of the DEFCon paper and writes its rows to
//! `BENCH_figures.json` (override with `--out`). Pass `--quick` for a
//! reduced sweep.

fn main() {
    defcon_bench::run_figures_cli(&[defcon_bench::Figure::Fig6]);
}
