//! Regenerates figure6 of the DEFCon paper. Pass `--quick` for a reduced sweep.
fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let scale = if quick {
        defcon_bench::SweepScale::quick()
    } else {
        defcon_bench::SweepScale::paper()
    };
    defcon_bench::figure6(&scale);
}
