//! Micro-benchmark of the engine's batched dispatch hot path.
//!
//! Measures end-to-end events/second (publish → queue → dispatch → delivery)
//! and per-event delivery latency on a deployment of plain counting units, over
//! a grid of `(workers, batch_size)` configurations. The headline comparisons:
//! `workers(4)` at `batch_size(8)` versus `batch_size(1)` (the batched path
//! pays one shard-lock round-trip, one in-flight accounting update and one
//! wakeup check per *batch* where the classic path pays them per *event*),
//! and — as `dispatch-grouped` cells, the workload alternating its events
//! between two target units — grouped versus ungrouped delivery of the same
//! batches (grouping pays one cell-lock acquisition per *unit* per batch
//! where the ungrouped path pays one per delivery).
//!
//! Writes `BENCH_dispatch.json` (override with `--out <path>`); pass `--quick`
//! for the reduced CI sweep. Derived metrics: `speedup_w4_b8_over_b1`
//! (events/sec at `(4, 8)` over `(4, 1)`, ungrouped), `speedup_grouped_w1_b8`
//! (grouped over ungrouped at the pinned `workers(1) × batch(8)`
//! alternating-unit cell), and `wal_overhead_w1_b8` (that same pinned cell
//! with the write-ahead log off over on-with-`fsync: EveryBatch` — the
//! durability cost factor). The same pinned cell also sweeps the fsync
//! spectrum: `wal-everybatch`, `wal-interval` (5ms bounded-loss window) and
//! `wal-never` cells.
//!
//! Record/replay: `--record <trace>` captures the pinned cell's arrival trace
//! (and exits); `--replay <trace>` re-feeds a captured trace byte-for-byte —
//! same batch boundaries, same inter-burst schedule — and reports
//! `replay`-flagged records plus `replay_events_dispatched` /
//! `replay_deliveries` metrics, which are identical across replays of one
//! trace (the determinism CI asserts).
//!
//! Scheduler A/B: the full sweep also records one trace of its own, holds it
//! fixed, and replays it under the v2 (shared queue only) and v3 (local
//! deques, whole-run stealing, shared snapshots) schedulers — the only
//! variable between the two legs is the scheduler, so the
//! `speedup_sched_v3_w1_b8` metric (and a `_w{N}_` variant on multi-core
//! hosts) is a clean like-for-like ratio. A dedicated `dispatch-elastic-v3`
//! cell floods a 1..2 elastic band with deliberately slow deliveries until
//! the v3 telemetry counters — `sched_v3_steals`, `sched_v3_wakes`,
//! `sched_v3_snapshot_hits` — are all nonzero, proving the stealing, wake
//! placement and snapshot sharing paths actually ran.

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use defcon_bench::report::arg_value;
use defcon_bench::{BenchRecord, BenchReport};
use defcon_core::unit::NullUnit;
use defcon_core::{
    auto_worker_count, ElasticConfig, Engine, EngineResult, EventDraft, FsyncPolicy, SecurityMode,
    Unit, UnitContext, UnitId, UnitSpec, WalConfig,
};
use defcon_events::{now_ns, Event, Filter, Value};
use defcon_metrics::{LatencyHistogram, LatencySummary};
use defcon_workload::scenario::{MixedBatches, ReplayTrace, Scenario, ScenarioDriver};

/// A subscriber counting deliveries on one lane and recording the
/// publish-to-delivery latency of every event it receives.
struct LaneCounter {
    lane: String,
    received: Arc<AtomicU64>,
    latency: Arc<LatencyHistogram>,
}

impl Unit for LaneCounter {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        ctx.subscribe(Filter::for_type(&self.lane))?;
        Ok(())
    }

    fn on_event(&mut self, _ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()> {
        self.latency
            .record(now_ns().saturating_sub(event.origin_ns()));
        self.received.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

struct RunOutcome {
    throughput_eps: f64,
    latency: LatencySummary,
}

/// Runs one cell `reps` times (after an untimed warm-up pass) and keeps the
/// repetition with the highest throughput — the paper's "maximum supported
/// event rate" metric, which is also robust against scheduler noise on small
/// or oversubscribed machines.
#[allow(clippy::too_many_arguments)]
fn run_cell_best_of(
    mode: SecurityMode,
    workers: usize,
    batch_size: usize,
    grouped: bool,
    lanes: usize,
    events: u64,
    reps: usize,
    wal: Option<FsyncPolicy>,
) -> RunOutcome {
    run_cell(mode, workers, batch_size, grouped, lanes, events / 10, wal);
    let mut best: Option<RunOutcome> = None;
    for _ in 0..reps.max(1) {
        let outcome = run_cell(mode, workers, batch_size, grouped, lanes, events, wal);
        if best
            .as_ref()
            .is_none_or(|b| outcome.throughput_eps > b.throughput_eps)
        {
            best = Some(outcome);
        }
    }
    best.expect("at least one repetition ran")
}

/// Runs one `(mode, workers, batch_size)` cell: `events` events spread
/// round-robin over `lanes` subscriber units, published from the driver thread
/// in chunks of `batch_size`, then drained by the dispatcher workers.
///
/// The two phases are deliberately sequential — publish everything, then start
/// the runtime and drain — so each phase runs without cross-phase thread
/// competition and the measurement is reproducible on small machines: the
/// publish phase times the (batched) enqueue path alone, the drain phase times
/// the (batched) dispatch path over a queue that never runs dry until the end.
/// Reported throughput is end-to-end events over the sum of both phases.
#[allow(clippy::too_many_arguments)]
fn run_cell(
    mode: SecurityMode,
    workers: usize,
    batch_size: usize,
    grouped: bool,
    lanes: usize,
    events: u64,
    wal: Option<FsyncPolicy>,
) -> RunOutcome {
    let mut builder = Engine::builder()
        .mode(mode)
        .workers(workers)
        .batch_size(batch_size)
        .grouped_delivery(grouped)
        // The recently-dispatched cache charges a clone per event; it is not
        // part of the queue/dispatch path this bench isolates.
        .event_cache(0);
    // Each repetition logs into a freshly wiped directory, so no run pays for
    // (or recovers) a predecessor's segments.
    let wal_dir =
        wal.map(|_| std::env::temp_dir().join(format!("defcon-bench-wal-{}", std::process::id())));
    if let (Some(policy), Some(dir)) = (wal, &wal_dir) {
        let _ = std::fs::remove_dir_all(dir);
        builder = builder.wal(WalConfig::new(dir).fsync(policy));
    }
    let engine = builder.build();

    let received = Arc::new(AtomicU64::new(0));
    let lane_names: Vec<String> = (0..lanes).map(|i| format!("lane-{i}")).collect();
    // Per-lane histograms (merged after the run) keep the instrument itself off
    // the measured path: a shared histogram's mutex would serialise deliveries.
    let lane_latencies: Vec<Arc<LatencyHistogram>> = (0..lanes)
        .map(|_| Arc::new(LatencyHistogram::new()))
        .collect();
    for (lane, latency) in lane_names.iter().zip(&lane_latencies) {
        engine
            .register_unit(
                UnitSpec::new(format!("counter-{lane}")),
                Box::new(LaneCounter {
                    lane: lane.clone(),
                    received: Arc::clone(&received),
                    latency: Arc::clone(latency),
                }),
            )
            .expect("unit registers");
    }
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .expect("feed registers");

    // Phase 1: enqueue the whole workload (chunked by the batch size) before
    // the runtime starts — the publisher runs uncontended.
    let publisher = engine.publisher(source).expect("publisher");
    let start = Instant::now();
    let mut published = 0u64;
    let mut lane_cursor = 0usize;
    while published < events {
        let chunk = (batch_size as u64).min(events - published) as usize;
        if chunk == 1 {
            let lane = &lane_names[lane_cursor % lanes];
            lane_cursor += 1;
            publisher
                .publish(EventDraft::new().public_part("type", Value::str(lane)))
                .expect("publish");
        } else {
            let drafts = (0..chunk)
                .map(|_| {
                    let lane = &lane_names[lane_cursor % lanes];
                    lane_cursor += 1;
                    EventDraft::new().public_part("type", Value::str(lane))
                })
                .collect();
            assert_eq!(
                publisher
                    .publish_batch(drafts)
                    .expect("publish batch")
                    .accepted(),
                chunk
            );
        }
        published += chunk as u64;
    }

    // Phase 2: start the workers and drain the full queue.
    let handle = engine.start();
    if handle.worker_count() == 0 {
        handle.pump_until_idle().expect("pump");
    } else {
        assert!(
            handle.wait_idle(Duration::from_secs(300)),
            "workers must drain the bench workload"
        );
    }
    let elapsed = start.elapsed();
    handle.shutdown().expect("shutdown");
    if let Some(dir) = &wal_dir {
        let _ = std::fs::remove_dir_all(dir);
    }

    let delivered = received.load(Ordering::Relaxed);
    assert_eq!(delivered, events, "every event is delivered exactly once");
    let latency = LatencyHistogram::new();
    for lane_latency in &lane_latencies {
        latency.merge(lane_latency);
    }
    RunOutcome {
        throughput_eps: events as f64 / elapsed.as_secs_f64(),
        latency: latency.summary(),
    }
}

/// The pinned trace-cell topology: `lanes` counting subscriber units (sharing
/// one delivery counter and one latency histogram) plus a feed source, on the
/// `dispatch-grouped` headline configuration: `labels+freeze`, batch(8),
/// grouped. The worker count and scheduler are parameters so the scheduler
/// A/B can replay one trace through otherwise-identical engines.
fn replay_engine(
    lanes: usize,
    workers: usize,
    scheduler_v3: bool,
) -> (Engine, Arc<AtomicU64>, Arc<LatencyHistogram>, UnitId) {
    let engine = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .workers(workers)
        .batch_size(8)
        .grouped_delivery(true)
        .scheduler_v3(scheduler_v3)
        .event_cache(0)
        .build();
    let received = Arc::new(AtomicU64::new(0));
    let latency = Arc::new(LatencyHistogram::new());
    for lane in 0..lanes {
        engine
            .register_unit(
                UnitSpec::new(format!("counter-lane-{lane}")),
                Box::new(LaneCounter {
                    lane: format!("lane-{lane}"),
                    received: Arc::clone(&received),
                    latency: Arc::clone(&latency),
                }),
            )
            .expect("unit registers");
    }
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .expect("feed registers");
    (engine, received, latency, source)
}

/// `--record <trace>`: captures the pinned cell's arrival trace — a short
/// mixed-batch sweep over two lanes — while running it, then exits.
fn record_trace(path: &Path) {
    let mut scenario = MixedBatches::new(2, vec![1, 8, 64], 30_000);
    let (engine, received, _, source) = replay_engine(scenario.lane_count(), 1, true);
    let handle = engine.start();
    let driver = ScenarioDriver::new(&handle, source).expect("driver");
    let outcome = driver.record(&mut scenario, path).expect("record trace");
    handle.shutdown().expect("shutdown");
    assert!(outcome.completed && outcome.drained, "recording run failed");
    println!(
        "recorded {} bursts / {} events ({} delivered) to {}",
        outcome.bursts,
        outcome.published,
        received.load(Ordering::Relaxed),
        path.display()
    );
}

/// `--replay <trace>`: re-feeds a captured trace byte-for-byte through the
/// pinned cell and writes a report whose records carry `replay: true` and
/// whose `replay_events_dispatched` / `replay_deliveries` metrics are
/// identical across replays of the same trace.
fn run_replay(path: &Path, out: &str, quick: bool) {
    let mut replay = ReplayTrace::load(path).expect("load trace");
    let lanes = replay.lane_count();
    let (engine, received, latency, source) = replay_engine(lanes, 1, true);
    let handle = engine.start();
    let driver = ScenarioDriver::new(&handle, source).expect("driver");
    let outcome = driver.run(&mut replay);
    assert!(outcome.completed && outcome.drained, "replay run failed");
    let dispatched = engine.stats().dispatched();
    handle.shutdown().expect("shutdown");
    let deliveries = received.load(Ordering::Relaxed);

    let mut report = BenchReport::new("dispatch", quick);
    report.push(
        BenchRecord::from_summary(
            "dispatch-replay",
            SecurityMode::LabelsFreeze.figure_label(),
            1,
            8,
            lanes,
            outcome.published,
            outcome.throughput_eps(),
            &latency.summary(),
        )
        .as_replay()
        .with_scheduler("v3"),
    );
    report.metric("replay_events_dispatched", dispatched as f64);
    report.metric("replay_deliveries", deliveries as f64);
    println!(
        "replayed {} bursts / {} events from {}: dispatched={dispatched} deliveries={deliveries} throughput={:.0} ev/s",
        outcome.bursts,
        outcome.published,
        path.display(),
        outcome.throughput_eps(),
    );
    report.write(Path::new(out)).expect("write replay report");
    println!("wrote {out}");
}

/// One leg of the scheduler A/B: replays the recorded trace through the pinned
/// cell at the given worker count under the given scheduler, returning the
/// run's end-to-end throughput. Everything else — arrivals, batch boundaries,
/// inter-burst schedule, security mode, batch size — is held fixed by the
/// trace, so v3-over-v2 ratios from this are like-for-like.
fn replay_leg(path: &Path, workers: usize, scheduler_v3: bool) -> f64 {
    let mut replay = ReplayTrace::load(path).expect("load scheduler A/B trace");
    let lanes = replay.lane_count();
    let (engine, received, _, source) = replay_engine(lanes, workers, scheduler_v3);
    let handle = engine.start();
    let driver = ScenarioDriver::new(&handle, source).expect("driver");
    let outcome = driver.run(&mut replay);
    assert!(
        outcome.completed && outcome.drained,
        "A/B replay run failed"
    );
    handle.shutdown().expect("shutdown");
    assert!(
        received.load(Ordering::Relaxed) > 0,
        "A/B replay delivered nothing"
    );
    outcome.throughput_eps()
}

/// A subscriber that holds each delivery just long enough that prefetched
/// runs sit stealable in the owner's local deque while a sibling runs dry —
/// the workload shape the `dispatch-elastic-v3` counters cell needs.
struct SlowLaneCounter {
    lane: String,
    received: Arc<AtomicU64>,
    latency: Arc<LatencyHistogram>,
}

impl Unit for SlowLaneCounter {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        ctx.subscribe(Filter::for_type(&self.lane))?;
        Ok(())
    }

    fn on_event(&mut self, _ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()> {
        std::thread::sleep(Duration::from_micros(200));
        self.latency
            .record(now_ns().saturating_sub(event.origin_ns()));
        self.received.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// The scheduler-v3 telemetry cell: an elastic `1..2` band under v3, fed
/// bursts of deliberately slow deliveries until the steal, depth-aware-wake
/// and shared-snapshot counters are all nonzero. The burst shape forces each
/// path: deep shards recruit the parked worker (a depth-aware wake), the
/// recruit's first batch reuses the sibling-built security snapshot (a
/// snapshot hit), and whichever worker drains its own deque first steals a
/// whole run from the other (a steal). Emits the counters as metrics and the
/// cell itself as a `dispatch-elastic-v3` record.
fn run_sched_counters_cell(lanes: usize, report: &mut BenchReport) {
    // 104 = 3 prefetches of 32 (batch 8 × 4 runs) + one 8-event tail: the two
    // workers' final global pops are *unequal*, so whichever worker draws the
    // tail finishes ~3 runs early while its sibling still holds parked runs —
    // the asymmetry that forces a steal. A symmetric burst leaves the workers
    // in lockstep with equal local work and nobody ever needs to steal.
    const BURST: usize = 104;
    const MAX_BURSTS: usize = 50;
    let engine = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .workers_min(1)
        .workers_max(2)
        .batch_size(8)
        .grouped_delivery(true)
        .elastic(
            ElasticConfig::new()
                .scale_up_depth(8)
                .idle_grace(Duration::from_millis(1)),
        )
        .event_cache(0)
        .build();
    let received = Arc::new(AtomicU64::new(0));
    let latency = Arc::new(LatencyHistogram::new());
    let lane_names: Vec<String> = (0..lanes).map(|i| format!("lane-{i}")).collect();
    for lane in &lane_names {
        engine
            .register_unit(
                UnitSpec::new(format!("slow-counter-{lane}")),
                Box::new(SlowLaneCounter {
                    lane: lane.clone(),
                    received: Arc::clone(&received),
                    latency: Arc::clone(&latency),
                }),
            )
            .expect("unit registers");
    }
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .expect("feed registers");

    let handle = engine.start();
    let publisher = handle.publisher(source).expect("publisher");
    let start = Instant::now();
    let mut published = 0u64;
    for _ in 0..MAX_BURSTS {
        let drafts = (0..BURST)
            .map(|i| EventDraft::new().public_part("type", Value::str(&lane_names[i % lanes])))
            .collect();
        assert_eq!(
            publisher
                .publish_batch(drafts)
                .expect("publish burst")
                .accepted(),
            BURST
        );
        published += BURST as u64;
        assert!(
            handle.wait_idle(Duration::from_secs(30)),
            "counters cell burst must drain"
        );
        let stats = handle.queue_stats();
        if stats.sched_steals > 0 && stats.sched_wakes > 0 && stats.sched_snapshot_hits > 0 {
            break;
        }
    }
    let elapsed = start.elapsed();
    let stats = handle.queue_stats();
    handle.shutdown().expect("shutdown");
    assert_eq!(received.load(Ordering::Relaxed), published);

    println!(
        "dispatch-elastic-v3        workers=1..2 batch=8  grouped   steals={} wakes={} snapshot_hits={} high_water={}",
        stats.sched_steals, stats.sched_wakes, stats.sched_snapshot_hits, stats.workers_high_water,
    );
    report.metric("sched_v3_steals", stats.sched_steals as f64);
    report.metric("sched_v3_wakes", stats.sched_wakes as f64);
    report.metric("sched_v3_snapshot_hits", stats.sched_snapshot_hits as f64);
    let mut record = BenchRecord::from_summary(
        "dispatch-elastic-v3",
        SecurityMode::LabelsFreeze.figure_label(),
        2,
        8,
        lanes,
        published,
        published as f64 / elapsed.as_secs_f64(),
        &latency.summary(),
    )
    .with_scheduler("v3");
    record.workers_band = "1..2".to_string();
    record.workers_high_water = stats.workers_high_water;
    report.push(record);
}

fn main() {
    let args: Vec<String> = std::env::args().collect();
    let quick = args.iter().any(|a| a == "--quick");
    let out = arg_value(&args, "--out").unwrap_or_else(|| "BENCH_dispatch.json".to_string());
    if let Some(path) = arg_value(&args, "--record") {
        record_trace(Path::new(&path));
        return;
    }
    if let Some(path) = arg_value(&args, "--replay") {
        run_replay(Path::new(&path), &out, quick);
        return;
    }

    let lanes = 2;
    let events: u64 = if quick { 120_000 } else { 400_000 };
    let reps = 3;
    // The worker count `workers_auto()` resolves to on this host; recorded per
    // report so results stay comparable across hosts of different widths.
    let auto = auto_worker_count();
    // (mode, workers, batch_size, grouped) cells. The ungrouped LabelsFreeze
    // cells keep their historical `dispatch` keys (the regression gate
    // compares them against prior runs); the `dispatch-grouped` cells rerun
    // the same workload with per-unit grouped delivery — the two-lane
    // round-robin workload alternates target units event by event, so at
    // batch 8 grouping turns eight cell-lock round-trips into two.
    let manual_workers: &[usize] = if quick { &[1, 4] } else { &[1, 2, 4] };
    let mut cells: Vec<(SecurityMode, usize, usize, bool)> = vec![
        (SecurityMode::LabelsFreeze, 4, 1, false),
        (SecurityMode::LabelsFreeze, 4, 8, false),
        (SecurityMode::LabelsFreeze, 1, 1, false),
        (SecurityMode::LabelsFreeze, 1, 8, false),
        // The pinned grouped-vs-ungrouped comparison cells.
        (SecurityMode::LabelsFreeze, 1, 8, true),
        (SecurityMode::LabelsFreeze, 4, 8, true),
    ];
    if !quick {
        cells.extend([
            (SecurityMode::LabelsFreeze, 2, 8, false),
            (SecurityMode::LabelsFreeze, 4, 32, false),
            (SecurityMode::LabelsFreeze, 4, 32, true),
            (SecurityMode::NoSecurity, 4, 1, false),
            (SecurityMode::NoSecurity, 4, 8, false),
            (SecurityMode::LabelsClone, 4, 1, false),
            (SecurityMode::LabelsClone, 4, 8, false),
            (SecurityMode::LabelsFreezeIsolation, 4, 1, false),
            (SecurityMode::LabelsFreezeIsolation, 4, 8, false),
        ]);
    }
    // Measure the auto-resolved count at both headline batch sizes, unless a
    // manual cell already covers it (re-running an identical cell would only
    // add noise to the comparison).
    for batch_size in [1, 8] {
        if !cells.iter().any(|&(m, w, b, grouped)| {
            m == SecurityMode::LabelsFreeze && w == auto && b == batch_size && !grouped
        }) {
            cells.push((SecurityMode::LabelsFreeze, auto, batch_size, false));
        }
    }

    println!(
        "== dispatch micro-bench: {events} events over {lanes} lanes; workers_auto() -> {auto} =="
    );
    let mut report = BenchReport::new("dispatch", quick);
    report.metric("workers_auto_resolved", auto as f64);
    // LabelsFreeze throughput per (workers, batch_size, grouped): the headline
    // speedups and the auto-vs-manual comparison all read from this grid.
    let mut grid: Vec<((usize, usize, bool), f64)> = Vec::new();
    for &(mode, workers, batch_size, grouped) in &cells {
        let outcome = run_cell_best_of(
            mode, workers, batch_size, grouped, lanes, events, reps, None,
        );
        let name = if grouped {
            "dispatch-grouped"
        } else {
            "dispatch"
        };
        println!(
            "{:<26} workers={}{} batch={:<3} {:<9} throughput={:>12.0} ev/s  p50={:.4} ms  p99={:.4} ms",
            mode.figure_label(),
            workers,
            if workers == auto { "*" } else { "" },
            batch_size,
            if grouped { "grouped" } else { "ungrouped" },
            outcome.throughput_eps,
            outcome.latency.p50_ms,
            outcome.latency.p99_ms,
        );
        if mode == SecurityMode::LabelsFreeze {
            grid.push(((workers, batch_size, grouped), outcome.throughput_eps));
        }
        report.push(
            BenchRecord::from_summary(
                name,
                mode.figure_label(),
                workers,
                batch_size,
                lanes,
                events,
                outcome.throughput_eps,
                &outcome.latency,
            )
            .with_scheduler("v3"),
        );
    }
    let at_grouping = |workers: usize, batch_size: usize, grouped: bool| -> Option<f64> {
        grid.iter()
            .find(|((w, b, g), _)| *w == workers && *b == batch_size && *g == grouped)
            .map(|(_, eps)| *eps)
    };
    let at = |workers: usize, batch_size: usize| at_grouping(workers, batch_size, false);

    // Durability cost: the pinned grouped workers(1) × batch(8) cell rerun
    // with the write-ahead log on, across the fsync spectrum — per-batch
    // fsync, a 5ms interval (the bounded-loss middle ground), and never.
    // Each repetition logs into a freshly wiped temp directory.
    let mut wal_everybatch_eps = None;
    for (name, policy) in [
        ("wal-everybatch", FsyncPolicy::EveryBatch),
        ("wal-interval", FsyncPolicy::IntervalMs(5)),
        ("wal-never", FsyncPolicy::Never),
    ] {
        let outcome = run_cell_best_of(
            SecurityMode::LabelsFreeze,
            1,
            8,
            true,
            lanes,
            events,
            reps,
            Some(policy),
        );
        println!(
            "{:<26} workers=1 batch=8   grouped   throughput={:>12.0} ev/s  p50={:.4} ms  p99={:.4} ms",
            name, outcome.throughput_eps, outcome.latency.p50_ms, outcome.latency.p99_ms,
        );
        if name == "wal-everybatch" {
            wal_everybatch_eps = Some(outcome.throughput_eps);
        }
        report.push(
            BenchRecord::from_summary(
                name,
                SecurityMode::LabelsFreeze.figure_label(),
                1,
                8,
                lanes,
                events,
                outcome.throughput_eps,
                &outcome.latency,
            )
            .with_scheduler("v3"),
        );
    }
    if let (Some(off), Some(on)) = (at_grouping(1, 8, true), wal_everybatch_eps) {
        let overhead = off / on;
        println!("WAL overhead (off over fsync-EveryBatch) at workers=1 batch 8: {overhead:.2}x");
        report.metric("wal_overhead_w1_b8", overhead);
    }

    if let (Some(batch1), Some(batch8)) = (at(4, 1), at(4, 8)) {
        let speedup = batch8 / batch1;
        println!("speedup workers=4 batch 8 vs 1: {speedup:.2}x");
        report.metric("speedup_w4_b8_over_b1", speedup);
    }

    // The pinned grouped-delivery comparison: same workload, same batches,
    // alternating target units — one cell-lock acquisition per unit per batch
    // (grouped) against one per delivery (ungrouped).
    for (workers, metric) in [(1, "speedup_grouped_w1_b8"), (4, "speedup_grouped_w4_b8")] {
        if let (Some(ungrouped), Some(grouped)) = (
            at_grouping(workers, 8, false),
            at_grouping(workers, 8, true),
        ) {
            let speedup = grouped / ungrouped;
            println!("speedup grouped vs ungrouped at workers={workers} batch 8: {speedup:.2}x");
            report.metric(metric, speedup);
        }
    }

    // The adaptive default against the best *hand-picked* worker count at
    // batch 8: >= 1.0 means workers_auto() is at parity with (or beats)
    // manual tuning on this host. Only the fixed manual grid competes — when
    // the auto count falls outside it, its own cell must not raise the bar it
    // is measured against, or the ratio could never exceed 1.0.
    let best_manual = grid
        .iter()
        .filter(|((w, b, g), _)| *b == 8 && !*g && manual_workers.contains(w))
        .map(|(_, eps)| *eps)
        .fold(f64::NEG_INFINITY, f64::max);
    if let Some(auto_eps) = at(auto, 8) {
        if best_manual > 0.0 {
            let ratio = auto_eps / best_manual;
            println!("workers_auto({auto}) vs best manual at batch 8: {ratio:.2}x");
            report.metric("workers_auto_vs_best_manual_b8", ratio);
        }
    }

    // Scheduler A/B: record one arrival trace, hold it fixed, and replay it
    // under the v2 and v3 schedulers — the only variable between the legs is
    // the scheduler, so the ratio is a clean like-for-like comparison. The
    // legs are metrics, not records: replay-flagged records belong to the
    // dedicated `--replay` determinism run.
    let trace = std::env::temp_dir().join(format!("defcon-sched-ab-{}.trace", std::process::id()));
    record_trace(&trace);
    let mut ab_points = vec![(1usize, "speedup_sched_v3_w1_b8".to_string())];
    if auto > 1 {
        ab_points.push((auto, format!("speedup_sched_v3_w{auto}_b8")));
    }
    for (workers, metric) in ab_points {
        let best_of = |scheduler_v3: bool| {
            (0..reps)
                .map(|_| replay_leg(&trace, workers, scheduler_v3))
                .fold(f64::NEG_INFINITY, f64::max)
        };
        let v2 = best_of(false);
        let v3 = best_of(true);
        if v2 > 0.0 {
            let speedup = v3 / v2;
            println!(
                "scheduler v3 vs v2 (one replayed trace) at workers={workers} batch 8: {speedup:.2}x"
            );
            report.metric(&metric, speedup);
        }
    }
    let _ = std::fs::remove_file(&trace);

    // The v3 telemetry cell: proves stealing, depth-aware wakes and snapshot
    // sharing all actually ran on this host, and exports the counters.
    run_sched_counters_cell(lanes, &mut report);

    assert!(
        !report.records.is_empty(),
        "a dispatch bench run must produce records"
    );
    report
        .write(Path::new(&out))
        .expect("write BENCH_dispatch.json");
    println!("wrote {out}");
}
