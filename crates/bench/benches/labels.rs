//! Micro-benchmarks of DEFC label operations: the per-part cost that every
//! dispatch decision pays (ablation for the tag-set representation noted in
//! DESIGN.md §6).

use criterion::{criterion_group, criterion_main, Criterion};
use defcon_defc::{Label, Tag, TagSet};
use std::hint::black_box;

fn bench_labels(c: &mut Criterion) {
    let tags: Vec<Tag> = (0..8).map(|i| Tag::with_name(format!("t{i}"))).collect();
    let small = Label::confidential(tags[..2].iter().cloned().collect::<TagSet>());
    let large = Label::confidential(tags.iter().cloned().collect::<TagSet>());

    let disjoint = Label::confidential(tags[4..7].iter().cloned().collect::<TagSet>());

    let mut group = c.benchmark_group("labels");
    group.bench_function("can_flow_to_small_to_large", |b| {
        b.iter(|| black_box(&small).can_flow_to(black_box(&large)))
    });
    group.bench_function("can_flow_to_reflexive", |b| {
        b.iter(|| black_box(&large).can_flow_to(black_box(&large)))
    });
    // The fingerprint fast-reject path (disjoint sets) versus the exact
    // sorted-vector scan it replaces; `bench_labels` records the same split
    // into BENCH_labels.json.
    group.bench_function("can_flow_to_fingerprint_reject", |b| {
        b.iter(|| black_box(&small).can_flow_to(black_box(&disjoint)))
    });
    group.bench_function("can_flow_to_exact_scan", |b| {
        b.iter(|| black_box(&small).can_flow_to_exact(black_box(&large)))
    });
    group.bench_function("join", |b| {
        b.iter(|| black_box(&small).join(black_box(&large)))
    });
    group.bench_function("raise_to_output", |b| {
        b.iter(|| black_box(&small).raised_to_output(black_box(&large)))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_labels
}
criterion_main!(benches);
