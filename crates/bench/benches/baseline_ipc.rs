//! Micro-benchmark of the baseline's cross-"JVM" transport: serialise, copy through
//! a bounded channel and deserialise — the per-message cost DEFCon's shared address
//! space avoids.

use std::time::Duration;

use criterion::{criterion_group, criterion_main, Criterion};
use defcon_baseline::{BaselineMessage, SerializingChannel};
use defcon_workload::{Symbol, Tick};
use std::hint::black_box;

fn bench_ipc(c: &mut Criterion) {
    let channel = SerializingChannel::new(1024, Duration::ZERO);
    let message = BaselineMessage::Tick {
        tick: Tick {
            sequence: 42,
            symbol: Symbol::new("MSFT"),
            price: 1234.5,
            timestamp_ns: 1,
        },
        sent_ns: 2,
    };

    let mut group = c.benchmark_group("baseline_ipc");
    group.bench_function("send_recv_round_trip", |b| {
        b.iter(|| {
            channel.send(black_box(&message));
            black_box(channel.recv(Duration::from_millis(10)))
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_ipc
}
criterion_main!(benches);
