//! Micro-benchmarks of the isolation substrate: the per-access interceptor cost
//! charged by the `labels+freeze+isolation` configuration and the cost of
//! per-isolate state duplication.

use criterion::{criterion_group, criterion_main, Criterion};
use defcon_isolation::IsolationRuntime;
use std::hint::black_box;

fn bench_isolation(c: &mut Criterion) {
    let disabled = IsolationRuntime::disabled();
    let enabled = IsolationRuntime::standard();
    let isolate = enabled.create_isolate();
    enabled
        .write_duplicated_field(isolate, "Thread.threadSeqNum", vec![1, 2, 3, 4])
        .unwrap();

    let mut group = c.benchmark_group("isolation");
    group.bench_function("intercept_disabled", |b| {
        b.iter(|| {
            disabled.intercept();
            black_box(())
        })
    });
    group.bench_function("intercept_enabled", |b| {
        b.iter(|| {
            enabled.intercept();
            black_box(())
        })
    });
    group.bench_function("access_whitelisted_target", |b| {
        b.iter(|| black_box(enabled.access_target(isolate, "java.lang.C0.field0")))
    });
    group.bench_function("read_duplicated_field", |b| {
        b.iter(|| black_box(enabled.read_duplicated_field(isolate, "Thread.threadSeqNum")))
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_isolation
}
criterion_main!(benches);
