//! End-to-end engine dispatch cost per security mode on a small deployment: the
//! per-event analogue of Figure 5's configuration comparison.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use defcon_core::SecurityMode;
use defcon_trading::{TradingPlatform, TradingPlatformConfig};
use std::hint::black_box;

fn bench_dispatch(c: &mut Criterion) {
    let mut group = c.benchmark_group("tick_dispatch_per_mode");
    group.sample_size(10);
    for mode in SecurityMode::all() {
        let config = TradingPlatformConfig {
            mode,
            traders: 50,
            symbols: 16,
            event_cache: 1_000,
            ..TradingPlatformConfig::default()
        };
        let mut platform = TradingPlatform::build(config).expect("platform builds");
        // Warm the pair statistics so the steady state is measured.
        platform.run_ticks(500).expect("warm-up");
        group.bench_with_input(
            BenchmarkId::from_parameter(mode.figure_label()),
            &mode,
            |b, _| {
                b.iter(|| {
                    platform.publish_tick().expect("tick");
                    black_box(())
                })
            },
        );
    }
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(10).measurement_time(std::time::Duration::from_secs(3)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_dispatch
}
criterion_main!(benches);
