//! Ablation: freeze-and-share dispatch vs deep-cloning events per delivery — the
//! difference between the `labels+freeze` and `labels+clone` series of Figure 5.

use criterion::{criterion_group, criterion_main, Criterion};
use defcon_defc::Label;
use defcon_events::{EventBuilder, Value, ValueMap};
use std::hint::black_box;

fn sample_event() -> defcon_events::Event {
    let body = ValueMap::new();
    body.insert("symbol", Value::str("MSFT")).unwrap();
    body.insert("price", Value::Float(1234.5)).unwrap();
    body.insert("quantity", Value::Int(100)).unwrap();
    EventBuilder::new()
        .part("type", Label::public(), Value::str("order"))
        .part("body", Label::public(), Value::Map(body))
        .part("note", Label::public(), Value::str("x".repeat(128)))
        .build()
        .unwrap()
}

fn bench_freeze_vs_clone(c: &mut Criterion) {
    let event = sample_event();
    let mut group = c.benchmark_group("event_dispatch_copy_strategy");
    group.bench_function("share_frozen_reference", |b| {
        b.iter(|| black_box(event.clone()))
    });
    group.bench_function("deep_clone_per_delivery", |b| {
        b.iter(|| black_box(event.deep_clone()))
    });
    group.bench_function("serialise_and_decode (baseline IPC)", |b| {
        b.iter(|| {
            let bytes = defcon_events::codec::encode_event(black_box(&event));
            black_box(defcon_events::codec::decode_event(&bytes).unwrap())
        })
    });
    group.finish();
}

criterion_group! {
    name = benches;
    config = Criterion::default().sample_size(20).measurement_time(std::time::Duration::from_secs(2)).warm_up_time(std::time::Duration::from_millis(500));
    targets = bench_freeze_vs_clone
}
criterion_main!(benches);
