//! Regenerates reduced versions of every figure of the paper's evaluation.
//!
//! `cargo bench` runs this target; its stdout (captured in `bench_output.txt`) is
//! the per-figure row listing documented in EXPERIMENTS.md. For the full paper
//! scale, run `cargo run --release -p defcon-bench --bin all_figures`.

fn main() {
    let scale = defcon_bench::SweepScale::quick();
    println!("# DEFCon reproduction — reduced figure sweeps (SweepScale::quick)\n");
    let fig5 = defcon_bench::figure5(&scale);
    println!();
    defcon_bench::figure6(&scale);
    println!();
    defcon_bench::figure7(&scale);
    println!();
    let fig8 = defcon_bench::figure8(&scale);
    println!();
    defcon_bench::figure9(&scale);
    println!();

    // Headline comparison from the paper's abstract: DEFCon with full security
    // scales to far more traders than the per-JVM baseline at comparable rates.
    if let (Some(defcon), Some(baseline)) = (fig5.last(), fig8.last()) {
        println!(
            "headline: DEFCon ({}) sustained {:.0} ev/s with {} traders; baseline sustained {:.0} ev/s with {} traders",
            defcon.mode.figure_label(),
            defcon.throughput_eps,
            defcon.traders,
            baseline.throughput_eps,
            baseline.traders
        );
    }
}
