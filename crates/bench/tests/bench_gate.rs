//! Tests of `scripts/bench_gate.sh`, the CI bench regression gate: it must
//! fail on a >20% throughput drop at a matched `(name, mode, workers,
//! batch_size, replay, policy, scheduler, index)` cell, pass within the
//! threshold, and skip (with a warning, not a failure) when there is no
//! previous report to compare against.
//!
//! The script is plain bash + jq; when either tool is unavailable the tests
//! skip, so the workspace still builds in minimal environments. CI's
//! `ubuntu-latest` has both, which is where the gate actually runs.

use std::path::{Path, PathBuf};
use std::process::Command;

fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .join("../..")
        .canonicalize()
        .expect("workspace root resolves")
}

fn tools_available() -> bool {
    ["bash", "jq"].iter().all(|tool| {
        Command::new(tool)
            .arg("--version")
            .output()
            .map(|out| out.status.success())
            .unwrap_or(false)
    })
}

/// A minimal `defcon-bench-report/v1` document with one dispatch record,
/// stamped with the given host fingerprint. `workers_band` ("" for fixed
/// runs) and `workers_high_water` model an elastic run's extra fields.
fn elastic_report_on_host(
    throughput_eps: f64,
    workers: usize,
    workers_band: &str,
    workers_high_water: usize,
    batch_size: usize,
    host: &str,
) -> String {
    format!(
        concat!(
            "{{\"schema\":\"defcon-bench-report/v1\",\"suite\":\"dispatch\",",
            "\"quick\":true,\"git_sha\":\"test\",\"host\":\"{}\",\"metrics\":{{}},\"records\":[",
            "{{\"name\":\"dispatch\",\"mode\":\"labels+freeze\",\"workers\":{},",
            "\"workers_band\":\"{}\",\"workers_high_water\":{},",
            "\"batch_size\":{},\"traders\":2,\"events\":1000,",
            "\"throughput_eps\":{},\"latency_p50_ms\":0.1,\"latency_p70_ms\":0,",
            "\"latency_p99_ms\":0.2,\"memory_mib\":0}}]}}\n"
        ),
        host, workers, workers_band, workers_high_water, batch_size, throughput_eps
    )
}

/// A fixed-pool record on the given host. Deliberately emitted *without* a
/// `replay` field, like every archived report predating it — the gate must
/// treat such records as non-replay cells.
fn report_on_host(throughput_eps: f64, workers: usize, batch_size: usize, host: &str) -> String {
    elastic_report_on_host(throughput_eps, workers, "", workers, batch_size, host)
}

/// A fixed-pool record flagged as a trace replay.
fn replay_report(throughput_eps: f64, workers: usize, batch_size: usize) -> String {
    report(throughput_eps, workers, batch_size)
        .replace("\"memory_mib\":0}", "\"memory_mib\":0,\"replay\":true}")
}

/// A fixed-pool record stamped with an admission policy.
fn policy_report(throughput_eps: f64, workers: usize, batch_size: usize, policy: &str) -> String {
    report(throughput_eps, workers, batch_size).replace(
        "\"memory_mib\":0}",
        &format!("\"memory_mib\":0,\"policy\":\"{policy}\"}}"),
    )
}

/// A fixed-pool record stamped with a scheduler ("v3"/"v2").
fn scheduler_report(
    throughput_eps: f64,
    workers: usize,
    batch_size: usize,
    scheduler: &str,
) -> String {
    report(throughput_eps, workers, batch_size).replace(
        "\"memory_mib\":0}",
        &format!("\"memory_mib\":0,\"scheduler\":\"{scheduler}\"}}"),
    )
}

/// A fixed-pool record stamped with a subscription matcher ("on"/"off").
fn index_report(throughput_eps: f64, workers: usize, batch_size: usize, index: &str) -> String {
    report(throughput_eps, workers, batch_size).replace(
        "\"memory_mib\":0}",
        &format!("\"memory_mib\":0,\"index\":\"{index}\"}}"),
    )
}

/// [`report_on_host`] on the default test host fingerprint.
fn report(throughput_eps: f64, workers: usize, batch_size: usize) -> String {
    report_on_host(throughput_eps, workers, batch_size, "4cpu")
}

/// An elastic-band record on the default test host fingerprint.
fn elastic_report(throughput_eps: f64, band: &str, high_water: usize) -> String {
    elastic_report_on_host(throughput_eps, 4, band, high_water, 8, "4cpu")
}

struct Gate {
    dir: PathBuf,
}

impl Gate {
    fn new(test: &str) -> Self {
        let dir =
            std::env::temp_dir().join(format!("defcon-bench-gate-{test}-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(dir.join("prev")).expect("temp dirs");
        Gate { dir }
    }

    fn write_prev(&self, name: &str, content: &str) {
        std::fs::write(self.dir.join("prev").join(name), content).expect("write prev");
    }

    fn write_current(&self, name: &str, content: &str) {
        std::fs::write(self.dir.join(name), content).expect("write current");
    }

    /// Runs the gate over one current report; returns (exit code, output).
    fn run(&self, current: &str) -> (i32, String) {
        let output = Command::new("bash")
            .arg(repo_root().join("scripts/bench_gate.sh"))
            .arg(self.dir.join("prev"))
            .arg(self.dir.join(current))
            .output()
            .expect("gate script runs");
        let text = format!(
            "{}{}",
            String::from_utf8_lossy(&output.stdout),
            String::from_utf8_lossy(&output.stderr)
        );
        (output.status.code().unwrap_or(-1), text)
    }
}

impl Drop for Gate {
    fn drop(&mut self) {
        let _ = std::fs::remove_dir_all(&self.dir);
    }
}

#[test]
fn gate_fails_on_a_large_throughput_drop_at_a_matched_cell() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("drop");
    gate.write_prev("BENCH_dispatch.json", &report(100_000.0, 4, 8));
    gate.write_current("BENCH_dispatch.json", &report(70_000.0, 4, 8));
    let (code, out) = gate.run("BENCH_dispatch.json");
    assert_eq!(code, 1, "a 30% drop must fail the gate: {out}");
    assert!(
        out.contains("regressed"),
        "output names the regression: {out}"
    );
}

#[test]
fn gate_passes_within_the_threshold() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("pass");
    gate.write_prev("BENCH_dispatch.json", &report(100_000.0, 4, 8));
    gate.write_current("BENCH_dispatch.json", &report(85_000.0, 4, 8));
    let (code, out) = gate.run("BENCH_dispatch.json");
    assert_eq!(code, 0, "a 15% drop is inside the 20% budget: {out}");
    assert!(out.contains("OK"), "{out}");
}

#[test]
fn gate_skips_with_a_warning_when_no_previous_report_exists() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("noprev");
    gate.write_current("BENCH_dispatch.json", &report(100_000.0, 4, 8));
    let (code, out) = gate.run("BENCH_dispatch.json");
    assert_eq!(code, 0, "no prior artifact must skip, not fail: {out}");
    assert!(out.contains("warning"), "{out}");
}

#[test]
fn gate_skips_reports_from_a_different_host_fingerprint() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("host");
    // Same (workers, batch) cell, huge "drop" — but the previous run came
    // from different hardware, so the gate must skip, not fail.
    gate.write_prev(
        "BENCH_dispatch.json",
        &report_on_host(500_000.0, 4, 8, "16cpu"),
    );
    gate.write_current(
        "BENCH_dispatch.json",
        &report_on_host(100_000.0, 4, 8, "4cpu"),
    );
    let (code, out) = gate.run("BENCH_dispatch.json");
    assert_eq!(code, 0, "cross-host comparisons must be skipped: {out}");
    assert!(out.contains("different hardware"), "{out}");
}

#[test]
fn gate_skips_previous_reports_that_predate_the_host_field() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("oldschema");
    // A pre-host-field report (what older archived artifacts look like).
    let legacy = report(500_000.0, 4, 8).replace("\"host\":\"4cpu\",", "");
    gate.write_prev("BENCH_dispatch.json", &legacy);
    gate.write_current("BENCH_dispatch.json", &report(100_000.0, 4, 8));
    let (code, out) = gate.run("BENCH_dispatch.json");
    assert_eq!(code, 0, "unknown previous host must skip, not fail: {out}");
    assert!(out.contains("different hardware"), "{out}");
}

#[test]
fn gate_matches_elastic_cells_on_the_configured_band_not_the_observed_count() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("band");
    // Same configured band, very different observed high-water marks (load-
    // dependent by design): the cells must still match — and the 30% drop
    // must therefore fail the gate.
    gate.write_prev("BENCH_dispatch.json", &elastic_report(100_000.0, "1..4", 4));
    gate.write_current("BENCH_dispatch.json", &elastic_report(70_000.0, "1..4", 2));
    let (code, out) = gate.run("BENCH_dispatch.json");
    assert_eq!(
        code, 1,
        "same band must match regardless of observed workers: {out}"
    );
    assert!(out.contains("w[1..4]"), "the key names the band: {out}");
}

#[test]
fn gate_never_matches_an_elastic_band_against_a_fixed_pool() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("bandfixed");
    // A fixed workers=4 run and an elastic 1..4 run are different
    // configurations even though `workers` is 4 in both records: the huge
    // "drop" must be skipped as unmatched, not flagged.
    gate.write_prev("BENCH_dispatch.json", &report(500_000.0, 4, 8));
    gate.write_current("BENCH_dispatch.json", &elastic_report(100_000.0, "1..4", 4));
    let (code, out) = gate.run("BENCH_dispatch.json");
    assert_eq!(code, 0, "band vs fixed must be unmatched: {out}");
    assert!(
        out.contains(
            "no (name, mode, workers, batch_size, replay, policy, scheduler, index) cells"
        ),
        "{out}"
    );
}

#[test]
fn gate_never_matches_a_replay_cell_against_a_generated_baseline() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("replayfixed");
    // A trace replay and a generated-workload run of the same configuration
    // are different measurements: the "drop" must be skipped as unmatched.
    gate.write_prev("BENCH_dispatch.json", &report(500_000.0, 4, 8));
    gate.write_current("BENCH_dispatch.json", &replay_report(100_000.0, 4, 8));
    let (code, out) = gate.run("BENCH_dispatch.json");
    assert_eq!(code, 0, "replay vs generated must be unmatched: {out}");
    assert!(
        out.contains(
            "no (name, mode, workers, batch_size, replay, policy, scheduler, index) cells"
        ),
        "{out}"
    );
}

#[test]
fn gate_matches_replay_cells_against_replay_baselines() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("replaypair");
    gate.write_prev("BENCH_dispatch.json", &replay_report(100_000.0, 4, 8));
    gate.write_current("BENCH_dispatch.json", &replay_report(70_000.0, 4, 8));
    let (code, out) = gate.run("BENCH_dispatch.json");
    assert_eq!(code, 1, "a 30% replay-vs-replay drop must fail: {out}");
    assert!(
        out.contains("|r1"),
        "the key carries the replay marker: {out}"
    );
}

#[test]
fn gate_treats_records_predating_the_replay_field_as_non_replay() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("replaylegacy");
    // The archived baseline has no replay field (it predates it); the current
    // non-replay record must still match it — and this 30% drop must fail.
    gate.write_prev("BENCH_dispatch.json", &report(100_000.0, 4, 8));
    gate.write_current(
        "BENCH_dispatch.json",
        &report(70_000.0, 4, 8).replace("\"memory_mib\":0}", "\"memory_mib\":0,\"replay\":false}"),
    );
    let (code, out) = gate.run("BENCH_dispatch.json");
    assert_eq!(
        code, 1,
        "legacy baselines must match non-replay cells: {out}"
    );
    assert!(out.contains("|r0"), "{out}");
}

#[test]
fn gate_skips_unmatched_cells_instead_of_comparing_apples_to_oranges() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("unmatched");
    // Previous run on a wider host: different worker count, so the cell does
    // not match and a lower current number is not a regression.
    gate.write_prev("BENCH_dispatch.json", &report(500_000.0, 16, 8));
    gate.write_current("BENCH_dispatch.json", &report(100_000.0, 1, 8));
    let (code, out) = gate.run("BENCH_dispatch.json");
    assert_eq!(code, 0, "unmatched cells must be skipped: {out}");
    assert!(
        out.contains(
            "no (name, mode, workers, batch_size, replay, policy, scheduler, index) cells"
        ),
        "{out}"
    );
}

#[test]
fn gate_matches_fault_swap_cells_like_any_other_scenario_row() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("faultswap");
    // The hot-replacement scenario emits an elastic-band `fault-swap` row;
    // its cell key must behave like every other scenario cell: same name and
    // band match across runs (the observed high-water mark is irrelevant),
    // and a 30% throughput drop fails the gate with the cell named.
    let fault_row = |eps: f64, high_water: usize| {
        elastic_report(eps, "1..4", high_water)
            .replace("\"name\":\"dispatch\"", "\"name\":\"fault-swap\"")
    };
    gate.write_prev("BENCH_scenarios.json", &fault_row(100_000.0, 4));
    gate.write_current("BENCH_scenarios.json", &fault_row(70_000.0, 2));
    let (code, out) = gate.run("BENCH_scenarios.json");
    assert_eq!(code, 1, "a 30% fault-swap drop must fail the gate: {out}");
    assert!(
        out.contains("fault-swap|labels+freeze|w[1..4]|b8|r0|p|s|i"),
        "the key names the fault-swap cell: {out}"
    );
}

#[test]
fn gate_never_matches_an_admission_policy_cell_against_the_direct_path() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("policyfixed");
    // A shed-newest cell and a direct-path cell of the same configuration are
    // different measurements (shedding changes what throughput means): the
    // huge "drop" must be skipped as unmatched, not flagged.
    gate.write_prev("BENCH_scenarios.json", &report(500_000.0, 4, 8));
    gate.write_current(
        "BENCH_scenarios.json",
        &policy_report(100_000.0, 4, 8, "shed-newest"),
    );
    let (code, out) = gate.run("BENCH_scenarios.json");
    assert_eq!(code, 0, "policy vs direct must be unmatched: {out}");
    assert!(
        out.contains(
            "no (name, mode, workers, batch_size, replay, policy, scheduler, index) cells"
        ),
        "{out}"
    );
}

#[test]
fn gate_matches_admission_policy_cells_against_same_policy_baselines() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("policypair");
    gate.write_prev(
        "BENCH_scenarios.json",
        &policy_report(100_000.0, 4, 8, "block"),
    );
    gate.write_current(
        "BENCH_scenarios.json",
        &policy_report(70_000.0, 4, 8, "block"),
    );
    let (code, out) = gate.run("BENCH_scenarios.json");
    assert_eq!(code, 1, "a 30% same-policy drop must fail: {out}");
    assert!(
        out.contains("|pblock"),
        "the key carries the policy marker: {out}"
    );
}

#[test]
fn gate_never_matches_a_scheduler_stamped_cell_against_a_legacy_baseline() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("schedlegacy");
    // The archived baseline predates the scheduler stamp (it was measured on
    // the old scheduler); a v3-stamped current cell is a different
    // measurement, so the huge "drop" must be skipped as unmatched — the
    // scheduler change re-baselines instead of flagging a false regression.
    gate.write_prev("BENCH_dispatch.json", &report(500_000.0, 4, 8));
    gate.write_current(
        "BENCH_dispatch.json",
        &scheduler_report(100_000.0, 4, 8, "v3"),
    );
    let (code, out) = gate.run("BENCH_dispatch.json");
    assert_eq!(code, 0, "v3 vs unstamped must be unmatched: {out}");
    assert!(
        out.contains(
            "no (name, mode, workers, batch_size, replay, policy, scheduler, index) cells"
        ),
        "{out}"
    );
}

#[test]
fn gate_matches_scheduler_stamped_cells_against_same_scheduler_baselines() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("schedpair");
    gate.write_prev(
        "BENCH_dispatch.json",
        &scheduler_report(100_000.0, 4, 8, "v3"),
    );
    gate.write_current(
        "BENCH_dispatch.json",
        &scheduler_report(70_000.0, 4, 8, "v3"),
    );
    let (code, out) = gate.run("BENCH_dispatch.json");
    assert_eq!(code, 1, "a 30% same-scheduler drop must fail: {out}");
    assert!(
        out.contains("|sv3"),
        "the key carries the scheduler marker: {out}"
    );
}

#[test]
fn gate_treats_records_predating_the_policy_field_as_direct_path() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("policylegacy");
    // The archived baseline has no policy field (it predates it); the current
    // direct-path record must still match it — and this 30% drop must fail.
    gate.write_prev("BENCH_scenarios.json", &report(100_000.0, 4, 8));
    gate.write_current(
        "BENCH_scenarios.json",
        &report(70_000.0, 4, 8).replace("\"memory_mib\":0}", "\"memory_mib\":0,\"policy\":\"\"}"),
    );
    let (code, out) = gate.run("BENCH_scenarios.json");
    assert_eq!(
        code, 1,
        "legacy baselines must match direct-path cells: {out}"
    );
}

#[test]
fn gate_never_matches_an_index_stamped_cell_against_a_legacy_baseline() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("indexlegacy");
    // The archived baseline predates the index stamp (it was measured on the
    // linear scan, unstamped); an "on"-stamped current cell is a different
    // measurement, so the huge "drop" must be skipped as unmatched — flipping
    // the matcher re-baselines instead of flagging a false regression.
    gate.write_prev("BENCH_scenarios.json", &report(500_000.0, 4, 8));
    gate.write_current("BENCH_scenarios.json", &index_report(100_000.0, 4, 8, "on"));
    let (code, out) = gate.run("BENCH_scenarios.json");
    assert_eq!(code, 0, "index-on vs unstamped must be unmatched: {out}");
    assert!(
        out.contains(
            "no (name, mode, workers, batch_size, replay, policy, scheduler, index) cells"
        ),
        "{out}"
    );
}

#[test]
fn gate_matches_index_stamped_cells_against_same_stamp_baselines() {
    if !tools_available() {
        eprintln!("skipping: bash/jq unavailable");
        return;
    }
    let gate = Gate::new("indexpair");
    gate.write_prev(
        "BENCH_scenarios.json",
        &index_report(100_000.0, 4, 8, "off"),
    );
    gate.write_current("BENCH_scenarios.json", &index_report(70_000.0, 4, 8, "off"));
    let (code, out) = gate.run("BENCH_scenarios.json");
    assert_eq!(code, 1, "a 30% same-stamp drop must fail: {out}");
    assert!(
        out.contains("|ioff"),
        "the key carries the index marker: {out}"
    );
}
