//! A Marketcetera-style, process-isolated baseline trading platform.
//!
//! §6.1 of the paper compares DEFCon against Marketcetera 1.5, which isolates each
//! client's trading strategy in its own JVM ("Strategy Agent") and routes orders
//! through an Order Routing Service (ORS). The paper attributes Marketcetera's
//! scaling behaviour (Figures 8 and 9) to two structural properties:
//!
//! 1. **No centralised market-data filtering** — every Strategy Agent receives the
//!    *entire* market-data stream and filters it locally, so total filtering work is
//!    `O(traders × ticks)`;
//! 2. **Cross-JVM communication** — every tick and every order crosses an isolation
//!    boundary, paying serialisation, copying and kernel/network overhead, and each
//!    JVM carries its own heap.
//!
//! This crate reproduces both mechanisms with threads standing in for JVMs:
//! [`StrategyAgent`]s run on their own threads and receive a *separately serialised
//! copy* of every tick over a bounded [`SerializingChannel`]; an
//! [`OrderRoutingService`] thread matches orders centrally. A configurable per-hop
//! delay models the loopback-socket and FIX-gateway cost that a thread channel does
//! not naturally pay (see DESIGN.md, substitution table).
//!
//! [`BaselinePlatform::run`] executes a complete experiment and reports the metrics
//! of Figures 8 and 9: sustained event rate, the three-way latency breakdown
//! (processing, ticks+processing, ticks+orders+processing) and occupied memory.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod agent;
pub mod platform;
pub mod transport;

pub use agent::{AgentMetrics, StrategyAgent};
pub use platform::{BaselineConfig, BaselinePlatform, BaselineReport, OrderRoutingService};
pub use transport::{BaselineMessage, SerializingChannel, TransportStats};
