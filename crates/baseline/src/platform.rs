//! The baseline platform harness: feed, agents, ORS, and the experiment driver.
//!
//! [`BaselinePlatform::run`] wires one market-data feed (the driver thread), `n`
//! [`StrategyAgent`](crate::StrategyAgent) threads — each receiving its own
//! serialised copy of the full tick stream — and one [`OrderRoutingService`] thread
//! providing the local brokering facility. It then replays a synthetic trace and
//! reports the Figure 8 / Figure 9 metrics.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use defcon_events::event::now_ns;
use defcon_metrics::{memory::MemoryCategory, LatencyHistogram, MemoryAccountant};
use defcon_trading::OrderBook;
use defcon_workload::{assign_pairs, SymbolUniverse, TickGenerator, TickGeneratorConfig};

use crate::agent::{AgentMetrics, StrategyAgent};
use crate::transport::{BaselineMessage, SerializingChannel};

/// Parameters of a baseline experiment.
#[derive(Debug, Clone)]
pub struct BaselineConfig {
    /// Number of Strategy Agents ("one JVM per client").
    pub traders: usize,
    /// Number of symbols on the synthetic exchange.
    pub symbols: usize,
    /// Number of ticks to replay.
    pub ticks: usize,
    /// Optional feed rate limit in ticks/second (`None` = as fast as possible, the
    /// Figure 8 configuration; the paper uses 1,000 ticks/s for Figure 9).
    pub feed_rate: Option<f64>,
    /// Per-hop IPC delay modelling socket/gateway overhead of a JVM boundary.
    pub hop_delay: Duration,
    /// Capacity of each serialising channel.
    pub channel_capacity: usize,
    /// Per-agent market-data cache entries (private per-JVM heap contents).
    pub agent_cache: usize,
    /// Fixed per-agent heap baseline in MiB (an idle Strategy Agent JVM).
    pub per_agent_overhead_mib: f64,
    /// Zipf exponent of the pair popularity distribution.
    pub zipf_exponent: f64,
    /// Tick generator configuration.
    pub tick_config: TickGeneratorConfig,
    /// Seed for the Zipf assignment.
    pub seed: u64,
}

impl Default for BaselineConfig {
    fn default() -> Self {
        BaselineConfig {
            traders: 10,
            symbols: 64,
            ticks: 20_000,
            feed_rate: None,
            hop_delay: Duration::from_micros(20),
            channel_capacity: 1024,
            agent_cache: 10_000,
            per_agent_overhead_mib: 96.0,
            zipf_exponent: 1.0,
            tick_config: TickGeneratorConfig::default(),
            seed: 2010,
        }
    }
}

impl BaselineConfig {
    /// Creates a configuration for `traders` agents with otherwise default values.
    pub fn new(traders: usize) -> Self {
        BaselineConfig {
            traders,
            ..BaselineConfig::default()
        }
    }
}

/// The metrics of one baseline run — rows of Figures 8 and 9.
#[derive(Debug, Clone)]
pub struct BaselineReport {
    /// Number of agents.
    pub traders: usize,
    /// Ticks replayed by the feed.
    pub ticks: u64,
    /// Orders routed to the ORS.
    pub orders: u64,
    /// Trades matched by the ORS.
    pub trades: u64,
    /// Sustained feed rate in ticks per second (Figure 8's metric).
    pub throughput_eps: f64,
    /// 70th percentile of strategy processing latency, ms (Figure 9 `processing`).
    pub processing_p70_ms: f64,
    /// 70th percentile of tick propagation + processing, ms (Figure 9
    /// `ticks+processing`).
    pub ticks_processing_p70_ms: f64,
    /// 70th percentile of the full path including order propagation, ms (Figure 9
    /// `ticks+orders+processing`).
    pub total_p70_ms: f64,
    /// Occupied memory across all "JVMs", MiB.
    pub memory_mib: f64,
}

impl BaselineReport {
    /// Formats the report as a figure row.
    pub fn as_row(&self) -> String {
        format!(
            "marketcetera-like          traders={:<5} throughput={:>10.0} ev/s  p70={:>7.3} ms (proc {:>6.3} / ticks {:>6.3})  mem={:>8.1} MiB  trades={}",
            self.traders,
            self.throughput_eps,
            self.total_p70_ms,
            self.processing_p70_ms,
            self.ticks_processing_p70_ms,
            self.memory_mib,
            self.trades
        )
    }
}

/// The Order Routing Service: central matching of orders arriving from agents.
pub struct OrderRoutingService {
    book: OrderBook,
    trades: Arc<AtomicU64>,
    orders: Arc<AtomicU64>,
    /// Full-path latency (tick creation to trade) — Figure 9's top series.
    total_latency: Arc<LatencyHistogram>,
}

impl OrderRoutingService {
    /// Creates an ORS publishing counters through the given shared cells.
    pub fn new(
        trades: Arc<AtomicU64>,
        orders: Arc<AtomicU64>,
        total_latency: Arc<LatencyHistogram>,
    ) -> Self {
        OrderRoutingService {
            book: OrderBook::new(),
            trades,
            orders,
            total_latency,
        }
    }

    /// Runs the ORS loop over its inbound channel until `Shutdown`.
    pub fn run(mut self, inbound: SerializingChannel) {
        let mut idle_rounds = 0u32;
        loop {
            let Some(message) = inbound.recv(Duration::from_millis(200)) else {
                idle_rounds += 1;
                if idle_rounds > 50 {
                    break;
                }
                continue;
            };
            idle_rounds = 0;
            match message {
                BaselineMessage::Order {
                    order,
                    tick_created_ns,
                    decided_ns: _,
                } => {
                    self.orders.fetch_add(1, Ordering::Relaxed);
                    // The ORS does not track per-order identity tags; the baseline
                    // has no information flow control (that is the point of the
                    // comparison), so a zero tag is used.
                    if let Some((_trade, _resting)) =
                        self.book.submit(order, defcon_defc::TagId::from_raw(0))
                    {
                        self.trades.fetch_add(1, Ordering::Relaxed);
                        self.total_latency
                            .record(now_ns().saturating_sub(tick_created_ns));
                    }
                }
                BaselineMessage::Shutdown => break,
                _ => {}
            }
        }
    }
}

/// The complete baseline platform.
pub struct BaselinePlatform {
    config: BaselineConfig,
}

impl BaselinePlatform {
    /// Creates a platform for the given configuration.
    pub fn new(config: BaselineConfig) -> Self {
        BaselinePlatform { config }
    }

    /// Runs the experiment: spawns agents and the ORS, replays the trace through the
    /// feed, shuts everything down and reports the metrics.
    pub fn run(&self) -> BaselineReport {
        let config = &self.config;
        let universe = SymbolUniverse::standard(config.symbols);
        let pairs = assign_pairs(&universe, config.traders, config.zipf_exponent, config.seed);

        // Shared metric sinks.
        let trades = Arc::new(AtomicU64::new(0));
        let orders = Arc::new(AtomicU64::new(0));
        let total_latency = Arc::new(LatencyHistogram::new());
        let memory = MemoryAccountant::new();

        // ORS thread and its inbound channel (agents -> ORS).
        let ors_channel = SerializingChannel::new(config.channel_capacity, config.hop_delay);
        let ors = OrderRoutingService::new(
            Arc::clone(&trades),
            Arc::clone(&orders),
            Arc::clone(&total_latency),
        );
        let ors_inbound = ors_channel.clone();
        let ors_thread = std::thread::spawn(move || ors.run(ors_inbound));

        // Agent threads: one market-data channel per agent (per-JVM copies).
        let mut agent_channels = Vec::with_capacity(config.traders);
        let mut agent_metrics = Vec::with_capacity(config.traders);
        let mut agent_threads = Vec::with_capacity(config.traders);
        for (id, pair) in pairs.into_iter().enumerate() {
            let metrics = Arc::new(AgentMetrics::default());
            let channel = SerializingChannel::new(config.channel_capacity, config.hop_delay);
            let agent =
                StrategyAgent::new(id as u64, pair, config.agent_cache, Arc::clone(&metrics));
            let market_data = channel.clone();
            let to_ors = ors_channel.clone();
            agent_threads.push(std::thread::spawn(move || agent.run(market_data, to_ors)));
            agent_channels.push(channel);
            agent_metrics.push(metrics);
        }

        // The market-data feed: replay the trace, broadcasting a separately
        // serialised copy of every tick to every agent.
        let mut generator = TickGenerator::new(universe, config.tick_config.clone());
        let started = Instant::now();
        let tick_interval = config
            .feed_rate
            .map(|rate| Duration::from_secs_f64(1.0 / rate.max(1.0)));
        let mut next_deadline = Instant::now();
        for _ in 0..config.ticks {
            if let Some(interval) = tick_interval {
                // Paced feed (Figure 9 uses 1,000 ticks/s).
                next_deadline += interval;
                let now = Instant::now();
                if next_deadline > now {
                    std::thread::sleep(next_deadline - now);
                }
            }
            let mut tick = generator.next_tick();
            // Stamp with monotonic time so that cross-thread latency is measurable.
            tick.timestamp_ns = now_ns();
            let sent_ns = now_ns();
            for channel in &agent_channels {
                channel.send(&BaselineMessage::Tick {
                    tick: tick.clone(),
                    sent_ns,
                });
            }
        }
        let feed_elapsed = started.elapsed();

        // Shut down: agents first (drains market data), then the ORS.
        for channel in &agent_channels {
            channel.send(&BaselineMessage::Shutdown);
        }
        for thread in agent_threads {
            let _ = thread.join();
        }
        ors_channel.send(&BaselineMessage::Shutdown);
        let _ = ors_thread.join();

        // Aggregate metrics.
        let processing = LatencyHistogram::new();
        let tick_to_decision = LatencyHistogram::new();
        let mut cache_bytes = 0u64;
        for metrics in &agent_metrics {
            processing.merge(&metrics.processing);
            tick_to_decision.merge(&metrics.tick_to_decision);
            cache_bytes += metrics.cache_bytes.load(Ordering::Relaxed);
        }
        memory.charge(MemoryCategory::Baseline, cache_bytes as usize);
        let per_agent_overhead =
            (config.per_agent_overhead_mib * 1024.0 * 1024.0) as usize * config.traders;
        memory.charge(MemoryCategory::Baseline, per_agent_overhead);

        BaselineReport {
            traders: config.traders,
            ticks: config.ticks as u64,
            orders: orders.load(Ordering::Relaxed),
            trades: trades.load(Ordering::Relaxed),
            throughput_eps: config.ticks as f64 / feed_elapsed.as_secs_f64().max(1e-9),
            processing_p70_ms: processing.p70_ms().unwrap_or(0.0),
            ticks_processing_p70_ms: tick_to_decision.p70_ms().unwrap_or(0.0),
            total_p70_ms: total_latency.p70_ms().unwrap_or(0.0),
            memory_mib: memory.total_mib(),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn small_run_produces_orders_trades_and_latencies() {
        let config = BaselineConfig {
            traders: 4,
            symbols: 4,
            ticks: 3_000,
            hop_delay: Duration::ZERO,
            per_agent_overhead_mib: 1.0,
            ..BaselineConfig::default()
        };
        let report = BaselinePlatform::new(config).run();
        assert_eq!(report.ticks, 3_000);
        assert!(report.orders > 0, "agents must have produced orders");
        assert!(report.trades > 0, "the ORS must have matched trades");
        assert!(report.throughput_eps > 0.0);
        assert!(report.total_p70_ms >= report.ticks_processing_p70_ms * 0.1);
        assert!(report.memory_mib >= 4.0, "per-agent overhead accounted");
        assert!(report.as_row().contains("marketcetera"));
    }

    #[test]
    fn memory_grows_linearly_with_agents() {
        let mut previous = 0.0;
        for traders in [2, 4, 8] {
            let config = BaselineConfig {
                traders,
                symbols: 4,
                ticks: 200,
                hop_delay: Duration::ZERO,
                per_agent_overhead_mib: 8.0,
                ..BaselineConfig::default()
            };
            let report = BaselinePlatform::new(config).run();
            assert!(report.memory_mib > previous);
            previous = report.memory_mib;
        }
    }
}
