//! Serialising transport between "JVMs".
//!
//! Every message that crosses an isolation boundary in the baseline platform is
//! serialised into a fresh byte buffer, pushed through a bounded channel and
//! deserialised on the other side — the cost structure of cross-process IPC that the
//! paper identifies as the reason Marketcetera's latency grows with the number of
//! traders. An optional per-hop delay models the additional loopback-socket and
//! protocol-gateway cost that an in-process channel does not pay.

use std::time::Duration;

use bytes::{Buf, BufMut, Bytes, BytesMut};
use crossbeam::channel::{bounded, Receiver, RecvTimeoutError, Sender};
use defcon_workload::{Order, OrderSide, Symbol, Tick, Trade};

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

/// A message crossing an isolation boundary.
#[derive(Debug, Clone, PartialEq)]
pub enum BaselineMessage {
    /// A market-data tick, stamped with its send time (nanoseconds, monotonic).
    Tick {
        /// The tick itself.
        tick: Tick,
        /// Monotonic send timestamp.
        sent_ns: u64,
    },
    /// An order routed from a Strategy Agent to the ORS.
    Order {
        /// The order.
        order: Order,
        /// Monotonic timestamp at which the originating tick was created.
        tick_created_ns: u64,
        /// Monotonic timestamp at which the agent finished its processing.
        decided_ns: u64,
    },
    /// A trade notification from the ORS back to agents.
    Trade {
        /// The trade.
        trade: Trade,
        /// Monotonic timestamp at which the originating tick was created.
        tick_created_ns: u64,
    },
    /// Feed shutdown marker.
    Shutdown,
}

const MSG_TICK: u8 = 1;
const MSG_ORDER: u8 = 2;
const MSG_TRADE: u8 = 3;
const MSG_SHUTDOWN: u8 = 4;

fn put_symbol(buf: &mut BytesMut, symbol: &Symbol) {
    let bytes = symbol.as_str().as_bytes();
    buf.put_u16_le(bytes.len() as u16);
    buf.put_slice(bytes);
}

fn get_symbol(buf: &mut Bytes) -> Option<Symbol> {
    if buf.remaining() < 2 {
        return None;
    }
    let len = buf.get_u16_le() as usize;
    if buf.remaining() < len {
        return None;
    }
    let raw = buf.split_to(len);
    Some(Symbol::new(String::from_utf8_lossy(&raw)))
}

/// Serialises a message into a fresh buffer (the per-copy cost of crossing a JVM
/// boundary).
pub fn encode(message: &BaselineMessage) -> Bytes {
    let mut buf = BytesMut::with_capacity(64);
    match message {
        BaselineMessage::Tick { tick, sent_ns } => {
            buf.put_u8(MSG_TICK);
            buf.put_u64_le(tick.sequence);
            put_symbol(&mut buf, &tick.symbol);
            buf.put_f64_le(tick.price);
            buf.put_u64_le(tick.timestamp_ns);
            buf.put_u64_le(*sent_ns);
        }
        BaselineMessage::Order {
            order,
            tick_created_ns,
            decided_ns,
        } => {
            buf.put_u8(MSG_ORDER);
            buf.put_u64_le(order.trader);
            put_symbol(&mut buf, &order.symbol);
            buf.put_u8(matches!(order.side, OrderSide::Buy) as u8);
            buf.put_f64_le(order.price);
            buf.put_u64_le(order.quantity);
            buf.put_u64_le(order.origin_ns);
            buf.put_u64_le(*tick_created_ns);
            buf.put_u64_le(*decided_ns);
        }
        BaselineMessage::Trade {
            trade,
            tick_created_ns,
        } => {
            buf.put_u8(MSG_TRADE);
            put_symbol(&mut buf, &trade.symbol);
            buf.put_f64_le(trade.price);
            buf.put_u64_le(trade.quantity);
            buf.put_u64_le(trade.buyer);
            buf.put_u64_le(trade.seller);
            buf.put_u64_le(trade.origin_ns);
            buf.put_u64_le(*tick_created_ns);
        }
        BaselineMessage::Shutdown => buf.put_u8(MSG_SHUTDOWN),
    }
    buf.freeze()
}

/// Deserialises a message produced by [`encode`]; returns `None` on malformed input.
pub fn decode(mut buf: Bytes) -> Option<BaselineMessage> {
    if buf.remaining() < 1 {
        return None;
    }
    match buf.get_u8() {
        MSG_TICK => {
            if buf.remaining() < 8 {
                return None;
            }
            let sequence = buf.get_u64_le();
            let symbol = get_symbol(&mut buf)?;
            if buf.remaining() < 8 + 8 + 8 {
                return None;
            }
            Some(BaselineMessage::Tick {
                tick: Tick {
                    sequence,
                    symbol,
                    price: buf.get_f64_le(),
                    timestamp_ns: buf.get_u64_le(),
                },
                sent_ns: buf.get_u64_le(),
            })
        }
        MSG_ORDER => {
            if buf.remaining() < 8 {
                return None;
            }
            let trader = buf.get_u64_le();
            let symbol = get_symbol(&mut buf)?;
            if buf.remaining() < 1 + 8 + 8 + 8 + 8 + 8 {
                return None;
            }
            let side = if buf.get_u8() == 1 {
                OrderSide::Buy
            } else {
                OrderSide::Sell
            };
            Some(BaselineMessage::Order {
                order: Order {
                    trader,
                    symbol,
                    side,
                    price: buf.get_f64_le(),
                    quantity: buf.get_u64_le(),
                    origin_ns: buf.get_u64_le(),
                },
                tick_created_ns: buf.get_u64_le(),
                decided_ns: buf.get_u64_le(),
            })
        }
        MSG_TRADE => {
            let symbol = get_symbol(&mut buf)?;
            if buf.remaining() < 8 * 6 {
                return None;
            }
            Some(BaselineMessage::Trade {
                trade: Trade {
                    symbol,
                    price: buf.get_f64_le(),
                    quantity: buf.get_u64_le(),
                    buyer: buf.get_u64_le(),
                    seller: buf.get_u64_le(),
                    origin_ns: buf.get_u64_le(),
                },
                tick_created_ns: buf.get_u64_le(),
            })
        }
        MSG_SHUTDOWN => Some(BaselineMessage::Shutdown),
        _ => None,
    }
}

/// Counters describing the traffic over one channel.
#[derive(Debug, Default)]
pub struct TransportStats {
    /// Messages sent.
    pub sent: AtomicU64,
    /// Bytes serialised.
    pub bytes: AtomicU64,
}

/// A bounded, serialising channel standing in for a cross-JVM connection.
#[derive(Debug, Clone)]
pub struct SerializingChannel {
    sender: Sender<Bytes>,
    receiver: Receiver<Bytes>,
    hop_delay: Duration,
    stats: Arc<TransportStats>,
}

impl SerializingChannel {
    /// Creates a channel with the given capacity and per-hop delay.
    pub fn new(capacity: usize, hop_delay: Duration) -> Self {
        let (sender, receiver) = bounded(capacity.max(1));
        SerializingChannel {
            sender,
            receiver,
            hop_delay,
            stats: Arc::new(TransportStats::default()),
        }
    }

    /// Serialises and sends a message, blocking when the peer is behind
    /// (backpressure — the mechanism by which slow per-agent filtering caps the
    /// sustainable feed rate in Figure 8).
    pub fn send(&self, message: &BaselineMessage) -> bool {
        let encoded = encode(message);
        self.stats.sent.fetch_add(1, Ordering::Relaxed);
        self.stats
            .bytes
            .fetch_add(encoded.len() as u64, Ordering::Relaxed);
        if !self.hop_delay.is_zero() {
            // Model the kernel/socket/gateway cost of the hop.
            std::thread::sleep(self.hop_delay);
        }
        self.sender.send(encoded).is_ok()
    }

    /// Receives and deserialises the next message, waiting up to `timeout`.
    pub fn recv(&self, timeout: Duration) -> Option<BaselineMessage> {
        match self.receiver.recv_timeout(timeout) {
            Ok(bytes) => decode(bytes),
            Err(RecvTimeoutError::Timeout) | Err(RecvTimeoutError::Disconnected) => None,
        }
    }

    /// Returns the traffic counters.
    pub fn stats(&self) -> &TransportStats {
        &self.stats
    }

    /// Number of messages currently queued.
    pub fn queued(&self) -> usize {
        self.receiver.len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tick_order_trade_round_trip() {
        let messages = vec![
            BaselineMessage::Tick {
                tick: Tick {
                    sequence: 7,
                    symbol: Symbol::new("MSFT"),
                    price: 123.5,
                    timestamp_ns: 99,
                },
                sent_ns: 1000,
            },
            BaselineMessage::Order {
                order: Order {
                    trader: 3,
                    symbol: Symbol::new("GOOG"),
                    side: OrderSide::Sell,
                    price: 88.0,
                    quantity: 10,
                    origin_ns: 5,
                },
                tick_created_ns: 6,
                decided_ns: 7,
            },
            BaselineMessage::Trade {
                trade: Trade {
                    symbol: Symbol::new("BP"),
                    price: 1.5,
                    quantity: 2,
                    buyer: 1,
                    seller: 2,
                    origin_ns: 3,
                },
                tick_created_ns: 4,
            },
            BaselineMessage::Shutdown,
        ];
        for message in messages {
            let decoded = decode(encode(&message)).expect("round trip");
            assert_eq!(decoded, message);
        }
    }

    #[test]
    fn malformed_input_is_rejected() {
        assert!(decode(Bytes::from_static(&[])).is_none());
        assert!(decode(Bytes::from_static(&[0xEE])).is_none());
        assert!(decode(Bytes::from_static(&[MSG_TICK, 1, 2])).is_none());
    }

    #[test]
    fn channel_delivers_and_counts() {
        let channel = SerializingChannel::new(16, Duration::ZERO);
        let message = BaselineMessage::Shutdown;
        assert!(channel.send(&message));
        assert_eq!(channel.queued(), 1);
        assert_eq!(channel.recv(Duration::from_millis(10)), Some(message));
        assert!(channel.recv(Duration::from_millis(1)).is_none());
        assert_eq!(channel.stats().sent.load(Ordering::Relaxed), 1);
        assert!(channel.stats().bytes.load(Ordering::Relaxed) >= 1);
    }
}
