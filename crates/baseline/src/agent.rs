//! Strategy Agents: per-client isolation domains.
//!
//! "We implemented the pairs trading strategy as a Strategy Agent in Marketcetera
//! 1.5.0. Strategy Agents host one or more strategies of the same client. For
//! isolation, a separate JVM is created for each client's Strategy Agent" (§6.1).
//!
//! Each [`StrategyAgent`] runs on its own thread, receives its own serialised copy
//! of *every* market-data tick, filters locally for the pair it monitors (the
//! platform "does not support centralised market data filtering"), runs the
//! pairs-trading statistic and routes orders to the ORS over another serialising
//! channel. It also keeps a local tick cache, modelling the per-JVM heap that makes
//! the baseline's memory grow linearly with the number of clients (Figure 7/§6.2
//! memory comparison).

use std::collections::VecDeque;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use defcon_events::event::now_ns;
use defcon_metrics::LatencyHistogram;
use defcon_trading::{PairsTradeStats, SignalDirection};
use defcon_workload::{Order, OrderSide, SymbolPair, Tick};

use crate::transport::{BaselineMessage, SerializingChannel};

/// Metrics collected by one agent, shared with the platform harness.
#[derive(Debug, Default)]
pub struct AgentMetrics {
    /// Ticks received (after deserialisation).
    pub ticks_received: AtomicU64,
    /// Ticks that survived the local pair filter.
    pub ticks_matched: AtomicU64,
    /// Orders sent to the ORS.
    pub orders_sent: AtomicU64,
    /// Strategy processing time per relevant tick (the `processing` series of
    /// Figure 9), in nanoseconds.
    pub processing: LatencyHistogram,
    /// Time from tick creation at the feed to the order decision (the
    /// `ticks+processing` series of Figure 9).
    pub tick_to_decision: LatencyHistogram,
    /// Estimated bytes held by the agent's local tick cache.
    pub cache_bytes: AtomicU64,
}

/// A per-client strategy agent.
pub struct StrategyAgent {
    id: u64,
    pair: SymbolPair,
    stats: PairsTradeStats,
    contrarian: bool,
    quantity: u64,
    cache_capacity: usize,
    cache: VecDeque<Tick>,
    metrics: Arc<AgentMetrics>,
}

impl StrategyAgent {
    /// Creates an agent monitoring `pair`.
    pub fn new(
        id: u64,
        pair: SymbolPair,
        cache_capacity: usize,
        metrics: Arc<AgentMetrics>,
    ) -> Self {
        StrategyAgent {
            id,
            pair,
            stats: PairsTradeStats::standard(),
            contrarian: id % 2 == 1,
            quantity: 100,
            cache_capacity,
            cache: VecDeque::new(),
            metrics,
        }
    }

    /// Runs the agent loop: receive ticks from `market_data`, send orders to `ors`,
    /// stop on `Shutdown` (or when the feed disconnects).
    pub fn run(mut self, market_data: SerializingChannel, ors: SerializingChannel) {
        let mut idle_rounds = 0u32;
        loop {
            let Some(message) = market_data.recv(Duration::from_millis(200)) else {
                // Feed idle or disconnected; give up after ten seconds of silence so
                // that a crashed driver never leaks agent threads.
                idle_rounds += 1;
                if idle_rounds > 50 {
                    break;
                }
                continue;
            };
            idle_rounds = 0;
            match message {
                BaselineMessage::Tick { tick, sent_ns: _ } => {
                    self.metrics.ticks_received.fetch_add(1, Ordering::Relaxed);
                    self.cache_tick(tick.clone());
                    self.handle_tick(tick, &ors);
                }
                BaselineMessage::Shutdown => break,
                // Agents ignore trade notifications in this workload.
                _ => {}
            }
        }
    }

    /// Processes one tick exactly as the threaded loop does; exposed for tests.
    pub fn handle_tick(&mut self, tick: Tick, ors: &SerializingChannel) {
        // Local filtering: this is the per-agent work that the paper identifies as
        // Marketcetera's scalability bottleneck. Every agent runs this for every
        // tick of every symbol.
        if !self.pair.contains(&tick.symbol) {
            return;
        }
        self.metrics.ticks_matched.fetch_add(1, Ordering::Relaxed);

        let processing_start = now_ns();
        let signal = if tick.symbol == self.pair.first {
            self.stats.update_first(tick.price)
        } else {
            self.stats.update_second(tick.price)
        };
        let Some(signal) = signal else {
            return;
        };

        // Decide the order exactly as the DEFCon trader does, so both platforms
        // produce comparable order flow.
        let (buy_symbol, buy_price) = match signal.direction {
            SignalDirection::FirstOverpriced => (self.pair.second.clone(), signal.price_second),
            SignalDirection::FirstUnderpriced => (self.pair.first.clone(), signal.price_first),
        };
        let side = if self.contrarian {
            OrderSide::Sell
        } else {
            OrderSide::Buy
        };
        let price = match side {
            OrderSide::Buy => buy_price * 1.001,
            OrderSide::Sell => buy_price * 0.999,
        };
        let decided_ns = now_ns();
        self.metrics
            .processing
            .record(decided_ns.saturating_sub(processing_start));
        self.metrics
            .tick_to_decision
            .record(decided_ns.saturating_sub(tick.timestamp_ns));

        let order = Order {
            trader: self.id,
            symbol: buy_symbol,
            side,
            price,
            quantity: self.quantity,
            origin_ns: tick.timestamp_ns,
        };
        ors.send(&BaselineMessage::Order {
            order,
            tick_created_ns: tick.timestamp_ns,
            decided_ns,
        });
        self.metrics.orders_sent.fetch_add(1, Ordering::Relaxed);
    }

    fn cache_tick(&mut self, tick: Tick) {
        // The agent's private market-data cache: every JVM keeps its own copy.
        const TICK_FOOTPRINT: u64 = 64;
        self.cache.push_back(tick);
        self.metrics
            .cache_bytes
            .fetch_add(TICK_FOOTPRINT, Ordering::Relaxed);
        while self.cache.len() > self.cache_capacity {
            self.cache.pop_front();
            self.metrics
                .cache_bytes
                .fetch_sub(TICK_FOOTPRINT, Ordering::Relaxed);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_workload::{Symbol, SymbolUniverse, TickGenerator, TickGeneratorConfig};

    fn pair() -> SymbolPair {
        SymbolPair::new(Symbol::new("MSFT"), Symbol::new("GOOG"))
    }

    #[test]
    fn irrelevant_ticks_are_filtered_locally() {
        let metrics = Arc::new(AgentMetrics::default());
        let mut agent = StrategyAgent::new(0, pair(), 100, Arc::clone(&metrics));
        let ors = SerializingChannel::new(16, Duration::ZERO);
        agent.handle_tick(
            Tick {
                sequence: 0,
                symbol: Symbol::new("AAPL"),
                price: 10.0,
                timestamp_ns: 0,
            },
            &ors,
        );
        assert_eq!(metrics.ticks_matched.load(Ordering::Relaxed), 0);
        assert_eq!(ors.queued(), 0);
    }

    #[test]
    fn excursions_generate_orders() {
        let metrics = Arc::new(AgentMetrics::default());
        let mut agent = StrategyAgent::new(0, pair(), 100, Arc::clone(&metrics));
        let ors = SerializingChannel::new(1024, Duration::ZERO);

        let universe = SymbolUniverse::standard(2);
        let mut generator = TickGenerator::new(universe, TickGeneratorConfig::default());
        for _ in 0..1_000 {
            let mut tick = generator.next_tick();
            tick.timestamp_ns = now_ns();
            agent.handle_tick(tick, &ors);
        }
        assert!(metrics.orders_sent.load(Ordering::Relaxed) > 0);
        assert!(metrics.processing.count() > 0);
        assert!(metrics.tick_to_decision.count() > 0);
    }

    #[test]
    fn cache_is_bounded() {
        let metrics = Arc::new(AgentMetrics::default());
        let mut agent = StrategyAgent::new(0, pair(), 10, Arc::clone(&metrics));
        for i in 0..100 {
            agent.cache_tick(Tick {
                sequence: i,
                symbol: Symbol::new("MSFT"),
                price: 1.0,
                timestamp_ns: 0,
            });
        }
        assert_eq!(metrics.cache_bytes.load(Ordering::Relaxed), 10 * 64);
    }
}
