//! Isolates and per-isolate duplication of shared mutable state.
//!
//! §4.2 ("Automatic runtime injection"): "When a static field can be cloned without
//! creating references that are shared with the original, we do an on-demand deep
//! copy and create a per-unit reference." The [`IsolateRegistry`] reproduces that
//! mechanism: each isolate (processing unit) sees its own copy of every duplicated
//! field, created lazily from the field's initial value on first access.

use std::collections::HashMap;
use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};

use parking_lot::RwLock;

use crate::error::SecurityException;

/// Identifier of an isolation domain (one per processing unit).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct IsolateId(u64);

static ISOLATE_SEQUENCE: AtomicU64 = AtomicU64::new(1);

impl IsolateId {
    /// Allocates a fresh isolate identifier.
    pub fn next() -> Self {
        IsolateId(ISOLATE_SEQUENCE.fetch_add(1, Ordering::Relaxed))
    }

    /// The identifier reserved for the trusted DEFCon engine itself.
    pub fn engine() -> Self {
        IsolateId(0)
    }

    /// Returns `true` if this is the trusted engine isolate.
    pub fn is_engine(&self) -> bool {
        self.0 == 0
    }

    /// Returns the raw value.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for IsolateId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_engine() {
            write!(f, "isolate:engine")
        } else {
            write!(f, "isolate:{}", self.0)
        }
    }
}

/// Per-isolate copies of duplicated "static fields".
///
/// Field values are opaque byte vectors: the registry does not interpret them, it
/// only guarantees that writes from one isolate are never observable from another —
/// which is exactly the storage-channel closure the paper's field-cloning aspect
/// provides.
#[derive(Debug, Default)]
pub struct IsolateRegistry {
    /// Initial values of registered fields (the "original" static field).
    initial: RwLock<HashMap<String, Vec<u8>>>,
    /// Per-isolate copies, created on demand.
    copies: RwLock<HashMap<(IsolateId, String), Vec<u8>>>,
    /// Known isolates.
    isolates: RwLock<Vec<IsolateId>>,
}

impl IsolateRegistry {
    /// Creates an empty registry.
    pub fn new() -> Self {
        IsolateRegistry::default()
    }

    /// Registers a new isolate and returns its identifier.
    pub fn create_isolate(&self) -> IsolateId {
        let id = IsolateId::next();
        self.isolates.write().push(id);
        id
    }

    /// Removes an isolate and frees all of its duplicated state.
    pub fn destroy_isolate(&self, isolate: IsolateId) {
        self.isolates.write().retain(|i| *i != isolate);
        self.copies
            .write()
            .retain(|(owner, _), _| *owner != isolate);
    }

    /// Returns the number of live isolates.
    pub fn isolate_count(&self) -> usize {
        self.isolates.read().len()
    }

    /// Registers a duplicated field with its initial value.
    pub fn register_field(&self, field: impl Into<String>, initial_value: Vec<u8>) {
        self.initial.write().insert(field.into(), initial_value);
    }

    /// Reads an isolate's copy of a duplicated field, creating it from the initial
    /// value on first access.
    pub fn read_field(
        &self,
        isolate: IsolateId,
        field: &str,
    ) -> Result<Vec<u8>, SecurityException> {
        if let Some(copy) = self.copies.read().get(&(isolate, field.to_string())) {
            return Ok(copy.clone());
        }
        let initial = self.initial.read().get(field).cloned().ok_or_else(|| {
            SecurityException::new(field, "field is not registered for duplication")
        })?;
        self.copies
            .write()
            .insert((isolate, field.to_string()), initial.clone());
        Ok(initial)
    }

    /// Writes an isolate's copy of a duplicated field.
    pub fn write_field(
        &self,
        isolate: IsolateId,
        field: &str,
        value: Vec<u8>,
    ) -> Result<(), SecurityException> {
        if !self.initial.read().contains_key(field) {
            return Err(SecurityException::new(
                field,
                "field is not registered for duplication",
            ));
        }
        self.copies
            .write()
            .insert((isolate, field.to_string()), value);
        Ok(())
    }

    /// Total bytes held in per-isolate copies: the "weaving framework" memory
    /// overhead that Figure 7 attributes to isolation.
    pub fn duplicated_bytes(&self) -> usize {
        self.copies
            .read()
            .iter()
            .map(|((_, name), value)| name.len() + value.len() + 24)
            .sum()
    }

    /// Number of per-isolate field copies currently materialised.
    pub fn copy_count(&self) -> usize {
        self.copies.read().len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn engine_isolate_is_distinguished() {
        assert!(IsolateId::engine().is_engine());
        assert!(!IsolateId::next().is_engine());
        assert_eq!(IsolateId::engine().to_string(), "isolate:engine");
    }

    #[test]
    fn isolates_get_independent_copies() {
        let registry = IsolateRegistry::new();
        registry.register_field("Thread.threadSeqNum", vec![0]);
        let a = registry.create_isolate();
        let b = registry.create_isolate();

        // Both start from the initial value.
        assert_eq!(
            registry.read_field(a, "Thread.threadSeqNum").unwrap(),
            vec![0]
        );
        assert_eq!(
            registry.read_field(b, "Thread.threadSeqNum").unwrap(),
            vec![0]
        );

        // A write by isolate a is invisible to isolate b: the storage channel that
        // the paper describes (§4, exploitation route 1) is closed.
        registry
            .write_field(a, "Thread.threadSeqNum", vec![42])
            .unwrap();
        assert_eq!(
            registry.read_field(a, "Thread.threadSeqNum").unwrap(),
            vec![42]
        );
        assert_eq!(
            registry.read_field(b, "Thread.threadSeqNum").unwrap(),
            vec![0]
        );
    }

    #[test]
    fn unregistered_fields_raise_security_exception() {
        let registry = IsolateRegistry::new();
        let a = registry.create_isolate();
        assert!(registry.read_field(a, "unknown").is_err());
        assert!(registry.write_field(a, "unknown", vec![1]).is_err());
    }

    #[test]
    fn destroy_isolate_frees_copies() {
        let registry = IsolateRegistry::new();
        registry.register_field("f", vec![1, 2, 3]);
        let a = registry.create_isolate();
        let b = registry.create_isolate();
        registry.read_field(a, "f").unwrap();
        registry.read_field(b, "f").unwrap();
        assert_eq!(registry.copy_count(), 2);
        assert_eq!(registry.isolate_count(), 2);

        registry.destroy_isolate(a);
        assert_eq!(registry.copy_count(), 1);
        assert_eq!(registry.isolate_count(), 1);
    }

    #[test]
    fn duplicated_bytes_grow_with_isolates() {
        let registry = IsolateRegistry::new();
        registry.register_field("big", vec![0u8; 1000]);
        let before = registry.duplicated_bytes();
        for _ in 0..10 {
            let isolate = registry.create_isolate();
            registry.read_field(isolate, "big").unwrap();
        }
        let after = registry.duplicated_bytes();
        assert!(after >= before + 10 * 1000);
    }
}
