//! Security exceptions raised by the isolation runtime.

use std::fmt;

/// Raised when a processing unit attempts an operation that would violate isolation:
/// reaching a non-white-listed target, synchronising on a shared object, or touching
/// another isolate's duplicated state.
///
/// This is the Rust rendering of the `SecurityException` the paper's interceptors
/// throw (§4.2, "Automatic runtime injection").
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct SecurityException {
    /// The target or operation that was blocked.
    pub target: String,
    /// Why the access was denied.
    pub reason: String,
}

impl SecurityException {
    /// Creates a new security exception.
    pub fn new(target: impl Into<String>, reason: impl Into<String>) -> Self {
        SecurityException {
            target: target.into(),
            reason: reason.into(),
        }
    }
}

impl fmt::Display for SecurityException {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "security exception: access to `{}` denied: {}",
            self.target, self.reason
        )
    }
}

impl std::error::Error for SecurityException {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_mentions_target_and_reason() {
        let e = SecurityException::new("java.lang.Thread.threadSeqNum", "mutable static field");
        let s = e.to_string();
        assert!(s.contains("threadSeqNum"));
        assert!(s.contains("mutable static field"));
    }

    #[test]
    fn is_std_error() {
        fn takes_error<E: std::error::Error>(_e: E) {}
        takes_error(SecurityException::new("t", "r"));
    }
}
