//! The `NeverShared` synchronisation discipline (§4.3).
//!
//! Every Java object carries a monitor that can be used as a one-bit covert channel
//! between isolates, even if the object itself is immutable. DEFCon therefore only
//! allows units to synchronise on types that are guaranteed never to be shared
//! between units — indicated by implementing the `NeverShared` tagging interface.
//!
//! In Rust there are no implicit per-object monitors, so the covert channel does not
//! exist in the first place; what this module preserves is the *policy object* and
//! the runtime check, so that the engine can expose the same discipline to units
//! that request explicit synchronisation, and so that the isolation-overhead
//! experiments exercise the same check the paper's aspect injects.

use std::marker::PhantomData;
use std::sync::atomic::{AtomicU64, Ordering};

use crate::error::SecurityException;

/// Marker trait for types whose instances are never shared between units.
///
/// Mirrors the paper's `NeverShared` tagging interface. A type may implement it as
/// long as (a) the engine prevents instances being put into events, (b) no
/// white-listed native path can hand the same instance to two units and (c) no
/// white-listed static field has this type.
pub trait NeverShared {}

/// A per-unit scratch value; the canonical `NeverShared` implementor.
///
/// Units that need a lock target or mutable scratch state can use `UnitLocal<T>`;
/// the engine never places these in events, satisfying requirement (a) above.
#[derive(Debug, Default)]
pub struct UnitLocal<T> {
    value: T,
}

impl<T> UnitLocal<T> {
    /// Wraps a value as unit-local state.
    pub fn new(value: T) -> Self {
        UnitLocal { value }
    }

    /// Returns a shared reference to the value.
    pub fn get(&self) -> &T {
        &self.value
    }

    /// Returns a mutable reference to the value.
    pub fn get_mut(&mut self) -> &mut T {
        &mut self.value
    }

    /// Consumes the wrapper, returning the value.
    pub fn into_inner(self) -> T {
        self.value
    }
}

impl<T> NeverShared for UnitLocal<T> {}

/// A stand-in for objects that *are* shared between units (interned strings,
/// `Class` objects, frozen event data): synchronising on these from unit code must
/// be rejected.
#[derive(Debug, Clone, Default)]
pub struct SharedString {
    /// The interned text.
    pub text: String,
    _not_never_shared: PhantomData<()>,
}

impl SharedString {
    /// Creates a shared (interned) string.
    pub fn new(text: impl Into<String>) -> Self {
        SharedString {
            text: text.into(),
            _not_never_shared: PhantomData,
        }
    }
}

/// Runtime guard deciding whether a synchronisation attempt is allowed.
///
/// The static rule is: synchronisation from unit code is allowed only on types that
/// implement [`NeverShared`]; the trusted engine may synchronise on anything. The
/// guard also counts checks so that the isolation-overhead experiments can report
/// how often the injected check fires.
#[derive(Debug, Default)]
pub struct SyncGuard {
    checks: AtomicU64,
    violations: AtomicU64,
}

impl SyncGuard {
    /// Creates a new guard.
    pub fn new() -> Self {
        SyncGuard::default()
    }

    /// Checks a synchronisation attempt on a `NeverShared` type: always allowed.
    pub fn check_never_shared<T: NeverShared + ?Sized>(
        &self,
        _target: &T,
    ) -> Result<(), SecurityException> {
        self.checks.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }

    /// Checks a synchronisation attempt on a potentially shared object.
    ///
    /// `from_unit` is `true` when the caller is unit code (the woven aspect knows
    /// the caller's classloader; our engine passes the unit flag explicitly).
    pub fn check_shared(
        &self,
        description: &str,
        from_unit: bool,
    ) -> Result<(), SecurityException> {
        self.checks.fetch_add(1, Ordering::Relaxed);
        if from_unit {
            self.violations.fetch_add(1, Ordering::Relaxed);
            Err(SecurityException::new(
                description,
                "units may only synchronise on NeverShared types (§4.3)",
            ))
        } else {
            Ok(())
        }
    }

    /// Number of checks performed.
    pub fn checks(&self) -> u64 {
        self.checks.load(Ordering::Relaxed)
    }

    /// Number of rejected synchronisation attempts.
    pub fn violations(&self) -> u64 {
        self.violations.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn unit_local_is_never_shared_and_usable() {
        let mut local = UnitLocal::new(vec![1, 2, 3]);
        local.get_mut().push(4);
        assert_eq!(local.get().len(), 4);
        assert_eq!(local.into_inner(), vec![1, 2, 3, 4]);
    }

    #[test]
    fn sync_on_never_shared_is_allowed() {
        let guard = SyncGuard::new();
        let local = UnitLocal::new(0u32);
        assert!(guard.check_never_shared(&local).is_ok());
        assert_eq!(guard.checks(), 1);
        assert_eq!(guard.violations(), 0);
    }

    #[test]
    fn sync_on_shared_from_unit_is_denied() {
        let guard = SyncGuard::new();
        let interned = SharedString::new("MSFT");
        let result = guard.check_shared(&interned.text, true);
        assert!(result.is_err());
        assert_eq!(guard.violations(), 1);
    }

    #[test]
    fn engine_may_sync_on_shared_objects() {
        let guard = SyncGuard::new();
        assert!(guard.check_shared("engine internal lock", false).is_ok());
        assert_eq!(guard.violations(), 0);
        assert_eq!(guard.checks(), 1);
    }
}
