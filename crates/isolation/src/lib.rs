//! Isolation substrate: a Rust model of DEFCon's light-weight Java isolation (§4).
//!
//! The paper isolates event processing units *within one address space* by
//! (1) statically analysing which "dangerous targets" of the JDK — static fields,
//! native methods and synchronisation primitives — are reachable from unit code,
//! (2) white-listing the provably safe ones, and (3) weaving runtime interceptors
//! into the remaining code paths, which either duplicate state per isolate or raise
//! a security exception.
//!
//! A Rust reproduction has no JVM to instrument; the Rust ownership and module
//! system already guarantees that units (plain structs implementing a trait) cannot
//! reach each other's state except through the engine. What this crate preserves is
//! the *behavioural* and *cost* model of the paper's methodology, so that the
//! evaluation can compare configurations with and without isolation:
//!
//! * [`target`] and [`analysis`] model the static-analysis pipeline of §4.2 — the
//!   catalog of dangerous targets, dependency trimming, reachability, heuristic
//!   white-listing and manual white-listing — and reproduce the funnel of counts the
//!   paper reports (thousands of targets → hundreds needing interception → tens
//!   needing manual review).
//! * [`isolate`] provides per-isolate duplication of mutable shared ("static")
//!   state, the runtime effect of the paper's field-cloning interceptors.
//! * [`interceptor`] provides the runtime access checks charged on the engine's hot
//!   paths when isolation is enabled (the ~20% overhead of Figures 5 and 6).
//! * [`never_shared`] models the `NeverShared` tagging interface used to close the
//!   synchronisation covert channel (§4.3).
//!
//! The engine consumes all of this through the [`IsolationRuntime`] facade.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod analysis;
pub mod error;
pub mod interceptor;
pub mod isolate;
pub mod never_shared;
pub mod target;

pub use analysis::{AnalysisReport, ClassGraph, StaticAnalysis};
pub use error::SecurityException;
pub use interceptor::{AccessDecision, InterceptorTable, IsolationRuntime, IsolationStats};
pub use isolate::{IsolateId, IsolateRegistry};
pub use never_shared::{NeverShared, SharedString, SyncGuard, UnitLocal};
pub use target::{Target, TargetCatalog, TargetDisposition, TargetKind};
