//! The catalog of potentially dangerous targets.
//!
//! §4 identifies three ways in which Java classes can exchange information through
//! unprotected shared state: static fields (~4,000 in OpenJDK 6), native methods
//! (~2,000) and synchronisation primitives. This module models such *targets* as
//! data so that the static-analysis pipeline of §4.2 can be reproduced and tested
//! without a JVM.

use std::collections::BTreeMap;
use std::fmt;

/// The kind of a dangerous target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum TargetKind {
    /// A mutable (or potentially mutable) static field.
    StaticField,
    /// A native method that may expose global JVM state.
    NativeMethod,
    /// A synchronisation point (a `synchronized` method or block on a potentially
    /// shared object).
    SyncPrimitive,
}

impl fmt::Display for TargetKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            TargetKind::StaticField => "static field",
            TargetKind::NativeMethod => "native method",
            TargetKind::SyncPrimitive => "synchronisation",
        };
        f.write_str(s)
    }
}

/// What the analysis / runtime decided to do with a target.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum TargetDisposition {
    /// Not yet classified.
    Unclassified,
    /// Unreachable from unit code; eliminated by the dependency analysis.
    Eliminated,
    /// White-listed by a heuristic (constant, guarded by the security framework,
    /// write-once private field, ...).
    WhitelistedHeuristic,
    /// White-listed after manual inspection (the "52 targets in four days" of §4.2).
    WhitelistedManual,
    /// Intercepted at runtime: static fields are duplicated per isolate.
    DuplicatePerIsolate,
    /// Intercepted at runtime: access from unit code raises a security exception.
    Deny,
}

/// One potentially dangerous target.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Target {
    /// Fully qualified name, e.g. `java.lang.Thread.threadSeqNum`.
    pub name: String,
    /// The class that declares this target.
    pub class: String,
    /// The kind of target.
    pub kind: TargetKind,
    /// Whether the target is declared `final` and of an immutable type (strings,
    /// boxed primitives); such targets are safely shareable constants.
    pub immutable_constant: bool,
    /// Whether access is already guarded by the security framework (e.g. `Unsafe`).
    pub security_guarded: bool,
    /// Whether the field is private and written exactly once (heuristically safe).
    pub private_write_once: bool,
    /// Whether the declaring type can implement `NeverShared` (§4.3) — instances are
    /// never shared between units, so synchronisation on it is harmless.
    pub never_shared_type: bool,
    /// How the analysis / operator classified the target.
    pub disposition: TargetDisposition,
}

impl Target {
    /// Creates an unclassified target.
    pub fn new(class: impl Into<String>, member: impl AsRef<str>, kind: TargetKind) -> Self {
        let class = class.into();
        Target {
            name: format!("{class}.{}", member.as_ref()),
            class,
            kind,
            immutable_constant: false,
            security_guarded: false,
            private_write_once: false,
            never_shared_type: false,
            disposition: TargetDisposition::Unclassified,
        }
    }

    /// Marks the target as a final immutable constant.
    pub fn immutable_constant(mut self) -> Self {
        self.immutable_constant = true;
        self
    }

    /// Marks the target as guarded by the security framework.
    pub fn security_guarded(mut self) -> Self {
        self.security_guarded = true;
        self
    }

    /// Marks the target as a private, write-once field.
    pub fn private_write_once(mut self) -> Self {
        self.private_write_once = true;
        self
    }

    /// Marks the declaring type as eligible for `NeverShared`.
    pub fn never_shared_type(mut self) -> Self {
        self.never_shared_type = true;
        self
    }
}

/// A catalog of targets indexed by name.
#[derive(Debug, Clone, Default)]
pub struct TargetCatalog {
    targets: BTreeMap<String, Target>,
}

impl TargetCatalog {
    /// Creates an empty catalog.
    pub fn new() -> Self {
        TargetCatalog::default()
    }

    /// Adds a target to the catalog, replacing any target with the same name.
    pub fn add(&mut self, target: Target) {
        self.targets.insert(target.name.clone(), target);
    }

    /// Looks up a target by fully qualified name.
    pub fn get(&self, name: &str) -> Option<&Target> {
        self.targets.get(name)
    }

    /// Returns a mutable reference to a target by name.
    pub fn get_mut(&mut self, name: &str) -> Option<&mut Target> {
        self.targets.get_mut(name)
    }

    /// Returns the number of targets.
    pub fn len(&self) -> usize {
        self.targets.len()
    }

    /// Returns `true` if the catalog is empty.
    pub fn is_empty(&self) -> bool {
        self.targets.is_empty()
    }

    /// Iterates over all targets.
    pub fn iter(&self) -> impl Iterator<Item = &Target> {
        self.targets.values()
    }

    /// Iterates mutably over all targets.
    pub fn iter_mut(&mut self) -> impl Iterator<Item = &mut Target> {
        self.targets.values_mut()
    }

    /// Returns the targets declared by a given class.
    pub fn targets_of_class<'a>(&'a self, class: &'a str) -> impl Iterator<Item = &'a Target> {
        self.targets.values().filter(move |t| t.class == class)
    }

    /// Counts targets by kind.
    pub fn count_by_kind(&self, kind: TargetKind) -> usize {
        self.targets.values().filter(|t| t.kind == kind).count()
    }

    /// Counts targets by disposition.
    pub fn count_by_disposition(&self, disposition: TargetDisposition) -> usize {
        self.targets
            .values()
            .filter(|t| t.disposition == disposition)
            .count()
    }

    /// Builds a synthetic catalog with the same shape as OpenJDK 6 as reported in
    /// §4: roughly 4,000 static fields and 2,000 native methods spread over a class
    /// population, with a realistic fraction of constants, security-guarded members
    /// and write-once private fields, plus synchronisation targets on a handful of
    /// never-shared JDK types.
    ///
    /// `classes` controls the size of the synthetic "JDK"; the default used by the
    /// analysis experiment is 1,000 classes which yields the paper's order of
    /// magnitude.
    pub fn synthetic_jdk(classes: usize) -> Self {
        let mut catalog = TargetCatalog::new();
        for c in 0..classes {
            let package = match c % 10 {
                0 | 1 => "java.lang",
                2 | 3 => "java.util",
                4 => "java.io",
                5 => "java.net",
                6 => "java.security",
                7 => "java.lang.reflect",
                8 => "javax.swing",
                _ => "java.awt",
            };
            let class = format!("{package}.C{c}");

            // ~4 static fields per class -> ~4000 for 1000 classes.
            for f in 0..4 {
                let mut t = Target::new(&class, format!("field{f}"), TargetKind::StaticField);
                // A third of static fields are final constants; a tenth are private
                // write-once caches; the sun.misc.Unsafe-like members are guarded.
                if f == 0 {
                    t = t.immutable_constant();
                }
                if f == 1 && c % 10 == 0 {
                    t = t.private_write_once();
                }
                if c % 97 == 0 {
                    t = t.security_guarded();
                }
                catalog.add(t);
            }

            // ~2 native methods per class -> ~2000.
            for m in 0..2 {
                let mut t = Target::new(&class, format!("native{m}()"), TargetKind::NativeMethod);
                if c % 97 == 0 {
                    t = t.security_guarded();
                }
                catalog.add(t);
            }

            // One synchronisation target on a subset of classes; most of those types
            // are never shared between units (StringBuffer, ClassLoader, ...).
            if c % 5 == 0 {
                let mut t = Target::new(&class, "synchronized()", TargetKind::SyncPrimitive);
                if c % 10 == 0 {
                    t = t.never_shared_type();
                }
                catalog.add(t);
            }
        }
        catalog
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn add_get_and_replace() {
        let mut catalog = TargetCatalog::new();
        assert!(catalog.is_empty());
        catalog.add(Target::new(
            "java.lang.Thread",
            "threadSeqNum",
            TargetKind::StaticField,
        ));
        assert_eq!(catalog.len(), 1);
        assert!(catalog.get("java.lang.Thread.threadSeqNum").is_some());
        // Replacing keeps the count stable.
        catalog.add(
            Target::new("java.lang.Thread", "threadSeqNum", TargetKind::StaticField)
                .immutable_constant(),
        );
        assert_eq!(catalog.len(), 1);
        assert!(
            catalog
                .get("java.lang.Thread.threadSeqNum")
                .unwrap()
                .immutable_constant
        );
    }

    #[test]
    fn synthetic_jdk_matches_papers_order_of_magnitude() {
        let catalog = TargetCatalog::synthetic_jdk(1000);
        let static_fields = catalog.count_by_kind(TargetKind::StaticField);
        let native_methods = catalog.count_by_kind(TargetKind::NativeMethod);
        // §4: "about 4,000 static fields" and "more than 2,000 native methods".
        assert!((3500..=4500).contains(&static_fields), "{static_fields}");
        assert!((1800..=2200).contains(&native_methods), "{native_methods}");
        assert!(catalog.count_by_kind(TargetKind::SyncPrimitive) > 100);
    }

    #[test]
    fn targets_of_class_filters() {
        let catalog = TargetCatalog::synthetic_jdk(100);
        let class = "java.lang.C0";
        let members: Vec<_> = catalog.targets_of_class(class).collect();
        assert!(!members.is_empty());
        assert!(members.iter().all(|t| t.class == class));
    }

    #[test]
    fn all_targets_start_unclassified() {
        let catalog = TargetCatalog::synthetic_jdk(50);
        assert_eq!(
            catalog.count_by_disposition(TargetDisposition::Unclassified),
            catalog.len()
        );
    }

    #[test]
    fn builder_flags() {
        let t = Target::new(
            "java.lang.String",
            "CASE_INSENSITIVE_ORDER",
            TargetKind::StaticField,
        )
        .immutable_constant()
        .security_guarded()
        .private_write_once()
        .never_shared_type();
        assert!(t.immutable_constant && t.security_guarded);
        assert!(t.private_write_once && t.never_shared_type);
        assert_eq!(t.name, "java.lang.String.CASE_INSENSITIVE_ORDER");
    }

    #[test]
    fn kind_display() {
        assert_eq!(TargetKind::StaticField.to_string(), "static field");
        assert_eq!(TargetKind::NativeMethod.to_string(), "native method");
        assert_eq!(TargetKind::SyncPrimitive.to_string(), "synchronisation");
    }
}
