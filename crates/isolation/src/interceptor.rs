//! Runtime interceptors and the isolation runtime facade.
//!
//! After the static analysis (§4.2) has classified every dangerous target, the
//! remaining unsafe ones are guarded at runtime: access from unit code either gets a
//! per-isolate duplicate of the state or raises a [`SecurityException`]. The
//! interceptors also impose the per-access cost that Figures 5 and 6 show as the
//! ~20% "labels+freeze+isolation" overhead; the engine charges that cost on its hot
//! paths through [`IsolationRuntime::intercept`].

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use crate::analysis::{ClassGraph, StaticAnalysis};
use crate::error::SecurityException;
use crate::isolate::{IsolateId, IsolateRegistry};
use crate::never_shared::SyncGuard;
use crate::target::{TargetCatalog, TargetDisposition};

/// The decision taken for one intercepted access.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum AccessDecision {
    /// The target is white-listed; access proceeds directly.
    Allowed,
    /// The target is a duplicated static field; the isolate sees its own copy.
    Duplicated,
    /// Access from unit code is denied.
    Denied,
}

/// Lookup table from target name to runtime policy, built from an analysed catalog.
#[derive(Debug, Clone, Default)]
pub struct InterceptorTable {
    policies: HashMap<String, TargetDisposition>,
}

impl InterceptorTable {
    /// Builds the table from an analysed catalog (targets still `Unclassified` are
    /// treated as denied — fail safe).
    pub fn from_catalog(catalog: &TargetCatalog) -> Self {
        let mut policies = HashMap::with_capacity(catalog.len());
        for target in catalog.iter() {
            policies.insert(target.name.clone(), target.disposition);
        }
        InterceptorTable { policies }
    }

    /// Returns the number of known targets.
    pub fn len(&self) -> usize {
        self.policies.len()
    }

    /// Returns `true` if the table is empty.
    pub fn is_empty(&self) -> bool {
        self.policies.is_empty()
    }

    /// Decides what to do with an access to `target` coming from unit code
    /// (`from_unit = true`) or from the trusted engine (`from_unit = false`).
    pub fn decide(&self, target: &str, from_unit: bool) -> AccessDecision {
        if !from_unit {
            // Call path 'D' in Figure 3: the DEFCON implementation is trusted.
            return AccessDecision::Allowed;
        }
        match self.policies.get(target) {
            Some(TargetDisposition::Eliminated)
            | Some(TargetDisposition::WhitelistedHeuristic)
            | Some(TargetDisposition::WhitelistedManual) => AccessDecision::Allowed,
            Some(TargetDisposition::DuplicatePerIsolate) => AccessDecision::Duplicated,
            // Unknown or unclassified targets and denied targets are blocked.
            Some(TargetDisposition::Deny) | Some(TargetDisposition::Unclassified) | None => {
                AccessDecision::Denied
            }
        }
    }
}

/// Counters describing the work done by the isolation runtime.
#[derive(Debug, Default)]
pub struct IsolationStats {
    intercepted: AtomicU64,
    allowed: AtomicU64,
    duplicated: AtomicU64,
    denied: AtomicU64,
}

impl IsolationStats {
    /// Total number of interception checks performed.
    pub fn intercepted(&self) -> u64 {
        self.intercepted.load(Ordering::Relaxed)
    }

    /// Checks that resulted in direct access.
    pub fn allowed(&self) -> u64 {
        self.allowed.load(Ordering::Relaxed)
    }

    /// Checks that were served from a per-isolate duplicate.
    pub fn duplicated(&self) -> u64 {
        self.duplicated.load(Ordering::Relaxed)
    }

    /// Checks that raised a security exception.
    pub fn denied(&self) -> u64 {
        self.denied.load(Ordering::Relaxed)
    }
}

/// The facade the DEFCon engine uses to apply isolation.
///
/// When disabled (the `no security` and `labels+freeze` configurations of the
/// evaluation), every operation is a no-op with near-zero cost. When enabled, each
/// guarded operation performs the same kind of bookkeeping the paper's woven aspects
/// perform: a table lookup, counters, and either pass-through, per-isolate state
/// duplication or a security exception.
#[derive(Debug, Clone)]
pub struct IsolationRuntime {
    enabled: bool,
    table: Arc<InterceptorTable>,
    registry: Arc<IsolateRegistry>,
    sync_guard: Arc<SyncGuard>,
    stats: Arc<IsolationStats>,
}

impl IsolationRuntime {
    /// An isolation runtime that never intercepts anything.
    pub fn disabled() -> Self {
        IsolationRuntime {
            enabled: false,
            table: Arc::new(InterceptorTable::default()),
            registry: Arc::new(IsolateRegistry::new()),
            sync_guard: Arc::new(SyncGuard::new()),
            stats: Arc::new(IsolationStats::default()),
        }
    }

    /// An isolation runtime built from an explicit interceptor table.
    pub fn with_table(table: InterceptorTable) -> Self {
        IsolationRuntime {
            enabled: true,
            table: Arc::new(table),
            registry: Arc::new(IsolateRegistry::new()),
            sync_guard: Arc::new(SyncGuard::new()),
            stats: Arc::new(IsolationStats::default()),
        }
    }

    /// An isolation runtime built by running the default static analysis over a
    /// synthetic JDK-sized catalog — the configuration used by the evaluation.
    pub fn standard() -> Self {
        let mut catalog = TargetCatalog::synthetic_jdk(1000);
        let graph = ClassGraph::synthetic_for(&catalog);
        let analysis = StaticAnalysis::with_default_whitelist(&catalog);
        analysis.run(&mut catalog, &graph);
        IsolationRuntime::with_table(InterceptorTable::from_catalog(&catalog))
    }

    /// Returns `true` if interception is active.
    pub fn is_enabled(&self) -> bool {
        self.enabled
    }

    /// Returns the isolate registry (for unit lifecycle management).
    pub fn registry(&self) -> &IsolateRegistry {
        &self.registry
    }

    /// Returns the synchronisation guard.
    pub fn sync_guard(&self) -> &SyncGuard {
        &self.sync_guard
    }

    /// Returns the runtime counters.
    pub fn stats(&self) -> &IsolationStats {
        &self.stats
    }

    /// Creates an isolate for a new processing unit. Returns the engine isolate when
    /// isolation is disabled, so callers need no special-casing.
    pub fn create_isolate(&self) -> IsolateId {
        if self.enabled {
            self.registry.create_isolate()
        } else {
            IsolateId::engine()
        }
    }

    /// Destroys an isolate, releasing its duplicated state.
    pub fn destroy_isolate(&self, isolate: IsolateId) {
        if self.enabled && !isolate.is_engine() {
            self.registry.destroy_isolate(isolate);
        }
    }

    /// The hot-path interception hook.
    ///
    /// The engine calls this once per guarded operation executed on behalf of unit
    /// code (reading an event part, adding a part, evaluating a subscription filter
    /// clause). The cost — an atomic increment plus a branch — models the woven
    /// advice executed around every intercepted JDK access in the paper's prototype.
    #[inline]
    pub fn intercept(&self) {
        if self.enabled {
            self.stats.intercepted.fetch_add(1, Ordering::Relaxed);
        }
    }

    /// Intercepts an access to a named dangerous target from unit code.
    pub fn access_target(
        &self,
        isolate: IsolateId,
        target: &str,
    ) -> Result<AccessDecision, SecurityException> {
        if !self.enabled {
            return Ok(AccessDecision::Allowed);
        }
        self.stats.intercepted.fetch_add(1, Ordering::Relaxed);
        let decision = self.table.decide(target, !isolate.is_engine());
        match decision {
            AccessDecision::Allowed => {
                self.stats.allowed.fetch_add(1, Ordering::Relaxed);
                Ok(AccessDecision::Allowed)
            }
            AccessDecision::Duplicated => {
                self.stats.duplicated.fetch_add(1, Ordering::Relaxed);
                Ok(AccessDecision::Duplicated)
            }
            AccessDecision::Denied => {
                self.stats.denied.fetch_add(1, Ordering::Relaxed);
                Err(SecurityException::new(
                    target,
                    "target is not white-listed for unit code",
                ))
            }
        }
    }

    /// Reads a duplicated static field on behalf of an isolate, registering the
    /// field with a default value on first use.
    pub fn read_duplicated_field(
        &self,
        isolate: IsolateId,
        field: &str,
    ) -> Result<Vec<u8>, SecurityException> {
        if !self.enabled {
            return Ok(Vec::new());
        }
        if self.registry.read_field(isolate, field).is_err() {
            self.registry.register_field(field, Vec::new());
        }
        self.registry.read_field(isolate, field)
    }

    /// Writes a duplicated static field on behalf of an isolate.
    pub fn write_duplicated_field(
        &self,
        isolate: IsolateId,
        field: &str,
        value: Vec<u8>,
    ) -> Result<(), SecurityException> {
        if !self.enabled {
            return Ok(());
        }
        if self
            .registry
            .write_field(isolate, field, value.clone())
            .is_err()
        {
            self.registry.register_field(field, Vec::new());
            return self.registry.write_field(isolate, field, value);
        }
        Ok(())
    }

    /// Memory attributable to isolation bookkeeping (Figure 7's weaving overhead):
    /// duplicated field copies plus a fixed per-table share.
    pub fn memory_overhead_bytes(&self) -> usize {
        if !self.enabled {
            return 0;
        }
        // Each table entry costs roughly a string plus a discriminant.
        let table_bytes = self.table.len() * 48;
        self.registry.duplicated_bytes() + table_bytes
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::{Target, TargetKind};

    fn small_table() -> InterceptorTable {
        let mut catalog = TargetCatalog::new();
        let mut safe = Target::new("java.lang.Object", "hashCode()", TargetKind::NativeMethod);
        safe.disposition = TargetDisposition::WhitelistedManual;
        catalog.add(safe);
        let mut dup = Target::new("java.lang.Thread", "threadSeqNum", TargetKind::StaticField);
        dup.disposition = TargetDisposition::DuplicatePerIsolate;
        catalog.add(dup);
        let mut deny = Target::new("java.lang.Runtime", "exec()", TargetKind::NativeMethod);
        deny.disposition = TargetDisposition::Deny;
        catalog.add(deny);
        InterceptorTable::from_catalog(&catalog)
    }

    #[test]
    fn engine_access_is_always_allowed() {
        let table = small_table();
        assert_eq!(
            table.decide("java.lang.Runtime.exec()", false),
            AccessDecision::Allowed
        );
        assert_eq!(
            table.decide("completely.unknown.Target", false),
            AccessDecision::Allowed
        );
    }

    #[test]
    fn unit_access_follows_dispositions_and_fails_safe() {
        let table = small_table();
        assert_eq!(
            table.decide("java.lang.Object.hashCode()", true),
            AccessDecision::Allowed
        );
        assert_eq!(
            table.decide("java.lang.Thread.threadSeqNum", true),
            AccessDecision::Duplicated
        );
        assert_eq!(
            table.decide("java.lang.Runtime.exec()", true),
            AccessDecision::Denied
        );
        // Unknown targets are denied, not allowed.
        assert_eq!(table.decide("not.in.table", true), AccessDecision::Denied);
    }

    #[test]
    fn disabled_runtime_is_a_no_op() {
        let runtime = IsolationRuntime::disabled();
        assert!(!runtime.is_enabled());
        let isolate = runtime.create_isolate();
        assert!(isolate.is_engine());
        assert_eq!(
            runtime.access_target(isolate, "anything").unwrap(),
            AccessDecision::Allowed
        );
        runtime.intercept();
        assert_eq!(runtime.stats().intercepted(), 0);
        assert_eq!(runtime.memory_overhead_bytes(), 0);
    }

    #[test]
    fn enabled_runtime_enforces_and_counts() {
        let runtime = IsolationRuntime::with_table(small_table());
        let isolate = runtime.create_isolate();
        assert!(!isolate.is_engine());

        assert!(runtime
            .access_target(isolate, "java.lang.Object.hashCode()")
            .is_ok());
        assert_eq!(
            runtime
                .access_target(isolate, "java.lang.Thread.threadSeqNum")
                .unwrap(),
            AccessDecision::Duplicated
        );
        assert!(runtime
            .access_target(isolate, "java.lang.Runtime.exec()")
            .is_err());

        assert_eq!(runtime.stats().intercepted(), 3);
        assert_eq!(runtime.stats().allowed(), 1);
        assert_eq!(runtime.stats().duplicated(), 1);
        assert_eq!(runtime.stats().denied(), 1);
    }

    #[test]
    fn duplicated_fields_are_per_isolate_through_the_runtime() {
        let runtime = IsolationRuntime::with_table(small_table());
        let a = runtime.create_isolate();
        let b = runtime.create_isolate();
        runtime
            .write_duplicated_field(a, "Thread.threadSeqNum", vec![7])
            .unwrap();
        assert_eq!(
            runtime
                .read_duplicated_field(a, "Thread.threadSeqNum")
                .unwrap(),
            vec![7]
        );
        assert_eq!(
            runtime
                .read_duplicated_field(b, "Thread.threadSeqNum")
                .unwrap(),
            Vec::<u8>::new()
        );
        assert!(runtime.memory_overhead_bytes() > 0);
    }

    #[test]
    fn standard_runtime_builds_from_synthetic_analysis() {
        let runtime = IsolationRuntime::standard();
        assert!(runtime.is_enabled());
        let isolate = runtime.create_isolate();
        // A denied target from the synthetic catalog: pick any native method in a
        // unit-visible package that is not a constant and not guarded.
        let result = runtime.access_target(isolate, "java.lang.C10.native0()");
        // Depending on the synthetic layout this is either denied or allowed, but
        // the call must never panic and must count exactly one interception.
        let _ = result;
        assert_eq!(runtime.stats().intercepted(), 1);
        assert!(runtime.memory_overhead_bytes() > 0);
    }

    #[test]
    fn destroy_isolate_is_safe_for_engine_and_unknown_ids() {
        let runtime = IsolationRuntime::with_table(small_table());
        runtime.destroy_isolate(IsolateId::engine());
        let isolate = runtime.create_isolate();
        runtime.destroy_isolate(isolate);
        runtime.destroy_isolate(isolate);
    }
}
