//! The static-analysis pipeline of §4.2.
//!
//! The paper's methodology proceeds in stages:
//!
//! 1. **Static dependency analysis** — trim every class not used by the DEFCon
//!    implementation or by the processing units (about 80% of the JDK disappears).
//! 2. **Reachability analysis** — compute every target transitively reachable from
//!    the white-listed classes that unit code may load, including dynamic dispatch.
//! 3. **Heuristic white-listing** — constants, `Unsafe`-style security-guarded
//!    members and write-once private fields are declared safe automatically.
//! 4. **Automatic runtime injection** — everything left is intercepted: static
//!    fields are duplicated per isolate, native methods raise security exceptions
//!    unless called from the trusted engine.
//! 5. **Manual white-listing** — a small number of frequently used targets
//!    (`Object.hashCode`, `Object.getClass`, ...) are reviewed by hand.
//!
//! [`StaticAnalysis::run`] executes these stages over a [`TargetCatalog`] and a
//! [`ClassGraph`], mutating target dispositions and returning an [`AnalysisReport`]
//! whose counts reproduce the funnel reported in the paper.

use std::collections::{BTreeMap, BTreeSet, VecDeque};

use crate::target::{TargetCatalog, TargetDisposition, TargetKind};

/// A class-level reference graph: which classes reference which other classes.
///
/// This is the level at which the paper's reachability analysis operates (a call to
/// a signature may execute any compatible subtype, so analysing at class granularity
/// over-approximates safely).
#[derive(Debug, Clone, Default)]
pub struct ClassGraph {
    edges: BTreeMap<String, BTreeSet<String>>,
}

impl ClassGraph {
    /// Creates an empty graph.
    pub fn new() -> Self {
        ClassGraph::default()
    }

    /// Adds a reference edge `from -> to`, registering both classes as nodes.
    pub fn add_edge(&mut self, from: impl Into<String>, to: impl Into<String>) {
        let to = to.into();
        self.edges.entry(to.clone()).or_default();
        self.edges.entry(from.into()).or_default().insert(to);
    }

    /// Registers a class with no outgoing references.
    pub fn add_class(&mut self, class: impl Into<String>) {
        self.edges.entry(class.into()).or_default();
    }

    /// Returns the classes directly referenced by `class`.
    pub fn references_of(&self, class: &str) -> impl Iterator<Item = &str> {
        self.edges
            .get(class)
            .into_iter()
            .flat_map(|set| set.iter().map(String::as_str))
    }

    /// Returns the number of classes known to the graph.
    pub fn class_count(&self) -> usize {
        self.edges.len()
    }

    /// Computes the set of classes transitively reachable from `roots`
    /// (breadth-first over reference edges), including the roots themselves.
    pub fn reachable_from<'a, I>(&self, roots: I) -> BTreeSet<String>
    where
        I: IntoIterator<Item = &'a str>,
    {
        let mut seen: BTreeSet<String> = BTreeSet::new();
        let mut queue: VecDeque<String> = VecDeque::new();
        for root in roots {
            if seen.insert(root.to_string()) {
                queue.push_back(root.to_string());
            }
        }
        while let Some(class) = queue.pop_front() {
            if let Some(next) = self.edges.get(&class) {
                for referenced in next {
                    if seen.insert(referenced.clone()) {
                        queue.push_back(referenced.clone());
                    }
                }
            }
        }
        seen
    }

    /// Builds a synthetic reference graph over the classes of a synthetic JDK
    /// catalog: classes reference a few neighbours within their package plus a
    /// handful of `java.lang` core classes, which is what makes `java.lang` roots
    /// reach a sizeable fraction of the catalog (as the paper observes).
    pub fn synthetic_for(catalog: &TargetCatalog) -> ClassGraph {
        let mut classes: BTreeSet<String> = BTreeSet::new();
        for target in catalog.iter() {
            classes.insert(target.class.clone());
        }
        let class_list: Vec<String> = classes.iter().cloned().collect();
        let mut graph = ClassGraph::new();
        for (i, class) in class_list.iter().enumerate() {
            graph.add_class(class.clone());
            // Reference the next two classes in the same package (locality).
            for step in 1..=2 {
                if let Some(next) = class_list.get(i + step) {
                    let same_package = package_of(class) == package_of(next);
                    if same_package {
                        graph.add_edge(class.clone(), next.clone());
                    }
                }
            }
            // Everything references a few core java.lang classes.
            for core in class_list
                .iter()
                .filter(|c| c.starts_with("java.lang."))
                .take(3)
            {
                if core != class {
                    graph.add_edge(class.clone(), core.clone());
                }
            }
            // java.lang classes reference java.util collections (transitive reach).
            if class.starts_with("java.lang.") {
                if let Some(util) = class_list.iter().find(|c| c.starts_with("java.util.")) {
                    graph.add_edge(class.clone(), util.clone());
                }
            }
        }
        graph
    }
}

fn package_of(class: &str) -> &str {
    class.rsplit_once('.').map(|(p, _)| p).unwrap_or("")
}

/// Counts produced by each stage of the analysis, mirroring the numbers quoted in
/// §4.2 of the paper.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct AnalysisReport {
    /// Total targets in the catalog before any analysis.
    pub total_targets: usize,
    /// Targets eliminated because their class is not used at all (`T_JDK`).
    pub eliminated: usize,
    /// Targets in classes used by the engine or by units (`T_DEFCon ∪ T_units`).
    pub used: usize,
    /// Targets transitively reachable from unit-visible classes (`T_units`).
    pub reachable_from_units: usize,
    /// Targets white-listed by heuristics.
    pub whitelisted_heuristic: usize,
    /// Targets white-listed manually.
    pub whitelisted_manual: usize,
    /// Targets intercepted with per-isolate duplication.
    pub duplicated_per_isolate: usize,
    /// Targets intercepted with deny (security exception on access from units).
    pub denied: usize,
}

impl AnalysisReport {
    /// Total number of targets that require runtime interception.
    pub fn intercepted(&self) -> usize {
        self.duplicated_per_isolate + self.denied
    }
}

/// Configuration and entry point for the static analysis.
#[derive(Debug, Clone)]
pub struct StaticAnalysis {
    /// Classes used by the trusted DEFCon engine (referenced targets stay usable by
    /// the engine but are invisible to units).
    pub engine_classes: Vec<String>,
    /// White-listed classes that unit code may load directly (the custom class
    /// loader white-list of §4.2); reachability is computed from these roots.
    pub unit_visible_classes: Vec<String>,
    /// Manually reviewed targets that are declared safe (§4.2 lists
    /// `Object.hashCode`, `Object.getClass`, `Double.longBitsToDouble`,
    /// `System.security`, ...).
    pub manual_whitelist: Vec<String>,
}

impl StaticAnalysis {
    /// Creates an analysis with the default unit-visible packages of the paper:
    /// units typically use `java.lang` and `java.util` only.
    pub fn with_default_whitelist(catalog: &TargetCatalog) -> Self {
        let mut unit_visible = Vec::new();
        let mut engine = Vec::new();
        let mut seen = BTreeSet::new();
        for target in catalog.iter() {
            if !seen.insert(target.class.clone()) {
                continue;
            }
            if (target.class.starts_with("java.lang.") && !target.class.contains("reflect"))
                || target.class.starts_with("java.util.")
            {
                unit_visible.push(target.class.clone());
            } else if target.class.starts_with("java.io.")
                || target.class.starts_with("java.security.")
            {
                engine.push(target.class.clone());
            }
        }
        StaticAnalysis {
            engine_classes: engine,
            unit_visible_classes: unit_visible,
            manual_whitelist: Vec::new(),
        }
    }

    /// Runs the full pipeline over `catalog`, mutating target dispositions, and
    /// returns the stage counts.
    pub fn run(&self, catalog: &mut TargetCatalog, graph: &ClassGraph) -> AnalysisReport {
        let mut report = AnalysisReport {
            total_targets: catalog.len(),
            ..AnalysisReport::default()
        };

        // Stage 1: dependency analysis. Classes reachable from either the engine or
        // the unit-visible classes are "used"; everything else is eliminated.
        let used_classes = graph.reachable_from(
            self.engine_classes
                .iter()
                .chain(self.unit_visible_classes.iter())
                .map(String::as_str),
        );

        // Stage 2: reachability from unit-visible roots only (T_units).
        let unit_reachable =
            graph.reachable_from(self.unit_visible_classes.iter().map(String::as_str));

        for target in catalog.iter_mut() {
            if !used_classes.contains(&target.class) {
                target.disposition = TargetDisposition::Eliminated;
                report.eliminated += 1;
                continue;
            }
            report.used += 1;

            if !unit_reachable.contains(&target.class) {
                // Only reachable by the trusted engine: no interception needed for
                // unit safety (call path 'D' in Figure 3 is engine-only).
                target.disposition = TargetDisposition::WhitelistedHeuristic;
                report.whitelisted_heuristic += 1;
                continue;
            }
            report.reachable_from_units += 1;

            // Stage 3: heuristic white-listing.
            if target.security_guarded
                || target.immutable_constant
                || target.private_write_once
                || (target.kind == TargetKind::SyncPrimitive && target.never_shared_type)
            {
                target.disposition = TargetDisposition::WhitelistedHeuristic;
                report.whitelisted_heuristic += 1;
                continue;
            }

            // Stage 5 (applied here for classification purposes): manual review.
            if self.manual_whitelist.contains(&target.name) {
                target.disposition = TargetDisposition::WhitelistedManual;
                report.whitelisted_manual += 1;
                continue;
            }

            // Stage 4: automatic runtime injection.
            target.disposition = match target.kind {
                // Static fields can be cloned per isolate.
                TargetKind::StaticField => TargetDisposition::DuplicatePerIsolate,
                // Native methods and residual synchronisation points are denied when
                // invoked from unit code.
                TargetKind::NativeMethod | TargetKind::SyncPrimitive => TargetDisposition::Deny,
            };
            match target.disposition {
                TargetDisposition::DuplicatePerIsolate => report.duplicated_per_isolate += 1,
                TargetDisposition::Deny => report.denied += 1,
                _ => unreachable!("disposition was just assigned"),
            }
        }
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::target::Target;

    fn analysed_catalog() -> (TargetCatalog, AnalysisReport) {
        let mut catalog = TargetCatalog::synthetic_jdk(1000);
        let graph = ClassGraph::synthetic_for(&catalog);
        let analysis = StaticAnalysis::with_default_whitelist(&catalog);
        let report = analysis.run(&mut catalog, &graph);
        (catalog, report)
    }

    #[test]
    fn funnel_shape_matches_paper() {
        let (_catalog, report) = analysed_catalog();
        // Thousands of targets in total.
        assert!(report.total_targets > 5_000, "{}", report.total_targets);
        // A large fraction is eliminated outright (the paper trims ~80% of the JDK;
        // our synthetic graph keeps java.lang/java.util plus engine packages).
        assert!(report.eliminated > 0);
        assert_eq!(report.eliminated + report.used, report.total_targets);
        // Hundreds (not thousands) of targets need runtime interception.
        assert!(report.intercepted() > 100, "{}", report.intercepted());
        assert!(
            report.intercepted() < report.used,
            "interception must be a strict subset of used targets"
        );
        // Heuristics white-list a substantial number of targets.
        assert!(report.whitelisted_heuristic > 100);
    }

    #[test]
    fn manual_whitelist_is_respected() {
        let mut catalog = TargetCatalog::new();
        catalog.add(Target::new(
            "java.lang.Object",
            "hashCode()",
            TargetKind::NativeMethod,
        ));
        catalog.add(Target::new(
            "java.lang.Object",
            "wait()",
            TargetKind::NativeMethod,
        ));
        let mut graph = ClassGraph::new();
        graph.add_class("java.lang.Object");

        let analysis = StaticAnalysis {
            engine_classes: vec![],
            unit_visible_classes: vec!["java.lang.Object".into()],
            manual_whitelist: vec!["java.lang.Object.hashCode()".into()],
        };
        let report = analysis.run(&mut catalog, &graph);
        assert_eq!(report.whitelisted_manual, 1);
        assert_eq!(report.denied, 1);
        assert_eq!(
            catalog
                .get("java.lang.Object.hashCode()")
                .unwrap()
                .disposition,
            TargetDisposition::WhitelistedManual
        );
        assert_eq!(
            catalog.get("java.lang.Object.wait()").unwrap().disposition,
            TargetDisposition::Deny
        );
    }

    #[test]
    fn unreachable_classes_are_eliminated() {
        let mut catalog = TargetCatalog::new();
        catalog.add(Target::new(
            "javax.swing.JFrame",
            "defaultLookAndFeel",
            TargetKind::StaticField,
        ));
        catalog.add(Target::new(
            "java.lang.String",
            "hash",
            TargetKind::StaticField,
        ));
        let mut graph = ClassGraph::new();
        graph.add_class("javax.swing.JFrame");
        graph.add_class("java.lang.String");

        let analysis = StaticAnalysis {
            engine_classes: vec![],
            unit_visible_classes: vec!["java.lang.String".into()],
            manual_whitelist: vec![],
        };
        let report = analysis.run(&mut catalog, &graph);
        assert_eq!(report.eliminated, 1);
        assert_eq!(
            catalog
                .get("javax.swing.JFrame.defaultLookAndFeel")
                .unwrap()
                .disposition,
            TargetDisposition::Eliminated
        );
    }

    #[test]
    fn static_fields_duplicate_and_native_methods_deny() {
        let mut catalog = TargetCatalog::new();
        catalog.add(Target::new(
            "java.lang.Thread",
            "threadSeqNum",
            TargetKind::StaticField,
        ));
        catalog.add(Target::new(
            "java.lang.Runtime",
            "availableProcessors()",
            TargetKind::NativeMethod,
        ));
        let mut graph = ClassGraph::new();
        graph.add_class("java.lang.Thread");
        graph.add_class("java.lang.Runtime");

        let analysis = StaticAnalysis {
            engine_classes: vec![],
            unit_visible_classes: vec!["java.lang.Thread".into(), "java.lang.Runtime".into()],
            manual_whitelist: vec![],
        };
        let report = analysis.run(&mut catalog, &graph);
        assert_eq!(report.duplicated_per_isolate, 1);
        assert_eq!(report.denied, 1);
    }

    #[test]
    fn never_shared_sync_targets_are_whitelisted() {
        let mut catalog = TargetCatalog::new();
        catalog.add(
            Target::new(
                "java.lang.StringBuffer",
                "synchronized()",
                TargetKind::SyncPrimitive,
            )
            .never_shared_type(),
        );
        catalog.add(Target::new(
            "java.lang.String",
            "synchronized()",
            TargetKind::SyncPrimitive,
        ));
        let mut graph = ClassGraph::new();
        graph.add_class("java.lang.StringBuffer");
        graph.add_class("java.lang.String");
        let analysis = StaticAnalysis {
            engine_classes: vec![],
            unit_visible_classes: vec!["java.lang.StringBuffer".into(), "java.lang.String".into()],
            manual_whitelist: vec![],
        };
        let report = analysis.run(&mut catalog, &graph);
        assert_eq!(report.whitelisted_heuristic, 1);
        // Interned strings are shared; synchronising on them stays denied (§4.3).
        assert_eq!(report.denied, 1);
    }

    #[test]
    fn reachability_is_transitive() {
        let mut graph = ClassGraph::new();
        graph.add_edge("a", "b");
        graph.add_edge("b", "c");
        graph.add_class("d");
        let reach = graph.reachable_from(["a"]);
        assert!(reach.contains("a") && reach.contains("b") && reach.contains("c"));
        assert!(!reach.contains("d"));
        assert_eq!(graph.class_count(), 4);
        assert_eq!(graph.references_of("a").count(), 1);
    }

    #[test]
    fn report_totals_are_consistent() {
        let (catalog, report) = analysed_catalog();
        let classified_unreached = report.used - report.reachable_from_units;
        assert_eq!(
            report.reachable_from_units,
            report.used - classified_unreached
        );
        assert_eq!(report.total_targets, report.eliminated + report.used,);
        // Every target received a non-default disposition.
        assert_eq!(
            catalog.count_by_disposition(TargetDisposition::Unclassified),
            0
        );
    }
}
