//! Integration tests of the scenario-driver subsystem against a live engine:
//! every load shape delivers exactly once and drains, slow-consumer
//! backpressure builds and resolves, and — the termination sweep — a
//! mid-burst `shutdown()` drains cascades and rejects late external publishes
//! loudly at every batch size in {1, 8, 64}.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use defcon_core::unit::NullUnit;
use defcon_core::{
    Engine, EngineResult, EventDraft, SecurityMode, Unit, UnitContext, UnitId, UnitSpec,
};
use defcon_events::{Event, Filter, Value};
use defcon_workload::scenario::{
    BurstyOpenClose, CountingSink, MixedBatches, Scenario, ScenarioDriver, SlowConsumerFlood,
    ZipfLanes,
};

/// Registers one counting sink per scenario lane plus a feed unit, returning
/// the per-lane counters and the feed's unit id.
fn wire_lanes(engine: &Engine, lanes: usize) -> (Vec<Arc<AtomicU64>>, UnitId) {
    let counters = (0..lanes)
        .map(|lane| {
            let (sink, received) = CountingSink::new(ZipfLanes::lane_name(lane));
            engine
                .register_unit(UnitSpec::new(format!("sink-{lane}")), Box::new(sink))
                .unwrap();
            received
        })
        .collect();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();
    (counters, source)
}

#[test]
fn every_scenario_shape_delivers_exactly_once_and_drains() {
    let shapes: Vec<Box<dyn Fn() -> Box<dyn Scenario>>> = vec![
        Box::new(|| Box::new(ZipfLanes::new(6, 1.0, 32, 3_000, 11))),
        Box::new(|| {
            Box::new(BurstyOpenClose::new(
                6,
                128,
                4,
                Duration::from_millis(1),
                3_000,
            ))
        }),
        Box::new(|| Box::new(MixedBatches::new(6, vec![1, 8, 64], 3_000))),
    ];

    for make in shapes {
        let mut scenario = make();
        let engine = Engine::builder()
            .mode(SecurityMode::LabelsFreeze)
            .workers(2)
            .batch_size(8)
            .build();
        let (counters, source) = wire_lanes(&engine, scenario.lane_count());
        let handle = engine.start();

        let driver = ScenarioDriver::new(&handle, source).unwrap();
        let outcome = driver.run(scenario.as_mut());

        assert!(
            outcome.completed,
            "{}: replay must complete",
            outcome.scenario
        );
        assert!(outcome.drained, "{}: engine must drain", outcome.scenario);
        assert_eq!(
            outcome.published,
            scenario.total_events(),
            "{}: every event is accepted",
            outcome.scenario
        );
        assert_eq!(outcome.rejected, 0, "{}", outcome.scenario);
        let delivered: u64 = counters.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        assert_eq!(
            delivered, outcome.published,
            "{}: every accepted event reaches exactly one lane sink exactly once",
            outcome.scenario
        );
        handle.shutdown().unwrap();
        assert_eq!(engine.queue_depth(), 0, "{}", outcome.scenario);
    }
}

#[test]
fn slow_consumer_backpressure_builds_and_still_drains_exactly() {
    let engine = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .workers(1)
        .batch_size(8)
        .build();
    let (sink, received) = CountingSink::new(ZipfLanes::lane_name(0));
    let sink = sink.with_delay(Duration::from_micros(200));
    engine
        .register_unit(UnitSpec::new("slow-sink"), Box::new(sink))
        .unwrap();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();
    let handle = engine.start();

    let mut scenario = SlowConsumerFlood::new(50, 400);
    let driver = ScenarioDriver::new(&handle, source).unwrap();
    let outcome = driver.run(&mut scenario);

    assert!(outcome.completed && outcome.drained);
    assert_eq!(outcome.published, 400);
    assert!(
        outcome.peak_queue_depth > 0,
        "a 200µs/event consumer must fall behind a 50-event burst: peak {}",
        outcome.peak_queue_depth
    );
    assert_eq!(
        received.load(Ordering::Relaxed),
        400,
        "backlog drains exactly"
    );
    handle.shutdown().unwrap();
}

/// The elastic-pool acceptance shape: a `SlowConsumerFlood` replay through an
/// elastic band must recruit the whole band (`workers_max`), and the idle
/// drain afterwards must park it back down to `workers_min` — with the
/// high-water mark recording the scale the flood reached.
#[test]
fn slow_consumer_flood_scales_an_elastic_band_to_max_and_back() {
    const BAND_MIN: usize = 1;
    const BAND_MAX: usize = 3;
    let engine = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .workers_min(BAND_MIN)
        .workers_max(BAND_MAX)
        .batch_size(8)
        .elastic(
            defcon_core::ElasticConfig::new()
                .scale_up_depth(8)
                .idle_grace(Duration::from_millis(2)),
        )
        .build();
    let (sink, received) = CountingSink::new(ZipfLanes::lane_name(0));
    let sink = sink.with_delay(Duration::from_micros(100));
    engine
        .register_unit(UnitSpec::new("slow-sink"), Box::new(sink))
        .unwrap();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();
    let handle = engine.start();
    assert_eq!(handle.queue_stats().workers_active, BAND_MIN);

    let mut scenario = SlowConsumerFlood::new(64, 4_000);
    let driver = ScenarioDriver::new(&handle, source).unwrap();
    let outcome = driver.run(&mut scenario);

    assert!(outcome.completed && outcome.drained);
    assert_eq!(received.load(Ordering::Relaxed), 4_000, "exactly-once");
    assert_eq!(
        handle.queue_stats().workers_high_water,
        BAND_MAX,
        "a 100µs/event consumer under 64-event bursts must recruit the whole band"
    );
    // The drained engine parks the band back to its floor (LIFO, after the
    // idle grace).
    let deadline = std::time::Instant::now() + Duration::from_secs(10);
    while handle.queue_stats().workers_active != BAND_MIN {
        assert!(
            std::time::Instant::now() < deadline,
            "band did not park back down: {:?}",
            handle.queue_stats()
        );
        std::thread::sleep(Duration::from_millis(1));
    }
    handle.shutdown().unwrap();
    assert_eq!(engine.queue_depth(), 0);
}

/// A unit that republishes every lane-0 event as a `boom` from inside
/// dispatch: mid-burst shutdown must drain these cascades too.
struct Relay;

impl Unit for Relay {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        ctx.subscribe(Filter::for_type(&ZipfLanes::lane_name(0)))?;
        Ok(())
    }

    fn on_event(&mut self, ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
        let draft = ctx.create_event();
        ctx.add_part(
            &draft,
            defcon_defc::Label::public(),
            "type",
            Value::str("boom"),
        )?;
        ctx.publish(draft)?;
        Ok(())
    }
}

/// The termination sweep: at every batch size in {1, 8, 64}, shutting down
/// mid-burst (while a detached driver floods the engine) drains every accepted
/// event *and* the cascades those events published, rejects the driver's
/// in-flight replay loudly, and rejects late external publishes loudly.
#[test]
fn mid_burst_shutdown_drains_cascades_and_rejects_late_publishes_loudly() {
    for batch_size in [1usize, 8, 64] {
        let engine = Engine::builder()
            .mode(SecurityMode::LabelsFreeze)
            .workers(2)
            .batch_size(batch_size)
            .build();
        engine
            .register_unit(UnitSpec::new("relay"), Box::new(Relay))
            .unwrap();
        let (boom_sink, booms) = CountingSink::new("boom");
        engine
            .register_unit(UnitSpec::new("boom-sink"), Box::new(boom_sink))
            .unwrap();
        let source = engine
            .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
            .unwrap();
        let publisher = engine.publisher(source).unwrap();
        let handle = engine.start();

        // Far more events than can drain before the shutdown below: the replay
        // is guaranteed to be cut off mid-burst.
        let driver_thread = std::thread::spawn(move || {
            let mut scenario = SlowConsumerFlood::new(batch_size.max(8), 2_000_000);
            ScenarioDriver::detached(publisher).run(&mut scenario)
        });

        // Let the replay actually start before pulling the plug.
        while engine.stats().published() == 0 {
            std::thread::yield_now();
        }
        let dispatched = handle.shutdown().unwrap();
        let outcome = driver_thread.join().unwrap();

        assert!(
            !outcome.completed && outcome.rejected > 0,
            "batch {batch_size}: shutdown must cut the replay off loudly \
             (rejected {}, completed {})",
            outcome.rejected,
            outcome.completed
        );
        // Every accepted lane-0 event was dispatched, reached the relay, and
        // the boom it published during the drain was dispatched too.
        assert_eq!(
            dispatched,
            2 * outcome.published,
            "batch {batch_size}: accepted events plus their cascades must drain"
        );
        assert_eq!(
            booms.load(Ordering::Relaxed),
            outcome.published,
            "batch {batch_size}: one boom per accepted event, none lost to shutdown"
        );
        assert_eq!(engine.queue_depth(), 0, "batch {batch_size}");

        // Late external publishes — single and batched — fail loudly.
        let late = engine.publisher(source).unwrap();
        let result = late
            .publish(EventDraft::new().public_part("type", Value::str(ZipfLanes::lane_name(0))));
        assert!(
            matches!(result, Err(defcon_core::EngineError::InvalidOperation(_))),
            "batch {batch_size}: late publish must be rejected loudly, got {result:?}"
        );
        let result = late.publish_batch(vec![
            EventDraft::new().public_part("type", Value::str(ZipfLanes::lane_name(0)))
        ]);
        assert!(
            matches!(result, Err(defcon_core::EngineError::InvalidOperation(_))),
            "batch {batch_size}: late batch publish must be rejected loudly, got {result:?}"
        );
        assert_eq!(
            engine.queue_depth(),
            0,
            "batch {batch_size}: nothing lingers"
        );
    }
}
