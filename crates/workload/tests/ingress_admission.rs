//! Admission-law tests for scenario replay through the credit-gated ingress
//! tier: a property sweep over random `(sessions, credit_window, policy,
//! batch)` tuples, and the deterministic SlowConsumerFlood-under-credits
//! acceptance shape pinning the bounded queue depth.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use defcon_core::unit::NullUnit;
use defcon_core::{Engine, FullQueuePolicy, IngressConfig, SecurityMode, UnitSpec};
use defcon_ingress::IngressTier;
use defcon_workload::scenario::{lane_name, CountingSink};
use defcon_workload::{CreditStorm, IngressScenarioDriver, SlowConsumerFlood};
use proptest::prelude::*;

struct Harness {
    engine: Engine,
    source: defcon_core::UnitId,
    received: Vec<Arc<AtomicU64>>,
}

/// An engine with one counting sink per lane (optionally slowed) and a
/// feed unit, ready to start.
fn harness(config: IngressConfig, workers: usize, lanes: usize, sink_delay: Duration) -> Harness {
    let engine = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .workers(workers)
        .batch_size(8)
        .ingress(config)
        .build();
    let received = (0..lanes)
        .map(|lane| {
            let (sink, received) = CountingSink::new(lane_name(lane));
            let sink = sink.with_delay(sink_delay);
            engine
                .register_unit(UnitSpec::new(format!("sink-{lane}")), Box::new(sink))
                .unwrap();
            received
        })
        .collect();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();
    Harness {
        engine,
        source,
        received,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(12))]

    /// Over random admission configurations, three laws hold:
    ///
    /// 1. **exactly-once for admitted** — every event the engine admitted is
    ///    delivered to its lane sink exactly once (no loss, no duplication);
    /// 2. **loud accounting for shed** — every submitted event is accounted
    ///    for: engine-admitted + ledger-shed == submitted;
    /// 3. **the bound holds** — sampled run-queue depth never exceeds the
    ///    configured queue bound.
    #[test]
    fn admission_laws_hold_over_random_tuples(
        sessions in 1usize..5,
        credit_window in 4usize..40,
        policy_index in 0usize..3,
        batch in 1usize..50,
        queue_bound in 8usize..64,
    ) {
        let policy = FullQueuePolicy::all()[policy_index];
        const TOTAL: u64 = 600;
        let lanes = 2;
        let h = harness(
            IngressConfig::new(queue_bound)
                .credit_window(credit_window)
                .policy(policy),
            1,
            lanes,
            Duration::ZERO,
        );
        let handle = h.engine.start();
        let tier = IngressTier::new(&h.engine);
        let driver = IngressScenarioDriver::new(&tier, &h.engine, h.source, sessions).unwrap();

        let mut scenario = CreditStorm::new(lanes, batch, TOTAL);
        let outcome = driver.run(&mut scenario);

        prop_assert!(outcome.drained, "replay must drain: {outcome:?}");
        prop_assert!(
            outcome.peak_queue_depth <= queue_bound,
            "sampled depth {} exceeded bound {queue_bound}",
            outcome.peak_queue_depth
        );
        if policy == FullQueuePolicy::Block {
            prop_assert_eq!(outcome.shed, 0, "Block never sheds");
            prop_assert_eq!(outcome.published, TOTAL);
        }

        tier.shutdown();
        handle.shutdown().unwrap();

        // Loud accounting: every submitted event either reached the run
        // queue (admitted) or is on the shed ledger — nothing vanishes.
        let stats = h.engine.queue_stats();
        prop_assert_eq!(
            stats.ingress_admitted + stats.ingress_shed,
            TOTAL,
            "admitted {} + shed {} must cover all {} submitted",
            stats.ingress_admitted,
            stats.ingress_shed,
            TOTAL
        );

        // Exactly-once: per-lane deliveries sum to exactly the admitted count.
        let delivered: u64 = h.received.iter().map(|c| c.load(Ordering::Relaxed)).sum();
        prop_assert_eq!(delivered, stats.ingress_admitted, "admitted events deliver exactly once");
    }
}

/// The acceptance shape: the same SlowConsumerFlood that drives the direct
/// publish path to multi-thousand-event queue depths holds a two-digit bound
/// when replayed through credit-gated sessions — and still delivers every
/// event exactly once under the Block policy.
#[test]
fn slow_consumer_flood_under_credits_pins_a_bounded_depth() {
    const BOUND: usize = 64;
    const TOTAL: u64 = 2_000;
    let h = harness(
        IngressConfig::new(BOUND)
            .credit_window(32)
            .policy(FullQueuePolicy::Block),
        2,
        1,
        Duration::from_micros(20), // the deliberately slow consumer
    );
    let handle = h.engine.start();
    let tier = IngressTier::new(&h.engine);
    let driver = IngressScenarioDriver::new(&tier, &h.engine, h.source, 4).unwrap();

    let mut scenario = SlowConsumerFlood::new(128, TOTAL);
    let outcome = driver.run(&mut scenario);

    assert!(outcome.completed && outcome.drained, "{outcome:?}");
    assert_eq!(outcome.published, TOTAL, "Block admits everything");
    assert_eq!(outcome.shed, 0);
    assert!(
        outcome.peak_queue_depth <= BOUND,
        "peak depth {} must hold the configured bound {BOUND} \
         (the unbounded baseline peaks in the thousands)",
        outcome.peak_queue_depth
    );
    assert!(
        outcome.credit_waits > 0,
        "128-event bursts against 32-credit windows must stall"
    );

    let report = tier.shutdown();
    assert_eq!(report.admitted, TOTAL);
    assert_eq!(report.shed, 0);
    handle.shutdown().unwrap();
    assert_eq!(
        h.received[0].load(Ordering::Relaxed),
        TOTAL,
        "exactly-once delivery through the ingress tier"
    );
}
