//! Scenario-driven load replay through a live engine.
//!
//! The static generators in this crate ([`TickGenerator`](crate::TickGenerator),
//! [`ZipfSampler`]) produce *traces*; this module turns traces into *load
//! shapes*. A [`Scenario`] describes an arrival process as a sequence of
//! [`Burst`]s — how many events, on which lanes, after what pause — and a
//! [`ScenarioDriver`] replays it through a running engine's typed publisher,
//! measuring what the engine actually absorbed. The point (made for
//! distributed protocols by the PBFT-practicality literature, and just as true
//! for an in-process event engine) is that a throughput claim only holds up
//! under adversarial, varied workloads: Zipf-skewed hot keys, bursty
//! open/close arrival, slow-consumer backpressure and mixed batch sizes stress
//! different parts of the dispatch path than a uniform firehose does.
//!
//! Scenarios are deterministic: every shape is either round-robin or driven by
//! a seeded sampler, so two replays of the same scenario publish the same
//! events in the same bursts.
//!
//! ```no_run
//! use defcon_core::{Engine, UnitSpec};
//! use defcon_core::unit::NullUnit;
//! use defcon_workload::scenario::{CountingSink, ScenarioDriver, ZipfLanes};
//!
//! let engine = Engine::builder().workers_auto().build();
//! let (sink, received) = CountingSink::new(ZipfLanes::lane_name(0));
//! engine.register_unit(UnitSpec::new("sink-0"), Box::new(sink)).unwrap();
//! let source = engine.register_unit(UnitSpec::new("feed"), Box::new(NullUnit)).unwrap();
//! let handle = engine.start();
//!
//! let mut scenario = ZipfLanes::new(1, 1.0, 32, 10_000, 42);
//! let driver = ScenarioDriver::new(&handle, source).unwrap();
//! let outcome = driver.run(&mut scenario);
//! assert!(outcome.completed && outcome.drained);
//! assert_eq!(received.load(std::sync::atomic::Ordering::Relaxed), outcome.published);
//! handle.shutdown().unwrap();
//! ```

use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use defcon_core::{EngineHandle, EngineResult, EventDraft, Publisher, Unit, UnitContext, UnitId};
use defcon_durability::{Trace, TraceBurst, TraceWriter};
use defcon_events::{now_ns, Event, Filter, Value};
use defcon_metrics::LatencyHistogram;

use crate::zipf::ZipfSampler;

/// One step of a scenario's arrival process: a chunk of drafts the driver
/// publishes as a single batch, optionally after a pause (the "market closed"
/// gap of a bursty shape). A pause of zero means back-to-back arrival.
#[derive(Debug)]
pub struct Burst {
    /// The events of this burst, published in order via one `publish_batch`.
    pub drafts: Vec<EventDraft>,
    /// Idle time the driver honours *before* publishing the burst.
    pub pause: Duration,
}

impl Burst {
    /// A burst with no preceding pause.
    pub fn immediate(drafts: Vec<EventDraft>) -> Self {
        Burst {
            drafts,
            pause: Duration::ZERO,
        }
    }
}

/// A replayable load shape: a deterministic sequence of [`Burst`]s over a set
/// of numbered lanes (`lane-0`, `lane-1`, ... — see [`Scenario::lane_count`]),
/// driven through an engine by a [`ScenarioDriver`].
pub trait Scenario {
    /// Short identifier used in reports (`"zipf"`, `"bursty"`, ...).
    fn name(&self) -> &'static str;

    /// Number of distinct lanes this scenario publishes on; a harness registers
    /// one subscriber per lane (see [`CountingSink`]).
    fn lane_count(&self) -> usize;

    /// Total events the scenario emits over its whole life.
    fn total_events(&self) -> u64;

    /// The next burst, or `None` once the scenario is exhausted.
    fn next_burst(&mut self) -> Option<Burst>;
}

/// Builds the draft for one scenario event: a `type` part carrying the lane
/// name (what sinks filter on) and a `seq` part for debugging.
pub fn lane_draft(lane: usize, sequence: u64) -> EventDraft {
    EventDraft::new()
        .public_part("type", Value::str(lane_name(lane)))
        .public_part("seq", Value::Int(sequence as i64))
}

/// The subscriber lane name for lane index `lane` — what a [`CountingSink`]
/// for that lane filters on, whatever the scenario shape.
pub fn lane_name(lane: usize) -> String {
    format!("lane-{lane}")
}

/// Emits the next chunk of up to `size` drafts for a scenario that has
/// emitted `*emitted` of `total` events so far, choosing each draft's lane
/// via `lane` (called with the event's sequence number) — the shared
/// chunking step behind every shape's `next_burst`.
fn chunk_drafts(
    emitted: &mut u64,
    total: u64,
    size: usize,
    mut lane: impl FnMut(u64) -> usize,
) -> Vec<EventDraft> {
    let take = (size.max(1) as u64).min(total - *emitted) as usize;
    (0..take)
        .map(|_| {
            let draft = lane_draft(lane(*emitted), *emitted);
            *emitted += 1;
            draft
        })
        .collect()
}

/// Zipf-skewed lane popularity: a few hot lanes receive most of the traffic
/// (the §6.2 observation that most traders monitor the same few pairs). Hot
/// lanes concentrate per-unit serialisation on a handful of unit locks, the
/// worst case for multi-worker dispatch.
#[derive(Debug)]
pub struct ZipfLanes {
    sampler: ZipfSampler,
    lanes: usize,
    burst: usize,
    total: u64,
    emitted: u64,
}

impl ZipfLanes {
    /// A scenario of `events` events over `lanes` lanes with Zipf(`exponent`)
    /// popularity, published in bursts of `burst`, deterministic per `seed`.
    pub fn new(lanes: usize, exponent: f64, burst: usize, events: u64, seed: u64) -> Self {
        ZipfLanes {
            sampler: ZipfSampler::new(lanes.max(1), exponent, seed),
            lanes: lanes.max(1),
            burst: burst.max(1),
            total: events,
            emitted: 0,
        }
    }

    /// The subscriber lane name for lane index `lane` (alias for the
    /// module-level [`lane_name`], kept for call sites already naming the
    /// scenario type).
    pub fn lane_name(lane: usize) -> String {
        lane_name(lane)
    }
}

impl Scenario for ZipfLanes {
    fn name(&self) -> &'static str {
        "zipf"
    }

    fn lane_count(&self) -> usize {
        self.lanes
    }

    fn total_events(&self) -> u64 {
        self.total
    }

    fn next_burst(&mut self) -> Option<Burst> {
        if self.emitted >= self.total {
            return None;
        }
        let sampler = &mut self.sampler;
        Some(Burst::immediate(chunk_drafts(
            &mut self.emitted,
            self.total,
            self.burst,
            |_| sampler.sample(),
        )))
    }
}

/// Bursty open/close arrival: the market "opens" with a dense burst, then
/// "closes" to a trickle behind a pause, and repeats. Exercises the wakeup
/// path (workers park during the close, must be woken by the open burst) and
/// queue-depth swings that steady arrival never produces.
#[derive(Debug)]
pub struct BurstyOpenClose {
    lanes: usize,
    open_burst: usize,
    closed_trickle: usize,
    pause: Duration,
    total: u64,
    emitted: u64,
    open: bool,
}

impl BurstyOpenClose {
    /// Alternates bursts of `open_burst` events with `closed_trickle`-event
    /// trickles preceded by `pause`, round-robin over `lanes` lanes, until
    /// `events` events have been emitted.
    pub fn new(
        lanes: usize,
        open_burst: usize,
        closed_trickle: usize,
        pause: Duration,
        events: u64,
    ) -> Self {
        BurstyOpenClose {
            lanes: lanes.max(1),
            open_burst: open_burst.max(1),
            closed_trickle: closed_trickle.max(1),
            pause,
            total: events,
            emitted: 0,
            open: true,
        }
    }
}

impl Scenario for BurstyOpenClose {
    fn name(&self) -> &'static str {
        "bursty"
    }

    fn lane_count(&self) -> usize {
        self.lanes
    }

    fn total_events(&self) -> u64 {
        self.total
    }

    fn next_burst(&mut self) -> Option<Burst> {
        if self.emitted >= self.total {
            return None;
        }
        let (size, pause) = if self.open {
            (self.open_burst, Duration::ZERO)
        } else {
            (self.closed_trickle, self.pause)
        };
        self.open = !self.open;
        let lanes = self.lanes;
        let drafts = chunk_drafts(&mut self.emitted, self.total, size, |seq| {
            seq as usize % lanes
        });
        Some(Burst { drafts, pause })
    }
}

/// A steady flood aimed at a single lane whose subscriber is deliberately slow
/// (a [`CountingSink`] with a per-event delay): the queue grows while the
/// consumer lags, and the engine must absorb the backlog without losing or
/// duplicating events. Pair with [`ScenarioOutcome::peak_queue_depth`] to see
/// the backpressure actually build.
#[derive(Debug)]
pub struct SlowConsumerFlood {
    burst: usize,
    total: u64,
    emitted: u64,
}

impl SlowConsumerFlood {
    /// Floods lane 0 with `events` events in bursts of `burst`.
    pub fn new(burst: usize, events: u64) -> Self {
        SlowConsumerFlood {
            burst: burst.max(1),
            total: events,
            emitted: 0,
        }
    }
}

impl Scenario for SlowConsumerFlood {
    fn name(&self) -> &'static str {
        "slow-consumer"
    }

    fn lane_count(&self) -> usize {
        1
    }

    fn total_events(&self) -> u64 {
        self.total
    }

    fn next_burst(&mut self) -> Option<Burst> {
        if self.emitted >= self.total {
            return None;
        }
        Some(Burst::immediate(chunk_drafts(
            &mut self.emitted,
            self.total,
            self.burst,
            |_| 0,
        )))
    }
}

/// An admission-tier stressor: every burst is larger than any sensible
/// per-session credit window, aimed at slow lanes, with no pauses — so a
/// credit-gated ingress tier is forced to stall (Block) or shed (ShedNewest /
/// ShedOldest) on nearly every submission while the windows refill. Bursts
/// cycle round-robin over the lanes, which the ingress scenario driver maps
/// onto distinct publisher sessions; a direct [`ScenarioDriver`] replay
/// degenerates into a plain multi-lane flood.
#[derive(Debug)]
pub struct CreditStorm {
    lanes: usize,
    burst: usize,
    total: u64,
    emitted: u64,
    cursor: u64,
}

impl CreditStorm {
    /// `events` events in bursts of `burst` (clamped to at least 1), each
    /// burst wholly on one of `lanes` lanes, cycling.
    pub fn new(lanes: usize, burst: usize, events: u64) -> Self {
        CreditStorm {
            lanes: lanes.max(1),
            burst: burst.max(1),
            total: events,
            emitted: 0,
            cursor: 0,
        }
    }
}

impl Scenario for CreditStorm {
    fn name(&self) -> &'static str {
        "credit-storm"
    }

    fn lane_count(&self) -> usize {
        self.lanes
    }

    fn total_events(&self) -> u64 {
        self.total
    }

    fn next_burst(&mut self) -> Option<Burst> {
        if self.emitted >= self.total {
            return None;
        }
        let lane = (self.cursor as usize) % self.lanes;
        self.cursor += 1;
        Some(Burst::immediate(chunk_drafts(
            &mut self.emitted,
            self.total,
            self.burst,
            |_| lane,
        )))
    }
}

/// The hot-replacement stressor: a steady single-lane flood aimed at a
/// subscriber that is *expected to fail* — the harness registers a
/// [`CountingSink`] with [`CountingSink::with_fault_every`] under an engine
/// [`FaultPolicy`](defcon_core::FaultPolicy), so mid-replay the policy trips
/// and hot-swaps the sink to its standby while bursts keep arriving. The
/// arrival shape itself is deliberately plain (the adversarial part is the
/// panicking consumer, not the arrival process): what the bench row measures
/// is that replacement under load loses no admitted event.
#[derive(Debug)]
pub struct FaultSwap {
    burst: usize,
    total: u64,
    emitted: u64,
}

impl FaultSwap {
    /// Floods lane 0 with `events` events in bursts of `burst`.
    pub fn new(burst: usize, events: u64) -> Self {
        FaultSwap {
            burst: burst.max(1),
            total: events,
            emitted: 0,
        }
    }
}

impl Scenario for FaultSwap {
    fn name(&self) -> &'static str {
        "fault-swap"
    }

    fn lane_count(&self) -> usize {
        1
    }

    fn total_events(&self) -> u64 {
        self.total
    }

    fn next_burst(&mut self) -> Option<Burst> {
        if self.emitted >= self.total {
            return None;
        }
        Some(Burst::immediate(chunk_drafts(
            &mut self.emitted,
            self.total,
            self.burst,
            |_| 0,
        )))
    }
}

/// The fan-out stressor: a plain round-robin flood whose adversarial part is
/// the *subscriber population*, not the arrival process. The harness
/// registers [`FanOutBurst::subscribers_per_lane`] subscriptions on every
/// lane — conventionally half exact lane matches and half near-misses that
/// name the lane but fail a second clause — so each published event must be
/// planned against [`FanOutBurst::registered_subscriptions`] filters in
/// total. What the bench row measures is planning cost at fan-out scale: the
/// subscription index resolves an event to one lane's candidate list, while
/// the linear scan evaluates the whole population per event.
#[derive(Debug)]
pub struct FanOutBurst {
    lanes: usize,
    subscribers_per_lane: usize,
    burst: usize,
    total: u64,
    emitted: u64,
}

impl FanOutBurst {
    /// `events` events round-robin over `lanes` lanes in bursts of `burst`,
    /// advertising `subscribers_per_lane` subscriptions per lane for the
    /// harness to register.
    pub fn new(lanes: usize, subscribers_per_lane: usize, burst: usize, events: u64) -> Self {
        FanOutBurst {
            lanes: lanes.max(1),
            subscribers_per_lane: subscribers_per_lane.max(1),
            burst: burst.max(1),
            total: events,
            emitted: 0,
        }
    }

    /// Subscriptions the harness should register on each lane.
    pub fn subscribers_per_lane(&self) -> usize {
        self.subscribers_per_lane
    }

    /// The whole advertised subscription population
    /// (`lanes × subscribers_per_lane`) — what every event is planned
    /// against on the linear path.
    pub fn registered_subscriptions(&self) -> usize {
        self.lanes * self.subscribers_per_lane
    }
}

impl Scenario for FanOutBurst {
    fn name(&self) -> &'static str {
        "fan-out"
    }

    fn lane_count(&self) -> usize {
        self.lanes
    }

    fn total_events(&self) -> u64 {
        self.total
    }

    fn next_burst(&mut self) -> Option<Burst> {
        if self.emitted >= self.total {
            return None;
        }
        let lanes = self.lanes;
        Some(Burst::immediate(chunk_drafts(
            &mut self.emitted,
            self.total,
            self.burst,
            |seq| seq as usize % lanes,
        )))
    }
}

/// Cycles through a set of burst sizes (1, 8, 64 by default): single events
/// interleaved with medium and large batches, round-robin over the lanes.
/// Exercises the queue's mixed single/batched enqueue paths and dispatchers
/// whose configured batch size rarely matches the arriving run length.
#[derive(Debug)]
pub struct MixedBatches {
    lanes: usize,
    sizes: Vec<usize>,
    cursor: usize,
    total: u64,
    emitted: u64,
}

impl MixedBatches {
    /// Cycles `sizes` burst sizes over `lanes` lanes until `events` events have
    /// been emitted. An empty `sizes` defaults to `[1, 8, 64]`.
    pub fn new(lanes: usize, sizes: Vec<usize>, events: u64) -> Self {
        let sizes = if sizes.is_empty() {
            vec![1, 8, 64]
        } else {
            sizes
        };
        MixedBatches {
            lanes: lanes.max(1),
            sizes: sizes.into_iter().map(|s| s.max(1)).collect(),
            cursor: 0,
            total: events,
            emitted: 0,
        }
    }
}

impl Scenario for MixedBatches {
    fn name(&self) -> &'static str {
        "mixed-batches"
    }

    fn lane_count(&self) -> usize {
        self.lanes
    }

    fn total_events(&self) -> u64 {
        self.total
    }

    fn next_burst(&mut self) -> Option<Burst> {
        if self.emitted >= self.total {
            return None;
        }
        let size = self.sizes[self.cursor % self.sizes.len()];
        self.cursor += 1;
        let lanes = self.lanes;
        Some(Burst::immediate(chunk_drafts(
            &mut self.emitted,
            self.total,
            size,
            |seq| seq as usize % lanes,
        )))
    }
}

/// A lane subscriber for scenario harnesses: counts deliveries, optionally
/// records publish-to-delivery latency, and optionally sleeps per event (the
/// slow consumer of [`SlowConsumerFlood`]).
pub struct CountingSink {
    lane: String,
    received: Arc<AtomicU64>,
    latency: Option<Arc<LatencyHistogram>>,
    delay: Duration,
    fault_every: u64,
    deliveries: u64,
}

impl CountingSink {
    /// A sink subscribed to `lane`, returning the shared delivery counter.
    pub fn new(lane: impl Into<String>) -> (Self, Arc<AtomicU64>) {
        let received = Arc::new(AtomicU64::new(0));
        (
            CountingSink {
                lane: lane.into(),
                received: Arc::clone(&received),
                latency: None,
                delay: Duration::ZERO,
                fault_every: 0,
                deliveries: 0,
            },
            received,
        )
    }

    /// Records each delivery's publish-to-delivery latency into `histogram`.
    pub fn with_latency(mut self, histogram: Arc<LatencyHistogram>) -> Self {
        self.latency = Some(histogram);
        self
    }

    /// Sleeps `delay` per delivery, making this the slow consumer.
    pub fn with_delay(mut self, delay: Duration) -> Self {
        self.delay = delay;
        self
    }

    /// Panics on every `every`-th delivery (`0` = never, the default) —
    /// deterministic fault injection for the [`FaultSwap`] harness. Panicked
    /// deliveries count nothing: no latency sample, no received increment.
    pub fn with_fault_every(mut self, every: u64) -> Self {
        self.fault_every = every;
        self
    }
}

impl Unit for CountingSink {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        ctx.subscribe(Filter::for_type(&self.lane))?;
        Ok(())
    }

    fn on_event(&mut self, _ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()> {
        self.deliveries += 1;
        if self.fault_every > 0 && self.deliveries.is_multiple_of(self.fault_every) {
            panic!("injected sink fault on delivery {}", self.deliveries);
        }
        if let Some(latency) = &self.latency {
            latency.record(now_ns().saturating_sub(event.origin_ns()));
        }
        if !self.delay.is_zero() {
            std::thread::sleep(self.delay);
        }
        self.received.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

/// What a replay actually did — the driver-side half of a scenario
/// measurement (subscriber-side counts come from the harness's sinks).
#[derive(Debug, Clone)]
pub struct ScenarioOutcome {
    /// The scenario's [`Scenario::name`].
    pub scenario: String,
    /// Bursts the driver published (or attempted).
    pub bursts: u64,
    /// Events the engine accepted — each will be dispatched exactly once.
    pub published: u64,
    /// Events rejected because the runtime had shut down. Rejections are loud
    /// (`publish_batch` errors); the driver records them and stops replaying.
    pub rejected: u64,
    /// Events shed by an admission policy (always 0 for the direct driver:
    /// only the credit-gated ingress driver publishes under a shed policy).
    pub shed: u64,
    /// Credit-window stalls the replay absorbed (always 0 for the direct
    /// driver, which publishes on the unbounded blocking path).
    pub credit_waits: u64,
    /// `true` when the scenario ran to exhaustion without any rejection.
    pub completed: bool,
    /// `true` when the engine reached idle after the replay (always `false`
    /// for a [`ScenarioDriver::detached`] driver, which never waits).
    pub drained: bool,
    /// Highest queue depth observed between bursts (0 for detached drivers):
    /// how far the backlog built before consumers caught up.
    pub peak_queue_depth: usize,
    /// Wall-clock time from the first burst to the end of the drain.
    pub elapsed: Duration,
}

impl ScenarioOutcome {
    /// Accepted events per second of replay (publish through drain).
    pub fn throughput_eps(&self) -> f64 {
        if self.elapsed.as_secs_f64() > 0.0 {
            self.published as f64 / self.elapsed.as_secs_f64()
        } else {
            0.0
        }
    }
}

/// Replays [`Scenario`]s through a running engine as one publishing unit.
///
/// A handle-attached driver ([`ScenarioDriver::new`]) samples queue depth
/// between bursts and waits for the engine to drain after the replay; a
/// [`ScenarioDriver::detached`] driver owns only a [`Publisher`] (which is
/// `Send`), so it can replay from a spawned thread while another thread shuts
/// the engine down — the mid-burst-shutdown harness.
pub struct ScenarioDriver<'a> {
    publisher: Publisher,
    handle: Option<&'a EngineHandle>,
}

impl<'a> ScenarioDriver<'a> {
    /// A driver publishing as `source` through `handle`'s engine.
    pub fn new(handle: &'a EngineHandle, source: UnitId) -> EngineResult<Self> {
        Ok(ScenarioDriver {
            publisher: handle.publisher(source)?,
            handle: Some(handle),
        })
    }

    /// A driver over a bare publisher: never samples queue depth, never waits
    /// for a drain. Use when the replay runs on its own thread.
    pub fn detached(publisher: Publisher) -> ScenarioDriver<'static> {
        ScenarioDriver {
            publisher,
            handle: None,
        }
    }

    /// Replays `scenario` to exhaustion (or until the runtime rejects a burst
    /// because it shut down), then — for handle-attached drivers — waits for
    /// the engine to drain everything it accepted.
    pub fn run(&self, scenario: &mut dyn Scenario) -> ScenarioOutcome {
        self.drive(scenario, &mut |_| Ok(()))
            .expect("the no-op tap never fails")
    }

    /// Runs `scenario` exactly like [`ScenarioDriver::run`] while recording
    /// every burst — batch boundaries, inter-burst pauses and each draft's
    /// parts verbatim — into a [`Trace`] file at `path`. Replaying the file
    /// (via [`ReplayTrace`]) reproduces the captured arrival process
    /// byte-for-byte.
    pub fn record(
        &self,
        scenario: &mut dyn Scenario,
        path: &Path,
    ) -> std::io::Result<ScenarioOutcome> {
        let mut writer = TraceWriter::create(path, scenario.lane_count())?;
        let outcome = self.drive(scenario, &mut |burst| {
            writer.append(&TraceBurst {
                pause_ns: burst.pause.as_nanos() as u64,
                drafts: burst
                    .drafts
                    .iter()
                    .map(|draft| draft.parts().to_vec())
                    .collect(),
            })
        })?;
        writer.finish()?;
        Ok(outcome)
    }

    /// The shared replay loop: `tap` observes each burst just before it is
    /// published (the trace recorder); a tap failure aborts the replay.
    fn drive(
        &self,
        scenario: &mut dyn Scenario,
        tap: &mut dyn FnMut(&Burst) -> std::io::Result<()>,
    ) -> std::io::Result<ScenarioOutcome> {
        let start = Instant::now();
        let mut outcome = ScenarioOutcome {
            scenario: scenario.name().to_string(),
            bursts: 0,
            published: 0,
            rejected: 0,
            shed: 0,
            credit_waits: 0,
            completed: false,
            drained: false,
            peak_queue_depth: 0,
            elapsed: Duration::ZERO,
        };
        loop {
            let Some(burst) = scenario.next_burst() else {
                outcome.completed = outcome.rejected == 0;
                break;
            };
            tap(&burst)?;
            if !burst.pause.is_zero() {
                std::thread::sleep(burst.pause);
            }
            let attempted = burst.drafts.len() as u64;
            outcome.bursts += 1;
            match self.publisher.publish_batch(burst.drafts) {
                Ok(admission) => {
                    outcome.published += admission.accepted() as u64;
                    // A batch racing shutdown may be partially accepted; the
                    // rejected remainder ends the replay like a full error.
                    if admission.shed() > 0 {
                        outcome.rejected += admission.shed() as u64;
                        break;
                    }
                }
                Err(_) => {
                    outcome.rejected += attempted;
                    break;
                }
            }
            if let Some(handle) = self.handle {
                outcome.peak_queue_depth =
                    outcome.peak_queue_depth.max(handle.engine().queue_depth());
            }
        }
        if let Some(handle) = self.handle {
            outcome.drained = if handle.worker_count() == 0 {
                handle.pump_until_idle().is_ok()
            } else {
                handle.wait_idle(Duration::from_secs(120))
            };
        }
        outcome.elapsed = start.elapsed();
        Ok(outcome)
    }
}

/// A [`Scenario`] replaying a recorded arrival [`Trace`] byte-for-byte: the
/// same batch boundaries, the same inter-burst pauses, the same draft parts
/// (labels are re-raised and ids re-minted at publish, as on the original
/// run). Because dispatch is deterministic for a fixed engine configuration,
/// two replays of one trace produce identical dispatched and delivered
/// counts — the noise-free A/B baseline for hot-path changes.
#[derive(Debug, Clone)]
pub struct ReplayTrace {
    trace: Trace,
    cursor: usize,
}

impl ReplayTrace {
    /// Loads a trace file recorded by [`ScenarioDriver::record`]. A torn file
    /// (recording crashed mid-burst) is an error.
    pub fn load(path: &Path) -> std::io::Result<Self> {
        Ok(ReplayTrace::from_trace(Trace::load(path)?))
    }

    /// Wraps an already-loaded trace.
    pub fn from_trace(trace: Trace) -> Self {
        ReplayTrace { trace, cursor: 0 }
    }

    /// Rewinds to the first burst so the same loaded trace can replay again.
    pub fn rewind(&mut self) {
        self.cursor = 0;
    }

    /// The underlying trace.
    pub fn trace(&self) -> &Trace {
        &self.trace
    }
}

impl Scenario for ReplayTrace {
    fn name(&self) -> &'static str {
        "replay"
    }

    fn lane_count(&self) -> usize {
        self.trace.lane_count
    }

    fn total_events(&self) -> u64 {
        self.trace.total_events()
    }

    fn next_burst(&mut self) -> Option<Burst> {
        let recorded = self.trace.bursts.get(self.cursor)?;
        self.cursor += 1;
        Some(Burst {
            pause: Duration::from_nanos(recorded.pause_ns),
            drafts: recorded
                .drafts
                .iter()
                .map(|parts| EventDraft::from_parts(parts.clone()))
                .collect(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn drain(scenario: &mut dyn Scenario) -> (u64, u64, Vec<usize>) {
        let mut events = 0;
        let mut bursts = 0;
        let mut sizes = Vec::new();
        while let Some(burst) = scenario.next_burst() {
            bursts += 1;
            events += burst.drafts.len() as u64;
            sizes.push(burst.drafts.len());
        }
        (events, bursts, sizes)
    }

    #[test]
    fn zipf_scenario_emits_exactly_total_events_in_burst_chunks() {
        let mut scenario = ZipfLanes::new(8, 1.0, 32, 1_000, 7);
        assert_eq!(scenario.lane_count(), 8);
        let (events, bursts, sizes) = drain(&mut scenario);
        assert_eq!(events, 1_000);
        assert_eq!(bursts, 1_000_u64.div_ceil(32));
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == 32));
        assert!(
            scenario.next_burst().is_none(),
            "exhausted scenarios stay exhausted"
        );
    }

    #[test]
    fn zipf_scenario_is_deterministic_per_seed() {
        let lanes_of = |seed: u64| -> Vec<String> {
            let mut scenario = ZipfLanes::new(6, 1.2, 16, 200, seed);
            let mut lanes = Vec::new();
            while let Some(burst) = scenario.next_burst() {
                lanes.extend(burst.drafts.iter().map(|d| format!("{d:?}")));
            }
            lanes
        };
        assert_eq!(lanes_of(42), lanes_of(42));
        assert_ne!(lanes_of(42), lanes_of(43));
    }

    #[test]
    fn bursty_scenario_alternates_pauses() {
        let pause = Duration::from_millis(3);
        let mut scenario = BurstyOpenClose::new(4, 50, 2, pause, 200);
        let mut pauses = Vec::new();
        let mut events = 0;
        while let Some(burst) = scenario.next_burst() {
            pauses.push(burst.pause);
            events += burst.drafts.len() as u64;
        }
        assert_eq!(events, 200);
        assert!(
            pauses.iter().step_by(2).all(|p| p.is_zero()),
            "open bursts are immediate"
        );
        assert!(
            pauses.iter().skip(1).step_by(2).all(|p| *p == pause),
            "closed trickles wait out the pause"
        );
    }

    #[test]
    fn mixed_batches_cycle_the_configured_sizes() {
        let mut scenario = MixedBatches::new(2, vec![], 2 * (1 + 8 + 64));
        let (events, _, sizes) = drain(&mut scenario);
        assert_eq!(events, 2 * (1 + 8 + 64));
        assert_eq!(sizes, vec![1, 8, 64, 1, 8, 64]);
    }

    #[test]
    fn record_then_replay_reproduces_bursts_and_deliveries() {
        use defcon_core::unit::NullUnit;
        use defcon_core::{Engine, UnitSpec};

        let dir =
            std::env::temp_dir().join(format!("defcon-scenario-trace-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("mixed.trace");

        let run = |scenario: &mut dyn Scenario,
                   record_to: Option<&Path>|
         -> (ScenarioOutcome, Vec<u64>) {
            let engine = Engine::builder().build();
            let lanes = scenario.lane_count();
            let counters: Vec<_> = (0..lanes)
                .map(|lane| {
                    let (sink, received) = CountingSink::new(lane_name(lane));
                    engine
                        .register_unit(UnitSpec::new(format!("sink-{lane}")), Box::new(sink))
                        .unwrap();
                    received
                })
                .collect();
            let source = engine
                .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
                .unwrap();
            let handle = engine.start();
            let driver = ScenarioDriver::new(&handle, source).unwrap();
            let outcome = match record_to {
                Some(path) => driver.record(scenario, path).unwrap(),
                None => driver.run(scenario),
            };
            handle.shutdown().unwrap();
            let per_lane = counters.iter().map(|c| c.load(Ordering::Relaxed)).collect();
            (outcome, per_lane)
        };

        let mut original = MixedBatches::new(3, vec![2, 5], 40);
        let (recorded_outcome, recorded_lanes) = run(&mut original, Some(&path));
        assert!(recorded_outcome.completed && recorded_outcome.drained);
        assert_eq!(recorded_outcome.published, 40);

        let mut replay = ReplayTrace::load(&path).unwrap();
        assert_eq!(replay.lane_count(), 3);
        assert_eq!(replay.total_events(), 40);
        let (replay_outcome, replay_lanes) = run(&mut replay, None);
        assert_eq!(replay_outcome.bursts, recorded_outcome.bursts);
        assert_eq!(replay_outcome.published, recorded_outcome.published);
        assert_eq!(replay_lanes, recorded_lanes, "same per-lane deliveries");

        // The same loaded trace replays again after a rewind.
        assert!(replay.next_burst().is_none());
        replay.rewind();
        let (again, again_lanes) = run(&mut replay, None);
        assert_eq!(again.published, 40);
        assert_eq!(again_lanes, replay_lanes);
    }

    #[test]
    fn replay_preserves_recorded_pauses() {
        let dir =
            std::env::temp_dir().join(format!("defcon-scenario-pause-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("bursty.trace");

        let pause = Duration::from_millis(2);
        let engine = defcon_core::Engine::builder().build();
        let source = engine
            .register_unit(
                defcon_core::UnitSpec::new("feed"),
                Box::new(defcon_core::unit::NullUnit),
            )
            .unwrap();
        let handle = engine.start();
        let driver = ScenarioDriver::new(&handle, source).unwrap();
        let mut scenario = BurstyOpenClose::new(2, 10, 2, pause, 48);
        driver.record(&mut scenario, &path).unwrap();
        handle.shutdown().unwrap();

        let mut replay = ReplayTrace::load(&path).unwrap();
        let mut pauses = Vec::new();
        while let Some(burst) = replay.next_burst() {
            pauses.push(burst.pause);
        }
        assert!(pauses.iter().step_by(2).all(|p| p.is_zero()));
        assert!(pauses.iter().skip(1).step_by(2).all(|p| *p == pause));
    }

    #[test]
    fn slow_consumer_flood_targets_one_lane() {
        let mut scenario = SlowConsumerFlood::new(25, 100);
        assert_eq!(scenario.lane_count(), 1);
        let (events, bursts, _) = drain(&mut scenario);
        assert_eq!(events, 100);
        assert_eq!(bursts, 4);
    }

    #[test]
    fn fault_swap_floods_one_lane_in_whole_bursts() {
        let mut scenario = FaultSwap::new(32, 100);
        assert_eq!(scenario.lane_count(), 1);
        assert_eq!(scenario.total_events(), 100);
        let (events, bursts, sizes) = drain(&mut scenario);
        assert_eq!(events, 100);
        assert_eq!(bursts, 4);
        assert_eq!(sizes, vec![32, 32, 32, 4]);
    }

    #[test]
    fn fan_out_burst_round_robins_lanes_and_advertises_its_population() {
        let mut scenario = FanOutBurst::new(20, 500, 64, 1_000);
        assert_eq!(scenario.lane_count(), 20);
        assert_eq!(scenario.subscribers_per_lane(), 500);
        assert_eq!(scenario.registered_subscriptions(), 10_000);
        let (events, bursts, sizes) = drain(&mut scenario);
        assert_eq!(events, 1_000);
        assert_eq!(bursts, 1_000_u64.div_ceil(64));
        assert!(sizes[..sizes.len() - 1].iter().all(|&s| s == 64));
        assert!(scenario.next_burst().is_none());
    }

    #[test]
    fn credit_storm_cycles_whole_bursts_over_lanes() {
        let mut scenario = CreditStorm::new(3, 40, 210);
        assert_eq!(scenario.lane_count(), 3);
        let (events, bursts, sizes) = drain(&mut scenario);
        assert_eq!(events, 210);
        assert_eq!(bursts, 6);
        assert!(
            sizes[..5].iter().all(|&s| s == 40),
            "whole bursts: {sizes:?}"
        );
        assert_eq!(sizes[5], 10, "the tail burst carries the remainder");
    }
}
