//! Synthetic stock-tick traces.
//!
//! The generator produces a price series per symbol that behaves like a random walk
//! (as an LSE-derived trace would) with one controlled property taken from §6.2:
//! every `trigger_period` ticks of a symbol, the price makes an excursion large
//! enough to push the pairs-trading statistic beyond its threshold, so that every
//! monitored pair fires the algorithm once per `trigger_period` ticks.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use crate::symbols::{Symbol, SymbolUniverse};

/// A single stock tick.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Tick {
    /// Monotone sequence number across the whole trace.
    pub sequence: u64,
    /// The symbol the tick refers to.
    pub symbol: Symbol,
    /// The traded price.
    pub price: f64,
    /// Logical timestamp in nanoseconds (trace time, not wall-clock).
    pub timestamp_ns: u64,
}

/// Configuration of the tick generator.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TickGeneratorConfig {
    /// Base price around which each symbol's series starts.
    pub base_price: f64,
    /// Standard deviation of the per-tick relative random-walk step.
    pub volatility: f64,
    /// Every `trigger_period`-th tick of a symbol makes a deviation excursion
    /// (the paper uses once every 10 ticks).
    pub trigger_period: u64,
    /// Relative magnitude of the excursion (must exceed the monitors' threshold).
    pub excursion: f64,
    /// Nanoseconds of trace time between consecutive ticks.
    pub inter_tick_ns: u64,
    /// Seed for determinism.
    pub seed: u64,
}

impl Default for TickGeneratorConfig {
    fn default() -> Self {
        TickGeneratorConfig {
            base_price: 100.0,
            volatility: 0.0005,
            trigger_period: 10,
            excursion: 0.05,
            inter_tick_ns: 100_000, // 10,000 ticks/s of trace time
            seed: 2010,
        }
    }
}

/// Generates an endless, deterministic tick stream over a symbol universe,
/// round-robin across symbols.
#[derive(Debug, Clone)]
pub struct TickGenerator {
    config: TickGeneratorConfig,
    universe: SymbolUniverse,
    prices: Vec<f64>,
    per_symbol_count: Vec<u64>,
    sequence: u64,
    rng: StdRng,
}

impl TickGenerator {
    /// Creates a generator over `universe` with the given configuration.
    pub fn new(universe: SymbolUniverse, config: TickGeneratorConfig) -> Self {
        let n = universe.len().max(1);
        let rng = StdRng::seed_from_u64(config.seed);
        TickGenerator {
            prices: vec![config.base_price; n],
            per_symbol_count: vec![0; n],
            sequence: 0,
            universe,
            config,
            rng,
        }
    }

    /// Returns the symbol universe.
    pub fn universe(&self) -> &SymbolUniverse {
        &self.universe
    }

    /// Produces the next tick.
    pub fn next_tick(&mut self) -> Tick {
        let idx = (self.sequence as usize) % self.universe.len();
        let symbol = self.universe.symbol(idx).clone();
        self.per_symbol_count[idx] += 1;

        // Random walk step.
        let step: f64 = self.rng.gen_range(-1.0..1.0) * self.config.volatility;
        let mut price = self.prices[idx] * (1.0 + step);

        // Periodic excursion: alternate direction so the series stays centred.
        if self.config.trigger_period > 0
            && self.per_symbol_count[idx].is_multiple_of(self.config.trigger_period)
        {
            let direction =
                if (self.per_symbol_count[idx] / self.config.trigger_period).is_multiple_of(2) {
                    1.0
                } else {
                    -1.0
                };
            price *= 1.0 + direction * self.config.excursion;
        }
        // Keep prices positive and bounded away from zero.
        price = price.max(self.config.base_price * 0.1);
        self.prices[idx] = price;

        let tick = Tick {
            sequence: self.sequence,
            symbol,
            price,
            timestamp_ns: self.sequence * self.config.inter_tick_ns,
        };
        self.sequence += 1;
        tick
    }

    /// Produces the next `n` ticks as a vector (a finite trace).
    pub fn trace(&mut self, n: usize) -> Vec<Tick> {
        (0..n).map(|_| self.next_tick()).collect()
    }
}

impl Iterator for TickGenerator {
    type Item = Tick;

    fn next(&mut self) -> Option<Tick> {
        Some(self.next_tick())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn generator(symbols: usize) -> TickGenerator {
        TickGenerator::new(
            SymbolUniverse::standard(symbols),
            TickGeneratorConfig::default(),
        )
    }

    #[test]
    fn ticks_round_robin_over_symbols_with_increasing_sequence() {
        let mut g = generator(4);
        let trace = g.trace(8);
        assert_eq!(trace.len(), 8);
        for (i, tick) in trace.iter().enumerate() {
            assert_eq!(tick.sequence, i as u64);
            assert_eq!(
                tick.symbol,
                SymbolUniverse::standard(4).symbol(i % 4).clone()
            );
            assert!(tick.price > 0.0);
        }
        assert!(trace[1].timestamp_ns > trace[0].timestamp_ns);
    }

    #[test]
    fn generation_is_deterministic_per_seed() {
        let a = generator(5).trace(100);
        let b = generator(5).trace(100);
        assert_eq!(a, b);
        let other_cfg = TickGeneratorConfig {
            seed: 999,
            ..TickGeneratorConfig::default()
        };
        let c = TickGenerator::new(SymbolUniverse::standard(5), other_cfg).trace(100);
        assert_ne!(a, c);
    }

    #[test]
    fn excursions_occur_every_trigger_period() {
        let config = TickGeneratorConfig {
            volatility: 0.0, // isolate the excursion mechanism
            ..TickGeneratorConfig::default()
        };
        let mut g = TickGenerator::new(SymbolUniverse::standard(1), config.clone());
        let trace = g.trace(40);
        let mut excursions = 0;
        for pair in trace.windows(2) {
            let rel = (pair[1].price - pair[0].price).abs() / pair[0].price;
            if rel > config.excursion * 0.5 {
                excursions += 1;
            }
        }
        // 40 ticks of one symbol with period 10 -> ~4 excursions (edge effects ±1).
        assert!((3..=5).contains(&excursions), "excursions = {excursions}");
    }

    #[test]
    fn prices_stay_positive_over_long_runs() {
        let mut g = generator(3);
        for _ in 0..50_000 {
            let tick = g.next_tick();
            assert!(tick.price > 0.0);
            assert!(tick.price.is_finite());
        }
    }

    #[test]
    fn iterator_interface_yields_ticks() {
        let g = generator(2);
        let collected: Vec<Tick> = g.take(5).collect();
        assert_eq!(collected.len(), 5);
    }
}
