//! Synthetic financial workload generation.
//!
//! §6.2 of the paper evaluates DEFCon "with a synthetic workload of stock tick
//! events that was derived from traces of trades made on the London Stock Exchange",
//! with two controlled properties:
//!
//! 1. tick prices are selected so that they trigger the pairs-trading algorithm for
//!    each monitored pair once every 10 ticks, and
//! 2. the symbol pair monitored by each trader is chosen according to a Zipf
//!    distribution (a few well-known correlated pairs attract most traders).
//!
//! This crate generates exactly that workload deterministically from a seed: a
//! universe of [`Symbol`]s, a [`TickGenerator`] producing a random-walk price series
//! with periodic excursions that trigger the pairs trade, a [`ZipfSampler`] for
//! pair popularity, and plain [`Order`]/[`Trade`] records shared with the baseline
//! platform.
//!
//! Beyond static traces, the [`scenario`] module replays configurable load
//! *shapes* (Zipf-skewed lanes, bursty open/close arrival, slow-consumer
//! backpressure, mixed batch sizes) through a live engine via a
//! [`ScenarioDriver`] — the adversarial-workload half of the evaluation. The
//! [`ingress_driver`] module replays the same shapes through the credit-gated
//! ingress tier, measuring bounded admission instead of unbounded backlog.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod ingress_driver;
pub mod orders;
pub mod scenario;
pub mod symbols;
pub mod ticks;
pub mod zipf;

pub use ingress_driver::IngressScenarioDriver;
pub use orders::{Order, OrderSide, Trade};
pub use scenario::{
    Burst, BurstyOpenClose, CountingSink, CreditStorm, FanOutBurst, FaultSwap, MixedBatches,
    ReplayTrace, Scenario, ScenarioDriver, ScenarioOutcome, SlowConsumerFlood, ZipfLanes,
};
pub use symbols::{Symbol, SymbolPair, SymbolUniverse};
pub use ticks::{Tick, TickGenerator, TickGeneratorConfig};
pub use zipf::ZipfSampler;

/// Assigns a monitored symbol pair to each of `traders` traders, Zipf-distributed
/// over the pairs of `universe` (§6.2: "Each Trader monitors a single symbol pair
/// that was chosen according to a Zipf distribution").
pub fn assign_pairs(
    universe: &SymbolUniverse,
    traders: usize,
    exponent: f64,
    seed: u64,
) -> Vec<SymbolPair> {
    let pairs = universe.pairs();
    if pairs.is_empty() {
        return Vec::new();
    }
    let mut sampler = ZipfSampler::new(pairs.len(), exponent, seed);
    (0..traders)
        .map(|_| pairs[sampler.sample()].clone())
        .collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn assign_pairs_is_deterministic_and_zipf_skewed() {
        let universe = SymbolUniverse::standard(20);
        let a = assign_pairs(&universe, 1000, 1.0, 42);
        let b = assign_pairs(&universe, 1000, 1.0, 42);
        assert_eq!(a, b, "same seed, same assignment");
        assert_eq!(a.len(), 1000);

        // The most popular pair should attract far more traders than the average.
        let mut counts = std::collections::HashMap::new();
        for pair in &a {
            *counts.entry(pair.clone()).or_insert(0usize) += 1;
        }
        let max = counts.values().copied().max().unwrap();
        let avg = 1000 / universe.pairs().len().max(1);
        assert!(max > 2 * avg, "Zipf skew expected: max {max}, avg {avg}");
    }

    #[test]
    fn assign_pairs_empty_universe() {
        let universe = SymbolUniverse::standard(1); // one symbol -> no pairs
        assert!(assign_pairs(&universe, 10, 1.0, 1).is_empty());
    }
}
