//! Order and trade records.
//!
//! These plain data types are shared between the DEFCon trading scenario and the
//! Marketcetera-style baseline so that both platforms process the same workload and
//! their outputs are directly comparable.

use serde::{Deserialize, Serialize};

use crate::symbols::Symbol;

/// The side of an order.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum OrderSide {
    /// An offer to buy.
    Buy,
    /// An offer to sell.
    Sell,
}

impl OrderSide {
    /// Returns the opposite side.
    pub fn opposite(&self) -> OrderSide {
        match self {
            OrderSide::Buy => OrderSide::Sell,
            OrderSide::Sell => OrderSide::Buy,
        }
    }

    /// A short string form used in event parts.
    pub fn as_str(&self) -> &'static str {
        match self {
            OrderSide::Buy => "buy",
            OrderSide::Sell => "sell",
        }
    }

    /// Parses the short string form.
    pub fn parse(s: &str) -> Option<OrderSide> {
        match s {
            "buy" => Some(OrderSide::Buy),
            "sell" => Some(OrderSide::Sell),
            _ => None,
        }
    }
}

/// A buy or sell order submitted by a trader.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Order {
    /// Identifier of the submitting trader.
    pub trader: u64,
    /// The traded symbol.
    pub symbol: Symbol,
    /// Buy or sell.
    pub side: OrderSide,
    /// Limit price.
    pub price: f64,
    /// Quantity of shares.
    pub quantity: u64,
    /// Timestamp (nanoseconds) of the tick that triggered this order, for
    /// end-to-end latency accounting.
    pub origin_ns: u64,
}

/// A completed trade produced by matching two opposite orders.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct Trade {
    /// The traded symbol.
    pub symbol: Symbol,
    /// The execution price.
    pub price: f64,
    /// The traded quantity.
    pub quantity: u64,
    /// The buying trader.
    pub buyer: u64,
    /// The selling trader.
    pub seller: u64,
    /// Origin timestamp (nanoseconds) inherited from the triggering tick.
    pub origin_ns: u64,
}

impl Order {
    /// Returns `true` if this order can match `other`: same symbol, opposite sides
    /// and compatible prices (buy price ≥ sell price), and distinct traders.
    pub fn matches(&self, other: &Order) -> bool {
        if self.symbol != other.symbol || self.side == other.side || self.trader == other.trader {
            return false;
        }
        let (buy, sell) = if self.side == OrderSide::Buy {
            (self, other)
        } else {
            (other, self)
        };
        buy.price >= sell.price
    }

    /// Builds the trade that results from matching this order with `other`.
    ///
    /// The execution price is the midpoint of the two limits; the quantity is the
    /// smaller of the two; the origin timestamp is the older of the two so that the
    /// reported latency covers the full path of the slower leg.
    pub fn execute_against(&self, other: &Order) -> Option<Trade> {
        if !self.matches(other) {
            return None;
        }
        let (buy, sell) = if self.side == OrderSide::Buy {
            (self, other)
        } else {
            (other, self)
        };
        Some(Trade {
            symbol: buy.symbol.clone(),
            price: (buy.price + sell.price) / 2.0,
            quantity: buy.quantity.min(sell.quantity),
            buyer: buy.trader,
            seller: sell.trader,
            origin_ns: buy.origin_ns.min(sell.origin_ns),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn order(trader: u64, side: OrderSide, price: f64) -> Order {
        Order {
            trader,
            symbol: Symbol::new("MSFT"),
            side,
            price,
            quantity: 100,
            origin_ns: trader * 10,
        }
    }

    #[test]
    fn side_helpers() {
        assert_eq!(OrderSide::Buy.opposite(), OrderSide::Sell);
        assert_eq!(OrderSide::Sell.as_str(), "sell");
        assert_eq!(OrderSide::parse("buy"), Some(OrderSide::Buy));
        assert_eq!(OrderSide::parse("hold"), None);
    }

    #[test]
    fn matching_requires_opposite_sides_compatible_prices_distinct_traders() {
        let buy = order(1, OrderSide::Buy, 101.0);
        let sell = order(2, OrderSide::Sell, 100.0);
        assert!(buy.matches(&sell));
        assert!(sell.matches(&buy));

        // Same side never matches.
        assert!(!buy.matches(&order(3, OrderSide::Buy, 99.0)));
        // Incompatible prices.
        assert!(!order(1, OrderSide::Buy, 99.0).matches(&order(2, OrderSide::Sell, 100.0)));
        // Same trader.
        assert!(!buy.matches(&order(1, OrderSide::Sell, 100.0)));
        // Different symbol.
        let mut other = order(2, OrderSide::Sell, 100.0);
        other.symbol = Symbol::new("GOOG");
        assert!(!buy.matches(&other));
    }

    #[test]
    fn execute_produces_midpoint_trade_with_oldest_origin() {
        let buy = order(1, OrderSide::Buy, 102.0);
        let mut sell = order(2, OrderSide::Sell, 100.0);
        sell.quantity = 50;
        let trade = buy.execute_against(&sell).unwrap();
        assert_eq!(trade.buyer, 1);
        assert_eq!(trade.seller, 2);
        assert_eq!(trade.quantity, 50);
        assert!((trade.price - 101.0).abs() < 1e-9);
        assert_eq!(trade.origin_ns, 10);
        // Symmetric call yields the same trade.
        assert_eq!(sell.execute_against(&buy).unwrap(), trade);
        // Non-matching orders yield no trade.
        assert!(buy
            .execute_against(&order(3, OrderSide::Buy, 1.0))
            .is_none());
    }
}
