//! Scenario replay through the credit-gated ingress tier.
//!
//! The direct [`ScenarioDriver`](crate::ScenarioDriver) publishes each burst
//! on the unbounded blocking path — which is exactly how the SlowConsumerFlood
//! baseline drives the run queue to multi-thousand-event depths. This driver
//! replays the *same* scenarios through an [`IngressTier`]: bursts are
//! distributed round-robin over N logical publisher sessions, each paced by
//! its credit window, so the run queue holds the configured bound and the
//! full-queue policy (block / shed-newest / shed-oldest) decides what happens
//! to the overflow. The outcome carries the admission ledger — accepted,
//! shed, credit stalls — alongside the usual replay measurements.

use std::time::{Duration, Instant};

use defcon_core::{Engine, EngineResult, UnitId};
use defcon_ingress::{IngressTier, SessionHandle};

use crate::scenario::{Scenario, ScenarioOutcome};

/// Replays [`Scenario`]s through an ingress tier's credit-gated sessions.
///
/// The driver owns its sessions but *borrows* the tier: the harness decides
/// when to close the tier and collect the final
/// [`IngressReport`](defcon_ingress::IngressReport).
pub struct IngressScenarioDriver<'a> {
    tier: &'a IngressTier,
    engine: Engine,
    sessions: Vec<SessionHandle>,
}

impl<'a> IngressScenarioDriver<'a> {
    /// Opens `sessions` sessions (at least one) on `tier`, all publishing as
    /// `source`.
    pub fn new(
        tier: &'a IngressTier,
        engine: &Engine,
        source: UnitId,
        sessions: usize,
    ) -> EngineResult<Self> {
        let sessions = (0..sessions.max(1))
            .map(|_| tier.session(source))
            .collect::<EngineResult<Vec<_>>>()?;
        Ok(IngressScenarioDriver {
            tier,
            engine: engine.clone(),
            sessions,
        })
    }

    /// How many sessions the driver spreads bursts over.
    pub fn session_count(&self) -> usize {
        self.sessions.len()
    }

    /// Replays `scenario` to exhaustion, each burst submitted to the next
    /// session round-robin, then waits for every session to drain (buffered
    /// and published events observed through dispatch).
    ///
    /// In the outcome, `published` counts events *accepted into session
    /// windows*: under `Block` every one of them reaches the engine exactly
    /// once (the replay drains before returning); the shed policies may later
    /// evict accepted events, which then count in `shed` instead — so
    /// `submitted == engine-admitted + shed` always balances. `shed` and
    /// `credit_waits` aggregate the per-burst
    /// [`Admission`](defcon_core::Admission) results, and
    /// `peak_queue_depth` is sampled after every burst — under a configured
    /// queue bound it must never exceed that bound.
    pub fn run(&self, scenario: &mut dyn Scenario) -> ScenarioOutcome {
        let start = Instant::now();
        let mut outcome = ScenarioOutcome {
            scenario: scenario.name().to_string(),
            bursts: 0,
            published: 0,
            rejected: 0,
            shed: 0,
            credit_waits: 0,
            completed: false,
            drained: false,
            peak_queue_depth: 0,
            elapsed: Duration::ZERO,
        };
        let mut cursor = 0usize;
        loop {
            let Some(burst) = scenario.next_burst() else {
                outcome.completed = outcome.rejected == 0;
                break;
            };
            if !burst.pause.is_zero() {
                std::thread::sleep(burst.pause);
            }
            outcome.bursts += 1;
            let session = &self.sessions[cursor % self.sessions.len()];
            cursor += 1;
            let admission = session.submit(burst.drafts);
            outcome.published += admission.accepted() as u64;
            outcome.shed += admission.shed() as u64;
            outcome.credit_waits += admission.credit_waits() as u64;
            outcome.peak_queue_depth = outcome.peak_queue_depth.max(self.engine.queue_depth());
        }
        outcome.drained = self.tier.drain(Duration::from_secs(120));
        outcome.elapsed = start.elapsed();
        outcome
    }
}

impl std::fmt::Debug for IngressScenarioDriver<'_> {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("IngressScenarioDriver")
            .field("sessions", &self.sessions.len())
            .field("config", self.tier.config())
            .finish()
    }
}
