//! A small Zipf-distributed sampler.
//!
//! Used to model §6.2's observation that "some symbol pairs are well known to be
//! correlated and, as a result, the majority of Traders monitor their prices": the
//! rank-`k` pair is chosen with probability proportional to `1 / k^s`.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Samples ranks `0..n` with Zipf(`exponent`) probabilities, deterministically from
/// a seed.
#[derive(Debug, Clone)]
pub struct ZipfSampler {
    /// Cumulative distribution over ranks.
    cdf: Vec<f64>,
    rng: StdRng,
}

impl ZipfSampler {
    /// Creates a sampler over `n` ranks with the given exponent (1.0 is classic
    /// Zipf; larger exponents concentrate more mass on the first ranks).
    ///
    /// # Panics
    ///
    /// Panics if `n` is zero.
    pub fn new(n: usize, exponent: f64, seed: u64) -> Self {
        assert!(n > 0, "ZipfSampler requires at least one rank");
        let weights: Vec<f64> = (1..=n).map(|k| 1.0 / (k as f64).powf(exponent)).collect();
        let total: f64 = weights.iter().sum();
        let mut acc = 0.0;
        let cdf = weights
            .iter()
            .map(|w| {
                acc += w / total;
                acc
            })
            .collect();
        ZipfSampler {
            cdf,
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Number of ranks.
    pub fn len(&self) -> usize {
        self.cdf.len()
    }

    /// Returns `true` if the sampler has no ranks (never true; see `new`).
    pub fn is_empty(&self) -> bool {
        self.cdf.is_empty()
    }

    /// Draws one rank in `0..n`.
    pub fn sample(&mut self) -> usize {
        let u: f64 = self.rng.gen_range(0.0..1.0);
        match self
            .cdf
            .binary_search_by(|p| p.partial_cmp(&u).expect("cdf is finite"))
        {
            Ok(idx) => idx,
            Err(idx) => idx.min(self.cdf.len() - 1),
        }
    }

    /// The probability assigned to rank `k`.
    pub fn probability(&self, k: usize) -> f64 {
        if k >= self.cdf.len() {
            return 0.0;
        }
        if k == 0 {
            self.cdf[0]
        } else {
            self.cdf[k] - self.cdf[k - 1]
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn probabilities_sum_to_one_and_decrease() {
        let sampler = ZipfSampler::new(50, 1.0, 1);
        let total: f64 = (0..50).map(|k| sampler.probability(k)).sum();
        assert!((total - 1.0).abs() < 1e-9);
        for k in 1..50 {
            assert!(
                sampler.probability(k) <= sampler.probability(k - 1) + 1e-12,
                "rank {k} must not be more likely than rank {}",
                k - 1
            );
        }
        assert_eq!(sampler.probability(1000), 0.0);
        assert_eq!(sampler.len(), 50);
        assert!(!sampler.is_empty());
    }

    #[test]
    fn sampling_matches_distribution_roughly() {
        let mut sampler = ZipfSampler::new(10, 1.0, 7);
        let mut counts = [0usize; 10];
        let draws = 100_000;
        for _ in 0..draws {
            counts[sampler.sample()] += 1;
        }
        // Rank 0 should receive roughly p0 of the draws (within a few percent).
        let expected = sampler.probability(0) * draws as f64;
        let observed = counts[0] as f64;
        assert!(
            (observed - expected).abs() / expected < 0.1,
            "observed {observed}, expected {expected}"
        );
        // Monotone non-increasing counts, allowing sampling noise on the tail.
        assert!(counts[0] > counts[9]);
    }

    #[test]
    fn determinism_per_seed() {
        let mut a = ZipfSampler::new(10, 1.2, 99);
        let mut b = ZipfSampler::new(10, 1.2, 99);
        let sa: Vec<usize> = (0..100).map(|_| a.sample()).collect();
        let sb: Vec<usize> = (0..100).map(|_| b.sample()).collect();
        assert_eq!(sa, sb);
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn zero_ranks_panics() {
        let _ = ZipfSampler::new(0, 1.0, 1);
    }
}
