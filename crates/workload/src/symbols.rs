//! Stock symbols and symbol pairs.

use std::fmt;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

/// A stock symbol (ticker), e.g. `MSFT`.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct Symbol(Arc<str>);

impl Symbol {
    /// Creates a symbol from a ticker string.
    pub fn new(ticker: impl AsRef<str>) -> Self {
        Symbol(Arc::from(ticker.as_ref()))
    }

    /// Returns the ticker string.
    pub fn as_str(&self) -> &str {
        &self.0
    }
}

impl fmt::Display for Symbol {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

impl From<&str> for Symbol {
    fn from(s: &str) -> Self {
        Symbol::new(s)
    }
}

/// An ordered pair of distinct symbols monitored by a pairs-trading strategy.
#[derive(Debug, Clone, PartialEq, Eq, Hash, PartialOrd, Ord, Serialize, Deserialize)]
pub struct SymbolPair {
    /// The first symbol of the pair.
    pub first: Symbol,
    /// The second symbol of the pair.
    pub second: Symbol,
}

impl SymbolPair {
    /// Creates a pair; the two symbols must differ.
    pub fn new(first: Symbol, second: Symbol) -> Self {
        assert_ne!(first, second, "a pair requires two distinct symbols");
        SymbolPair { first, second }
    }

    /// Returns `true` if `symbol` is one of the two members.
    pub fn contains(&self, symbol: &Symbol) -> bool {
        &self.first == symbol || &self.second == symbol
    }
}

impl fmt::Display for SymbolPair {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}/{}", self.first, self.second)
    }
}

/// The set of symbols traded on the synthetic exchange.
#[derive(Debug, Clone)]
pub struct SymbolUniverse {
    symbols: Vec<Symbol>,
}

/// Well-known tickers used for the first few symbols so that examples and traces
/// read naturally; further symbols are generated as `SYM<n>`.
const KNOWN_TICKERS: &[&str] = &[
    "MSFT", "GOOG", "AAPL", "AMZN", "IBM", "ORCL", "HSBA", "BARC", "VOD", "BP", "SHEL", "GSK",
    "AZN", "ULVR", "RIO", "TSCO",
];

impl SymbolUniverse {
    /// Creates a universe of `n` symbols.
    pub fn standard(n: usize) -> Self {
        let symbols = (0..n)
            .map(|i| match KNOWN_TICKERS.get(i) {
                Some(t) => Symbol::new(*t),
                None => Symbol::new(format!("SYM{i}")),
            })
            .collect();
        SymbolUniverse { symbols }
    }

    /// Returns all symbols.
    pub fn symbols(&self) -> &[Symbol] {
        &self.symbols
    }

    /// Number of symbols.
    pub fn len(&self) -> usize {
        self.symbols.len()
    }

    /// Returns `true` if the universe contains no symbols.
    pub fn is_empty(&self) -> bool {
        self.symbols.is_empty()
    }

    /// Returns the symbol at `index` (wrapping).
    pub fn symbol(&self, index: usize) -> &Symbol {
        &self.symbols[index % self.symbols.len()]
    }

    /// Enumerates the candidate monitored pairs: adjacent symbols in the universe
    /// (pairing every symbol with every other would produce quadratically many
    /// pairs, almost all of which no trader would monitor).
    pub fn pairs(&self) -> Vec<SymbolPair> {
        self.symbols
            .windows(2)
            .map(|w| SymbolPair::new(w[0].clone(), w[1].clone()))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn universe_uses_known_tickers_then_generated() {
        let u = SymbolUniverse::standard(20);
        assert_eq!(u.len(), 20);
        assert_eq!(u.symbol(0).as_str(), "MSFT");
        assert_eq!(u.symbol(17).as_str(), "SYM17");
        // Wrapping access.
        assert_eq!(u.symbol(20).as_str(), "MSFT");
        assert!(!u.is_empty());
    }

    #[test]
    fn pairs_are_adjacent_and_distinct() {
        let u = SymbolUniverse::standard(5);
        let pairs = u.pairs();
        assert_eq!(pairs.len(), 4);
        for p in &pairs {
            assert_ne!(p.first, p.second);
            assert!(p.contains(&p.first) && p.contains(&p.second));
        }
        assert_eq!(pairs[0].to_string(), "MSFT/GOOG");
    }

    #[test]
    #[should_panic(expected = "distinct")]
    fn identical_pair_panics() {
        let s = Symbol::new("MSFT");
        let _ = SymbolPair::new(s.clone(), s);
    }

    #[test]
    fn symbol_display_and_from() {
        let s: Symbol = "BP".into();
        assert_eq!(s.to_string(), "BP");
        assert_eq!(s.as_str(), "BP");
    }
}
