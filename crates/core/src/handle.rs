//! The running engine: worker threads, typed publishers and graceful shutdown.
//!
//! [`Engine::start`] returns an [`EngineHandle`] owning the dispatcher worker
//! threads (the multi-core deployment of §6: distinct units process distinct
//! events in parallel inside one address space, while per-unit locks keep each
//! unit single-threaded from its own point of view). The handle is how drivers
//! interact with a live engine:
//!
//! * [`EngineHandle::publisher`] hands out typed [`Publisher`]s for external
//!   event sources, replacing most `with_unit` closures;
//! * [`EngineHandle::pump_until_idle`] / [`EngineHandle::run_for`] drive
//!   dispatch inline when the engine was built with `workers(0)` — the
//!   single-threaded mode tests and benchmarks use;
//! * [`EngineHandle::wait_idle`] blocks until the queue has drained *and* no
//!   dispatch is in flight;
//! * [`EngineHandle::shutdown`] drains the queue, joins every worker and
//!   returns the engine — termination is part of the API, not "stop calling
//!   pump".

use std::sync::Arc;
use std::thread::JoinHandle;
use std::time::Duration;

use defcon_defc::Label;
use defcon_events::{Event, Value};

use crate::admission::{Admission, TryPublish};
use crate::context::UnitContext;
use crate::dispatcher::Dispatcher;
use crate::engine::{Engine, EngineCore};
use crate::error::{EngineError, EngineResult};
use crate::unit::UnitId;

/// A handle to a started engine runtime.
///
/// Dropping the handle without calling [`EngineHandle::shutdown`] also drains
/// and joins the workers (so tests cannot leak threads), but swallows the
/// drain statistics; prefer an explicit shutdown.
pub struct EngineHandle {
    engine: Engine,
    workers: Vec<JoinHandle<u64>>,
}

impl EngineHandle {
    pub(crate) fn launch(engine: Engine) -> Self {
        let core = engine.core();
        // The whole band is spawned up front; workers above the elastic pool's
        // activation target park on the pool condvar until queue depth
        // recruits them (see `WorkerPool`), so an idle band costs threads, not
        // cycles.
        let workers = (0..core.config.workers_max)
            .map(|index| {
                let dispatcher = Dispatcher::for_worker(Arc::clone(&core), index);
                std::thread::Builder::new()
                    .name(format!("defcon-dispatch-{index}"))
                    .spawn(move || dispatcher.run_worker())
                    .expect("spawning dispatcher worker")
            })
            .collect();
        EngineHandle { engine, workers }
    }

    /// The engine this handle drives.
    pub fn engine(&self) -> &Engine {
        &self.engine
    }

    /// Number of spawned dispatcher worker threads — the band's `workers_max`.
    /// For an elastic pool the *active* count at any moment is
    /// [`EngineHandle::queue_stats`]`.workers_active`.
    pub fn worker_count(&self) -> usize {
        self.workers.len()
    }

    /// Samples the run queue's and worker pool's telemetry counters: total and
    /// per-shard queue depth, in-flight dispatches, the worker band's
    /// configured edges, current activation and high-water mark, plus the
    /// subscription index's planning counters (`index_candidates`,
    /// `index_exact_rejects`, `index_rebuilds`). This is what an elastic
    /// deployment's dashboards (and the deterministic elastic tests) read.
    pub fn queue_stats(&self) -> crate::engine::QueueStats {
        self.engine.queue_stats()
    }

    /// Returns a typed publisher for `unit` (see [`Publisher`]).
    pub fn publisher(&self, unit: UnitId) -> EngineResult<Publisher> {
        self.engine.publisher(unit)
    }

    /// Hot-replaces a live unit without stopping the engine — the runtime-side
    /// entry point of [`Engine::swap_unit`]: drains in-flight deliveries to
    /// the unit, migrates its state/labels/privileges onto `replacement` under
    /// a bumped version, and resumes with exactly-once and per-unit order
    /// preserved. Returns the new version.
    pub fn swap_unit(
        &self,
        unit: UnitId,
        replacement: Box<dyn crate::unit::Unit>,
    ) -> EngineResult<u64> {
        self.engine.swap_unit(unit, replacement)
    }

    /// Registers a standby factory for fault-triggered auto-swap — see
    /// [`Engine::set_standby`].
    pub fn set_standby(&self, unit: UnitId, factory: crate::unit::UnitFactory) -> EngineResult<()> {
        self.engine.set_standby(unit, factory)
    }

    /// Publishes a batch of drafts *as* `unit` in one run-queue transaction —
    /// shorthand for [`Publisher::publish_batch`] when a driver does not keep a
    /// long-lived publisher around. Returns the typed [`Admission`] result.
    pub fn publish_batch(&self, unit: UnitId, drafts: Vec<EventDraft>) -> EngineResult<Admission> {
        self.engine.publisher(unit)?.publish_batch(drafts)
    }

    /// Non-blocking bounded publish *as* `unit` — shorthand for
    /// [`Publisher::try_publish_batch`].
    pub fn try_publish_batch(
        &self,
        unit: UnitId,
        drafts: Vec<EventDraft>,
    ) -> EngineResult<TryPublish> {
        self.engine.publisher(unit)?.try_publish_batch(drafts)
    }

    /// Dispatches queued events on the calling thread until the queue drains;
    /// returns the number of events dispatched here.
    ///
    /// This is the drive mode for `workers(0)` handles. It is safe (if rarely
    /// useful) with workers running: the calling thread simply competes for
    /// events.
    pub fn pump_until_idle(&self) -> EngineResult<usize> {
        self.engine.dispatcher().pump_until_idle()
    }

    /// Dispatches on the calling thread for at least `duration`, yielding while
    /// the queue is empty; returns the number of events dispatched here.
    pub fn run_for(&self, duration: Duration) -> EngineResult<usize> {
        self.engine.dispatcher().pump_for(duration)
    }

    /// Blocks until the engine is idle — queue empty and no dispatch in flight —
    /// or `timeout` elapses; returns whether idleness was reached.
    ///
    /// With `workers(0)` nothing drains the queue in the background, so callers
    /// should pump instead of waiting.
    pub fn wait_idle(&self, timeout: Duration) -> bool {
        self.engine.core().run_queue.wait_idle(timeout)
    }

    /// Gracefully shuts the runtime down: lets the workers drain the queue
    /// (including events published during the drain), joins them, and returns
    /// the total number of events the workers dispatched over their lifetime.
    ///
    /// With `workers(0)` the remaining queue is drained on the calling thread.
    pub fn shutdown(mut self) -> EngineResult<u64> {
        self.shutdown_in_place()
    }

    fn shutdown_in_place(&mut self) -> EngineResult<u64> {
        let core = self.engine.core();
        core.run_queue.stop();
        // Elastic workers parked below the activation target wake here, see
        // the stopping queue, help drain and exit — a mid-scale shutdown joins
        // every thread the band ever spawned.
        if let Some(pool) = &core.pool {
            pool.release_all();
        }
        let mut dispatched = 0;
        // Join *every* worker before reporting an error: bailing on the first
        // panicked thread would leak the remaining ones.
        let mut panicked = 0;
        for worker in self.workers.drain(..) {
            match worker.join() {
                Ok(count) => dispatched += count,
                Err(_) => panicked += 1,
            }
        }
        // Final drain on the calling thread: the whole queue in `workers(0)`
        // mode, and any external publish that raced `stop` and slipped in after
        // the workers' last idle check otherwise — accepted events are never
        // lost.
        dispatched += self.pump_until_idle()? as u64;
        if panicked > 0 {
            return Err(EngineError::InvalidOperation(format!(
                "{panicked} dispatcher worker(s) panicked during the run"
            )));
        }
        Ok(dispatched)
    }
}

impl Drop for EngineHandle {
    fn drop(&mut self) {
        if !self.workers.is_empty() || !self.engine.core().run_queue.is_stopping() {
            let _ = self.shutdown_in_place();
        }
    }
}

impl std::fmt::Debug for EngineHandle {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("EngineHandle")
            .field("workers", &self.workers.len())
            .field("engine", &self.engine)
            .finish()
    }
}

/// An event under construction by an external driver, published through a
/// [`Publisher`].
///
/// Unlike [`UnitContext::create_event`] drafts, an `EventDraft` is a plain
/// value: it can be built off-thread, ahead of time, and batched. Labels are
/// requests — at publish time each part's label is raised to the publishing
/// unit's output label (contamination independence, §5), exactly as
/// `UnitContext::add_part` would. The argument order of [`EventDraft::part`]
/// matches [`defcon_events::EventBuilder::part`].
///
/// Part names are resolved to interned [`PartName`](defcon_events::PartName)
/// handles at draft-build time, so a feed publishing millions of events with
/// the same few part names allocates no name strings at all. The parts
/// themselves are built at draft time too: publishing raises each label in
/// place and moves the buffer straight into the event, so the publish path
/// never rebuilds a parts vector.
#[derive(Debug, Default)]
pub struct EventDraft {
    parts: Vec<defcon_events::Part>,
}

impl EventDraft {
    /// Creates an empty draft.
    pub fn new() -> Self {
        EventDraft::default()
    }

    /// Adds a part with the requested label.
    pub fn part(mut self, name: impl AsRef<str>, label: Label, data: Value) -> Self {
        self.parts.push(defcon_events::Part::from_name_handle(
            defcon_events::part_name(name),
            label,
            data,
        ));
        self
    }

    /// Adds a public part.
    pub fn public_part(self, name: impl AsRef<str>, data: Value) -> Self {
        self.part(name, Label::public(), data)
    }

    /// A draft over already-built parts — the replay path: a recorded arrival
    /// trace stores each draft's parts verbatim (pre-label-raise), and feeding
    /// them back through here reproduces the original publish byte-for-byte.
    pub fn from_parts(parts: Vec<defcon_events::Part>) -> Self {
        EventDraft { parts }
    }

    /// The parts added so far, in order — what a trace recorder captures
    /// before the draft is consumed by publishing.
    pub fn parts(&self) -> &[defcon_events::Part] {
        &self.parts
    }

    /// Number of parts added so far.
    pub fn len(&self) -> usize {
        self.parts.len()
    }

    /// Returns `true` if no parts have been added.
    pub fn is_empty(&self) -> bool {
        self.parts.is_empty()
    }
}

/// A typed handle for publishing events *as* a registered unit from outside the
/// engine — the market-data-feed pattern.
///
/// A `Publisher` replaces the `engine.with_unit(id, |_, ctx| { ... publish
/// ... })` closures external drivers used to need: it is `Send`, cheap to
/// clone, and keeps the unit lock only for the label computation, not for the
/// whole closure body. For operations beyond publishing (creating tags,
/// changing labels), [`Publisher::with_context`] still exposes the full
/// Table 1 API.
pub struct Publisher {
    core: Arc<EngineCore>,
    unit: UnitId,
    /// The publishing unit's slot, resolved once at construction so the hot
    /// publish path reads the output label without a registry lookup. A
    /// *swapped* unit retires its old slot after installing the replacement
    /// under the same id — the label read detects the retirement and rebinds
    /// here transparently, so long-lived publishers (and the ingress sessions
    /// holding them) keep admitting to the replacement instead of silently
    /// going stale. A *removed* unit has no live slot, and a *quarantined*
    /// one refuses publishes — both fail loudly.
    slot: parking_lot::RwLock<Arc<crate::engine::UnitSlot>>,
}

impl Clone for Publisher {
    fn clone(&self) -> Self {
        Publisher {
            core: Arc::clone(&self.core),
            unit: self.unit,
            slot: parking_lot::RwLock::new(Arc::clone(&self.slot.read())),
        }
    }
}

impl Publisher {
    pub(crate) fn new(
        core: Arc<EngineCore>,
        unit: UnitId,
        slot: Arc<crate::engine::UnitSlot>,
    ) -> Self {
        Publisher {
            core,
            unit,
            slot: parking_lot::RwLock::new(slot),
        }
    }

    /// The unit this publisher publishes as.
    pub fn unit_id(&self) -> UnitId {
        self.unit
    }

    /// Publishes a draft, raising each part's label to the unit's output label
    /// (when label checks are enabled). Returns `Ok(false)` for empty drafts,
    /// which are dropped per Table 1.
    pub fn publish(&self, draft: EventDraft) -> EngineResult<bool> {
        if draft.parts.is_empty() {
            return Ok(false);
        }
        let output_label = self.output_label()?;
        let event = self.build_event(draft, &output_label, defcon_events::now_ns())?;
        self.core
            .enqueue_external(self.unit, &output_label, event)?;
        Ok(true)
    }

    /// Publishes a batch of drafts in one run-queue transaction: the unit's
    /// output label is read once, every built event lands on a single shard in
    /// draft order under one lock acquisition, and consumers are woken once —
    /// the driver-side half of the engine's batched dispatch hot path. Empty
    /// drafts are dropped per Table 1.
    ///
    /// Returns the typed [`Admission`] result: `accepted()` is exactly the
    /// number of events that will be dispatched. An entirely rejected batch
    /// (the runtime has shut down) fails loudly like [`Publisher::publish`]; a
    /// batch racing shutdown may be partially accepted, and the withdrawn
    /// remainder is reported as `shed()`.
    ///
    /// This direct path bypasses bounded admission; use
    /// [`Publisher::try_publish_batch`] to respect a configured
    /// [`IngressConfig`](crate::IngressConfig) queue bound.
    pub fn publish_batch(&self, drafts: Vec<EventDraft>) -> EngineResult<Admission> {
        // The built events live in a reused per-thread buffer: the queue
        // drains it on enqueue, so a steady feed allocates no batch vectors.
        thread_local! {
            static EVENT_SCRATCH: std::cell::RefCell<Vec<Event>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        EVENT_SCRATCH.with(|scratch| {
            let mut events = scratch.borrow_mut();
            events.clear();
            let mut output_label = None;
            // The whole batch shares one origin timestamp: it enters the
            // engine through one publish call, so one clock read is the
            // honest publish instant for every event in it.
            let origin_ns = defcon_events::now_ns();
            for draft in drafts {
                if draft.parts.is_empty() {
                    continue;
                }
                // The label snapshot is shared by the whole batch; it is only
                // read when at least one draft actually publishes.
                let label = match &output_label {
                    Some(label) => label,
                    None => output_label.insert(self.output_label()?),
                };
                let event = self.build_event(draft, label, origin_ns)?;
                events.push(event);
            }
            if events.is_empty() {
                return Ok(Admission::default());
            }
            let built = events.len();
            let label = output_label
                .as_ref()
                .expect("non-empty batch snapshots the label");
            let accepted =
                self.core
                    .enqueue_external_batch(self.unit, label, origin_ns, &mut events)?;
            Ok(Admission::new(accepted, built - accepted, 0))
        })
    }

    /// Non-blocking bounded variant of [`Publisher::publish_batch`]: admission
    /// first checks the engine's configured
    /// [`IngressConfig::queue_bound`](crate::IngressConfig::queue_bound)
    /// against current run-queue depth (plus concurrent admitters'
    /// reservations, so the bound holds exactly under contention). If the
    /// batch fits it is published and counted toward the engine's
    /// `ingress_admitted` telemetry; otherwise nothing is enqueued and the
    /// drafts come back in [`TryPublish::WouldBlock`] for the caller to retry,
    /// buffer or shed. Without an ingress configuration the admission check
    /// always passes.
    pub fn try_publish_batch(&self, drafts: Vec<EventDraft>) -> EngineResult<TryPublish> {
        // Reserve for every non-empty draft: the reservation is a conservative
        // upper bound on what the publish will enqueue.
        let want = drafts.iter().filter(|draft| !draft.is_empty()).count();
        if want == 0 {
            return Ok(TryPublish::Admitted(Admission::default()));
        }
        if !self.core.try_admit(want) {
            return Ok(TryPublish::WouldBlock { drafts });
        }
        let result = self.publish_batch(drafts);
        // The enqueue has made the events visible in queue depth (or failed);
        // either way the reservation is no longer needed.
        self.core.release_admission(want);
        let admission = result?;
        self.core
            .admission
            .record_admitted(admission.accepted() as u64);
        Ok(TryPublish::Admitted(admission))
    }

    /// Snapshot of the publishing unit's output label from the cached slot.
    /// A retired slot means the unit was swapped (rebind to the replacement
    /// and retry) or removed (fail loudly, exactly like the registry lookup
    /// used to); a quarantined unit refuses publishes with a typed error.
    fn output_label(&self) -> EngineResult<Label> {
        loop {
            let slot = Arc::clone(&self.slot.read());
            let guard = slot.cell.lock();
            if guard.retired {
                drop(guard);
                let fresh = self.core.slot(self.unit)?;
                if Arc::ptr_eq(&fresh, &slot) {
                    // Registry still maps to the retired slot: mid-removal.
                    return Err(EngineError::UnknownUnit(format!("{}", self.unit)));
                }
                *self.slot.write() = fresh;
                continue;
            }
            if guard.quarantined {
                return Err(EngineError::UnitQuarantined(format!("{}", self.unit)));
            }
            return Ok(guard.state.output_label.clone());
        }
    }

    /// Builds one event from a draft, raising part labels to the unit's output
    /// label **in place** (the draft's parts buffer becomes the event's, no
    /// rebuild) and charging isolation interceptions, exactly as a single
    /// `publish` would.
    fn build_event(
        &self,
        draft: EventDraft,
        output_label: &Label,
        origin_ns: u64,
    ) -> EngineResult<Event> {
        let checks = self.core.config.mode.checks_labels();
        let isolates = self.core.config.mode.isolates();
        let mut parts = draft.parts;
        for part in &mut parts {
            // Mirror `UnitContext::add_part`: the isolation runtime charges
            // one interception per part entering the engine, so externally
            // published parts keep counting toward Figure 5's
            // isolation-overhead series.
            if isolates {
                self.core.isolation.intercept();
            }
            if checks {
                part.raise_label_to_output(output_label);
            }
        }
        Ok(Event::with_origin(parts, origin_ns)?)
    }

    /// Runs a closure with the full [`UnitContext`] API as this unit — the
    /// escape hatch for drivers that need more than publishing (tag creation,
    /// label changes, subscriptions).
    pub fn with_context<R>(
        &self,
        f: impl FnOnce(&mut UnitContext<'_>) -> EngineResult<R>,
    ) -> EngineResult<R> {
        self.core.with_unit_context(self.unit, |_, ctx| f(ctx))
    }
}

impl std::fmt::Debug for Publisher {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("Publisher")
            .field("unit", &self.unit)
            .finish()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::SecurityMode;
    use crate::unit::{NullUnit, Unit, UnitSpec};
    use defcon_events::Filter;
    use std::sync::atomic::{AtomicU64, Ordering};

    struct Counter {
        seen: Arc<AtomicU64>,
    }

    impl Unit for Counter {
        fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
            ctx.subscribe(Filter::for_type("tick"))?;
            Ok(())
        }
        fn on_event(&mut self, _ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
            self.seen.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    #[test]
    fn publisher_routes_events_through_dispatch() {
        let engine = Engine::builder().mode(SecurityMode::LabelsFreeze).build();
        let seen = Arc::new(AtomicU64::new(0));
        engine
            .register_unit(
                UnitSpec::new("counter"),
                Box::new(Counter {
                    seen: Arc::clone(&seen),
                }),
            )
            .unwrap();
        let source = engine
            .register_unit(UnitSpec::new("source"), Box::new(NullUnit))
            .unwrap();

        let handle = engine.start();
        let publisher = handle.publisher(source).unwrap();
        assert!(publisher
            .publish(EventDraft::new().public_part("type", Value::str("tick")))
            .unwrap());
        assert!(
            !publisher.publish(EventDraft::new()).unwrap(),
            "empty drafts drop"
        );
        handle.pump_until_idle().unwrap();
        assert_eq!(seen.load(Ordering::Relaxed), 1);
        handle.shutdown().unwrap();
    }

    #[test]
    fn publish_batch_routes_and_drops_empty_drafts() {
        let engine = Engine::builder().mode(SecurityMode::LabelsFreeze).build();
        let seen = Arc::new(AtomicU64::new(0));
        engine
            .register_unit(
                UnitSpec::new("counter"),
                Box::new(Counter {
                    seen: Arc::clone(&seen),
                }),
            )
            .unwrap();
        let source = engine
            .register_unit(UnitSpec::new("source"), Box::new(NullUnit))
            .unwrap();

        let handle = engine.start();
        let publisher = handle.publisher(source).unwrap();
        let drafts = vec![
            EventDraft::new().public_part("type", Value::str("tick")),
            EventDraft::new(), // dropped per Table 1
            EventDraft::new().public_part("type", Value::str("tick")),
        ];
        let admission = publisher.publish_batch(drafts).unwrap();
        assert_eq!(admission.accepted(), 2);
        assert_eq!(admission.shed(), 0, "nothing sheds on the unbounded path");
        assert_eq!(
            publisher.publish_batch(Vec::new()).unwrap().accepted(),
            0,
            "an all-empty batch publishes nothing"
        );
        handle.pump_until_idle().unwrap();
        assert_eq!(seen.load(Ordering::Relaxed), 2);
        assert_eq!(engine.stats().published(), 2);
        handle.shutdown().unwrap();
    }

    #[test]
    fn handle_publish_batch_shorthand_matches_publisher() {
        let engine = Engine::builder().batch_size(4).build();
        let seen = Arc::new(AtomicU64::new(0));
        engine
            .register_unit(
                UnitSpec::new("counter"),
                Box::new(Counter {
                    seen: Arc::clone(&seen),
                }),
            )
            .unwrap();
        let source = engine
            .register_unit(UnitSpec::new("source"), Box::new(NullUnit))
            .unwrap();
        let handle = engine.start();
        let drafts = (0..8)
            .map(|_| EventDraft::new().public_part("type", Value::str("tick")))
            .collect();
        assert_eq!(handle.publish_batch(source, drafts).unwrap().accepted(), 8);
        handle.pump_until_idle().unwrap();
        assert_eq!(seen.load(Ordering::Relaxed), 8);
        handle.shutdown().unwrap();
    }

    #[test]
    fn publish_batch_after_shutdown_is_rejected_not_lost() {
        let engine = Engine::builder().workers(2).batch_size(8).build();
        let source = engine
            .register_unit(UnitSpec::new("source"), Box::new(NullUnit))
            .unwrap();
        let publisher = engine.publisher(source).unwrap();
        engine.start().shutdown().unwrap();

        let drafts = (0..4)
            .map(|_| EventDraft::new().public_part("type", Value::str("tick")))
            .collect();
        let result = publisher.publish_batch(drafts);
        assert!(
            matches!(result, Err(crate::EngineError::InvalidOperation(_))),
            "late batch publishes must fail loudly, got {result:?}"
        );
        assert_eq!(engine.queue_depth(), 0, "nothing may linger on the queue");
        assert_eq!(engine.stats().published(), 0);
    }

    #[test]
    fn try_publish_batch_enforces_the_configured_queue_bound() {
        use crate::admission::{IngressConfig, TryPublish};
        // workers(0): nothing drains, so queued depth is fully deterministic.
        let engine = Engine::builder().ingress(IngressConfig::new(6)).build();
        let source = engine
            .register_unit(UnitSpec::new("source"), Box::new(NullUnit))
            .unwrap();
        let handle = engine.start();
        let publisher = handle.publisher(source).unwrap();

        let drafts = |n: usize| -> Vec<EventDraft> {
            (0..n)
                .map(|_| EventDraft::new().public_part("type", Value::str("tick")))
                .collect()
        };
        match publisher.try_publish_batch(drafts(4)).unwrap() {
            TryPublish::Admitted(admission) => {
                assert_eq!(admission.accepted(), 4);
                assert_eq!(admission.shed(), 0);
            }
            other => panic!("a batch within the bound admits, got {other:?}"),
        }
        // 4 queued + 4 more would overshoot the bound of 6: handed back.
        match publisher.try_publish_batch(drafts(4)).unwrap() {
            TryPublish::WouldBlock { drafts } => {
                assert_eq!(drafts.len(), 4, "drafts come back untouched");
                assert_eq!(engine.queue_depth(), 4, "nothing was enqueued");
            }
            other => panic!("an overflowing batch must not admit, got {other:?}"),
        }
        // A smaller batch still fits exactly up to the bound.
        match publisher.try_publish_batch(drafts(2)).unwrap() {
            TryPublish::Admitted(admission) => assert_eq!(admission.accepted(), 2),
            other => panic!("a batch filling the bound exactly admits, got {other:?}"),
        }
        assert_eq!(engine.queue_depth(), 6);
        let stats = engine.queue_stats();
        assert_eq!(stats.ingress_admitted, 6);
        assert_eq!(stats.ingress_shed, 0);

        handle.pump_until_idle().unwrap();
        // Drained: the next admission passes again.
        match publisher.try_publish_batch(drafts(4)).unwrap() {
            TryPublish::Admitted(admission) => assert_eq!(admission.accepted(), 4),
            other => panic!("a drained queue re-admits, got {other:?}"),
        }
        handle.shutdown().unwrap();
    }

    #[test]
    fn try_publish_batch_without_ingress_config_always_admits() {
        let engine = Engine::builder().build();
        let source = engine
            .register_unit(UnitSpec::new("source"), Box::new(NullUnit))
            .unwrap();
        let handle = engine.start();
        for _ in 0..5 {
            let drafts = (0..100)
                .map(|_| EventDraft::new().public_part("type", Value::str("tick")))
                .collect();
            match handle.try_publish_batch(source, drafts).unwrap() {
                crate::admission::TryPublish::Admitted(admission) => {
                    assert_eq!(admission.accepted(), 100)
                }
                other => panic!("unbounded engines never block, got {other:?}"),
            }
        }
        handle.pump_until_idle().unwrap();
        handle.shutdown().unwrap();
    }

    #[test]
    fn publisher_for_unknown_unit_fails_fast() {
        let engine = Engine::builder().build();
        assert!(engine.publisher(UnitId::from_raw(999)).is_err());
    }

    #[test]
    fn shutdown_drains_queued_events_with_workers() {
        let engine = Engine::builder().workers(2).build();
        let seen = Arc::new(AtomicU64::new(0));
        engine
            .register_unit(
                UnitSpec::new("counter"),
                Box::new(Counter {
                    seen: Arc::clone(&seen),
                }),
            )
            .unwrap();
        let source = engine
            .register_unit(UnitSpec::new("source"), Box::new(NullUnit))
            .unwrap();

        let handle = engine.start();
        assert_eq!(handle.worker_count(), 2);
        let publisher = handle.publisher(source).unwrap();
        for _ in 0..100 {
            publisher
                .publish(EventDraft::new().public_part("type", Value::str("tick")))
                .unwrap();
        }
        let dispatched = handle.shutdown().unwrap();
        assert_eq!(dispatched, 100, "shutdown must drain everything");
        assert_eq!(seen.load(Ordering::Relaxed), 100);
        assert_eq!(engine.queue_depth(), 0);
    }

    #[test]
    fn publish_after_shutdown_is_rejected_not_lost() {
        let engine = Engine::builder().workers(2).build();
        let source = engine
            .register_unit(UnitSpec::new("source"), Box::new(NullUnit))
            .unwrap();
        let publisher = engine.publisher(source).unwrap();
        engine.start().shutdown().unwrap();

        let result = publisher.publish(EventDraft::new().public_part("type", Value::str("tick")));
        assert!(
            matches!(result, Err(crate::EngineError::InvalidOperation(_))),
            "late publishes must fail loudly, got {result:?}"
        );
        assert_eq!(engine.queue_depth(), 0, "nothing may linger on the queue");
        assert_eq!(engine.stats().published(), 0);
    }

    #[test]
    fn bootstrap_publishes_during_late_registration_are_rejected() {
        struct Bootstrapper;
        impl Unit for Bootstrapper {
            fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
                let draft = ctx.create_event();
                ctx.add_part(&draft, Label::public(), "type", Value::str("boot"))?;
                ctx.publish(draft)?;
                Ok(())
            }
            fn on_event(&mut self, _ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
                Ok(())
            }
        }

        let engine = Engine::builder().workers(1).build();
        engine.start().shutdown().unwrap();
        // Registering after shutdown is allowed, but the unit's init-published
        // bootstrap events cannot be dispatched any more: loud error, no event
        // rotting on the stopped queue.
        let result = engine.register_unit(UnitSpec::new("late"), Box::new(Bootstrapper));
        assert!(
            matches!(result, Err(crate::EngineError::InvalidOperation(_))),
            "got {result:?}"
        );
        assert_eq!(engine.queue_depth(), 0);
    }

    #[test]
    fn panicking_unit_does_not_deadlock_shutdown() {
        struct Bomb;
        impl Unit for Bomb {
            fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
                ctx.subscribe(defcon_events::Filter::for_type("tick"))?;
                Ok(())
            }
            fn on_event(&mut self, _ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
                panic!("unit code misbehaved");
            }
        }

        let engine = Engine::builder().workers(2).build();
        let seen = Arc::new(AtomicU64::new(0));
        engine
            .register_unit(UnitSpec::new("bomb"), Box::new(Bomb))
            .unwrap();
        engine
            .register_unit(
                UnitSpec::new("counter"),
                Box::new(Counter {
                    seen: Arc::clone(&seen),
                }),
            )
            .unwrap();
        let source = engine
            .register_unit(UnitSpec::new("source"), Box::new(NullUnit))
            .unwrap();

        let handle = engine.start();
        let publisher = handle.publisher(source).unwrap();
        for _ in 0..20 {
            publisher
                .publish(EventDraft::new().public_part("type", Value::str("tick")))
                .unwrap();
        }
        // The workers survive the panics, keep dispatching to healthy units and
        // shutdown still drains and joins instead of hanging.
        let dispatched = handle.shutdown().unwrap();
        assert_eq!(dispatched, 20);
        assert_eq!(seen.load(Ordering::Relaxed), 20);
        assert_eq!(engine.stats().unit_errors(), 20);
    }

    #[test]
    #[should_panic(expected = "once per engine")]
    fn double_start_panics() {
        let engine = Engine::builder().build();
        let _handle = engine.start();
        let _second = engine.start();
    }

    #[test]
    #[should_panic(expected = "after the runtime was shut down")]
    fn start_after_shutdown_panics() {
        let engine = Engine::builder().build();
        engine.start().shutdown().unwrap();
        let _revenant = engine.start();
    }

    #[test]
    fn dropping_a_handle_joins_workers() {
        let engine = Engine::builder().workers(2).build();
        {
            let _handle = engine.start();
        }
        // After the drop the queue is stopped; a new start() would need a new
        // engine, which is the documented one-shot lifecycle.
        assert!(engine.queue_depth() == 0);
    }

    #[test]
    fn with_context_exposes_the_full_table1_api() {
        let engine = Engine::builder().build();
        let source = engine
            .register_unit(UnitSpec::new("source"), Box::new(NullUnit))
            .unwrap();
        let handle = engine.start();
        let publisher = handle.publisher(source).unwrap();
        let tag = publisher
            .with_context(|ctx| Ok(ctx.create_owned_tag("t")))
            .unwrap();
        assert_eq!(tag.name(), Some("t"));
        handle.shutdown().unwrap();
    }
}
