//! The engine's sharded run queue.
//!
//! Published-but-not-yet-dispatched events live here. The queue is split into
//! shards so that concurrent dispatcher workers (§6's multi-core configuration)
//! do not all contend on one mutex: producers enqueue round-robin, and each
//! worker prefers "its" shard, stealing from the others when it runs dry.
//! Ordering is therefore FIFO per shard, not globally — the engine has never
//! promised a global dispatch order across independent events, only that each
//! event's deliveries happen in subscription order and that deliveries to one
//! unit are serialised (by the per-unit mutex, not by the queue).
//!
//! Consumers pop in *batches*: [`RunQueue::pop_batch`] drains a whole run of up
//! to `max` events from one shard under a single lock acquisition (stealing a
//! run, not one item, when the preferred shard is dry), and the paired
//! [`BatchGuard`] settles the in-flight accounting for the entire batch with
//! one atomic update and one wakeup check. A batch size of 1 degenerates to
//! the classic one-event-per-lock behaviour.
//!
//! The queue also tracks how many events are *in flight* (popped but whose
//! dispatch has not finished), which is what makes [`RunQueue::wait_idle`] and
//! graceful shutdown deterministic: a drained queue with an in-flight dispatch
//! may still grow again, so "idle" means empty *and* nothing in flight.
//!
//! Blocked consumers park on a condvar and rely purely on paired signalling —
//! every insert either observes a registered waiter (and notifies) or the
//! waiter's pre-sleep recheck observes the insert; there is no periodic-wakeup
//! safety net, so an idle engine's workers sleep silently instead of polling.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use defcon_events::Event;
use parking_lot::{Condvar, Mutex};

/// A multi-producer multi-consumer queue of events awaiting dispatch.
pub(crate) struct RunQueue {
    shards: Vec<Mutex<VecDeque<Event>>>,
    /// Events queued across all shards.
    len: AtomicUsize,
    /// Events accepted but not yet *completed* (queued + in flight). Idleness
    /// is this single counter reaching zero — reading `len` and an in-flight
    /// count as a pair would admit a race where a cascade publication between
    /// the two loads makes a busy queue look idle.
    pending: AtomicUsize,
    /// Set by [`RunQueue::stop`]; workers exit once the queue is fully idle.
    stopping: AtomicBool,
    /// Round-robin cursor for enqueue shard selection.
    next_shard: AtomicUsize,
    /// Consumers currently parked (or about to park) on `work_signal`; lets the
    /// hot internal push skip the signal lock when nobody is listening.
    waiters: AtomicUsize,
    /// Guards the wakeup condvars (the counters themselves are atomics).
    signal_lock: Mutex<()>,
    /// Signalled when work arrives or the queue starts stopping.
    work_signal: Condvar,
    /// Signalled when the queue becomes fully idle.
    idle_signal: Condvar,
    /// Blocked admitters (ingress publishers waiting for queued depth to
    /// drop) currently parked on `depth_signal`; lets the hot pop path skip
    /// the signal lock when nobody is watching depth.
    depth_waiters: AtomicUsize,
    /// Signalled when queued depth drops (events popped for dispatch) — the
    /// drain-side sampling hook bounded admission parks on.
    depth_signal: Condvar,
}

impl RunQueue {
    /// Creates a queue with `shards` internal shards (at least one).
    pub(crate) fn new(shards: usize) -> Self {
        RunQueue {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            len: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            stopping: AtomicBool::new(false),
            next_shard: AtomicUsize::new(0),
            waiters: AtomicUsize::new(0),
            signal_lock: Mutex::new(()),
            work_signal: Condvar::new(),
            idle_signal: Condvar::new(),
            depth_waiters: AtomicUsize::new(0),
            depth_signal: Condvar::new(),
        }
    }

    /// Number of events currently queued (not counting in-flight dispatches).
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Number of internal shards (clamped to the worker count at construction:
    /// one shard per dispatcher, at least one).
    pub(crate) fn shard_count(&self) -> usize {
        self.shards.len()
    }

    /// Events accepted but not yet completed (queued plus in flight) — the
    /// counter idleness is defined over.
    pub(crate) fn pending(&self) -> usize {
        self.pending.load(Ordering::Acquire)
    }

    /// Samples every shard's current depth. Each read takes that shard's lock
    /// briefly; intended for telemetry ([`EngineHandle::queue_stats`]
    /// (crate::EngineHandle::queue_stats)) and diagnostics, not for hot paths —
    /// the hot-path depth signal is the lock-free [`RunQueue::len`].
    pub(crate) fn shard_depths(&self) -> Vec<usize> {
        self.shards.iter().map(|shard| shard.lock().len()).collect()
    }

    /// Returns `true` if nothing is queued and nothing is being dispatched.
    pub(crate) fn is_idle(&self) -> bool {
        self.pending.load(Ordering::SeqCst) == 0
    }

    /// Enqueues an event from *inside* dispatch (main-path cascades). Always
    /// accepted: the publishing dispatch is in flight, so stopping workers
    /// cannot have exited yet and the event is guaranteed to drain. This is the
    /// hot path — it touches only its shard, never the global signal lock,
    /// unless a consumer is actually parked.
    pub(crate) fn push(&self, event: Event) {
        self.insert(event);
        self.wake_consumers(1);
    }

    /// Batched variant of [`RunQueue::push`]: all events land on one shard in
    /// order under a single lock acquisition, with a single wakeup check.
    pub(crate) fn push_batch(&self, events: Vec<Event>) {
        let n = events.len();
        if n == 0 {
            return;
        }
        self.insert_batch(events);
        self.wake_consumers(n);
    }

    /// Enqueues an event from an external driver (publisher handles, `with_unit`
    /// closures). Returns `false` — without enqueueing — once the queue is
    /// stopping: after the drain finishes nothing would ever dispatch the
    /// event, so accepting it would lose it silently.
    ///
    /// Allocation-free single-event twin of [`RunQueue::push_external_batch`],
    /// with the same stop-race reconciliation (see there).
    pub(crate) fn push_external(&self, event: Event) -> bool {
        if self.stopping.load(Ordering::SeqCst) {
            return false;
        }
        let id = event.id();
        let shard = self.insert(event);
        if self.stopping.load(Ordering::SeqCst) {
            let mut queue = self.shards[shard].lock();
            if let Some(position) = queue.iter().position(|queued| queued.id() == id) {
                queue.remove(position);
                self.len.fetch_sub(1, Ordering::SeqCst);
                drop(queue);
                self.complete_many(1);
                return false;
            }
        }
        self.wake_consumers(1);
        true
    }

    /// Enqueues a batch of external events onto one shard under one lock,
    /// returning how many were accepted (and will therefore be dispatched).
    /// The batch is *drained* out of `events` (accepted or not — a rejected
    /// batch is cleared), so callers can reuse one buffer across batches.
    ///
    /// Lock-free on the accept path, with a re-check after the insert closing
    /// the race against a concurrent full shutdown: if `stop` was observed
    /// false before the insert, the insert is SeqCst-ordered before the flag
    /// flip and the stopping drain is guaranteed to see the events; if stopping
    /// is observed afterwards, the still-queued tail of the batch is withdrawn
    /// by identity — events a drain already popped are in flight and their
    /// publish stands. The returned count is exactly the number of events that
    /// will reach dispatch.
    pub(crate) fn push_external_batch(&self, events: &mut Vec<Event>) -> usize {
        let n = events.len();
        if n == 0 || self.stopping.load(Ordering::SeqCst) {
            events.clear();
            return 0;
        }
        // The ids are only consulted on the (rare) stop race below, but they
        // must be captured before the insert hands the events away. A reused
        // thread-local keeps this capture allocation-free per batch.
        thread_local! {
            static WITHDRAW_IDS: std::cell::RefCell<Vec<defcon_events::EventId>> =
                const { std::cell::RefCell::new(Vec::new()) };
        }
        WITHDRAW_IDS.with(|ids| {
            let mut ids = ids.borrow_mut();
            ids.clear();
            ids.extend(events.iter().map(|event| event.id()));
            let shard = self.insert_batch_drain(events);
            if self.stopping.load(Ordering::SeqCst) {
                // Raced with shutdown; the drain may already be past this
                // shard. Withdraw whatever is still queued — anything gone is
                // being dispatched by a consumer, so those publishes stand.
                let mut withdrawn = 0;
                {
                    let mut queue = self.shards[shard].lock();
                    for id in ids.iter() {
                        if let Some(position) = queue.iter().position(|queued| queued.id() == *id) {
                            queue.remove(position);
                            withdrawn += 1;
                        }
                    }
                    if withdrawn > 0 {
                        self.len.fetch_sub(withdrawn, Ordering::SeqCst);
                    }
                }
                self.complete_many(withdrawn);
                let accepted = n - withdrawn;
                if accepted > 0 {
                    self.wake_consumers(accepted);
                }
                return accepted;
            }
            self.wake_consumers(n);
            n
        })
    }

    /// Returns a run of already-popped events to the queue *without* touching
    /// the pending count — the flush path for a dispatcher's local run deque
    /// (scheduler v3). Events parked in a local deque were popped from a shard
    /// (`len` dropped) but never completed (`pending` still counts them);
    /// putting them back must restore `len` and wake consumers, but bumping
    /// `pending` again would double-count them and idleness would never be
    /// reached. The run stays contiguous and in order on its new shard.
    pub(crate) fn requeue_batch(&self, events: Vec<Event>) {
        let n = events.len();
        if n == 0 {
            return;
        }
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        {
            let mut queue = self.shards[shard].lock();
            queue.extend(events);
            self.len.fetch_add(n, Ordering::SeqCst);
        }
        self.wake_consumers(n);
    }

    fn insert(&self, event: Event) -> usize {
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut queue = self.shards[shard].lock();
        // `pending` rises with the insert and only falls at `complete`, so a
        // cascade event published during a dispatch is counted before that
        // dispatch completes — idleness can never be observed in between.
        self.pending.fetch_add(1, Ordering::SeqCst);
        queue.push_back(event);
        // Incremented while the shard lock is held so `len` can never lag a
        // concurrent pop and wrap below zero.
        self.len.fetch_add(1, Ordering::SeqCst);
        shard
    }

    fn insert_batch(&self, events: Vec<Event>) -> usize {
        let n = events.len();
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut queue = self.shards[shard].lock();
        self.pending.fetch_add(n, Ordering::SeqCst);
        queue.extend(events);
        self.len.fetch_add(n, Ordering::SeqCst);
        shard
    }

    /// [`RunQueue::insert_batch`], draining a caller-owned buffer instead of
    /// consuming it — the external publish path reuses one buffer per thread.
    fn insert_batch_drain(&self, events: &mut Vec<Event>) -> usize {
        let n = events.len();
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut queue = self.shards[shard].lock();
        self.pending.fetch_add(n, Ordering::SeqCst);
        queue.extend(events.drain(..));
        self.len.fetch_add(n, Ordering::SeqCst);
        shard
    }

    /// Wakes parked consumers after `inserted` events were enqueued. SeqCst
    /// pairs with the waiter registration in [`RunQueue::next_batch`]: either
    /// this load sees the registered waiter (and we wake it), or the waiter's
    /// pre-sleep `len` recheck — sequenced after its registration — sees our
    /// insert and never parks.
    fn wake_consumers(&self, inserted: usize) {
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _signal = self.signal_lock.lock();
            if inserted > 1 {
                // A batch can feed several workers (they steal runs from the
                // shard it landed on); a single token would leave them parked.
                self.work_signal.notify_all();
            } else {
                self.work_signal.notify_one();
            }
        }
    }

    /// Pops one event, preferring shard `preferred` and stealing from the others.
    /// The popped event counts as in flight until [`RunQueue::complete`] is
    /// called for it.
    pub(crate) fn pop(&self, preferred: usize) -> Option<Event> {
        let shard_count = self.shards.len();
        for offset in 0..shard_count {
            let shard = &self.shards[(preferred + offset) % shard_count];
            let mut queue = shard.lock();
            if let Some(event) = queue.pop_front() {
                // Only `len` drops here; `pending` keeps counting the event
                // until its dispatch calls `complete`.
                self.len.fetch_sub(1, Ordering::AcqRel);
                drop(queue);
                self.note_depth_drop();
                return Some(event);
            }
        }
        None
    }

    /// Pops up to `max` events in FIFO order from one shard under a single lock
    /// acquisition, preferring shard `preferred` and stealing a whole run from a
    /// sibling shard when the preferred one is dry. Every popped event counts as
    /// in flight until completed (see [`RunQueue::batch_guard`]).
    pub(crate) fn pop_batch(&self, preferred: usize, max: usize) -> Vec<Event> {
        let mut batch = Vec::new();
        self.pop_batch_into(preferred, max, &mut batch);
        batch
    }

    /// Allocation-free twin of [`RunQueue::pop_batch`]: appends the popped run
    /// to `out` (which the hot worker loop reuses across batches) and returns
    /// how many events were popped.
    pub(crate) fn pop_batch_into(
        &self,
        preferred: usize,
        max: usize,
        out: &mut Vec<Event>,
    ) -> usize {
        let max = max.max(1);
        let shard_count = self.shards.len();
        for offset in 0..shard_count {
            let shard = &self.shards[(preferred + offset) % shard_count];
            let mut queue = shard.lock();
            if queue.is_empty() {
                continue;
            }
            let take = queue.len().min(max);
            out.extend(queue.drain(..take));
            // Decremented while the shard lock is held so `len` can never lag
            // a concurrent pop and wrap below zero.
            self.len.fetch_sub(take, Ordering::AcqRel);
            drop(queue);
            self.note_depth_drop();
            return take;
        }
        0
    }

    /// Wakes admitters parked on the depth signal after queued depth dropped.
    /// One relaxed-ish atomic load on the hot pop path when nobody is
    /// watching; waiters re-check their own depth condition after waking.
    fn note_depth_drop(&self) {
        if self.depth_waiters.load(Ordering::SeqCst) > 0 {
            let _signal = self.signal_lock.lock();
            self.depth_signal.notify_all();
        }
    }

    /// Blocks until queued depth is below `target`, the queue starts
    /// stopping, or `timeout` elapses; returns `true` when depth is below
    /// `target` or the queue is stopping (a stopping queue drains, so blocked
    /// admitters should bail out rather than wait out the timeout).
    ///
    /// Each park is additionally bounded (1 ms slices) so the rare missed
    /// wakeup — a pop's waiter check racing this thread's registration —
    /// costs a bounded delay, never a hang.
    pub(crate) fn wait_depth_below(&self, target: usize, timeout: Duration) -> bool {
        const WAIT_SLICE: Duration = Duration::from_millis(1);
        let deadline = Instant::now() + timeout;
        loop {
            if self.len() < target || self.is_stopping() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let mut signal = self.signal_lock.lock();
            self.depth_waiters.fetch_add(1, Ordering::SeqCst);
            if self.len.load(Ordering::SeqCst) >= target && !self.is_stopping() {
                self.depth_signal
                    .wait_for(&mut signal, (deadline - now).min(WAIT_SLICE));
            }
            self.depth_waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Marks one popped event's dispatch as finished.
    pub(crate) fn complete(&self) {
        self.complete_many(1);
    }

    /// Marks `n` popped events' dispatches as finished in one accounting
    /// update: a single atomic subtraction and a single idle check for the
    /// whole batch.
    pub(crate) fn complete_many(&self, n: usize) {
        if n == 0 {
            return;
        }
        self.pending.fetch_sub(n, Ordering::SeqCst);
        if self.is_idle() {
            let _signal = self.signal_lock.lock();
            self.idle_signal.notify_all();
            // Stopping workers park on the work signal; wake them so they can
            // observe the idle queue and exit.
            self.work_signal.notify_all();
        }
    }

    /// Returns a guard that calls [`RunQueue::complete`] when dropped, so the
    /// in-flight count stays balanced even if a dispatch panics.
    pub(crate) fn complete_guard(&self) -> CompleteGuard<'_> {
        CompleteGuard { queue: self }
    }

    /// Returns a guard that settles the in-flight accounting for a batch of `n`
    /// popped events when dropped — one atomic update and one wakeup check for
    /// the whole batch, balanced even if a dispatch panics mid-batch.
    pub(crate) fn batch_guard(&self, n: usize) -> BatchGuard<'_> {
        BatchGuard {
            queue: self,
            remaining: n,
        }
    }

    /// Blocks until at least one event is available, returning a batch of up to
    /// `max` events from one shard, or an empty batch once the queue is
    /// stopping *and* fully idle (telling a worker to exit).
    #[cfg(test)]
    pub(crate) fn next_batch(&self, preferred: usize, max: usize) -> Vec<Event> {
        let mut batch = Vec::new();
        self.next_batch_into(preferred, max, &mut batch);
        batch
    }

    /// Allocation-free twin of [`RunQueue::next_batch`]: blocks until at least
    /// one event is available and appends the popped run to `out` (reused
    /// across batches by the worker loop), or returns 0 once the queue is
    /// stopping *and* fully idle (telling the worker to exit).
    pub(crate) fn next_batch_into(
        &self,
        preferred: usize,
        max: usize,
        out: &mut Vec<Event>,
    ) -> usize {
        loop {
            let popped = self.pop_batch_into(preferred, max, out);
            if popped > 0 {
                return popped;
            }
            if self.stopping.load(Ordering::Acquire) && self.is_idle() {
                return 0;
            }
            let mut signal = self.signal_lock.lock();
            // Register as a waiter *before* the recheck (SeqCst, pairing with
            // `wake_consumers`), then re-check: a push or the final `complete`
            // may have raced with the checks above. The wait itself is
            // untimed — the pairing guarantees no insert is ever missed, so an
            // idle engine's workers park silently instead of waking on a
            // polling interval.
            self.waiters.fetch_add(1, Ordering::SeqCst);
            if self.len.load(Ordering::SeqCst) > 0
                || (self.stopping.load(Ordering::Acquire) && self.is_idle())
            {
                self.waiters.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            self.work_signal.wait(&mut signal);
            self.waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Parks the caller until work may be available or `max_wait` elapses — the
    /// blocking primitive behind
    /// [`Dispatcher::pump_for`](crate::Dispatcher::pump_for), so polling drivers
    /// do not spin a core while the queue is empty. Parks regardless of the
    /// stopping flag (callers exit on `stopping && idle` themselves): in-flight
    /// dispatches of a stopping queue may still publish, and `complete` wakes
    /// all waiters when the queue goes idle.
    pub(crate) fn park_for_work(&self, max_wait: Duration) {
        let mut signal = self.signal_lock.lock();
        self.waiters.fetch_add(1, Ordering::SeqCst);
        if self.len.load(Ordering::SeqCst) == 0 {
            self.work_signal.wait_for(&mut signal, max_wait);
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Asks consumers to exit once the queue has fully drained. External pushes
    /// are rejected from this point on (see `push_external_batch` for how the
    /// flag flip and racing inserts reconcile).
    pub(crate) fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        let _signal = self.signal_lock.lock();
        self.work_signal.notify_all();
        self.idle_signal.notify_all();
        // Blocked admitters must observe the stop instead of waiting for a
        // depth drop that may never come.
        self.depth_signal.notify_all();
    }

    /// Returns `true` once [`RunQueue::stop`] has been called.
    pub(crate) fn is_stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire)
    }

    /// Blocks until the queue is fully idle or `timeout` elapses; returns whether
    /// idleness was reached.
    pub(crate) fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.is_idle() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let mut signal = self.signal_lock.lock();
            if self.is_idle() {
                return true;
            }
            self.idle_signal.wait_for(&mut signal, deadline - now);
        }
    }
}

/// RAII guard balancing an in-flight dispatch (see [`RunQueue::complete_guard`]).
pub(crate) struct CompleteGuard<'a> {
    queue: &'a RunQueue,
}

impl Drop for CompleteGuard<'_> {
    fn drop(&mut self) {
        self.queue.complete();
    }
}

/// RAII guard balancing a whole batch of in-flight dispatches with a single
/// accounting update (see [`RunQueue::batch_guard`]).
pub(crate) struct BatchGuard<'a> {
    queue: &'a RunQueue,
    remaining: usize,
}

impl Drop for BatchGuard<'_> {
    fn drop(&mut self) {
        self.queue.complete_many(self.remaining);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_defc::Label;
    use defcon_events::{EventBuilder, Value};
    use std::sync::Arc;

    fn event(n: i64) -> Event {
        EventBuilder::new()
            .part("n", Label::public(), Value::Int(n))
            .build()
            .unwrap()
    }

    /// Blocking single-event pop: the batch-size-1 degenerate case of
    /// [`RunQueue::next_batch`].
    fn next_event(queue: &RunQueue, preferred: usize) -> Option<Event> {
        queue.next_batch(preferred, 1).pop()
    }

    fn event_value(event: &Event) -> i64 {
        match event.first_part("n").map(|part| part.data().clone()) {
            Some(Value::Int(n)) => n,
            other => panic!("unexpected part payload: {other:?}"),
        }
    }

    #[test]
    fn push_pop_complete_round_trip() {
        let queue = RunQueue::new(4);
        assert!(queue.is_idle());
        queue.push(event(1));
        queue.push(event(2));
        assert_eq!(queue.len(), 2);

        let first = queue.pop(0).expect("event queued");
        assert!(!queue.is_idle(), "popped event is in flight");
        queue.complete();
        let _ = first;
        assert!(queue.pop(0).is_some());
        queue.complete();
        assert!(queue.is_idle());
        assert!(queue.pop(0).is_none());
    }

    #[test]
    fn pop_steals_from_other_shards() {
        let queue = RunQueue::new(4);
        queue.push(event(1)); // lands on shard 0 (round-robin from 0)
        assert!(queue.pop(3).is_some(), "worker 3 must steal from shard 0");
        queue.complete();
    }

    #[test]
    fn requeue_batch_restores_len_without_double_counting_pending() {
        let queue = RunQueue::new(2);
        queue.push_batch((0..4).map(event).collect());
        let run = queue.pop_batch(0, 4);
        assert_eq!(run.len(), 4);
        assert_eq!(queue.len(), 0);
        assert_eq!(queue.pending(), 4, "popped events stay pending");

        // A worker flushing its local deque puts the run back whole: `len`
        // recovers, `pending` stays flat, and order within the run holds.
        queue.requeue_batch(run);
        assert_eq!(queue.len(), 4);
        assert_eq!(queue.pending(), 4, "requeue must not double-count");
        let again = queue.pop_batch(0, 4);
        let values: Vec<i64> = again.iter().map(event_value).collect();
        assert_eq!(values, vec![0, 1, 2, 3], "the run stays in order");
        queue.complete_many(4);
        assert!(queue.is_idle(), "accounting balances after one completion");
    }

    #[test]
    fn pop_batch_drains_a_run_in_fifo_order() {
        let queue = RunQueue::new(1);
        queue.push_batch((0..10).map(event).collect());
        assert_eq!(queue.len(), 10);

        let batch = queue.pop_batch(0, 4);
        assert_eq!(
            batch.iter().map(event_value).collect::<Vec<_>>(),
            vec![0, 1, 2, 3],
            "a batch preserves shard FIFO order"
        );
        assert_eq!(queue.len(), 6);
        queue.complete_many(batch.len());

        let rest = queue.pop_batch(0, 100);
        assert_eq!(rest.len(), 6, "bounded by what is queued");
        queue.complete_many(rest.len());
        assert!(queue.is_idle());
    }

    #[test]
    fn pop_batch_steals_a_whole_run_from_a_sibling_shard() {
        let queue = RunQueue::new(4);
        // One push_batch lands on a single shard (shard 0, round-robin from 0).
        queue.push_batch((0..8).map(event).collect());

        // Worker preferring shard 2 finds its own shard dry and steals the
        // entire run from shard 0 under one lock, not one event at a time.
        let stolen = queue.pop_batch(2, 8);
        assert_eq!(stolen.len(), 8, "steal takes the whole run");
        assert_eq!(
            stolen.iter().map(event_value).collect::<Vec<_>>(),
            (0..8).collect::<Vec<_>>()
        );
        assert_eq!(queue.len(), 0);
        queue.complete_many(stolen.len());
        assert!(queue.is_idle());
    }

    #[test]
    fn batch_guard_settles_accounting_even_on_panic() {
        let queue = Arc::new(RunQueue::new(1));
        queue.push_batch((0..3).map(event).collect());
        let inner = Arc::clone(&queue);
        let result = std::panic::catch_unwind(move || {
            let batch = inner.pop_batch(0, 3);
            let _guard = inner.batch_guard(batch.len());
            panic!("dispatch blew up mid-batch");
        });
        assert!(result.is_err());
        assert!(
            queue.is_idle(),
            "guard must complete the whole batch on unwind"
        );
    }

    #[test]
    fn next_event_returns_none_only_when_stopped_and_idle() {
        let queue = Arc::new(RunQueue::new(2));
        queue.push(event(1));
        queue.stop();
        // Still one event queued: consumers must drain it before exiting.
        let got = next_event(&queue, 0).expect("queued event survives stop");
        let _ = got;
        queue.complete();
        assert!(next_event(&queue, 0).is_none());
    }

    #[test]
    fn external_pushes_are_rejected_after_stop_but_internal_ones_drain() {
        let queue = RunQueue::new(2);
        assert!(queue.push_external(event(1)), "accepted while running");
        queue.stop();
        assert!(!queue.push_external(event(2)), "rejected once stopping");
        // Internal (cascade) pushes are still accepted and drainable.
        queue.push(event(3));
        assert_eq!(queue.len(), 2);
        while next_event(&queue, 0).is_some() {
            queue.complete();
        }
        assert!(queue.is_idle());
    }

    #[test]
    fn external_batch_is_rejected_whole_once_stopping() {
        let queue = RunQueue::new(2);
        assert_eq!(
            queue.push_external_batch(&mut (0..5).map(event).collect()),
            5,
            "accepted while running"
        );
        queue.stop();
        assert_eq!(
            queue.push_external_batch(&mut (5..10).map(event).collect()),
            0,
            "rejected once stopping"
        );
        assert_eq!(queue.len(), 5);
        while next_event(&queue, 0).is_some() {
            queue.complete();
        }
        assert!(queue.is_idle());
    }

    /// The batch-straddles-stop race: a stop() that lands between a batch's
    /// insert and its post-insert recheck must leave the accounting exact —
    /// every accepted event is dispatched exactly once, withdrawn events never
    /// are, and the queue always reaches idle.
    #[test]
    fn external_batch_straddling_stop_keeps_accounting_exact() {
        for round in 0..50 {
            let queue = Arc::new(RunQueue::new(2));
            let consumed = Arc::new(AtomicUsize::new(0));
            let consumer = {
                let queue = Arc::clone(&queue);
                let consumed = Arc::clone(&consumed);
                std::thread::spawn(move || loop {
                    let batch = queue.next_batch(0, 4);
                    if batch.is_empty() {
                        return;
                    }
                    let _guard = queue.batch_guard(batch.len());
                    consumed.fetch_add(batch.len(), Ordering::SeqCst);
                })
            };
            let stopper = {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    // Vary the interleaving: sometimes stop lands before the
                    // publisher's insert, sometimes between insert and recheck,
                    // sometimes after.
                    if round % 3 == 0 {
                        std::thread::yield_now();
                    }
                    queue.stop();
                })
            };
            let mut accepted = 0;
            for chunk in 0..4 {
                accepted += queue
                    .push_external_batch(&mut (chunk * 8..(chunk + 1) * 8).map(event).collect());
            }
            stopper.join().unwrap();
            consumer.join().unwrap();
            assert!(queue.is_idle(), "round {round}: queue must settle idle");
            assert_eq!(
                consumed.load(Ordering::SeqCst),
                accepted,
                "round {round}: every accepted event is dispatched exactly once"
            );
        }
    }

    #[test]
    fn complete_guard_balances_in_flight_on_panic() {
        let queue = Arc::new(RunQueue::new(1));
        queue.push(event(1));
        let inner = Arc::clone(&queue);
        let result = std::panic::catch_unwind(move || {
            let _event = inner.pop(0).unwrap();
            let _guard = inner.complete_guard();
            panic!("dispatch blew up");
        });
        assert!(result.is_err());
        assert!(
            queue.is_idle(),
            "guard must complete the dispatch on unwind"
        );
    }

    #[test]
    fn wait_idle_times_out_while_in_flight() {
        let queue = RunQueue::new(1);
        queue.push(event(1));
        let _event = queue.pop(0).unwrap();
        assert!(!queue.wait_idle(Duration::from_millis(20)));
        queue.complete();
        assert!(queue.wait_idle(Duration::from_millis(100)));
    }

    /// The condvar pairing assertion that replaced the old 50 ms `WAIT_SLICE`
    /// polling safety net: a consumer parked in `next_batch` must be woken by
    /// the push signal itself. The generous bound is far below anything a
    /// polling interval could explain while staying robust on a loaded CI
    /// machine; the wait inside the queue is untimed, so only the paired
    /// notification can wake the consumer at all.
    #[test]
    fn parked_consumer_is_woken_by_push_not_by_polling() {
        let queue = Arc::new(RunQueue::new(2));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || {
                let event = next_event(&queue, 0);
                let woken_at = Instant::now();
                queue.complete();
                (event.is_some(), woken_at)
            })
        };
        // Let the consumer reach the untimed wait before signalling.
        std::thread::sleep(Duration::from_millis(100));
        let pushed_at = Instant::now();
        queue.push(event(1));
        let (got_event, woken_at) = consumer.join().unwrap();
        assert!(got_event, "the push must hand the consumer its event");
        let wake_latency = woken_at.duration_since(pushed_at);
        assert!(
            wake_latency < Duration::from_secs(5),
            "paired wakeup took {wake_latency:?}; an untimed wait only ends on notify"
        );
    }

    /// Same pairing assertion for the exit path: `stop` on an idle queue must
    /// release parked consumers without any timeout coming to the rescue.
    #[test]
    fn parked_consumer_is_released_by_stop() {
        let queue = Arc::new(RunQueue::new(2));
        let consumer = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || next_event(&queue, 0))
        };
        std::thread::sleep(Duration::from_millis(100));
        queue.stop();
        assert!(
            consumer.join().unwrap().is_none(),
            "stop on an idle queue releases parked consumers"
        );
    }

    #[test]
    fn wait_depth_below_wakes_on_pop_and_observes_stop() {
        let queue = Arc::new(RunQueue::new(1));
        queue.push_batch((0..8).map(event).collect());

        // Deep queue: the wait must time out while nothing drains.
        assert!(!queue.wait_depth_below(5, Duration::from_millis(20)));

        let waiter = {
            let queue = Arc::clone(&queue);
            std::thread::spawn(move || queue.wait_depth_below(5, Duration::from_secs(5)))
        };
        std::thread::sleep(Duration::from_millis(50));
        let batch = queue.pop_batch(0, 4); // depth 8 -> 4, below the target
        assert!(
            waiter.join().unwrap(),
            "a pop dropping depth below the target must release the waiter"
        );
        queue.complete_many(batch.len());

        // A stopping queue releases blocked admitters even at depth.
        queue.stop();
        assert!(queue.wait_depth_below(1, Duration::from_secs(5)));
    }

    #[test]
    fn concurrent_producers_and_consumers_drain_exactly() {
        let queue = Arc::new(RunQueue::new(4));
        let produced = 4 * 500;
        let consumed = Arc::new(AtomicUsize::new(0));

        let producers: Vec<_> = (0..4)
            .map(|p| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        queue.push(event((p * 500 + i) as i64));
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|w| {
                let queue = Arc::clone(&queue);
                let consumed = Arc::clone(&consumed);
                std::thread::spawn(move || {
                    while let Some(_event) = next_event(&queue, w) {
                        consumed.fetch_add(1, Ordering::Relaxed);
                        queue.complete();
                    }
                })
            })
            .collect();

        for producer in producers {
            producer.join().unwrap();
        }
        assert!(queue.wait_idle(Duration::from_secs(10)));
        queue.stop();
        for consumer in consumers {
            consumer.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), produced);
        assert!(queue.is_idle());
    }

    #[test]
    fn concurrent_batched_producers_and_consumers_drain_exactly() {
        let queue = Arc::new(RunQueue::new(4));
        let produced = 4 * 64 * 8;
        let consumed = Arc::new(AtomicUsize::new(0));

        let producers: Vec<_> = (0..4)
            .map(|p| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for chunk in 0..64 {
                        let base = (p * 64 + chunk) * 8;
                        queue.push_batch((base..base + 8).map(|i| event(i as i64)).collect());
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|w| {
                let queue = Arc::clone(&queue);
                let consumed = Arc::clone(&consumed);
                std::thread::spawn(move || loop {
                    let batch = queue.next_batch(w, 8);
                    if batch.is_empty() {
                        return;
                    }
                    let _guard = queue.batch_guard(batch.len());
                    consumed.fetch_add(batch.len(), Ordering::Relaxed);
                })
            })
            .collect();

        for producer in producers {
            producer.join().unwrap();
        }
        assert!(queue.wait_idle(Duration::from_secs(10)));
        queue.stop();
        for consumer in consumers {
            consumer.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), produced);
        assert!(queue.is_idle());
    }
}
