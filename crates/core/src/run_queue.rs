//! The engine's sharded run queue.
//!
//! Published-but-not-yet-dispatched events live here. The queue is split into
//! shards so that concurrent dispatcher workers (§6's multi-core configuration)
//! do not all contend on one mutex: producers enqueue round-robin, and each
//! worker prefers "its" shard, stealing from the others when it runs dry.
//! Ordering is therefore FIFO per shard, not globally — the engine has never
//! promised a global dispatch order across independent events, only that each
//! event's deliveries happen in subscription order and that deliveries to one
//! unit are serialised (by the per-unit mutex, not by the queue).
//!
//! The queue also tracks how many events are *in flight* (popped but whose
//! dispatch has not finished), which is what makes [`RunQueue::wait_idle`] and
//! graceful shutdown deterministic: a drained queue with an in-flight dispatch
//! may still grow again, so "idle" means empty *and* nothing in flight.

use std::collections::VecDeque;
use std::sync::atomic::{AtomicBool, AtomicUsize, Ordering};
use std::time::{Duration, Instant};

use defcon_events::Event;
use parking_lot::{Condvar, Mutex};

/// How long blocked consumers sleep between wakeup checks. Wakeups are signalled
/// explicitly; the timeout is a safety net against lost notifications.
const WAIT_SLICE: Duration = Duration::from_millis(50);

/// A multi-producer multi-consumer queue of events awaiting dispatch.
pub(crate) struct RunQueue {
    shards: Vec<Mutex<VecDeque<Event>>>,
    /// Events queued across all shards.
    len: AtomicUsize,
    /// Events accepted but not yet *completed* (queued + in flight). Idleness
    /// is this single counter reaching zero — reading `len` and an in-flight
    /// count as a pair would admit a race where a cascade publication between
    /// the two loads makes a busy queue look idle.
    pending: AtomicUsize,
    /// Set by [`RunQueue::stop`]; workers exit once the queue is fully idle.
    stopping: AtomicBool,
    /// Round-robin cursor for enqueue shard selection.
    next_shard: AtomicUsize,
    /// Consumers currently parked (or about to park) on `work_signal`; lets the
    /// hot internal push skip the signal lock when nobody is listening.
    waiters: AtomicUsize,
    /// Guards the wakeup condvars (the counters themselves are atomics).
    signal_lock: Mutex<()>,
    /// Signalled when work arrives or the queue starts stopping.
    work_signal: Condvar,
    /// Signalled when the queue becomes fully idle.
    idle_signal: Condvar,
}

impl RunQueue {
    /// Creates a queue with `shards` internal shards (at least one).
    pub(crate) fn new(shards: usize) -> Self {
        RunQueue {
            shards: (0..shards.max(1))
                .map(|_| Mutex::new(VecDeque::new()))
                .collect(),
            len: AtomicUsize::new(0),
            pending: AtomicUsize::new(0),
            stopping: AtomicBool::new(false),
            next_shard: AtomicUsize::new(0),
            waiters: AtomicUsize::new(0),
            signal_lock: Mutex::new(()),
            work_signal: Condvar::new(),
            idle_signal: Condvar::new(),
        }
    }

    /// Number of events currently queued (not counting in-flight dispatches).
    pub(crate) fn len(&self) -> usize {
        self.len.load(Ordering::Acquire)
    }

    /// Returns `true` if nothing is queued and nothing is being dispatched.
    pub(crate) fn is_idle(&self) -> bool {
        self.pending.load(Ordering::SeqCst) == 0
    }

    /// Enqueues an event from *inside* dispatch (main-path cascades). Always
    /// accepted: the publishing dispatch is in flight, so stopping workers
    /// cannot have exited yet and the event is guaranteed to drain. This is the
    /// hot path — it touches only its shard, never the global signal lock,
    /// unless a consumer is actually parked.
    pub(crate) fn push(&self, event: Event) {
        self.insert(event);
        // SeqCst pairs with the waiter registration in `next_event`: either this
        // load sees the registered waiter (and we wake it), or the waiter's
        // pre-sleep `len` recheck — sequenced after its registration — sees our
        // insert and never parks. WAIT_SLICE further bounds any surprise.
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _signal = self.signal_lock.lock();
            self.work_signal.notify_one();
        }
    }

    /// Enqueues an event from an external driver (publisher handles, `with_unit`
    /// closures). Returns `false` — without enqueueing — once the queue is
    /// stopping: after the drain finishes nothing would ever dispatch the
    /// event, so accepting it would lose it silently.
    ///
    /// Lock-free on the accept path, with a re-check after the insert closing
    /// the race against a concurrent full shutdown: if `stop` was observed
    /// false before the insert, the insert is SeqCst-ordered before the flag
    /// flip and the stopping drain is guaranteed to see the event; if stopping
    /// is observed afterwards, the event is taken back out (unless a drain
    /// already popped it, in which case it is being dispatched). Either way an
    /// `accepted` return means the event will be dispatched.
    pub(crate) fn push_external(&self, event: Event) -> bool {
        if self.stopping.load(Ordering::SeqCst) {
            return false;
        }
        let id = event.id();
        let shard = self.insert(event);
        if self.stopping.load(Ordering::SeqCst) {
            // Raced with shutdown; the drain may already be past this shard.
            // Withdraw the event by identity — if it is gone, a consumer has
            // it and will dispatch it, so the publish stands.
            let mut queue = self.shards[shard].lock();
            if let Some(position) = queue.iter().position(|queued| queued.id() == id) {
                queue.remove(position);
                self.len.fetch_sub(1, Ordering::SeqCst);
                drop(queue);
                self.complete();
                return false;
            }
        }
        if self.waiters.load(Ordering::SeqCst) > 0 {
            let _signal = self.signal_lock.lock();
            self.work_signal.notify_one();
        }
        true
    }

    fn insert(&self, event: Event) -> usize {
        let shard = self.next_shard.fetch_add(1, Ordering::Relaxed) % self.shards.len();
        let mut queue = self.shards[shard].lock();
        // `pending` rises with the insert and only falls at `complete`, so a
        // cascade event published during a dispatch is counted before that
        // dispatch completes — idleness can never be observed in between.
        self.pending.fetch_add(1, Ordering::SeqCst);
        queue.push_back(event);
        // Incremented while the shard lock is held so `len` can never lag a
        // concurrent pop and wrap below zero.
        self.len.fetch_add(1, Ordering::SeqCst);
        shard
    }

    /// Pops one event, preferring shard `preferred` and stealing from the others.
    /// The popped event counts as in flight until [`RunQueue::complete`] is
    /// called for it.
    pub(crate) fn pop(&self, preferred: usize) -> Option<Event> {
        let shard_count = self.shards.len();
        for offset in 0..shard_count {
            let shard = &self.shards[(preferred + offset) % shard_count];
            let mut queue = shard.lock();
            if let Some(event) = queue.pop_front() {
                // Only `len` drops here; `pending` keeps counting the event
                // until its dispatch calls `complete`.
                self.len.fetch_sub(1, Ordering::AcqRel);
                return Some(event);
            }
        }
        None
    }

    /// Marks one popped event's dispatch as finished.
    pub(crate) fn complete(&self) {
        self.pending.fetch_sub(1, Ordering::SeqCst);
        if self.is_idle() {
            let _signal = self.signal_lock.lock();
            self.idle_signal.notify_all();
            // Stopping workers park on the work signal; wake them so they can
            // observe the idle queue and exit.
            self.work_signal.notify_all();
        }
    }

    /// Returns a guard that calls [`RunQueue::complete`] when dropped, so the
    /// in-flight count stays balanced even if a dispatch panics.
    pub(crate) fn complete_guard(&self) -> CompleteGuard<'_> {
        CompleteGuard { queue: self }
    }

    /// Blocks until an event is available (returning it, in-flight) or until the
    /// queue is stopping *and* fully idle (returning `None`, telling a worker to
    /// exit).
    pub(crate) fn next_event(&self, preferred: usize) -> Option<Event> {
        loop {
            if let Some(event) = self.pop(preferred) {
                return Some(event);
            }
            if self.stopping.load(Ordering::Acquire) && self.is_idle() {
                return None;
            }
            let mut signal = self.signal_lock.lock();
            // Register as a waiter *before* the recheck (SeqCst, pairing with
            // `push`), then re-check: a push or the final `complete` may have
            // raced with the checks above.
            self.waiters.fetch_add(1, Ordering::SeqCst);
            if self.len.load(Ordering::SeqCst) > 0
                || (self.stopping.load(Ordering::Acquire) && self.is_idle())
            {
                self.waiters.fetch_sub(1, Ordering::SeqCst);
                continue;
            }
            self.work_signal.wait_for(&mut signal, WAIT_SLICE);
            self.waiters.fetch_sub(1, Ordering::SeqCst);
        }
    }

    /// Parks the caller until work may be available or `max_wait` (bounded by
    /// the safety slice) elapses — the blocking primitive behind
    /// [`Dispatcher::pump_for`](crate::Dispatcher::pump_for), so polling drivers
    /// do not spin a core while the queue is empty. Parks regardless of the
    /// stopping flag (callers exit on `stopping && idle` themselves): in-flight
    /// dispatches of a stopping queue may still publish, and `complete` wakes
    /// all waiters when the queue goes idle.
    pub(crate) fn park_for_work(&self, max_wait: Duration) {
        let mut signal = self.signal_lock.lock();
        self.waiters.fetch_add(1, Ordering::SeqCst);
        if self.len.load(Ordering::SeqCst) == 0 {
            self.work_signal
                .wait_for(&mut signal, max_wait.min(WAIT_SLICE));
        }
        self.waiters.fetch_sub(1, Ordering::SeqCst);
    }

    /// Asks consumers to exit once the queue has fully drained. External pushes
    /// are rejected from this point on (see `push_external` for how the flag
    /// flip and racing inserts reconcile).
    pub(crate) fn stop(&self) {
        self.stopping.store(true, Ordering::SeqCst);
        let _signal = self.signal_lock.lock();
        self.work_signal.notify_all();
        self.idle_signal.notify_all();
    }

    /// Returns `true` once [`RunQueue::stop`] has been called.
    pub(crate) fn is_stopping(&self) -> bool {
        self.stopping.load(Ordering::Acquire)
    }

    /// Blocks until the queue is fully idle or `timeout` elapses; returns whether
    /// idleness was reached.
    pub(crate) fn wait_idle(&self, timeout: Duration) -> bool {
        let deadline = Instant::now() + timeout;
        loop {
            if self.is_idle() {
                return true;
            }
            let now = Instant::now();
            if now >= deadline {
                return false;
            }
            let mut signal = self.signal_lock.lock();
            if self.is_idle() {
                return true;
            }
            self.idle_signal
                .wait_for(&mut signal, (deadline - now).min(WAIT_SLICE));
        }
    }
}

/// RAII guard balancing an in-flight dispatch (see [`RunQueue::complete_guard`]).
pub(crate) struct CompleteGuard<'a> {
    queue: &'a RunQueue,
}

impl Drop for CompleteGuard<'_> {
    fn drop(&mut self) {
        self.queue.complete();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_defc::Label;
    use defcon_events::{EventBuilder, Value};
    use std::sync::Arc;

    fn event(n: i64) -> Event {
        EventBuilder::new()
            .part("n", Label::public(), Value::Int(n))
            .build()
            .unwrap()
    }

    #[test]
    fn push_pop_complete_round_trip() {
        let queue = RunQueue::new(4);
        assert!(queue.is_idle());
        queue.push(event(1));
        queue.push(event(2));
        assert_eq!(queue.len(), 2);

        let first = queue.pop(0).expect("event queued");
        assert!(!queue.is_idle(), "popped event is in flight");
        queue.complete();
        let _ = first;
        assert!(queue.pop(0).is_some());
        queue.complete();
        assert!(queue.is_idle());
        assert!(queue.pop(0).is_none());
    }

    #[test]
    fn pop_steals_from_other_shards() {
        let queue = RunQueue::new(4);
        queue.push(event(1)); // lands on shard 0 (round-robin from 0)
        assert!(queue.pop(3).is_some(), "worker 3 must steal from shard 0");
        queue.complete();
    }

    #[test]
    fn next_event_returns_none_only_when_stopped_and_idle() {
        let queue = Arc::new(RunQueue::new(2));
        queue.push(event(1));
        queue.stop();
        // Still one event queued: consumers must drain it before exiting.
        let got = queue.next_event(0).expect("queued event survives stop");
        let _ = got;
        queue.complete();
        assert!(queue.next_event(0).is_none());
    }

    #[test]
    fn external_pushes_are_rejected_after_stop_but_internal_ones_drain() {
        let queue = RunQueue::new(2);
        assert!(queue.push_external(event(1)), "accepted while running");
        queue.stop();
        assert!(!queue.push_external(event(2)), "rejected once stopping");
        // Internal (cascade) pushes are still accepted and drainable.
        queue.push(event(3));
        assert_eq!(queue.len(), 2);
        while queue.next_event(0).is_some() {
            queue.complete();
        }
        assert!(queue.is_idle());
    }

    #[test]
    fn complete_guard_balances_in_flight_on_panic() {
        let queue = Arc::new(RunQueue::new(1));
        queue.push(event(1));
        let inner = Arc::clone(&queue);
        let result = std::panic::catch_unwind(move || {
            let _event = inner.pop(0).unwrap();
            let _guard = inner.complete_guard();
            panic!("dispatch blew up");
        });
        assert!(result.is_err());
        assert!(
            queue.is_idle(),
            "guard must complete the dispatch on unwind"
        );
    }

    #[test]
    fn wait_idle_times_out_while_in_flight() {
        let queue = RunQueue::new(1);
        queue.push(event(1));
        let _event = queue.pop(0).unwrap();
        assert!(!queue.wait_idle(Duration::from_millis(20)));
        queue.complete();
        assert!(queue.wait_idle(Duration::from_millis(100)));
    }

    #[test]
    fn concurrent_producers_and_consumers_drain_exactly() {
        let queue = Arc::new(RunQueue::new(4));
        let produced = 4 * 500;
        let consumed = Arc::new(AtomicUsize::new(0));

        let producers: Vec<_> = (0..4)
            .map(|p| {
                let queue = Arc::clone(&queue);
                std::thread::spawn(move || {
                    for i in 0..500 {
                        queue.push(event((p * 500 + i) as i64));
                    }
                })
            })
            .collect();
        let consumers: Vec<_> = (0..4)
            .map(|w| {
                let queue = Arc::clone(&queue);
                let consumed = Arc::clone(&consumed);
                std::thread::spawn(move || {
                    while let Some(_event) = queue.next_event(w) {
                        consumed.fetch_add(1, Ordering::Relaxed);
                        queue.complete();
                    }
                })
            })
            .collect();

        for producer in producers {
            producer.join().unwrap();
        }
        assert!(queue.wait_idle(Duration::from_secs(10)));
        queue.stop();
        for consumer in consumers {
            consumer.join().unwrap();
        }
        assert_eq!(consumed.load(Ordering::Relaxed), produced);
        assert!(queue.is_idle());
    }
}
