//! The DEFCon engine: configuration, unit registry, event queue and statistics.
//!
//! The [`Engine`] owns all trusted state: the tag store, per-unit security state,
//! subscriptions, the queue of published-but-not-yet-dispatched events, the recent
//! event cache (the paper's tick cache) and the isolation runtime. Units only ever
//! see a [`UnitContext`](crate::UnitContext) borrowing this state.

use std::collections::{HashMap, VecDeque};
use std::fmt;
use std::path::Path;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use defcon_defc::Label;
use defcon_durability::{WalConfig, WalRecord, WalWriter};
use defcon_events::Event;
use defcon_isolation::IsolationRuntime;
use defcon_metrics::{memory::MemoryCategory, MemoryAccountant};
use parking_lot::{Condvar, Mutex, RwLock};

use crate::admission::{AdmissionCounters, ElasticConfig, IngressConfig};
use crate::builder::EngineBuilder;
use crate::context::UnitContext;
use crate::dispatcher::Dispatcher;
use crate::error::{EngineError, EngineResult};
use crate::fault::{FaultAction, FaultCounters, FaultPolicy};
use crate::handle::{EngineHandle, Publisher};
use crate::pool::WorkerPool;
use crate::run_queue::RunQueue;
use crate::subscription::{Subscription, SubscriptionId};
use crate::tag_store::TagStore;
use crate::unit::{Unit, UnitFactory, UnitId, UnitSpec, UnitState};

/// The four security configurations evaluated in Figures 5–7 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum SecurityMode {
    /// No label checks, events shared by reference ("no security").
    NoSecurity,
    /// Label checks with freeze-and-share event dispatch ("labels+freeze").
    #[default]
    LabelsFreeze,
    /// Label checks with a deep copy of every event per delivery ("labels+clone").
    LabelsClone,
    /// Label checks, freeze-and-share dispatch and runtime isolation interception
    /// ("labels+freeze+isolation") — the full DEFCon configuration.
    LabelsFreezeIsolation,
}

impl SecurityMode {
    /// Returns `true` if label (DEFC) checks are performed.
    pub fn checks_labels(&self) -> bool {
        !matches!(self, SecurityMode::NoSecurity)
    }

    /// Returns `true` if events are deep-copied per delivery.
    pub fn clones_events(&self) -> bool {
        matches!(self, SecurityMode::LabelsClone)
    }

    /// Returns `true` if the isolation runtime intercepts unit data accesses.
    pub fn isolates(&self) -> bool {
        matches!(self, SecurityMode::LabelsFreezeIsolation)
    }

    /// The label the paper uses for this configuration in its figures.
    pub fn figure_label(&self) -> &'static str {
        match self {
            SecurityMode::NoSecurity => "no security",
            SecurityMode::LabelsFreeze => "labels+freeze",
            SecurityMode::LabelsClone => "labels+clone",
            SecurityMode::LabelsFreezeIsolation => "labels+freeze+isolation",
        }
    }

    /// All four modes, in the order the paper lists them.
    pub fn all() -> [SecurityMode; 4] {
        [
            SecurityMode::NoSecurity,
            SecurityMode::LabelsFreeze,
            SecurityMode::LabelsClone,
            SecurityMode::LabelsFreezeIsolation,
        ]
    }
}

impl fmt::Display for SecurityMode {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.figure_label())
    }
}

/// Engine construction parameters.
///
/// Applications normally build this through [`Engine::builder`]; the struct
/// itself stays public so that deployments can be described declaratively (e.g.
/// in a platform config) and handed to [`EngineBuilder::config`].
#[derive(Debug, Clone)]
pub struct EngineConfig {
    /// The security configuration.
    pub mode: SecurityMode,
    /// Lower edge of the dispatcher worker band: the number of workers that
    /// stay active even when the engine is idle. Clamped into
    /// `1..=workers_max` whenever `workers_max > 0`. A fixed pool (the classic
    /// configuration) has `workers_min == workers_max`.
    pub workers_min: usize,
    /// Upper edge of the dispatcher worker band: the number of worker threads
    /// [`Engine::start`] spawns. Zero means no background dispatch: the
    /// returned handle is driven manually via
    /// [`EngineHandle::pump_until_idle`] / [`EngineHandle::run_for`], which is
    /// what single-threaded tests and benchmarks want. When
    /// `workers_min < workers_max` the pool is *elastic*: workers above the
    /// minimum park until sampled queue depth recruits them (see
    /// [`EngineBuilder::workers_max`](crate::EngineBuilder::workers_max)).
    /// Deployments that should adapt to their hardware use
    /// [`EngineBuilder::workers_auto`](crate::EngineBuilder::workers_auto),
    /// which resolves the band from the host's available parallelism.
    pub workers_max: usize,
    /// Elastic worker-band tuning (scale-up depth threshold, park-down idle
    /// grace), grouped into one struct — see
    /// [`EngineBuilder::elastic`](crate::EngineBuilder::elastic).
    pub elastic: ElasticConfig,
    /// Maximum number of events a dispatcher pops (and accounts for) per run
    /// queue lock round-trip, and the natural chunk size for
    /// [`Publisher::publish_batch`](crate::Publisher::publish_batch). The
    /// default of 1 preserves classic one-event-at-a-time queueing; larger
    /// sizes amortise the shard lock, the in-flight accounting update, the
    /// wakeup check and the subscription/owner-state snapshot over the whole
    /// batch. Per-unit serialisation and subscription order are unaffected.
    /// One semantic note at any batch size: dispatch observes each
    /// subscriber's security state as snapshotted when the batch began, so a
    /// unit changing its own labels during a delivery affects visibility
    /// checks from the next batch on (see `Dispatcher::batch_context`).
    pub batch_size: usize,
    /// Whether a popped batch's deliveries are regrouped by target unit and
    /// executed under one cell-lock acquisition per unit (amortising the
    /// per-delivery lock round-trip the way the queue locks already are).
    /// Only per-unit delivery order is promised, so the regrouping is legal;
    /// two observable notes, both bounded by one batch: deliveries to
    /// *different* units interleave in group order rather than strict
    /// event-by-event subscription order, and subscription matching — filter
    /// evaluation *and* managed-handler contamination resolution — happens
    /// wave by wave. Main-path part additions flow into later groups'
    /// delivered payloads, and events they augment are re-matched in an
    /// overflow wave so filters naming augmentation-released parts still
    /// fire (each `(event, subscription)` pair gets exactly one turn, as on
    /// the per-event path); a subscription planned only by an overflow wave
    /// runs after the first wave's groups. A batch of one — and
    /// therefore any engine at the default `batch_size` of 1 — degenerates to
    /// the classic per-event path, exactly like the owner-state snapshot does.
    pub grouped_delivery: bool,
    /// Selects the v3 scheduler (the default): dispatcher workers own local
    /// run deques fed by shard-affine prefetch from the global queue, idle
    /// workers steal *whole runs* from the deepest sibling deque (runs never
    /// split, so within-run FIFO is preserved no matter who dispatches),
    /// elastic scale-up recruits the parked worker whose preferred shard is
    /// deepest instead of waking in LIFO order, and the per-batch security
    /// snapshot is published through a process-shared, epoch-validated slot so
    /// concurrent workers rebuild it once per security epoch instead of once
    /// per worker. `false` runs the v2 scheduler — the shared sharded queue
    /// only — which is the baseline the scheduler A/B bench replays against.
    pub scheduler_v3: bool,
    /// Selects the inverted subscription index (the default): dispatch planning
    /// consults an index from part name (and string part value) to candidate
    /// subscriptions — a provable superset of the true matches — and runs the
    /// exact filter and flow check only on candidates, so planning cost scales
    /// with *matching* subscriptions instead of registered ones. The index
    /// lives in the epoch-cached batch context, so every subscribe,
    /// unsubscribe, unit removal and swap invalidates it through the existing
    /// `security_epoch` bump and the next batch rebuilds it (under scheduler v3
    /// once process-wide, via the shared context slot). `false` keeps the
    /// linear scan over every subscription — the baseline the fan-out A/B
    /// bench replays against. Delivery sets are identical either way.
    pub subscription_index: bool,
    /// Number of recently dispatched events retained in the cache. The paper's
    /// deployment caches tick events (~300 MiB); the cache exists so that the
    /// memory experiment (Figure 7) sees the same population of live objects.
    pub event_cache_capacity: usize,
    /// Maximum number of managed handler instances kept alive. Managed
    /// subscriptions over per-order tags create one instance per distinct
    /// contamination; the cap bounds their memory like a JVM would bound event
    /// processes via garbage collection.
    pub managed_instance_cap: usize,
    /// Write-ahead log configuration. When set, every externally published
    /// event (publisher batches, `with_unit` closure outputs, driver-side
    /// bootstrap publishes) is appended to the log *before* it is enqueued —
    /// one frame per publish batch, flushed per the configured
    /// [`FsyncPolicy`](defcon_durability::FsyncPolicy). Cascade publications
    /// (events units emit while processing) are not logged: replaying the log
    /// through [`Engine::recover_from`] regenerates them via normal dispatch.
    /// `None` (the default) keeps the engine purely in-memory.
    pub wal: Option<WalConfig>,
    /// Bounded-admission configuration. When set,
    /// [`Publisher::try_publish_batch`](crate::Publisher::try_publish_batch)
    /// enforces the configured queue bound, and an
    /// ingress tier built over the engine paces its sessions by credit window
    /// under the configured full-queue policy. `None` (the default) keeps the
    /// classic unbounded publish path.
    pub ingress: Option<IngressConfig>,
    /// Fault policy. When set, the dispatcher counts panicking deliveries per
    /// unit and trips the configured [`FaultAction`] (auto-swap to a standby,
    /// or quarantine-and-shed) once a unit exceeds the panic budget within its
    /// delivery window. `None` (the default) keeps the classic behaviour:
    /// panics are counted in `unit_errors` and otherwise tolerated forever.
    pub fault: Option<FaultPolicy>,
}

impl Default for EngineConfig {
    fn default() -> Self {
        EngineConfig {
            mode: SecurityMode::LabelsFreeze,
            workers_min: 0,
            workers_max: 0,
            elastic: ElasticConfig::default(),
            batch_size: 1,
            grouped_delivery: true,
            scheduler_v3: true,
            subscription_index: true,
            event_cache_capacity: 10_000,
            managed_instance_cap: 1024,
            wal: None,
            ingress: None,
            fault: None,
        }
    }
}

/// A snapshot of the run queue's and worker pool's telemetry counters
/// ([`Engine::queue_stats`] / [`EngineHandle::queue_stats`]): what an elastic
/// deployment's operator — or its pool manager — sees.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueueStats {
    /// Events currently queued across all shards.
    pub depth: usize,
    /// Per-shard queued depths (sampled under each shard's lock).
    pub shard_depths: Vec<usize>,
    /// Events popped but whose dispatch has not finished.
    pub in_flight: usize,
    /// Lower edge of the configured worker band (0 for manual engines).
    pub workers_min: usize,
    /// Upper edge of the configured worker band — the spawned thread count.
    pub workers_max: usize,
    /// Workers currently active (unparked); between min and max.
    pub workers_active: usize,
    /// Highest `workers_active` the run has reached — the observed worker
    /// count benches record next to the configured band.
    pub workers_high_water: usize,
    /// Events admitted through the admission layer (`try_publish_batch` and
    /// ingress sessions); zero for engines publishing only via the direct
    /// unbounded path.
    pub ingress_admitted: u64,
    /// Events shed by a full-queue policy — loud accounting, one count per
    /// dropped event.
    pub ingress_shed: u64,
    /// Times a submitter stalled on an exhausted credit window or a full
    /// queue before making progress.
    pub ingress_credit_stalls: u64,
    /// Successful unit swaps ([`Engine::swap_unit`]), manual and
    /// fault-triggered.
    pub unit_swaps: u64,
    /// The subset of `unit_swaps` tripped by the configured
    /// [`FaultPolicy`](crate::FaultPolicy).
    pub fault_swaps: u64,
    /// Panicking deliveries (a subset of `EngineStats::unit_errors`).
    pub unit_panics: u64,
    /// Units put into quarantine by the fault policy.
    pub units_quarantined: u64,
    /// Deliveries shed because their target unit was quarantined.
    pub quarantine_shed: u64,
    /// Whole runs stolen by dry workers from sibling local deques (scheduler
    /// v3; always zero under the v2 scheduler and for manual engines).
    pub sched_steals: u64,
    /// Depth-aware scale-up wakes: parked workers recruited because their
    /// preferred shard was the deepest (scheduler v3; zero under v2's LIFO
    /// wake order).
    pub sched_wakes: u64,
    /// Batch-context rebuilds a worker skipped because the process-shared
    /// security snapshot was still valid for the current epoch (scheduler v3;
    /// zero under v2, where each worker rebuilds privately).
    pub sched_snapshot_hits: u64,
    /// Candidate subscriptions produced by the inverted subscription index
    /// across all indexed plans (accumulated candidate-set sizes). Compare
    /// against `registered subscriptions × events` — the linear scan's cost —
    /// to read the index's sublinearity; zero with the index disabled.
    pub index_candidates: u64,
    /// Index candidates whose exact filter or flow check rejected the
    /// delivery: the index's false positives, each paid at exact-match cost
    /// only (the candidate-superset invariant makes false *negatives*
    /// impossible).
    pub index_exact_rejects: u64,
    /// Times the subscription index was (re)built — once per security epoch
    /// that dispatched, not once per batch, thanks to the epoch-cached batch
    /// context it lives in.
    pub index_rebuilds: u64,
}

/// Counters describing engine activity.
#[derive(Debug, Default)]
pub struct EngineStats {
    /// Events accepted by `publish`.
    pub published: AtomicU64,
    /// Events taken off the queue and dispatched.
    pub dispatched: AtomicU64,
    /// Individual deliveries to units (one event may be delivered to many units).
    pub deliveries: AtomicU64,
    /// Subscriptions whose filter matched structurally but whose label check
    /// rejected the delivery.
    pub label_rejections: AtomicU64,
    /// Errors returned by unit callbacks (isolated and counted, never propagated to
    /// other units).
    pub unit_errors: AtomicU64,
    /// Engine-level dispatch failures on worker threads (distinct from unit
    /// misbehaviour; any nonzero value indicates an engine bug worth reporting).
    pub engine_errors: AtomicU64,
    /// Managed handler instances created on demand.
    pub managed_instances: AtomicU64,
}

impl EngineStats {
    /// Events accepted by `publish`.
    pub fn published(&self) -> u64 {
        self.published.load(Ordering::Relaxed)
    }

    /// Events dispatched from the queue.
    pub fn dispatched(&self) -> u64 {
        self.dispatched.load(Ordering::Relaxed)
    }

    /// Total unit deliveries.
    pub fn deliveries(&self) -> u64 {
        self.deliveries.load(Ordering::Relaxed)
    }

    /// Deliveries suppressed by label checks.
    pub fn label_rejections(&self) -> u64 {
        self.label_rejections.load(Ordering::Relaxed)
    }

    /// Unit callback errors.
    pub fn unit_errors(&self) -> u64 {
        self.unit_errors.load(Ordering::Relaxed)
    }

    /// Engine-level dispatch failures on worker threads.
    pub fn engine_errors(&self) -> u64 {
        self.engine_errors.load(Ordering::Relaxed)
    }

    /// Managed instances created.
    pub fn managed_instances(&self) -> u64 {
        self.managed_instances.load(Ordering::Relaxed)
    }
}

/// A registered unit: its security state, its behaviour object and its mailbox.
pub(crate) struct UnitCell {
    pub(crate) state: UnitState,
    pub(crate) instance: Box<dyn Unit>,
    /// Pull-mode mailbox used by `get_event` (Table 1).
    pub(crate) mailbox: VecDeque<(Event, SubscriptionId)>,
    /// When `true`, deliveries are queued in the mailbox instead of invoking
    /// `on_event`.
    pub(crate) pull_mode: bool,
    /// Set under the cell lock when the unit is evicted/removed/swapped and
    /// its isolate destroyed; a dispatch that resolved this slot concurrently
    /// must not deliver into the dead isolate. For a *swap* the registry holds
    /// the replacement slot (installed before this flag is set), so delivery
    /// paths forward to it instead of skipping.
    pub(crate) retired: bool,
    /// Set by the fault policy: deliveries are shed loudly instead of invoking
    /// a unit that repeatedly panicked, until a swap replaces it.
    pub(crate) quarantined: bool,
    /// Deliveries counted in the current fault window (see
    /// [`FaultPolicy::window`](crate::FaultPolicy)). Mutated under the cell
    /// lock on the delivery path, only when a fault policy is configured.
    pub(crate) window_deliveries: u32,
    /// Panicking deliveries in the current fault window.
    pub(crate) window_panics: u32,
}

impl UnitCell {
    /// A fresh, live cell for a (newly registered or just swapped-in) unit.
    pub(crate) fn new(state: UnitState, instance: Box<dyn Unit>) -> Self {
        UnitCell {
            state,
            instance,
            mailbox: VecDeque::new(),
            pull_mode: false,
            retired: false,
            quarantined: false,
            window_deliveries: 0,
            window_panics: 0,
        }
    }
}

pub(crate) struct UnitSlot {
    pub(crate) cell: Mutex<UnitCell>,
    pub(crate) mailbox_signal: Condvar,
}

/// Shared internals of the engine.
pub(crate) struct EngineCore {
    pub(crate) config: EngineConfig,
    pub(crate) tags: TagStore,
    pub(crate) isolation: IsolationRuntime,
    pub(crate) units: RwLock<HashMap<UnitId, Arc<UnitSlot>>>,
    pub(crate) subscriptions: RwLock<Arc<Vec<Subscription>>>,
    pub(crate) run_queue: RunQueue,
    pub(crate) event_cache: Mutex<VecDeque<Event>>,
    pub(crate) managed_instances: Mutex<HashMap<(SubscriptionId, Label), UnitId>>,
    pub(crate) memory: MemoryAccountant,
    pub(crate) stats: EngineStats,
    /// Admission reservation state and shed/admit/credit-stall counters (see
    /// [`AdmissionCounters`]); always present so `queue_stats()` reads one
    /// shape whether or not bounded admission is configured.
    pub(crate) admission: AdmissionCounters,
    /// Activation state of the dispatcher worker band (`None` for manual,
    /// `workers_max == 0` engines).
    pub(crate) pool: Option<WorkerPool>,
    /// Per-worker local run deques plus their stealer grid (scheduler v3 with
    /// a live worker pool; `None` under v2 and for manual engines, whose
    /// dispatchers run the classic shared-queue loop).
    pub(crate) steal_grid: Option<crate::steal::StealGrid>,
    /// Process-shared, epoch-validated batch-context slot (scheduler v3): the
    /// first worker to need a snapshot for an epoch builds and publishes it;
    /// every other worker validates the epoch and clones the `Arc`.
    pub(crate) shared_context: Option<crate::dispatcher::SharedContextSlot>,
    /// Bumped by every security-relevant mutation (label/privilege changes,
    /// unit registration/removal); dispatchers key their cached batch context
    /// on it, so an unchanged epoch lets consecutive batches reuse one
    /// subscription/owner snapshot instead of rebuilding it per batch.
    pub(crate) security_epoch: AtomicU64,
    /// The write-ahead log appender, present when [`EngineConfig::wal`] is
    /// set. The mutex serialises appends from concurrent publishers, which
    /// also makes log order a linearisation of the publish calls.
    pub(crate) wal: Option<Mutex<WalWriter>>,
    /// Swap and fault telemetry (see [`FaultCounters`]); always present so
    /// `queue_stats()` reads one shape whether or not a fault policy is
    /// configured.
    pub(crate) faults: FaultCounters,
    /// Subscription-index telemetry (candidate counts, exact rejects,
    /// rebuilds); always present — all zero when the index is disabled — so
    /// `queue_stats()` reads one shape either way.
    pub(crate) index_stats: crate::sub_index::IndexCounters,
    /// Standby factories for fault-triggered auto-swap, keyed by the unit id
    /// they stand in for ([`Engine::set_standby`]). Keyed by id — not slot —
    /// so a standby keeps covering its unit across repeated swaps.
    pub(crate) standbys: Mutex<HashMap<UnitId, UnitFactory>>,
    /// Per-engine unit identifier sequence: two engines in one process (or in
    /// parallel tests) each number their units 1, 2, 3, ... independently.
    unit_sequence: AtomicU64,
    /// Set by the first [`Engine::start`]; the runtime lifecycle is one-shot.
    pub(crate) started: std::sync::atomic::AtomicBool,
}

impl EngineCore {
    /// Allocates the next unit identifier for this engine.
    pub(crate) fn next_unit_id(&self) -> UnitId {
        UnitId::from_raw(self.unit_sequence.fetch_add(1, Ordering::Relaxed))
    }

    /// Records a security-relevant mutation (labels, privileges, unit set):
    /// invalidates every dispatcher's cached batch context.
    pub(crate) fn bump_security_epoch(&self) {
        self.security_epoch.fetch_add(1, Ordering::Release);
    }

    /// Feeds the post-enqueue queue depth to the elastic pool's sampling
    /// (no-op for fixed pools and manual engines).
    pub(crate) fn observe_queue_depth(&self) {
        if let Some(pool) = &self.pool {
            pool.observe_depth(self.run_queue.len(), &self.run_queue);
        }
    }

    /// Attempts to reserve depth for `events` new external events against the
    /// configured ingress bound. Admission holds `depth + reserved + events <=
    /// queue_bound` under a CAS loop, so concurrent admitters can never
    /// jointly overshoot; the reservation must be released with
    /// [`EngineCore::release_admission`] once the enqueue has made the events
    /// visible in `len` (the momentary double-count in between is
    /// conservative). Always succeeds when no ingress bound is configured.
    pub(crate) fn try_admit(&self, events: usize) -> bool {
        let Some(ingress) = &self.config.ingress else {
            return true;
        };
        let bound = ingress.queue_bound;
        let mut reserved = self.admission.reserved.load(Ordering::Acquire);
        loop {
            let depth = self.run_queue.len();
            if depth + reserved + events > bound {
                return false;
            }
            match self.admission.reserved.compare_exchange_weak(
                reserved,
                reserved + events,
                Ordering::AcqRel,
                Ordering::Acquire,
            ) {
                Ok(_) => return true,
                Err(actual) => reserved = actual,
            }
        }
    }

    /// Releases a reservation taken by [`EngineCore::try_admit`].
    pub(crate) fn release_admission(&self, events: usize) {
        if self.config.ingress.is_some() && events > 0 {
            self.admission.reserved.fetch_sub(events, Ordering::AcqRel);
        }
    }

    /// Enqueues an event published from inside dispatch (always accepted; the
    /// publishing dispatch keeps the queue non-idle until it drains).
    pub(crate) fn enqueue(&self, event: Event) {
        self.stats.published.fetch_add(1, Ordering::Relaxed);
        self.run_queue.push(event);
        self.observe_queue_depth();
    }

    /// Enqueues a batch of events published from inside dispatch (one unit
    /// delivery's cascade outputs) as a single run-queue transaction.
    pub(crate) fn enqueue_batch(&self, events: Vec<Event>) {
        if events.is_empty() {
            return;
        }
        self.stats
            .published
            .fetch_add(events.len() as u64, Ordering::Relaxed);
        self.run_queue.push_batch(events);
        self.observe_queue_depth();
    }

    /// Appends one publish batch to the write-ahead log (no-op when the log is
    /// disabled). Called *before* the queue push — the write-ahead contract:
    /// an append failure rejects the publish, so no event is ever dispatched
    /// without being durable first. The converse race is documented rather
    /// than prevented: a batch logged here and then rejected by a concurrent
    /// shutdown stays in the log and is re-fed on recovery.
    fn log_external_batch(
        &self,
        source: UnitId,
        output_label: &Label,
        arrival_ns: u64,
        events: &[Event],
    ) -> EngineResult<()> {
        let Some(wal) = &self.wal else {
            return Ok(());
        };
        let record = WalRecord {
            publisher_unit: source.as_u64(),
            output_label: output_label.clone(),
            arrival_ns,
            // Events clone by `Arc`, so logging shares the parts buffers the
            // queue is about to take.
            events: events.to_vec(),
        };
        wal.lock()
            .append(&record)
            .map_err(|err| EngineError::Durability(format!("wal append failed: {err}")))
    }

    /// Enqueues an event from an external driver, logging it first when the
    /// write-ahead log is enabled; fails once the runtime has shut down
    /// instead of silently losing the event.
    pub(crate) fn enqueue_external(
        &self,
        source: UnitId,
        output_label: &Label,
        event: Event,
    ) -> EngineResult<()> {
        self.log_external_batch(
            source,
            output_label,
            event.origin_ns(),
            std::slice::from_ref(&event),
        )?;
        if self.run_queue.push_external(event) {
            self.stats.published.fetch_add(1, Ordering::Relaxed);
            self.observe_queue_depth();
            Ok(())
        } else {
            Err(EngineError::InvalidOperation(
                "engine runtime has shut down; event rejected".into(),
            ))
        }
    }

    /// Enqueues a batch of external events onto one run-queue shard under a
    /// single lock acquisition, returning how many were accepted. The batch is
    /// drained out of `events` (so publishers reuse one buffer per thread).
    /// When the write-ahead log is enabled the whole batch is appended as one
    /// frame — and flushed per the fsync policy — before anything is enqueued.
    /// An entirely rejected batch (runtime shut down) fails loudly like
    /// [`EngineCore::enqueue_external`]; a batch that races shutdown may be
    /// partially accepted — the returned count is exactly the number of events
    /// that will be dispatched.
    pub(crate) fn enqueue_external_batch(
        &self,
        source: UnitId,
        output_label: &Label,
        arrival_ns: u64,
        events: &mut Vec<Event>,
    ) -> EngineResult<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        self.log_external_batch(source, output_label, arrival_ns, events)?;
        let accepted = self.run_queue.push_external_batch(events);
        if accepted == 0 {
            return Err(EngineError::InvalidOperation(
                "engine runtime has shut down; event batch rejected".into(),
            ));
        }
        self.stats
            .published
            .fetch_add(accepted as u64, Ordering::Relaxed);
        self.observe_queue_depth();
        Ok(accepted)
    }

    /// Re-feeds recovered events into the run queue through the normal
    /// dispatch path *without* re-logging them (their log records already
    /// exist). Each recovered batch keeps its internal order on one shard,
    /// exactly like the original `publish_batch` transaction did.
    pub(crate) fn enqueue_recovered_batch(&self, events: &mut Vec<Event>) -> EngineResult<usize> {
        if events.is_empty() {
            return Ok(0);
        }
        let expected = events.len();
        let accepted = self.run_queue.push_external_batch(events);
        if accepted < expected {
            return Err(EngineError::InvalidOperation(
                "engine runtime has shut down; recovery batch rejected".into(),
            ));
        }
        self.stats
            .published
            .fetch_add(accepted as u64, Ordering::Relaxed);
        self.observe_queue_depth();
        Ok(accepted)
    }

    /// Runs a closure with exclusive access to a unit and a [`UnitContext`] for
    /// it, enqueueing whatever the closure published once the unit is unlocked.
    ///
    /// Driver closures count as external publishers: events they publish after
    /// the runtime has shut down are rejected (the closure's other effects —
    /// tag creation, label changes — stand).
    pub(crate) fn with_unit_context<R>(
        self: &Arc<Self>,
        unit: UnitId,
        f: impl FnOnce(&mut dyn Unit, &mut UnitContext<'_>) -> EngineResult<R>,
    ) -> EngineResult<R> {
        let slot = self.slot(unit)?;
        let mut cell = slot.cell.lock();
        let UnitCell {
            ref mut state,
            ref mut instance,
            ..
        } = *cell;
        let mut outputs = Vec::new();
        let result = {
            let mut ctx = UnitContext::new(self, state, None, &mut outputs, false);
            let r = f(instance.as_mut(), &mut ctx);
            ctx.finish();
            r
        };
        // Snapshot for the write-ahead log before releasing the cell: the
        // closure may have changed the unit's output label, and that final
        // label is the one its publishes were raised to.
        let output_label = cell.state.output_label.clone();
        drop(cell);
        for event in outputs {
            self.enqueue_external(unit, &output_label, event)?;
        }
        result
    }

    /// Inserts an event into the bounded cache, charging/releasing memory.
    /// Takes the event by reference so a disabled cache (`capacity == 0`, the
    /// micro-bench configuration) costs nothing on the dispatch hot path.
    pub(crate) fn cache_event(&self, event: &Event) {
        if self.config.event_cache_capacity == 0 {
            return;
        }
        let size = event.estimated_size();
        self.memory.charge(MemoryCategory::Events, size);
        let mut cache = self.event_cache.lock();
        cache.push_back(event.clone());
        while cache.len() > self.config.event_cache_capacity {
            if let Some(evicted) = cache.pop_front() {
                self.memory
                    .release(MemoryCategory::Events, evicted.estimated_size());
            }
        }
    }

    /// Looks up a unit slot.
    pub(crate) fn slot(&self, unit: UnitId) -> EngineResult<Arc<UnitSlot>> {
        self.units
            .read()
            .get(&unit)
            .cloned()
            .ok_or_else(|| EngineError::UnknownUnit(format!("{unit}")))
    }

    /// Registers a unit and runs its `init` callback. `in_dispatch` records
    /// whether the registration was triggered from inside an in-flight dispatch
    /// (`ctx.instantiate_unit` in an `on_event`); it decides how init-published
    /// bootstrap events are enqueued.
    pub(crate) fn register_unit(
        self: &Arc<Self>,
        spec: UnitSpec,
        mut instance: Box<dyn Unit>,
        in_dispatch: bool,
    ) -> EngineResult<UnitId> {
        let id = self.next_unit_id();
        let isolate = self.isolation.create_isolate();
        let mut state = UnitState::new(id, spec, isolate);
        self.memory
            .charge(MemoryCategory::UnitState, state.estimated_size());

        // Run init with a context before the unit becomes reachable by dispatch, so
        // that its subscriptions are in place atomically with registration.
        let mut outputs = Vec::new();
        {
            let mut ctx = UnitContext::new(self, &mut state, None, &mut outputs, in_dispatch);
            instance.init(&mut ctx)?;
            ctx.finish();
        }

        let output_label = state.output_label.clone();
        let slot = Arc::new(UnitSlot {
            cell: Mutex::new(UnitCell::new(state, instance)),
            mailbox_signal: Condvar::new(),
        });
        self.units.write().insert(id, slot);
        self.bump_security_epoch();
        for event in outputs {
            if in_dispatch {
                // Part of a main-path cascade: guaranteed to drain, like any
                // other event published from inside a dispatch.
                self.enqueue(event);
            } else {
                // Registration from a driver thread: after shutdown the
                // bootstrap events are rejected loudly (the unit itself stays
                // registered) instead of rotting on the stopped queue.
                self.enqueue_external(id, &output_label, event)?;
            }
        }
        Ok(id)
    }

    /// Drain-and-swap: replaces the unit instance serving `unit` with
    /// `replacement`, preserving the id, name, labels, privilege set,
    /// delivered count, mailbox and pull mode, under a bumped version and a
    /// fresh isolate. Returns the new version.
    ///
    /// The quiesce point is the unit's cell lock: deliveries hold it for the
    /// whole `on_event` call, so acquiring it here means any in-flight
    /// delivery has *drained* to a clean boundary — never aborted. The
    /// replacement slot is installed in the registry *before* the old cell is
    /// retired and its isolate destroyed (legal lock direction: cell →
    /// `units.write()`, the same order unit callbacks use), so a concurrent
    /// dispatch holding the old slot observes either a live old cell (and
    /// delivers under the lock we are waiting for) or a retired one with the
    /// replacement already resolvable — its delivery forwards, exactly once,
    /// in order.
    ///
    /// The replacement's `init` is **not** run: it inherits the predecessor's
    /// subscriptions (owned by the stable unit id), which is what preserves
    /// exactly-once across the boundary — an init-time re-subscribe would
    /// double-deliver or drop events raced across the swap.
    pub(crate) fn swap_unit(
        self: &Arc<Self>,
        unit: UnitId,
        replacement: Box<dyn Unit>,
    ) -> EngineResult<u64> {
        let mut slot = self.slot(unit)?;
        let mut replacement = Some(replacement);
        loop {
            let mut old = slot.cell.lock();
            if old.retired {
                // Raced another swap (or a removal): chase the live slot. The
                // registry holds the replacement before a slot retires, so a
                // re-resolve that returns the same retired slot (or nothing)
                // means the unit is truly gone.
                drop(old);
                let fresh = self.slot(unit)?;
                if Arc::ptr_eq(&fresh, &slot) {
                    return Err(EngineError::UnknownUnit(format!("{unit}")));
                }
                slot = fresh;
                continue;
            }

            // Quiesced: we hold the cell lock, nothing is mid-delivery.
            let version = old.state.version + 1;
            let state = UnitState {
                id: unit,
                name: old.state.name.clone(),
                input_label: old.state.input_label.clone(),
                output_label: old.state.output_label.clone(),
                privileges: old.state.privileges.clone(),
                isolate: self.isolation.create_isolate(),
                delivered: old.state.delivered,
                version,
            };
            let state_size = state.estimated_size();
            let mut cell = UnitCell::new(state, replacement.take().expect("one swap per loop"));
            // Pending pull-mode deliveries migrate: they were accepted for
            // this unit id and must not be lost to the swap.
            cell.mailbox = std::mem::take(&mut old.mailbox);
            cell.pull_mode = old.pull_mode;
            let new_slot = Arc::new(UnitSlot {
                cell: Mutex::new(cell),
                mailbox_signal: Condvar::new(),
            });
            self.memory.charge(MemoryCategory::UnitState, state_size);

            // Install the replacement while still holding the old cell lock,
            // then retire the old cell — the order every forwarding delivery
            // path relies on.
            self.units.write().insert(unit, new_slot);
            old.retired = true;
            self.isolation.destroy_isolate(old.state.isolate);
            self.memory
                .release(MemoryCategory::UnitState, old.state.estimated_size());
            drop(old);
            // Pull-mode waiters parked on the old slot re-resolve on wake.
            slot.mailbox_signal.notify_all();
            self.faults.unit_swaps.fetch_add(1, Ordering::Relaxed);
            self.bump_security_epoch();
            return Ok(version);
        }
    }

    /// Quarantines `unit`: subsequent deliveries to it are shed loudly and
    /// publishing as it fails with
    /// [`EngineError::UnitQuarantined`](crate::EngineError). Idempotent; a
    /// later [`EngineCore::swap_unit`] lifts the quarantine by replacing the
    /// instance.
    pub(crate) fn quarantine_unit(&self, unit: UnitId) -> EngineResult<()> {
        let slot = self.slot(unit)?;
        let mut cell = slot.cell.lock();
        if !cell.retired && !cell.quarantined {
            cell.quarantined = true;
            self.faults
                .units_quarantined
                .fetch_add(1, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Trips the configured fault action for a unit whose panic window just
    /// overflowed. Called by the dispatcher *after* releasing the unit's cell
    /// lock (the swap path re-acquires it, and `AutoSwap` takes
    /// `units.write()` — both forbidden while a delivery holds the cell).
    pub(crate) fn handle_unit_fault(self: &Arc<Self>, unit: UnitId) {
        let Some(policy) = self.config.fault else {
            return;
        };
        match policy.action {
            FaultAction::AutoSwap => {
                // The factory runs under the standby lock; standby factories
                // are plain constructors, and nothing on this path re-enters
                // the map.
                let replacement = self.standbys.lock().get(&unit).map(|factory| factory());
                let swapped = match replacement {
                    Some(instance) => self.swap_unit(unit, instance).is_ok(),
                    // Tripped with no standby registered.
                    None => false,
                };
                if swapped {
                    self.faults.fault_swaps.fetch_add(1, Ordering::Relaxed);
                } else {
                    // No standby (or the swap itself failed): quarantine
                    // rather than keep feeding a unit that panics on
                    // everything.
                    let _ = self.quarantine_unit(unit);
                }
            }
            FaultAction::Quarantine => {
                let _ = self.quarantine_unit(unit);
            }
        }
    }
}

/// What [`Engine::recover_from`] found in a write-ahead log and re-fed through
/// dispatch.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct RecoveryReport {
    /// Publish batches (log frames) replayed.
    pub batches: u64,
    /// Events re-enqueued across those batches.
    pub events: u64,
    /// Whether the final segment ended in a torn frame that was truncated away.
    pub torn_tail_truncated: bool,
    /// Bytes removed by that truncation.
    pub truncated_bytes: u64,
}

/// The public handle to a DEFCon engine instance.
#[derive(Clone)]
pub struct Engine {
    core: Arc<EngineCore>,
}

impl Engine {
    /// Shares the engine internals with in-crate runtime components.
    pub(crate) fn core(&self) -> Arc<EngineCore> {
        Arc::clone(&self.core)
    }

    /// Returns a builder for configuring and creating an engine — the v2 entry
    /// point of the runtime API.
    ///
    /// ```
    /// use defcon_core::{Engine, SecurityMode};
    ///
    /// let handle = Engine::builder()
    ///     .mode(SecurityMode::LabelsFreeze)
    ///     .workers(4)
    ///     .start();
    /// handle.shutdown().unwrap();
    /// ```
    pub fn builder() -> EngineBuilder {
        EngineBuilder::new()
    }

    /// Creates an engine directly from a configuration (the low-level
    /// constructor behind [`EngineBuilder::build`]).
    ///
    /// # Panics
    ///
    /// Panics when a configured write-ahead log directory cannot be opened for
    /// appending — a deployment that asked for durability and cannot have it
    /// should not come up at all.
    pub fn new(config: EngineConfig) -> Self {
        let isolation = if config.mode.isolates() {
            IsolationRuntime::standard()
        } else {
            IsolationRuntime::disabled()
        };
        let wal = config.wal.clone().map(|wal_config| {
            let dir = wal_config.dir.clone();
            Mutex::new(WalWriter::open(wal_config).unwrap_or_else(|err| {
                panic!("opening write-ahead log in {}: {err}", dir.display())
            }))
        });
        let run_queue = RunQueue::new(config.workers_max.max(1));
        let pool = (config.workers_max > 0).then(|| {
            let scale_up_depth = if config.elastic.scale_up_depth > 0 {
                config.elastic.scale_up_depth
            } else {
                4 * config.batch_size.max(1)
            };
            WorkerPool::new(
                config.workers_min,
                config.workers_max,
                scale_up_depth,
                config.elastic.idle_grace,
                config.scheduler_v3,
            )
        });
        let steal_grid = (config.scheduler_v3 && config.workers_max > 0)
            .then(|| crate::steal::StealGrid::new(config.workers_max));
        let shared_context = config
            .scheduler_v3
            .then(crate::dispatcher::SharedContextSlot::new);
        Engine {
            core: Arc::new(EngineCore {
                config,
                tags: TagStore::new(),
                isolation,
                units: RwLock::new(HashMap::new()),
                subscriptions: RwLock::new(Arc::new(Vec::new())),
                run_queue,
                event_cache: Mutex::new(VecDeque::new()),
                managed_instances: Mutex::new(HashMap::new()),
                memory: MemoryAccountant::new(),
                stats: EngineStats::default(),
                admission: AdmissionCounters::default(),
                pool,
                steal_grid,
                shared_context,
                wal,
                faults: FaultCounters::default(),
                index_stats: crate::sub_index::IndexCounters::default(),
                standbys: Mutex::new(HashMap::new()),
                security_epoch: AtomicU64::new(0),
                unit_sequence: AtomicU64::new(1),
                started: std::sync::atomic::AtomicBool::new(false),
            }),
        }
    }

    /// Starts the engine's runtime, spawning the configured number of dispatcher
    /// worker threads over the sharded run queue, and returns the
    /// [`EngineHandle`] through which the running engine is driven and
    /// eventually shut down.
    ///
    /// With `workers == 0` no threads are spawned; the handle's
    /// [`pump_until_idle`](EngineHandle::pump_until_idle) and
    /// [`run_for`](EngineHandle::run_for) drive dispatch on the calling thread.
    ///
    /// The runtime lifecycle is **one-shot**: shutting the handle down (or
    /// dropping it) stops this engine for good.
    ///
    /// # Panics
    ///
    /// Panics when called a second time, or after the runtime was shut down —
    /// both are programming errors that would otherwise produce an engine that
    /// silently never dispatches (workers of a re-`start` would observe the
    /// stopped queue and exit immediately).
    pub fn start(&self) -> EngineHandle {
        assert!(
            !self.core.run_queue.is_stopping(),
            "Engine::start called after the runtime was shut down; create a new engine"
        );
        assert!(
            !self
                .core
                .started
                .swap(true, std::sync::atomic::Ordering::SeqCst),
            "Engine::start may only be called once per engine (the runtime lifecycle is one-shot)"
        );
        EngineHandle::launch(self.clone())
    }

    /// Replays a write-ahead log directory into this engine: scans the
    /// segments in order, truncates a torn tail at the last valid frame, and
    /// re-feeds every surviving batch through the normal dispatch path —
    /// same per-batch ordering as the original `publish_batch` transactions,
    /// event identities preserved (the id sequence is advanced past every
    /// recovered id).
    ///
    /// Call it after registering the deployment's units (recovered events
    /// dispatch to whatever is subscribed when they drain) and at any point
    /// before shutdown; with background workers the replay starts dispatching
    /// immediately, with `workers(0)` it sits on the queue until pumped.
    ///
    /// Recovered events are **not** re-appended to this engine's own log —
    /// their records already exist when recovering in place, and recovery into
    /// a different log directory is a migration, not a publish. Cascade
    /// publications are regenerated by dispatch, exactly as in the original
    /// run.
    pub fn recover_from(&self, dir: impl AsRef<Path>) -> EngineResult<RecoveryReport> {
        let scan = defcon_durability::recover(dir.as_ref())
            .map_err(|err| EngineError::Durability(format!("wal recovery failed: {err}")))?;
        let mut report = RecoveryReport {
            batches: scan.records.len() as u64,
            torn_tail_truncated: scan.torn_tail_truncated,
            truncated_bytes: scan.truncated_bytes,
            ..RecoveryReport::default()
        };
        for mut record in scan.records {
            report.events += self.core.enqueue_recovered_batch(&mut record.events)? as u64;
        }
        Ok(report)
    }

    /// Returns a typed publisher handle that lets an external driver (a
    /// market-data feed, a test harness) publish events *as* `unit` without
    /// going through a [`Engine::with_unit`] closure.
    pub fn publisher(&self, unit: UnitId) -> EngineResult<Publisher> {
        // Fail fast if the unit does not exist; the resolved slot is cached in
        // the publisher so the hot publish path skips the registry lookup.
        let slot = self.core.slot(unit)?;
        Ok(Publisher::new(Arc::clone(&self.core), unit, slot))
    }

    /// Returns the configured security mode.
    pub fn mode(&self) -> SecurityMode {
        self.core.config.mode
    }

    /// Returns the number of dispatcher worker threads [`Engine::start`] will
    /// spawn — the upper edge of the worker band (`workers_max`).
    pub fn configured_workers(&self) -> usize {
        self.core.config.workers_max
    }

    /// Returns the lower edge of the worker band: the workers that stay active
    /// even when the engine is idle (clamped into `1..=workers_max` for live
    /// pools; 0 for manual engines).
    pub fn configured_workers_min(&self) -> usize {
        self.core.pool.as_ref().map_or(0, WorkerPool::min)
    }

    /// Returns `true` when popped batches regroup their deliveries by target
    /// unit (see [`EngineConfig::grouped_delivery`]).
    pub fn grouped_delivery(&self) -> bool {
        self.core.config.grouped_delivery
    }

    /// Returns `true` when the engine runs the v3 scheduler — local run
    /// deques, whole-run stealing, depth-aware wake placement and the shared
    /// security snapshot (see [`EngineConfig::scheduler_v3`]).
    pub fn scheduler_v3(&self) -> bool {
        self.core.config.scheduler_v3
    }

    /// Returns `true` when dispatch planning consults the inverted
    /// subscription index instead of scanning every subscription (see
    /// [`EngineConfig::subscription_index`]).
    pub fn subscription_index(&self) -> bool {
        self.core.config.subscription_index
    }

    /// Samples the run queue's and worker pool's telemetry counters: total and
    /// per-shard queue depth, in-flight dispatches, and the worker band's
    /// configured edges, current activation and high-water mark.
    pub fn queue_stats(&self) -> QueueStats {
        let depth = self.core.run_queue.len();
        let pending = self.core.run_queue.pending();
        let (workers_min, workers_max, workers_active, workers_high_water) =
            match self.core.pool.as_ref() {
                Some(pool) => (
                    pool.min(),
                    pool.max(),
                    pool.active_target(),
                    pool.high_water(),
                ),
                None => (0, 0, 0, 0),
            };
        QueueStats {
            depth,
            shard_depths: self.core.run_queue.shard_depths(),
            in_flight: pending.saturating_sub(depth),
            workers_min,
            workers_max,
            workers_active,
            workers_high_water,
            ingress_admitted: self.core.admission.admitted(),
            ingress_shed: self.core.admission.shed(),
            ingress_credit_stalls: self.core.admission.credit_stalls(),
            unit_swaps: self.core.faults.unit_swaps(),
            fault_swaps: self.core.faults.fault_swaps(),
            unit_panics: self.core.faults.unit_panics(),
            units_quarantined: self.core.faults.units_quarantined(),
            quarantine_shed: self.core.faults.quarantine_shed(),
            sched_steals: self
                .core
                .steal_grid
                .as_ref()
                .map_or(0, crate::steal::StealGrid::steals),
            sched_wakes: self.core.pool.as_ref().map_or(0, WorkerPool::depth_wakes),
            sched_snapshot_hits: self
                .core
                .shared_context
                .as_ref()
                .map_or(0, crate::dispatcher::SharedContextSlot::hits),
            index_candidates: self.core.index_stats.candidates(),
            index_exact_rejects: self.core.index_stats.exact_rejects(),
            index_rebuilds: self.core.index_stats.rebuilds(),
        }
    }

    /// The engine's admission ledger: shed/admit/credit-stall counters the
    /// ingress tier records into and `queue_stats()` exports. Public so the
    /// tier (a separate crate) and the admission layer share one set of
    /// numbers.
    pub fn admission(&self) -> &AdmissionCounters {
        &self.core.admission
    }

    /// The configured ingress admission parameters, when bounded admission is
    /// enabled (see [`EngineBuilder::ingress`](crate::EngineBuilder::ingress)).
    pub fn ingress_config(&self) -> Option<&IngressConfig> {
        self.core.config.ingress.as_ref()
    }

    /// Blocks until queued depth drops below `target`, the runtime stops, or
    /// `timeout` elapses; returns `true` when depth is below `target` (or the
    /// queue is stopping — a stopping queue drains, so blocked admitters must
    /// not wait out their full timeout). This is the drain-side depth signal
    /// `Block`-policy ingress sessions park on instead of spinning.
    pub fn wait_queue_depth_below(&self, target: usize, timeout: Duration) -> bool {
        self.core.run_queue.wait_depth_below(target, timeout)
    }

    /// Returns the configured dispatch batch size (at least 1).
    pub fn configured_batch_size(&self) -> usize {
        self.core.config.batch_size.max(1)
    }

    /// Returns the run queue's shard count: clamped to the worker count at
    /// construction (one shard per dispatcher, at least one), so a pool sized
    /// by [`EngineBuilder::workers_auto`](crate::EngineBuilder::workers_auto)
    /// never spreads producers over more locks than it has consumers.
    pub fn run_queue_shards(&self) -> usize {
        self.core.run_queue.shard_count()
    }

    /// Registers a processing unit, running its `init` callback, and returns its
    /// identifier.
    pub fn register_unit(&self, spec: UnitSpec, instance: Box<dyn Unit>) -> EngineResult<UnitId> {
        self.core.register_unit(spec, instance, false)
    }

    /// Hot-replaces the unit instance serving `unit` with `replacement`,
    /// without stopping the engine: a **drain-and-swap**. The swap waits for
    /// any in-flight delivery to the unit to complete (deliveries hold the
    /// unit's cell lock; the swap acquires it), then migrates the unit's
    /// identity — id, name, input/output labels, privilege set, delivered
    /// count, pull-mode mailbox — onto the replacement under a bumped version
    /// and a fresh isolate, retires the old instance and destroys its isolate.
    /// Returns the new version (`unit_state(unit).version`).
    ///
    /// Exactly-once and per-unit delivery order are preserved across the
    /// boundary: every admitted event is delivered to the old instance or the
    /// new one, never both, never neither. Subscriptions are owned by the
    /// stable unit id and carry over; the replacement's `init` is **not** run
    /// (an init-time re-subscribe would break exactly-once). Publishers and
    /// ingress sessions holding the unit keep publishing — they rebind to the
    /// replacement transparently. A quarantined unit is revived by swapping in
    /// a healthy replacement.
    pub fn swap_unit(&self, unit: UnitId, replacement: Box<dyn Unit>) -> EngineResult<u64> {
        self.core.swap_unit(unit, replacement)
    }

    /// Registers a standby factory for `unit`: when the configured
    /// [`FaultPolicy`](crate::FaultPolicy) trips the unit with
    /// [`FaultAction::AutoSwap`](crate::FaultAction), the engine builds a
    /// replacement from this factory and swaps it in ([`Engine::swap_unit`]
    /// semantics). Keyed by unit id, so one standby covers its unit across
    /// repeated swaps. Replaces any previous standby for the same unit.
    pub fn set_standby(&self, unit: UnitId, factory: UnitFactory) -> EngineResult<()> {
        // Fail fast on unknown units, like `publisher` does.
        self.core.slot(unit)?;
        self.core.standbys.lock().insert(unit, factory);
        Ok(())
    }

    /// Quarantines a unit by hand: its deliveries are shed loudly (counted in
    /// [`QueueStats::quarantine_shed`]) and publishing as it fails with
    /// [`EngineError::UnitQuarantined`](crate::EngineError), until
    /// [`Engine::swap_unit`] installs a replacement.
    pub fn quarantine_unit(&self, unit: UnitId) -> EngineResult<()> {
        self.core.quarantine_unit(unit)
    }

    /// The configured fault policy, when fault handling is enabled (see
    /// [`EngineBuilder::fault`](crate::EngineBuilder::fault)).
    pub fn fault_policy(&self) -> Option<&FaultPolicy> {
        self.core.config.fault.as_ref()
    }

    /// Removes a unit, destroying its isolate and its subscriptions.
    pub fn remove_unit(&self, unit: UnitId) -> EngineResult<()> {
        self.core.standbys.lock().remove(&unit);
        let slot = self
            .core
            .units
            .write()
            .remove(&unit)
            .ok_or_else(|| EngineError::UnknownUnit(format!("{unit}")))?;
        let mut cell = slot.cell.lock();
        // A concurrent dispatch may already hold this slot's Arc; retiring the
        // cell makes it skip the delivery instead of using the dead isolate.
        cell.retired = true;
        self.core.isolation.destroy_isolate(cell.state.isolate);
        self.core
            .memory
            .release(MemoryCategory::UnitState, cell.state.estimated_size());
        drop(cell);
        {
            let mut subs = self.core.subscriptions.write();
            let filtered: Vec<Subscription> = subs
                .iter()
                .filter(|sub| sub.owner != unit)
                .cloned()
                .collect();
            *subs = Arc::new(filtered);
        }
        self.core.bump_security_epoch();
        Ok(())
    }

    /// Runs a closure with exclusive access to a unit and a [`UnitContext`] for it.
    ///
    /// This is how external drivers (a market-data feed thread, a test harness)
    /// perform work *as* a unit: events published through the context are queued
    /// for dispatch when the closure returns.
    pub fn with_unit<R>(
        &self,
        unit: UnitId,
        f: impl FnOnce(&mut dyn Unit, &mut UnitContext<'_>) -> EngineResult<R>,
    ) -> EngineResult<R> {
        self.core.with_unit_context(unit, f)
    }

    /// Returns a snapshot of a unit's security state (labels, privileges).
    pub fn unit_state(&self, unit: UnitId) -> EngineResult<UnitState> {
        Ok(self.core.slot(unit)?.cell.lock().state.clone())
    }

    /// Puts a unit into pull mode: deliveries are queued to its mailbox and
    /// retrieved with [`Engine::get_event`] instead of invoking `on_event`.
    pub fn set_pull_mode(&self, unit: UnitId, pull: bool) -> EngineResult<()> {
        let slot = self.core.slot(unit)?;
        slot.cell.lock().pull_mode = pull;
        Ok(())
    }

    /// Blocks the caller until an event is delivered to the unit's mailbox or the
    /// timeout expires (Table 1, `getEvent`). Requires pull mode.
    pub fn get_event(
        &self,
        unit: UnitId,
        timeout: Duration,
    ) -> EngineResult<Option<(Event, SubscriptionId)>> {
        let slot = self.core.slot(unit)?;
        let mut cell = slot.cell.lock();
        if !cell.pull_mode {
            return Err(EngineError::InvalidOperation(
                "get_event requires pull mode (set_pull_mode)".into(),
            ));
        }
        if cell.mailbox.is_empty() {
            slot.mailbox_signal.wait_for(&mut cell, timeout);
        }
        Ok(cell.mailbox.pop_front())
    }

    /// Non-blocking variant of [`Engine::get_event`].
    pub fn poll_event(&self, unit: UnitId) -> EngineResult<Option<(Event, SubscriptionId)>> {
        let slot = self.core.slot(unit)?;
        let event = slot.cell.lock().mailbox.pop_front();
        Ok(event)
    }

    /// Returns a single-threaded dispatcher for this engine.
    pub fn dispatcher(&self) -> Dispatcher {
        Dispatcher::new(Arc::clone(&self.core))
    }

    /// Number of events waiting in the dispatch queue.
    pub fn queue_depth(&self) -> usize {
        self.core.run_queue.len()
    }

    /// Returns the engine statistics counters.
    pub fn stats(&self) -> &EngineStats {
        &self.core.stats
    }

    /// Number of registered units (including managed instances).
    pub fn unit_count(&self) -> usize {
        self.core.units.read().len()
    }

    /// Number of active subscriptions.
    pub fn subscription_count(&self) -> usize {
        self.core.subscriptions.read().len()
    }

    /// Total accounted memory in MiB: live events, unit state, engine bookkeeping
    /// and isolation overhead (Figure 7's metric).
    pub fn memory_mib(&self) -> f64 {
        let isolation = self.core.isolation.memory_overhead_bytes();
        let engine = self.core.tags.estimated_size()
            + self.core.subscriptions.read().len() * 128
            + self.core.units.read().len() * 64
            // The process-wide interned-label table is shared between engines;
            // attributing it wholly to each reporting engine matches how the
            // paper's deployment (one engine per process) would account it.
            + defcon_defc::intern_stats().estimated_bytes();
        let accounted = self.core.memory.total_bytes();
        (accounted + isolation + engine) as f64 / (1024.0 * 1024.0)
    }

    /// Returns the engine's memory accountant (shared with benches).
    pub fn memory(&self) -> &MemoryAccountant {
        &self.core.memory
    }
}

impl fmt::Debug for Engine {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("Engine")
            .field("mode", &self.core.config.mode)
            .field("units", &self.unit_count())
            .field("subscriptions", &self.subscription_count())
            .field("queue_depth", &self.queue_depth())
            .finish()
    }
}
