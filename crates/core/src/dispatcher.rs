//! The event dispatcher.
//!
//! §3.2: "An event dispatcher sends events to units that have expressed interest
//! previously. This decoupled communication means that the fact that a publish call
//! has succeeded does not convey any information that might violate DEFC."
//!
//! The dispatcher takes events off the engine's queue and, for every subscription
//! whose filter matches over the parts *visible to the subscriber*, delivers the
//! event:
//!
//! * **direct** subscriptions invoke the owning unit's `on_event` (or queue into its
//!   mailbox in pull mode);
//! * **managed** subscriptions (§5, `subscribeManaged`) are served by engine-created
//!   handler instances whose contamination is raised to what the event requires,
//!   leaving the owner unit untainted.
//!
//! Parts added by a unit during a delivery are folded into the event for subsequent
//! deliveries in the same pass — the main-dataflow-path augmentation of §3.1.6.
//! The [`SecurityMode`](crate::SecurityMode) determines whether label checks run,
//! whether events are shared frozen or deep-copied, and whether the isolation
//! runtime's interceptor cost is charged per part examined.

use std::cell::RefCell;
use std::collections::HashMap;
use std::sync::atomic::Ordering;
use std::sync::Arc;
use std::time::{Duration, Instant};

use defcon_defc::Label;
use defcon_events::{Event, Part};
use defcon_metrics::memory::MemoryCategory;
use parking_lot::Mutex;

use crate::context::UnitContext;
use crate::engine::{EngineCore, UnitCell, UnitSlot};
use crate::error::EngineResult;
use crate::subscription::{Subscription, SubscriptionKind};
use crate::unit::{UnitSpec, UnitState};

/// A pump over an engine's sharded run queue.
///
/// Multiple dispatchers over the same engine may run on different threads — that
/// is exactly what [`Engine::start`](crate::Engine::start) does with
/// `workers(n)`: per-unit mutexes serialise deliveries to the same unit while
/// distinct units dispatch distinct events in parallel.
pub struct Dispatcher {
    core: Arc<EngineCore>,
    /// Run-queue shard this dispatcher prefers when popping (reduces contention
    /// between workers; any dispatcher may steal from any shard).
    preferred_shard: usize,
}

/// A subscription owner's security state as snapshotted for one batch.
///
/// Labels are interned (`Arc`-backed), so the snapshot clones are
/// reference-count bumps. The output label, privileges and name are only
/// needed to resolve managed handler instances, so direct subscriptions —
/// the common case — snapshot just the input label.
struct OwnerSnapshot {
    input: Label,
    managed: Option<ManagedOwnerState>,
}

/// The extra owner state a managed subscription needs to instantiate handlers.
struct ManagedOwnerState {
    output: Label,
    privileges: defcon_defc::PrivilegeSet,
    name: String,
}

/// Identity key of one memoised flow decision: a `(part label, owner input
/// label)` pair, plus whether the managed (integrity-only) rule applied.
///
/// Hash and equality are by interned-label *identity*, not structure — the key
/// owns clones of both labels, so the backing allocations (and therefore the
/// identity tokens) stay valid for as long as the memo lives.
struct FlowKey {
    part: Label,
    owner: Label,
    managed: bool,
}

impl PartialEq for FlowKey {
    fn eq(&self, other: &Self) -> bool {
        self.managed == other.managed
            && self.part.ptr_eq(&other.part)
            && self.owner.ptr_eq(&other.owner)
    }
}

impl Eq for FlowKey {}

impl std::hash::Hash for FlowKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_usize(self.part.identity());
        state.write_usize(self.owner.identity() ^ self.managed as usize);
    }
}

/// Dispatch state prepared once per popped batch and shared by all its events:
/// the subscription list and each subscription's resolved owner slot plus
/// security-state snapshot (`None` when the owner was removed).
struct BatchContext {
    subscriptions: Arc<Vec<Subscription>>,
    owners: Vec<Option<(Arc<UnitSlot>, OwnerSnapshot)>>,
    /// Per-batch memo of flow decisions that needed the exact sorted-vector
    /// scan (the pointer/fingerprint fast paths answer without consulting it):
    /// a batch of N events over the same handful of interned labels pays each
    /// lattice scan once instead of once per event per subscription. Sound
    /// within a batch because labels are immutable values and the owner
    /// snapshot is fixed for the batch; a mid-batch label change produces a
    /// *different* interned allocation and therefore a different key.
    flow_memo: RefCell<HashMap<FlowKey, bool>>,
}

impl BatchContext {
    /// Answers `part_label ≺ owner_input` (or the managed integrity-only
    /// variant), memoising decisions the constant-time fast path cannot make.
    fn flow_allowed(&self, part_label: &Label, owner_input: &Label, managed: bool) -> bool {
        let decide = || {
            if managed {
                // Managed handlers accept any additional confidentiality
                // taint; only the integrity requirement of the owner's input
                // label constrains matching.
                part_label.integrity().is_superset(owner_input.integrity())
            } else {
                part_label.can_flow_to_exact(owner_input)
            }
        };
        if managed {
            if owner_input.integrity().is_empty() {
                return true;
            }
        } else if let Some(answer) = part_label.can_flow_to_fast(owner_input) {
            return answer;
        }
        *self
            .flow_memo
            .borrow_mut()
            .entry(FlowKey {
                part: part_label.clone(),
                owner: owner_input.clone(),
                managed,
            })
            .or_insert_with(decide)
    }
}

impl Dispatcher {
    pub(crate) fn new(core: Arc<EngineCore>) -> Self {
        Dispatcher {
            core,
            preferred_shard: 0,
        }
    }

    pub(crate) fn for_worker(core: Arc<EngineCore>, worker_index: usize) -> Self {
        Dispatcher {
            core,
            preferred_shard: worker_index,
        }
    }

    /// The batch size this dispatcher pops with (configured via
    /// [`EngineBuilder::batch_size`](crate::EngineBuilder::batch_size)).
    fn batch_size(&self) -> usize {
        self.core.config.batch_size.max(1)
    }

    /// Dispatches at most one queued event; returns `true` if one was processed.
    pub fn pump_one(&self) -> EngineResult<bool> {
        match self.core.run_queue.pop(self.preferred_shard) {
            Some(event) => {
                // The guard re-balances the in-flight count even if a unit
                // callback panics through `dispatch`.
                let _guard = self.core.run_queue.complete_guard();
                self.dispatch(event).map(|()| true)
            }
            None => Ok(false),
        }
    }

    /// Pops one batch off the queue and dispatches every event in it, settling
    /// the in-flight accounting with a single update for the whole batch.
    /// Returns the number of events dispatched (zero when the queue was empty).
    ///
    /// A dispatch error does not abandon the rest of the batch — the remaining
    /// events (already popped, already counted in flight) are dispatched too,
    /// and the first error is returned afterwards, so no event is ever lost to
    /// an earlier event's failure.
    fn pump_batch(&self) -> EngineResult<usize> {
        let batch = self
            .core
            .run_queue
            .pop_batch(self.preferred_shard, self.batch_size());
        if batch.is_empty() {
            return Ok(0);
        }
        let dispatched = batch.len();
        let _guard = self.core.run_queue.batch_guard(dispatched);
        let context = self.batch_context();
        let mut first_error = None;
        for event in batch {
            if let Err(error) = self.dispatch_in(&context, event) {
                first_error.get_or_insert(error);
            }
        }
        match first_error {
            None => Ok(dispatched),
            Some(error) => Err(error),
        }
    }

    /// Dispatches events until the queue drains (including events published during
    /// dispatch). Returns the number of events dispatched.
    ///
    /// With worker threads running concurrently this drains the *queue*, not the
    /// engine: use [`EngineHandle::wait_idle`](crate::EngineHandle::wait_idle) to
    /// wait for in-flight dispatches as well.
    pub fn pump_until_idle(&self) -> EngineResult<usize> {
        let mut dispatched = 0;
        loop {
            match self.pump_batch()? {
                0 => return Ok(dispatched),
                n => dispatched += n,
            }
        }
    }

    /// Keeps pumping for at least `duration` (useful when other threads publish
    /// concurrently); returns the number of events dispatched. While the queue
    /// is empty the thread parks on the run queue's wakeup signal instead of
    /// spinning.
    pub fn pump_for(&self, duration: Duration) -> EngineResult<usize> {
        let deadline = Instant::now() + duration;
        let mut dispatched = 0;
        loop {
            match self.pump_batch()? {
                0 => {}
                n => {
                    dispatched += n;
                    continue;
                }
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // On a stopped and fully drained engine nothing can ever arrive;
            // waiting out the deadline (or worse, spinning) would be pointless.
            if self.core.run_queue.is_stopping() && self.core.run_queue.is_idle() {
                break;
            }
            self.core.run_queue.park_for_work(deadline - now);
        }
        Ok(dispatched)
    }

    /// Runs the blocking worker loop: dispatch events as they arrive until the
    /// run queue is stopped *and* fully drained. Returns the number of events
    /// this worker dispatched.
    ///
    /// This is the hot path of the multi-core deployment: each iteration drains
    /// a whole batch from one shard under a single lock round-trip and settles
    /// the batch's in-flight accounting with one update and one wakeup check,
    /// instead of paying those per event.
    pub(crate) fn run_worker(self) -> u64 {
        let batch_size = self.batch_size();
        let mut dispatched = 0;
        loop {
            let batch = self
                .core
                .run_queue
                .next_batch(self.preferred_shard, batch_size);
            if batch.is_empty() {
                return dispatched;
            }
            // The guard keeps the in-flight count balanced for the whole batch
            // even if the per-event catch itself were to unwind: a dead worker
            // would leak its in-flight count and deadlock shutdown for the
            // whole runtime.
            let guard = self.core.run_queue.batch_guard(batch.len());
            let context = self.batch_context();
            for event in batch {
                // Neither an `Err` (engine-level inconsistency) nor a panic in
                // a unit callback may take the worker down — or abandon the
                // rest of the already-popped batch.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.dispatch_in(&context, event)
                }));
                dispatched += 1;
                match outcome {
                    Ok(Ok(())) => {}
                    // Unit misbehaviour is already caught and counted per
                    // delivery inside `deliver`; anything that reaches here is
                    // an engine fault and gets its own counter so it cannot
                    // hide among expected unit errors. (In `workers(0)` mode
                    // the same error propagates to the pump caller instead.)
                    Ok(Err(_)) | Err(_) => {
                        self.core
                            .stats
                            .engine_errors
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
            drop(guard);
        }
    }

    /// Builds the per-batch dispatch context: the subscription list and, for
    /// every subscription, a snapshot of its owner's security state (labels,
    /// privileges, name) and slot.
    ///
    /// Taking this snapshot once per *batch* instead of once per subscription
    /// per event is a large part of the batched hot path's win: the
    /// per-subscription cell lock round-trip and label/privilege/name clones
    /// are paid `S` times per batch instead of `S × batch_size` times. Within
    /// one batch, dispatch therefore observes a consistent owner-state
    /// snapshot: a unit changing its own labels during a delivery affects
    /// visibility filtering from the *next batch* on — including the rest of
    /// the event currently being dispatched, which under the old
    /// per-subscription re-read would have seen the change for its remaining
    /// subscriptions. Concurrent workers always raced such changes anyway;
    /// the snapshot makes the window explicit and bounded by one batch.
    fn batch_context(&self) -> BatchContext {
        let subscriptions: Arc<Vec<Subscription>> = Arc::clone(&self.core.subscriptions.read());
        let owners = subscriptions
            .iter()
            .map(|subscription| {
                // Owner removed since the subscription snapshot: skip silently
                // (per-event re-checks in `deliver` handle mid-batch removal).
                let slot = self.core.slot(subscription.owner).ok()?;
                let cell = slot.cell.lock();
                let snapshot = OwnerSnapshot {
                    input: cell.state.input_label.clone(),
                    managed: subscription.is_managed().then(|| ManagedOwnerState {
                        output: cell.state.output_label.clone(),
                        privileges: cell.state.privileges.clone(),
                        name: cell.state.name.clone(),
                    }),
                };
                drop(cell);
                Some((slot, snapshot))
            })
            .collect();
        BatchContext {
            subscriptions,
            owners,
            flow_memo: RefCell::new(HashMap::new()),
        }
    }

    /// Dispatches a single event to every matching subscription (building a
    /// fresh one-event context; the batched paths share one context per batch).
    fn dispatch(&self, event: Event) -> EngineResult<()> {
        self.dispatch_in(&self.batch_context(), event)
    }

    /// Dispatches a single event using a prepared batch context.
    fn dispatch_in(&self, batch: &BatchContext, event: Event) -> EngineResult<()> {
        self.core.stats.dispatched.fetch_add(1, Ordering::Relaxed);
        self.core.cache_event(&event);

        let mode = self.core.config.mode;

        // The event as augmented so far along the main dataflow path.
        let mut current = event;

        for (subscription, owner) in batch.subscriptions.iter().zip(&batch.owners) {
            let Some((owner_slot, owner)) = owner else {
                continue;
            };
            let owner_input = &owner.input;

            let managed = subscription.is_managed();
            let matched = if mode.checks_labels() {
                let isolation = &self.core.isolation;
                let isolates = mode.isolates();
                let stats = &self.core.stats;
                subscription.filter.matches(&current, |part: &Part| {
                    // The isolation interception is charged per part *examined*
                    // (it models crossing the isolate boundary to read part
                    // metadata), so it is never skipped on memo hits.
                    if isolates {
                        isolation.intercept();
                    }
                    let visible = batch.flow_allowed(part.label(), owner_input, managed);
                    if !visible {
                        stats.label_rejections.fetch_add(1, Ordering::Relaxed);
                    }
                    visible
                })
            } else {
                subscription.filter.matches_any_visibility(&current)
            };
            if !matched {
                continue;
            }

            // Resolve the delivery target: the owner itself, or a managed instance
            // at the contamination this event requires (with label checks disabled
            // the single instance at the owner's own label is reused).
            let target_slot = if managed {
                let Some(managed_owner) = &owner.managed else {
                    continue;
                };
                let required = if mode.checks_labels() {
                    owner_input.join(&current.overall_label())
                } else {
                    owner_input.clone()
                };
                // A resolved instance can be evicted (retired) by another worker
                // before we deliver; re-resolving then creates a fresh handler.
                // Bounded so that pathological cap pressure cannot livelock us —
                // `deliver` skips retired slots, so the last attempt is safe.
                let mut resolved = None;
                for _ in 0..4 {
                    match self.managed_instance(
                        subscription,
                        &managed_owner.output,
                        &managed_owner.privileges,
                        &managed_owner.name,
                        required.clone(),
                    ) {
                        Ok(slot) => {
                            let retired = slot.cell.lock().retired;
                            resolved = Some(slot);
                            if !retired {
                                break;
                            }
                        }
                        Err(_) => break,
                    }
                }
                match resolved {
                    Some(slot) => slot,
                    None => continue,
                }
            } else {
                Arc::clone(owner_slot)
            };

            // `labels+clone` pays a deep copy per delivery; the other modes share
            // the frozen event by reference.
            let delivered = if mode.clones_events() {
                current.deep_clone()
            } else {
                current.clone()
            };

            let additions = self.deliver(&target_slot, delivered, subscription);
            for part in additions {
                current = current.with_part(part);
            }
        }
        Ok(())
    }

    /// Delivers an event to one unit slot, returning the parts the unit added to the
    /// event (released for subsequent deliveries).
    fn deliver(
        &self,
        slot: &Arc<UnitSlot>,
        event: Event,
        subscription: &Subscription,
    ) -> Vec<Part> {
        let mut cell = slot.cell.lock();
        if cell.retired {
            // Evicted between resolution and delivery; its isolate is gone.
            return Vec::new();
        }
        cell.state.delivered += 1;
        self.core.stats.deliveries.fetch_add(1, Ordering::Relaxed);

        if cell.pull_mode {
            cell.mailbox.push_back((event, subscription.id));
            slot.mailbox_signal.notify_one();
            return Vec::new();
        }

        let UnitCell {
            ref mut state,
            ref mut instance,
            ..
        } = *cell;
        let mut outputs = Vec::new();
        let additions = {
            let mut ctx = UnitContext::new(&self.core, state, Some(&event), &mut outputs, true);
            // Errors *and* panics in unit code are isolated per delivery, so a
            // misbehaving unit cannot rob later subscribers of the same event
            // (nor, with workers, take a dispatcher thread down).
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                instance.on_event(&mut ctx, &event)
            }));
            if !matches!(outcome, Ok(Ok(()))) {
                self.core.stats.unit_errors.fetch_add(1, Ordering::Relaxed);
            }
            ctx.finish()
        };
        drop(cell);
        // One delivery's cascade publications enter the queue as a single
        // batch: one shard lock, one accounting update, one wakeup check.
        self.core.enqueue_batch(outputs);
        additions
    }

    /// Returns (creating on demand) the managed handler instance for a subscription
    /// at the given contamination level.
    fn managed_instance(
        &self,
        subscription: &Subscription,
        owner_output: &Label,
        owner_privileges: &defcon_defc::PrivilegeSet,
        owner_name: &str,
        required: Label,
    ) -> EngineResult<Arc<UnitSlot>> {
        let key = (subscription.id, required.clone());
        // Hold the registry lock across lookup *and* creation so that two workers
        // racing on the same contamination cannot each instantiate (and leak) a
        // handler for the same key.
        //
        // Lock order: managed_instances -> units -> (units released) -> cell.
        // Unit callbacks run with their cell locked and may take units.write()
        // (instantiate_unit), so a cell mutex must never be acquired while a
        // units guard is held — see the eviction path below.
        let mut instances = self.core.managed_instances.lock();
        if let Some(existing) = instances.get(&key) {
            if let Ok(slot) = self.core.slot(*existing) {
                return Ok(slot);
            }
        }

        let SubscriptionKind::Managed(factory) = &subscription.kind else {
            unreachable!("managed_instance called for a direct subscription");
        };
        let instance = factory();
        let id = self.core.next_unit_id();
        let isolate = self.core.isolation.create_isolate();
        let spec = UnitSpec::new(format!("{owner_name}::managed"))
            .with_input_label(required)
            .with_output_label(owner_output.clone())
            .with_privileges(owner_privileges);
        let state = UnitState::new(id, spec, isolate);
        self.core
            .memory
            .charge(MemoryCategory::UnitState, state.estimated_size());
        let slot = Arc::new(UnitSlot {
            cell: Mutex::new(UnitCell {
                state,
                instance,
                mailbox: Default::default(),
                pull_mode: false,
                retired: false,
            }),
            mailbox_signal: parking_lot::Condvar::new(),
        });
        self.core.units.write().insert(id, Arc::clone(&slot));
        // Bound the number of live managed instances: orders protected by
        // per-order tags create one instance per contamination, so without a cap
        // a long run would accumulate unboundedly many handler objects.
        if instances.len() >= self.core.config.managed_instance_cap {
            let evicted_keys: Vec<_> = instances
                .keys()
                .take(instances.len() / 2 + 1)
                .cloned()
                .collect();
            // Unregister all victims under one short units.write(), collecting
            // their slots; their cell mutexes are only taken after the write
            // guard is gone. Locking a cell while holding units.write() would
            // invert the cell -> units order of in-progress deliveries (whose
            // unit code may call instantiate_unit) and deadlock the workers.
            let mut evicted_slots = Vec::with_capacity(evicted_keys.len());
            {
                let mut units = self.core.units.write();
                for evicted_key in evicted_keys {
                    if let Some(evicted_id) = instances.remove(&evicted_key) {
                        if let Some(evicted_slot) = units.remove(&evicted_id) {
                            evicted_slots.push(evicted_slot);
                        }
                    }
                }
            }
            for evicted_slot in evicted_slots {
                let mut cell = evicted_slot.cell.lock();
                // A dispatch may have resolved this slot just before eviction;
                // retiring it under the cell lock makes such racers skip the
                // delivery (and re-resolve) instead of running unit code against
                // a destroyed isolate.
                cell.retired = true;
                self.core.isolation.destroy_isolate(cell.state.isolate);
                self.core
                    .memory
                    .release(MemoryCategory::UnitState, cell.state.estimated_size());
            }
        }
        instances.insert(key, id);
        self.core
            .stats
            .managed_instances
            .fetch_add(1, Ordering::Relaxed);
        Ok(slot)
    }
}
