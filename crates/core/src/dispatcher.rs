//! The event dispatcher.
//!
//! §3.2: "An event dispatcher sends events to units that have expressed interest
//! previously. This decoupled communication means that the fact that a publish call
//! has succeeded does not convey any information that might violate DEFC."
//!
//! The dispatcher takes events off the engine's queue and, for every subscription
//! whose filter matches over the parts *visible to the subscriber*, delivers the
//! event:
//!
//! * **direct** subscriptions invoke the owning unit's `on_event` (or queue into its
//!   mailbox in pull mode);
//! * **managed** subscriptions (§5, `subscribeManaged`) are served by engine-created
//!   handler instances whose contamination is raised to what the event requires,
//!   leaving the owner unit untainted.
//!
//! Parts added by a unit during a delivery are folded into the event for subsequent
//! deliveries in the same pass — the main-dataflow-path augmentation of §3.1.6.
//! The [`SecurityMode`](crate::SecurityMode) determines whether label checks run,
//! whether events are shared frozen or deep-copied, and whether the isolation
//! runtime's interceptor cost is charged per part examined.
//!
//! # The batched hot path
//!
//! Workers pop whole batches (one run-queue lock round-trip, one in-flight
//! accounting update), share one owner-state snapshot per batch, and — with
//! [`EngineConfig::grouped_delivery`](crate::EngineConfig) on, the default —
//! regroup a batch's deliveries by target unit so each unit's cell lock is
//! acquired once per batch instead of once per delivery. Only per-unit delivery
//! order is promised, which is exactly what grouping preserves: each unit sees
//! its events in batch order, while deliveries to *different* units interleave
//! in group order. The snapshot itself is cached across batches and keyed on
//! the engine's security epoch, so consecutive batches over an unchanged
//! subscription/label population skip the rebuild entirely; any label,
//! privilege or unit-set mutation bumps the epoch and the next batch starts
//! from a fresh snapshot.
//!
//! # The subscription index
//!
//! With [`EngineConfig::subscription_index`](crate::EngineConfig) on (the
//! default), the batch snapshot also carries an inverted
//! [`SubscriptionIndex`](crate::sub_index) from part names — and, for string
//! equality and `OneOf` clauses, part values — to the subscriptions whose
//! filters could possibly match. Planning looks up each event's parts and
//! runs the exact filter (and flow check) only over the returned candidate
//! set, which is a provable superset of the matches: fan-out cost scales with
//! candidates per event instead of total registered subscriptions. The index
//! rides the same epoch-keyed snapshot cache, so subscribe/unsubscribe/swap
//! invalidate it for free and an unchanged population never rebuilds it.
//! Parts released by main-path augmentation are looked up incrementally —
//! per delivery on the per-event path, per overflow wave on the grouped path
//! — so filters naming augmentation-released parts match under either
//! matcher, grouped or not.

use std::cell::RefCell;
use std::collections::{HashMap, HashSet};
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use defcon_defc::Label;
use defcon_events::{Event, Part};
use defcon_metrics::memory::MemoryCategory;
use parking_lot::Mutex;

use crate::context::UnitContext;
use crate::engine::{EngineCore, UnitCell, UnitSlot};
use crate::error::EngineResult;
use crate::steal::{LocalRuns, StealGrid};
use crate::sub_index::SubscriptionIndex;
use crate::subscription::{Subscription, SubscriptionKind};
use crate::unit::{UnitSpec, UnitState};

/// A pump over an engine's sharded run queue.
///
/// Multiple dispatchers over the same engine may run on different threads — that
/// is exactly what [`Engine::start`](crate::Engine::start) does with
/// `workers(n)`: per-unit mutexes serialise deliveries to the same unit while
/// distinct units dispatch distinct events in parallel.
pub struct Dispatcher {
    core: Arc<EngineCore>,
    /// Run-queue shard this dispatcher prefers when popping (reduces contention
    /// between workers; any dispatcher may steal from any shard). Doubles as
    /// the worker's index in the elastic pool's activation order.
    preferred_shard: usize,
    /// Batch context reused across consecutive batches while the subscription
    /// snapshot and security epoch are unchanged (see
    /// [`Dispatcher::batch_context`]).
    context_cache: RefCell<Option<CachedContext>>,
    /// Plan buffers reused across batches by the grouped hot path, so a
    /// steady-state batch plans with zero allocations.
    scratch: RefCell<GroupScratch>,
}

/// A subscription owner's security state as snapshotted for one batch.
///
/// Labels are interned (`Arc`-backed), so the snapshot clones are
/// reference-count bumps. The output label, privileges and name are only
/// needed to resolve managed handler instances, so direct subscriptions —
/// the common case — snapshot just the input label.
struct OwnerSnapshot {
    input: Label,
    managed: Option<ManagedOwnerState>,
}

/// The extra owner state a managed subscription needs to instantiate handlers.
struct ManagedOwnerState {
    output: Label,
    privileges: defcon_defc::PrivilegeSet,
    name: String,
}

/// Identity key of one memoised flow decision: a `(part label, owner input
/// label)` pair, plus whether the managed (integrity-only) rule applied.
///
/// Hash and equality are by interned-label *identity*, not structure — the key
/// owns clones of both labels, so the backing allocations (and therefore the
/// identity tokens) stay valid for as long as the memo lives.
struct FlowKey {
    part: Label,
    owner: Label,
    managed: bool,
}

impl PartialEq for FlowKey {
    fn eq(&self, other: &Self) -> bool {
        self.managed == other.managed
            && self.part.ptr_eq(&other.part)
            && self.owner.ptr_eq(&other.owner)
    }
}

impl Eq for FlowKey {}

impl std::hash::Hash for FlowKey {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        state.write_usize(self.part.identity());
        state.write_usize(self.owner.identity() ^ self.managed as usize);
    }
}

/// Bound on the flow memo: the context is reused across batches now, so a
/// pathological label churn must not grow it without limit. Clearing (rather
/// than evicting) keeps the hot path branch-free; the memo refills in one
/// batch.
const FLOW_MEMO_CAP: usize = 4096;

/// Dispatch state prepared once per security epoch and shared by batches: the
/// subscription list and each subscription's resolved owner slot plus
/// security-state snapshot (`None` when the owner was removed).
struct BatchContext {
    subscriptions: Arc<Vec<Subscription>>,
    owners: Vec<Option<(Arc<UnitSlot>, OwnerSnapshot)>>,
    /// The inverted subscription index over `subscriptions` (`None` with the
    /// `subscription_index` knob off): part name/value → candidate
    /// subscription indices, a provable superset of the true matches. Living
    /// inside the epoch-cached context gives it incremental maintenance for
    /// free — every subscribe/unsubscribe/swap bumps the security epoch,
    /// retiring index and snapshot together, atomically.
    index: Option<SubscriptionIndex>,
    /// Memo of flow decisions that needed the exact sorted-vector scan (the
    /// pointer/fingerprint fast paths answer without consulting it): repeated
    /// deliveries over the same handful of interned labels pay each lattice
    /// scan once. Sound for as long as the context lives because labels are
    /// immutable values and the owner snapshot is fixed per context; an owner
    /// label change bumps the security epoch, which retires the whole context
    /// (memo included). Behind a mutex (uncontended: contexts are per-worker)
    /// so the context can be cached and shared with spawned helpers.
    flow_memo: Mutex<HashMap<FlowKey, bool>>,
}

/// The cache slot of [`Dispatcher::batch_context`]: the snapshot plus the
/// security epoch it is valid for. Subscribe/unsubscribe bump the epoch too,
/// so one `u64` compare covers the whole key.
struct CachedContext {
    /// The engine's security epoch at build time.
    epoch: u64,
    context: Arc<BatchContext>,
}

/// The process-shared batch-context slot of scheduler v3: an RCU-flavoured
/// publication point for the per-epoch security snapshot. The first worker to
/// miss its private cache for an epoch rebuilds the snapshot *while holding
/// the slot lock* — serialising concurrent rebuilders so one epoch bump costs
/// one rebuild process-wide — and publishes it; every other worker validates
/// the epoch under the (briefly held) lock, bumps the hit counter and walks
/// away with a cloned `Arc`. Readers then run lock-free off their private
/// per-worker copy until the next epoch bump retires it.
pub(crate) struct SharedContextSlot {
    slot: Mutex<Option<CachedContext>>,
    hits: AtomicU64,
}

impl SharedContextSlot {
    pub(crate) fn new() -> Self {
        SharedContextSlot {
            slot: Mutex::new(None),
            hits: AtomicU64::new(0),
        }
    }

    /// Times a worker skipped a snapshot rebuild because the published
    /// snapshot was still valid for its epoch (`queue_stats()`'s
    /// `sched_snapshot_hits`).
    pub(crate) fn hits(&self) -> u64 {
        self.hits.load(Ordering::Relaxed)
    }

    /// Returns the published snapshot for `epoch`, building and publishing it
    /// via `build` on a miss. The snapshot is tagged with the epoch observed
    /// *before* the build, so a security mutation racing the build leaves a
    /// stale tag (forcing the next caller to rebuild), never a snapshot
    /// staler than its tag.
    fn get_or_build(
        &self,
        epoch: u64,
        build: impl FnOnce() -> Arc<BatchContext>,
    ) -> Arc<BatchContext> {
        let mut slot = self.slot.lock();
        if let Some(cached) = slot.as_ref() {
            if cached.epoch == epoch {
                self.hits.fetch_add(1, Ordering::Relaxed);
                return Arc::clone(&cached.context);
            }
        }
        let context = build();
        *slot = Some(CachedContext {
            epoch,
            context: Arc::clone(&context),
        });
        context
    }
}

impl std::fmt::Debug for SharedContextSlot {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("SharedContextSlot")
            .field("hits", &self.hits())
            .finish()
    }
}

impl BatchContext {
    /// Answers `part_label ≺ owner_input` (or the managed integrity-only
    /// variant), memoising decisions the constant-time fast path cannot make.
    fn flow_allowed(&self, part_label: &Label, owner_input: &Label, managed: bool) -> bool {
        let decide = || {
            if managed {
                // Managed handlers accept any additional confidentiality
                // taint; only the integrity requirement of the owner's input
                // label constrains matching.
                part_label.integrity().is_superset(owner_input.integrity())
            } else {
                part_label.can_flow_to_exact(owner_input)
            }
        };
        if managed {
            if owner_input.integrity().is_empty() {
                return true;
            }
        } else if let Some(answer) = part_label.can_flow_to_fast(owner_input) {
            return answer;
        }
        let mut memo = self.flow_memo.lock();
        if memo.len() >= FLOW_MEMO_CAP {
            memo.clear();
        }
        *memo
            .entry(FlowKey {
                part: part_label.clone(),
                owner: owner_input.clone(),
                managed,
            })
            .or_insert_with(decide)
    }
}

/// Identity of a planned delivery's target, compared by linear scan (batches
/// touch a handful of units; a hash lookup per delivery would cost more than
/// the scan).
#[derive(Clone, Copy, PartialEq, Eq)]
enum TargetKey {
    /// A direct subscription delivers into its owner: keyed by unit id, so
    /// the plan never resolves or clones a slot per delivery.
    Direct(crate::unit::UnitId),
    /// A managed delivery's handler instance: keyed by slot identity (each
    /// event's contamination can resolve to a different instance).
    Managed(usize),
}

/// Reusable buffers of the grouped planner. The plan is two flat passes: bucket
/// every matched delivery by target (first-touch order), then counting-sort the
/// deliveries group-major — stable, so each group keeps batch order, which is
/// the per-unit order the engine promises.
#[derive(Default)]
struct GroupScratch {
    /// Resolved target slots in first-touch order, with their scan key.
    targets: Vec<(TargetKey, Arc<UnitSlot>)>,
    /// Planned deliveries in batch order: `(group, event index, sub index)`.
    planned: Vec<(u32, u32, u32)>,
    /// Counting-sort cursors; after the scatter, `offsets[g]` is group `g`'s
    /// end and `offsets[g - 1]` its start.
    offsets: Vec<usize>,
    /// Deliveries regrouped per target (group-major, batch order within).
    ordered: Vec<(u32, u32)>,
    /// Matched `(event index, sub index)` pairs of the wave being executed.
    pairs: Vec<(u32, u32)>,
    /// Pairs matched by the augmentation overflow re-match (the next wave).
    overflow: Vec<(u32, u32)>,
    /// Per-event candidate set produced by the subscription index.
    candidates: Vec<u32>,
    /// Per-event flags: did a delivery this wave augment the event?
    augmented: Vec<bool>,
    /// Per-event-path candidate worklist (ascending sub indices; grows as
    /// augmentation releases parts that index to further candidates).
    worklist: Vec<u32>,
    /// Candidates indexed by one augmentation-released part, before merging.
    extra: Vec<u32>,
}

impl Dispatcher {
    pub(crate) fn new(core: Arc<EngineCore>) -> Self {
        Dispatcher {
            core,
            preferred_shard: 0,
            context_cache: RefCell::new(None),
            scratch: RefCell::new(GroupScratch::default()),
        }
    }

    pub(crate) fn for_worker(core: Arc<EngineCore>, worker_index: usize) -> Self {
        Dispatcher {
            core,
            preferred_shard: worker_index,
            context_cache: RefCell::new(None),
            scratch: RefCell::new(GroupScratch::default()),
        }
    }

    /// The batch size this dispatcher pops with (configured via
    /// [`EngineBuilder::batch_size`](crate::EngineBuilder::batch_size)).
    fn batch_size(&self) -> usize {
        self.core.config.batch_size.max(1)
    }

    /// Dispatches at most one queued event; returns `true` if one was processed.
    pub fn pump_one(&self) -> EngineResult<bool> {
        match self.core.run_queue.pop(self.preferred_shard) {
            Some(event) => {
                // The guard re-balances the in-flight count even if a unit
                // callback panics through `dispatch`.
                let _guard = self.core.run_queue.complete_guard();
                self.dispatch(event).map(|()| true)
            }
            None => Ok(false),
        }
    }

    /// Pops one batch off the queue and dispatches every event in it, settling
    /// the in-flight accounting with a single update for the whole batch.
    /// Returns the number of events dispatched (zero when the queue was empty).
    ///
    /// A dispatch error does not abandon the rest of the batch — the remaining
    /// events (already popped, already counted in flight) are dispatched too,
    /// and the first error is returned afterwards, so no event is ever lost to
    /// an earlier event's failure.
    fn pump_batch(&self) -> EngineResult<usize> {
        let mut batch = self
            .core
            .run_queue
            .pop_batch(self.preferred_shard, self.batch_size());
        if batch.is_empty() {
            return Ok(0);
        }
        let dispatched = batch.len();
        let _guard = self.core.run_queue.batch_guard(dispatched);
        let context = self.batch_context();
        if self.core.config.grouped_delivery && dispatched > 1 {
            self.dispatch_batch_grouped(&context, &mut batch)?;
            return Ok(dispatched);
        }
        let mut first_error = None;
        for event in batch {
            if let Err(error) = self.dispatch_in(&context, event) {
                first_error.get_or_insert(error);
            }
        }
        match first_error {
            None => Ok(dispatched),
            Some(error) => Err(error),
        }
    }

    /// Dispatches events until the queue drains (including events published during
    /// dispatch). Returns the number of events dispatched.
    ///
    /// With worker threads running concurrently this drains the *queue*, not the
    /// engine: use [`EngineHandle::wait_idle`](crate::EngineHandle::wait_idle) to
    /// wait for in-flight dispatches as well.
    pub fn pump_until_idle(&self) -> EngineResult<usize> {
        let mut dispatched = 0;
        loop {
            match self.pump_batch()? {
                0 => return Ok(dispatched),
                n => dispatched += n,
            }
        }
    }

    /// Keeps pumping for at least `duration` (useful when other threads publish
    /// concurrently); returns the number of events dispatched. While the queue
    /// is empty the thread parks on the run queue's wakeup signal instead of
    /// spinning.
    pub fn pump_for(&self, duration: Duration) -> EngineResult<usize> {
        let deadline = Instant::now() + duration;
        let mut dispatched = 0;
        loop {
            match self.pump_batch()? {
                0 => {}
                n => {
                    dispatched += n;
                    continue;
                }
            }
            let now = Instant::now();
            if now >= deadline {
                break;
            }
            // On a stopped and fully drained engine nothing can ever arrive;
            // waiting out the deadline (or worse, spinning) would be pointless.
            if self.core.run_queue.is_stopping() && self.core.run_queue.is_idle() {
                break;
            }
            self.core.run_queue.park_for_work(deadline - now);
        }
        Ok(dispatched)
    }

    /// Runs the blocking worker loop: dispatch events as they arrive until the
    /// run queue is stopped *and* fully drained. Returns the number of events
    /// this worker dispatched.
    ///
    /// This is the hot path of the multi-core deployment. Under scheduler v3
    /// (the default) the worker owns a local deque of prefetched runs, refills
    /// it shard-affinely from the global queue, and steals whole runs from the
    /// deepest sibling when both run dry; under v2 every iteration pops
    /// straight off the shared sharded queue. Either way each dispatched batch
    /// costs a single lock round-trip on the pop side, settles its in-flight
    /// accounting with one update and one wakeup check, and — with grouped
    /// delivery — pays one cell-lock acquisition per target unit instead of
    /// per delivery.
    ///
    /// In an elastic pool this worker also carries its share of the pool
    /// protocol: it parks while it is outside the activation set, and (when
    /// above `workers_min`) trades the untimed idle wait for a bounded grace
    /// after which it volunteers to park back down.
    pub(crate) fn run_worker(self) -> u64 {
        match self.core.steal_grid.as_ref() {
            Some(grid) => self.run_worker_v3(grid),
            None => self.run_worker_v2(),
        }
    }

    /// The v2 worker loop: the shared sharded queue is the only work source;
    /// elastic workers park down in LIFO order (highest active index first)
    /// after an idle grace.
    fn run_worker_v2(&self) -> u64 {
        let batch_size = self.batch_size();
        let index = self.preferred_shard;
        let pool = self.core.pool.as_ref().filter(|pool| pool.is_elastic());
        let queue = &self.core.run_queue;
        let mut dispatched = 0;
        // The popped-batch buffer is reused across iterations: a steady-state
        // batch costs no allocation on the pop side.
        let mut batch: Vec<Event> = Vec::new();
        loop {
            batch.clear();
            if let Some(pool) = pool {
                pool.wait_active(index, queue);
            }
            match pool {
                // Elastic workers above the minimum never park untimed while
                // active: they wait with a bounded grace so an idle engine
                // deterministically drains the band back to `workers_min`.
                Some(pool) if index >= pool.min() => {
                    if queue.pop_batch_into(index, batch_size, &mut batch) == 0 {
                        if queue.is_stopping() && queue.is_idle() {
                            return dispatched;
                        }
                        queue.park_for_work(pool.idle_grace());
                        if queue.len() == 0
                            && !queue.is_stopping()
                            && index + 1 == pool.active_target()
                        {
                            // Highest active worker and still nothing to do
                            // after a full grace: park down (LIFO). A racing
                            // scale-up fails the CAS and we simply stay.
                            pool.try_park_down(index);
                        }
                        continue;
                    }
                }
                _ => {
                    if queue.next_batch_into(index, batch_size, &mut batch) == 0 {
                        return dispatched;
                    }
                }
            }
            dispatched += self.dispatch_popped(&mut batch);
        }
    }

    /// The v3 worker loop: local run deque first, shard-affine prefetch from
    /// the global queue second, whole-run stealing from the deepest sibling
    /// third. Stolen runs are dispatched intact by one worker, so the order
    /// within a run — the order its publish transaction landed on its shard
    /// in — is preserved no matter who ends up delivering it.
    fn run_worker_v3(&self, grid: &StealGrid) -> u64 {
        /// Runs fetched per global-queue lock round-trip: one dispatched now,
        /// the rest parked locally where siblings can steal them.
        const PREFETCH_RUNS: usize = 4;
        /// Bounded park for workers with no elastic grace of their own:
        /// stealable runs appear in sibling deques *without* a global enqueue
        /// (so no wakeup), which is why a v3 worker never waits untimed.
        const STEAL_POLL: Duration = Duration::from_millis(1);
        let batch_size = self.batch_size();
        let index = self.preferred_shard;
        let pool = self.core.pool.as_ref().filter(|pool| pool.is_elastic());
        let queue = &self.core.run_queue;
        // The guard flushes still-parked runs back to the global queue if this
        // worker exits (or unwinds) with work left over: events in a local
        // deque have left the global `len` but still count as `pending`, and
        // stranding them would deadlock shutdown.
        let local = LocalRuns::new(queue, grid.claim_worker(index));
        let mut dispatched = 0;
        let mut fetched: Vec<Event> = Vec::new();
        loop {
            if let Some(pool) = pool {
                pool.wait_active(index, queue);
            }
            // 1. Own deque first: runs prefetched earlier, oldest first.
            if let Some(mut run) = local.pop() {
                dispatched += self.dispatch_popped(&mut run);
                continue;
            }
            // 2. Refill from the global queue: drain up to PREFETCH_RUNS runs
            // from the preferred shard in one lock round-trip, dispatch the
            // first now and park the rest locally.
            fetched.clear();
            let popped = queue.pop_batch_into(index, batch_size * PREFETCH_RUNS, &mut fetched);
            if popped > 0 {
                if popped > batch_size {
                    let mut rest = fetched.split_off(batch_size);
                    while !rest.is_empty() {
                        let tail = if rest.len() > batch_size {
                            rest.split_off(batch_size)
                        } else {
                            Vec::new()
                        };
                        // Oldest chunk pushed first: the owner pops the front,
                        // thieves steal the newest run off the back.
                        local.push(std::mem::replace(&mut rest, tail));
                    }
                }
                dispatched += self.dispatch_popped(&mut fetched);
                continue;
            }
            // 3. Globally dry: steal one whole run from the deepest sibling.
            if let Some(mut run) = grid.steal_for(index) {
                dispatched += self.dispatch_popped(&mut run);
                continue;
            }
            // 4. Nothing anywhere. Stop once the runtime is stopping and fully
            // drained (pending covers sibling deques, so no run is abandoned);
            // otherwise park bounded and re-probe.
            if queue.is_stopping() && queue.is_idle() {
                return dispatched;
            }
            match pool {
                Some(pool) if index >= pool.min() => {
                    queue.park_for_work(pool.idle_grace());
                    // Park down only with the local deque confirmed empty: a
                    // parked worker cannot dispatch the runs it still owns,
                    // and thieves only visit when *they* run dry.
                    if queue.len() == 0 && !queue.is_stopping() && local.is_empty() {
                        pool.try_park_down(index);
                    }
                }
                _ => {
                    queue.park_for_work(STEAL_POLL);
                }
            }
        }
    }

    /// Dispatches one already-popped batch inside a worker loop: settles the
    /// batch's in-flight accounting with a RAII guard, shares one epoch-cached
    /// context across the batch, and isolates engine faults so a misbehaving
    /// delivery can never take the worker thread down. Returns the number of
    /// events the batch held.
    fn dispatch_popped(&self, batch: &mut Vec<Event>) -> u64 {
        let popped = batch.len();
        if popped == 0 {
            return 0;
        }
        // The guard keeps the in-flight count balanced for the whole batch
        // even if the per-event catch itself were to unwind: a dead worker
        // would leak its in-flight count and deadlock shutdown for the
        // whole runtime.
        let guard = self.core.run_queue.batch_guard(popped);
        let context = self.batch_context();
        if self.core.config.grouped_delivery && popped > 1 {
            // Unit misbehaviour is caught and counted per delivery inside
            // the group execution; anything that unwinds past it is an
            // engine fault and must not take the worker down.
            let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                self.dispatch_batch_grouped(&context, batch)
            }));
            if !matches!(outcome, Ok(Ok(()))) {
                self.core
                    .stats
                    .engine_errors
                    .fetch_add(1, Ordering::Relaxed);
            }
        } else {
            for event in batch.drain(..) {
                // Neither an `Err` (engine-level inconsistency) nor a panic
                // in a unit callback may take the worker down — or abandon
                // the rest of the already-popped batch.
                let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
                    self.dispatch_in(&context, event)
                }));
                match outcome {
                    Ok(Ok(())) => {}
                    // Unit misbehaviour is already caught and counted per
                    // delivery inside `deliver`; anything that reaches here
                    // is an engine fault and gets its own counter so it
                    // cannot hide among expected unit errors. (In
                    // `workers(0)` mode the same error propagates to the
                    // pump caller instead.)
                    Ok(Err(_)) | Err(_) => {
                        self.core
                            .stats
                            .engine_errors
                            .fetch_add(1, Ordering::Relaxed);
                    }
                }
            }
        }
        drop(guard);
        popped as u64
    }

    /// Returns the dispatch context for the current batch: the subscription
    /// list and, for every subscription, a snapshot of its owner's security
    /// state (labels, privileges, name) and slot.
    ///
    /// The context is *cached across batches* and keyed on the subscription
    /// snapshot's identity plus the engine's security epoch: while nothing
    /// security-relevant changes — the overwhelmingly common steady state — a
    /// worker pays the snapshot cost once, not once per batch. Any label or
    /// privilege change, unit registration/removal or (un)subscribe bumps the
    /// epoch and the next batch rebuilds. Within one batch dispatch therefore
    /// still observes a consistent owner-state snapshot, and a unit changing
    /// its own labels during a delivery affects visibility filtering from the
    /// *next batch* on, exactly as before — the epoch makes the window end at
    /// the next batch boundary instead of stretching further.
    fn batch_context(&self) -> Arc<BatchContext> {
        // Epoch first: a mutation racing the snapshot build below makes the
        // stored tag stale (so the next batch rebuilds), never the snapshot
        // itself staler than its tag.
        let epoch = self.core.security_epoch.load(Ordering::Acquire);
        if let Some(cached) = self.context_cache.borrow().as_ref() {
            if cached.epoch == epoch {
                return Arc::clone(&cached.context);
            }
        }
        // Private miss: under scheduler v3 consult the process-shared slot —
        // a sibling worker may already have rebuilt for this epoch — before
        // paying for a rebuild; under v2 every worker rebuilds privately.
        let context = match self.core.shared_context.as_ref() {
            Some(shared) => shared.get_or_build(epoch, || self.build_context()),
            None => self.build_context(),
        };
        *self.context_cache.borrow_mut() = Some(CachedContext {
            epoch,
            context: Arc::clone(&context),
        });
        context
    }

    /// Builds a fresh batch context from the live subscription list and unit
    /// registry (the slow path behind both context caches).
    fn build_context(&self) -> Arc<BatchContext> {
        let subscriptions: Arc<Vec<Subscription>> = Arc::clone(&self.core.subscriptions.read());
        let owners = subscriptions
            .iter()
            .map(|subscription| {
                // Owner removed since the subscription snapshot: skip silently
                // (per-delivery re-checks handle mid-batch removal).
                let slot = self.core.slot(subscription.owner).ok()?;
                let cell = slot.cell.lock();
                let snapshot = OwnerSnapshot {
                    input: cell.state.input_label.clone(),
                    managed: subscription.is_managed().then(|| ManagedOwnerState {
                        output: cell.state.output_label.clone(),
                        privileges: cell.state.privileges.clone(),
                        name: cell.state.name.clone(),
                    }),
                };
                drop(cell);
                Some((slot, snapshot))
            })
            .collect();
        let index = self.core.config.subscription_index.then(|| {
            self.core
                .index_stats
                .rebuilds
                .fetch_add(1, Ordering::Relaxed);
            SubscriptionIndex::build(
                subscriptions
                    .iter()
                    .map(|subscription| &subscription.filter),
            )
        });
        Arc::new(BatchContext {
            subscriptions,
            owners,
            index,
            flow_memo: Mutex::new(HashMap::new()),
        })
    }

    /// Dispatches a single event to every matching subscription (sharing the
    /// epoch-cached context; the batched paths use the same one per batch).
    fn dispatch(&self, event: Event) -> EngineResult<()> {
        self.dispatch_in(&self.batch_context(), event)
    }

    /// Evaluates one subscription's filter against `event` as visible to its
    /// owner (label checks per part, isolation interception charged per part
    /// examined).
    fn subscription_matches(
        &self,
        batch: &BatchContext,
        subscription: &Subscription,
        owner_input: &Label,
        managed: bool,
        event: &Event,
    ) -> bool {
        let mode = self.core.config.mode;
        if mode.checks_labels() {
            let isolation = &self.core.isolation;
            let isolates = mode.isolates();
            let stats = &self.core.stats;
            subscription.filter.matches(event, |part: &Part| {
                // The isolation interception is charged per part *examined*
                // (it models crossing the isolate boundary to read part
                // metadata), so it is never skipped on memo hits.
                if isolates {
                    isolation.intercept();
                }
                let visible = batch.flow_allowed(part.label(), owner_input, managed);
                if !visible {
                    stats.label_rejections.fetch_add(1, Ordering::Relaxed);
                }
                visible
            })
        } else {
            subscription.filter.matches_any_visibility(event)
        }
    }

    /// Resolves the slot a matched subscription delivers into: the owner
    /// itself, or a managed handler instance at the contamination `event`
    /// requires (with label checks disabled the single instance at the owner's
    /// own label is reused). `None` when resolution fails (owner raced
    /// removal, factory error) — the delivery is skipped, as before.
    fn resolve_target(
        &self,
        subscription: &Subscription,
        owner_slot: &Arc<UnitSlot>,
        owner: &OwnerSnapshot,
        event: &Event,
        managed: bool,
    ) -> Option<Arc<UnitSlot>> {
        if !managed {
            return Some(Arc::clone(owner_slot));
        }
        let managed_owner = owner.managed.as_ref()?;
        let required = if self.core.config.mode.checks_labels() {
            owner.input.join(&event.overall_label())
        } else {
            owner.input.clone()
        };
        // A resolved instance can be evicted (retired) by another worker
        // before we deliver; re-resolving then creates a fresh handler.
        // Bounded so that pathological cap pressure cannot livelock us —
        // delivery skips retired slots, so the last attempt is safe.
        let mut resolved = None;
        for _ in 0..4 {
            match self.managed_instance(
                subscription,
                &managed_owner.output,
                &managed_owner.privileges,
                &managed_owner.name,
                required.clone(),
            ) {
                Ok(slot) => {
                    let retired = slot.cell.lock().retired;
                    resolved = Some(slot);
                    if !retired {
                        break;
                    }
                }
                Err(_) => break,
            }
        }
        resolved
    }

    /// Dispatches a single event using a prepared batch context — the classic
    /// per-event path: deliveries happen in strict subscription order and each
    /// pays its own cell-lock round-trip.
    ///
    /// With the subscription index on, the walk covers only the index's
    /// candidate set instead of every subscription; turn order among
    /// candidates is still ascending subscription order, and a delivery's
    /// main-path part additions extend the remaining worklist with whatever
    /// later-positioned subscriptions the new parts index to — so the
    /// delivery set is exactly the linear scan's.
    fn dispatch_in(&self, batch: &BatchContext, event: Event) -> EngineResult<()> {
        self.core.stats.dispatched.fetch_add(1, Ordering::Relaxed);
        self.core.cache_event(&event);

        // The event as augmented so far along the main dataflow path.
        let mut current = event;

        let Some(index) = batch.index.as_ref() else {
            for (subscription, owner) in batch.subscriptions.iter().zip(&batch.owners) {
                let Some((owner_slot, owner)) = owner else {
                    continue;
                };
                let managed = subscription.is_managed();
                if !self.subscription_matches(batch, subscription, &owner.input, managed, &current)
                {
                    continue;
                }
                let Some(target_slot) =
                    self.resolve_target(subscription, owner_slot, owner, &current, managed)
                else {
                    continue;
                };
                let additions = self.deliver(&target_slot, &current, subscription);
                for part in additions {
                    current = current.with_part(part);
                }
            }
            return Ok(());
        };

        // The worklist buffers are taken out of the scratch (not borrowed
        // across delivery calls) so unit callbacks can never observe a held
        // RefCell borrow.
        let (mut worklist, mut extra) = {
            let mut scratch = self.scratch.borrow_mut();
            (
                std::mem::take(&mut scratch.worklist),
                std::mem::take(&mut scratch.extra),
            )
        };
        index.candidates_into(&current, &mut worklist);
        let mut candidate_total = worklist.len() as u64;
        let mut exact_rejects = 0u64;
        let mut position = 0;
        while position < worklist.len() {
            let sub_index = worklist[position] as usize;
            position += 1;
            let subscription = &batch.subscriptions[sub_index];
            let Some((owner_slot, owner)) = &batch.owners[sub_index] else {
                continue;
            };
            let managed = subscription.is_managed();
            if !self.subscription_matches(batch, subscription, &owner.input, managed, &current) {
                exact_rejects += 1;
                continue;
            }
            let Some(target_slot) =
                self.resolve_target(subscription, owner_slot, owner, &current, managed)
            else {
                continue;
            };
            let additions = self.deliver(&target_slot, &current, subscription);
            for part in additions {
                // An augmentation-released part can satisfy clauses of
                // subscriptions the original event never indexed to. Their
                // turn, like the linear scan's, is still ahead only for
                // subscriptions positioned after the releasing delivery —
                // earlier ones already had theirs.
                extra.clear();
                index.candidates_for_part(part.name(), part.data(), &mut extra);
                current = current.with_part(part);
                for &candidate in extra.iter() {
                    if candidate as usize <= sub_index {
                        continue;
                    }
                    if let Err(insert_at) = worklist[position..].binary_search(&candidate) {
                        worklist.insert(position + insert_at, candidate);
                        candidate_total += 1;
                    }
                }
            }
        }
        if candidate_total > 0 {
            self.core
                .index_stats
                .candidates
                .fetch_add(candidate_total, Ordering::Relaxed);
        }
        if exact_rejects > 0 {
            self.core
                .index_stats
                .exact_rejects
                .fetch_add(exact_rejects, Ordering::Relaxed);
        }
        let mut scratch = self.scratch.borrow_mut();
        scratch.worklist = worklist;
        scratch.extra = extra;
        Ok(())
    }

    /// Matches one wave of `(event, subscription)` pairs for the grouped
    /// planner: every event index in `events`, in batch order, against the
    /// index's candidate set (or every subscription with the index off),
    /// skipping pairs already planned by an earlier wave. Appends matched
    /// pairs — event-major, ascending subscription order — to `pairs` and
    /// accumulates index telemetry into `(candidate_total, exact_rejects)`.
    #[allow(clippy::too_many_arguments)]
    fn match_wave(
        &self,
        batch: &BatchContext,
        current: &[Event],
        events: impl Iterator<Item = usize>,
        considered: Option<&HashSet<(u32, u32)>>,
        pairs: &mut Vec<(u32, u32)>,
        candidates: &mut Vec<u32>,
        candidate_total: &mut u64,
        exact_rejects: &mut u64,
    ) {
        let already = |event_index: u32, sub_index: u32| {
            considered.is_some_and(|seen| seen.contains(&(event_index, sub_index)))
        };
        for event_index in events {
            let event = &current[event_index];
            match batch.index.as_ref() {
                Some(index) => {
                    index.candidates_into(event, candidates);
                    *candidate_total += candidates.len() as u64;
                    for &sub_index in candidates.iter() {
                        if already(event_index as u32, sub_index) {
                            continue;
                        }
                        let Some((_, owner)) = &batch.owners[sub_index as usize] else {
                            continue;
                        };
                        let subscription = &batch.subscriptions[sub_index as usize];
                        let managed = subscription.is_managed();
                        if self.subscription_matches(
                            batch,
                            subscription,
                            &owner.input,
                            managed,
                            event,
                        ) {
                            pairs.push((event_index as u32, sub_index));
                        } else {
                            *exact_rejects += 1;
                        }
                    }
                }
                None => {
                    for (sub_index, (subscription, owner)) in
                        batch.subscriptions.iter().zip(&batch.owners).enumerate()
                    {
                        if already(event_index as u32, sub_index as u32) {
                            continue;
                        }
                        let Some((_, owner)) = owner else {
                            continue;
                        };
                        let managed = subscription.is_managed();
                        if self.subscription_matches(
                            batch,
                            subscription,
                            &owner.input,
                            managed,
                            event,
                        ) {
                            pairs.push((event_index as u32, sub_index as u32));
                        }
                    }
                }
            }
        }
    }

    /// Dispatches a popped batch with its deliveries regrouped by target unit:
    /// the grouped-delivery hot path.
    ///
    /// Three phases, the last two looping per wave. The *match* produces the
    /// batch's `(event, subscription)` pairs in batch order — via the
    /// subscription index's candidate sets, or the linear scan with the index
    /// off; either matcher yields the same pairs. The *plan* buckets the
    /// wave's pairs by resolved target slot, preserving order inside each
    /// bucket — which is exactly batch order from any single unit's point of
    /// view. The *execution* takes each unit's cell lock once and runs that
    /// unit's whole slice under it, folding main-path part additions back into
    /// the batch's events so later groups still receive augmented payloads.
    /// Cascade publications from one group enter the queue as a single
    /// transaction.
    ///
    /// Events a wave augmented are *re-matched*: subscriptions whose filters
    /// name augmentation-released parts are planned into an overflow wave (the
    /// pairs already planned are never replayed), repeating until no delivery
    /// augments anything. The delivery set therefore equals the ungrouped
    /// path's even for augmentation-named filters — such workloads no longer
    /// need `grouped_delivery(false)`. One bounded caveat remains: an
    /// overflow wave runs after the planned groups, so a unit that catches an
    /// *earlier* batch event only via augmentation may see it after a later
    /// planned one — reordering confined to one batch, like every other
    /// grouped-delivery interleaving note.
    fn dispatch_batch_grouped(
        &self,
        batch: &BatchContext,
        current: &mut [Event],
    ) -> EngineResult<()> {
        self.core
            .stats
            .dispatched
            .fetch_add(current.len() as u64, Ordering::Relaxed);
        if self.core.config.event_cache_capacity > 0 {
            for event in current.iter() {
                self.core.cache_event(event);
            }
        }
        let mut scratch = self.scratch.borrow_mut();
        let GroupScratch {
            targets,
            planned,
            offsets,
            ordered,
            pairs,
            overflow,
            candidates,
            augmented,
            ..
        } = &mut *scratch;

        // Match the first wave: every event against the whole subscription
        // population (indexed or linear).
        let mut candidate_total = 0u64;
        let mut exact_rejects = 0u64;
        pairs.clear();
        self.match_wave(
            batch,
            current,
            0..current.len(),
            None,
            pairs,
            candidates,
            &mut candidate_total,
            &mut exact_rejects,
        );

        // Pairs matched by any wave so far; only materialised when a delivery
        // actually augments an event (the overwhelmingly common batch never
        // allocates it).
        let mut considered: Option<HashSet<(u32, u32)>> = None;
        let mut delivered_count = 0u64;
        let mut unit_errors = 0u64;
        while !pairs.is_empty() {
            augmented.clear();
            augmented.resize(current.len(), false);
            targets.clear();
            planned.clear();

            // Plan: bucket the wave's pairs by target, first-touch order.
            // Direct subscriptions key by owner unit (no per-delivery slot
            // resolution or Arc traffic); managed ones resolve per delivery,
            // since each event's contamination can demand a different handler
            // instance.
            for &(event_index, sub_index) in pairs.iter() {
                let subscription = &batch.subscriptions[sub_index as usize];
                let Some((owner_slot, owner)) = &batch.owners[sub_index as usize] else {
                    continue;
                };
                let managed = subscription.is_managed();
                let group = if managed {
                    let Some(slot) = self.resolve_target(
                        subscription,
                        owner_slot,
                        owner,
                        &current[event_index as usize],
                        managed,
                    ) else {
                        continue;
                    };
                    let key = TargetKey::Managed(Arc::as_ptr(&slot) as usize);
                    match targets.iter().position(|(existing, _)| *existing == key) {
                        Some(group) => group,
                        None => {
                            targets.push((key, slot));
                            targets.len() - 1
                        }
                    }
                } else {
                    let key = TargetKey::Direct(subscription.owner);
                    match targets.iter().position(|(existing, _)| *existing == key) {
                        Some(group) => group,
                        None => {
                            targets.push((key, Arc::clone(owner_slot)));
                            targets.len() - 1
                        }
                    }
                };
                planned.push((group as u32, event_index, sub_index));
            }

            // Stable counting sort of the plan into group-major order: each
            // group's slice keeps batch order, the per-unit order the engine
            // promises.
            offsets.clear();
            offsets.resize(targets.len() + 1, 0);
            for &(group, _, _) in planned.iter() {
                offsets[group as usize + 1] += 1;
            }
            for group in 1..offsets.len() {
                offsets[group] += offsets[group - 1];
            }
            ordered.clear();
            ordered.resize(planned.len(), (0, 0));
            for &(group, event_index, sub_index) in planned.iter() {
                let cursor = &mut offsets[group as usize];
                ordered[*cursor] = (event_index, sub_index);
                *cursor += 1;
            }

            // Execute: one cell-lock acquisition and one delivery-stats update
            // per group; one cascade enqueue transaction per group.
            for (group, (key, slot)) in targets.iter().enumerate() {
                let start = if group == 0 { 0 } else { offsets[group - 1] };
                let end = offsets[group];
                let mut outputs = Vec::new();
                let mut faulted_unit = None;
                // Chase the live slot for this group: a swap racing the plan
                // retires the planned slot only after installing its
                // replacement, so the whole slice forwards — in order, exactly
                // once.
                let mut live = Arc::clone(slot);
                loop {
                    let mut cell = live.cell.lock();
                    if cell.retired {
                        drop(cell);
                        let owner = match key {
                            // Direct groups are keyed by the stable owner id.
                            TargetKey::Direct(unit) => *unit,
                            // Evicted managed handler: its isolate is gone —
                            // skip the slice, exactly like the per-delivery
                            // path does.
                            TargetKey::Managed(_) => break,
                        };
                        match self.forwarded_slot(&live, owner, false) {
                            Some(fresh) => {
                                live = fresh;
                                continue;
                            }
                            None => break,
                        }
                    }
                    if cell.quarantined {
                        // Shed the whole slice loudly, one count per delivery.
                        self.core
                            .faults
                            .quarantine_shed
                            .fetch_add((end - start) as u64, Ordering::Relaxed);
                        break;
                    }
                    let mut faulted = false;
                    for &(event_index, sub_index) in &ordered[start..end] {
                        let event_index = event_index as usize;
                        let subscription = &batch.subscriptions[sub_index as usize];
                        delivered_count += 1;
                        let additions = self.deliver_into_cell(
                            &live,
                            &mut cell,
                            &current[event_index],
                            subscription,
                            &mut outputs,
                            &mut unit_errors,
                            &mut faulted,
                        );
                        // Main-path augmentation: parts released by this
                        // delivery reach every delivery executed after it —
                        // later events in this group immediately, other units'
                        // groups when theirs run, and subscriptions whose
                        // filters only now match via the overflow re-match.
                        if !additions.is_empty() {
                            augmented[event_index] = true;
                            for part in additions {
                                current[event_index] = current[event_index].with_part(part);
                            }
                        }
                    }
                    if faulted {
                        faulted_unit = Some(cell.state.id);
                    }
                    break;
                }
                // One group's cascade publications enter the queue as a single
                // batch: one shard lock, one accounting update, one wakeup
                // check.
                self.core.enqueue_batch(outputs);
                if let Some(unit) = faulted_unit {
                    // Group lock released: the fault action may swap or
                    // re-lock.
                    self.core.handle_unit_fault(unit);
                }
            }

            if !augmented.iter().any(|&flag| flag) {
                break;
            }
            // Overflow: re-match the augmented events only, excluding every
            // pair a wave already planned (delivered, shed or skipped — none
            // replays, mirroring the per-event path's single turn per
            // subscription).
            let seen = considered.get_or_insert_with(HashSet::new);
            seen.extend(pairs.iter().copied());
            overflow.clear();
            let wave_events: Vec<usize> = augmented
                .iter()
                .enumerate()
                .filter_map(|(event_index, &flag)| flag.then_some(event_index))
                .collect();
            self.match_wave(
                batch,
                current,
                wave_events.into_iter(),
                Some(seen),
                overflow,
                candidates,
                &mut candidate_total,
                &mut exact_rejects,
            );
            std::mem::swap(pairs, overflow);
        }
        if delivered_count > 0 {
            self.core
                .stats
                .deliveries
                .fetch_add(delivered_count, Ordering::Relaxed);
        }
        if unit_errors > 0 {
            self.core
                .stats
                .unit_errors
                .fetch_add(unit_errors, Ordering::Relaxed);
        }
        if candidate_total > 0 {
            self.core
                .index_stats
                .candidates
                .fetch_add(candidate_total, Ordering::Relaxed);
        }
        if exact_rejects > 0 {
            self.core
                .index_stats
                .exact_rejects
                .fetch_add(exact_rejects, Ordering::Relaxed);
        }
        Ok(())
    }

    /// Runs one delivery into an **already locked** unit cell — the single
    /// implementation of the engine's delivery semantics, shared by the
    /// per-event path ([`Dispatcher::deliver`], which locks per delivery) and
    /// the grouped path (which holds one lock across a unit's whole slice):
    /// bumps the unit's delivered count, queues into the mailbox in pull mode
    /// (cloning per the security mode), or invokes `on_event` with per-delivery
    /// error/panic isolation. Returns the parts the unit added to the event;
    /// callback failures are tallied into `unit_errors` (callers fold them
    /// into the engine stats at their own granularity).
    #[allow(clippy::too_many_arguments)]
    fn deliver_into_cell(
        &self,
        slot: &Arc<UnitSlot>,
        cell: &mut UnitCell,
        event: &Event,
        subscription: &Subscription,
        outputs: &mut Vec<Event>,
        unit_errors: &mut u64,
        faulted: &mut bool,
    ) -> Vec<Part> {
        let mode = self.core.config.mode;
        cell.state.delivered += 1;
        // Fault-window bookkeeping happens under the cell lock the delivery
        // already holds, so it is exact even under concurrent workers. The
        // window is counted in deliveries (not time), which is what makes
        // fault handling deterministic under test and replay.
        let fault_policy = self.core.config.fault;
        if let Some(policy) = &fault_policy {
            if policy.window > 0 && cell.window_deliveries >= policy.window {
                cell.window_deliveries = 0;
                cell.window_panics = 0;
            }
            cell.window_deliveries += 1;
        }

        if cell.pull_mode {
            let delivered = if mode.clones_events() {
                event.deep_clone()
            } else {
                event.clone()
            };
            cell.mailbox.push_back((delivered, subscription.id));
            slot.mailbox_signal.notify_one();
            return Vec::new();
        }

        let UnitCell {
            ref mut state,
            ref mut instance,
            ..
        } = *cell;
        let deep_copy;
        // `labels+clone` pays a deep copy per delivery; the other modes share
        // the frozen event by reference.
        let delivered: &Event = if mode.clones_events() {
            deep_copy = event.deep_clone();
            &deep_copy
        } else {
            event
        };
        let mut ctx = UnitContext::new(&self.core, state, Some(delivered), outputs, true);
        // Errors *and* panics in unit code are isolated per delivery, so a
        // misbehaving unit cannot rob later subscribers of the same event
        // (nor, with workers, take a dispatcher thread down).
        let outcome = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            instance.on_event(&mut ctx, delivered)
        }));
        if !matches!(outcome, Ok(Ok(()))) {
            *unit_errors += 1;
        }
        if outcome.is_err() {
            // A panic (not a mere `Err` return) counts against the fault
            // budget. The caller trips the policy *after* releasing the cell
            // lock: the auto-swap path re-acquires it.
            self.core.faults.unit_panics.fetch_add(1, Ordering::Relaxed);
            if let Some(policy) = &fault_policy {
                cell.window_panics += 1;
                if cell.window_panics >= policy.max_panics {
                    cell.window_panics = 0;
                    cell.window_deliveries = 0;
                    *faulted = true;
                }
            }
        }
        ctx.finish()
    }

    /// Resolves where a delivery that found its planned slot retired should
    /// go instead. A *swap* installs the replacement slot in the registry
    /// before retiring the old cell, so a direct subscription forwards to the
    /// live slot under the owner's stable unit id — that forwarding is what
    /// keeps exactly-once across a swap racing a dispatch that cached the old
    /// slot Arc (epoch-keyed batch contexts hold slots across batches).
    /// Returns `None` when the delivery should be skipped: managed handlers
    /// (eviction legitimately destroys them; the next event re-resolves a
    /// fresh instance) and truly removed units.
    fn forwarded_slot(
        &self,
        stale: &Arc<UnitSlot>,
        owner: crate::unit::UnitId,
        managed: bool,
    ) -> Option<Arc<UnitSlot>> {
        if managed {
            return None;
        }
        let fresh = self.core.slot(owner).ok()?;
        // Defensive: a registry still mapping to the retired slot means the
        // unit is being removed, not swapped — skip rather than spin.
        (!Arc::ptr_eq(&fresh, stale)).then_some(fresh)
    }

    /// Delivers an event to one unit slot, returning the parts the unit added to the
    /// event (released for subsequent deliveries).
    fn deliver(
        &self,
        slot: &Arc<UnitSlot>,
        event: &Event,
        subscription: &Subscription,
    ) -> Vec<Part> {
        let mut slot = Arc::clone(slot);
        loop {
            let mut cell = slot.cell.lock();
            if cell.retired {
                drop(cell);
                match self.forwarded_slot(&slot, subscription.owner, subscription.is_managed()) {
                    Some(fresh) => {
                        slot = fresh;
                        continue;
                    }
                    None => return Vec::new(),
                }
            }
            if cell.quarantined {
                // Shed loudly: the unit exists but the fault policy took it
                // out of service.
                self.core
                    .faults
                    .quarantine_shed
                    .fetch_add(1, Ordering::Relaxed);
                return Vec::new();
            }
            self.core.stats.deliveries.fetch_add(1, Ordering::Relaxed);
            let mut outputs = Vec::new();
            let mut unit_errors = 0u64;
            let mut faulted = false;
            let unit = cell.state.id;
            let additions = self.deliver_into_cell(
                &slot,
                &mut cell,
                event,
                subscription,
                &mut outputs,
                &mut unit_errors,
                &mut faulted,
            );
            drop(cell);
            if unit_errors > 0 {
                self.core
                    .stats
                    .unit_errors
                    .fetch_add(unit_errors, Ordering::Relaxed);
            }
            // One delivery's cascade publications enter the queue as a single
            // batch: one shard lock, one accounting update, one wakeup check.
            self.core.enqueue_batch(outputs);
            if faulted {
                // Cell lock released above: the fault action may swap (cell →
                // units.write) or quarantine (re-lock the cell).
                self.core.handle_unit_fault(unit);
            }
            return additions;
        }
    }

    /// Returns (creating on demand) the managed handler instance for a subscription
    /// at the given contamination level.
    fn managed_instance(
        &self,
        subscription: &Subscription,
        owner_output: &Label,
        owner_privileges: &defcon_defc::PrivilegeSet,
        owner_name: &str,
        required: Label,
    ) -> EngineResult<Arc<UnitSlot>> {
        let key = (subscription.id, required.clone());
        // Hold the registry lock across lookup *and* creation so that two workers
        // racing on the same contamination cannot each instantiate (and leak) a
        // handler for the same key.
        //
        // Lock order: managed_instances -> units -> (units released) -> cell.
        // Unit callbacks run with their cell locked and may take units.write()
        // (instantiate_unit), so a cell mutex must never be acquired while a
        // units guard is held — see the eviction path below.
        let mut instances = self.core.managed_instances.lock();
        if let Some(existing) = instances.get(&key) {
            if let Ok(slot) = self.core.slot(*existing) {
                return Ok(slot);
            }
        }

        let SubscriptionKind::Managed(factory) = &subscription.kind else {
            unreachable!("managed_instance called for a direct subscription");
        };
        let instance = factory();
        let id = self.core.next_unit_id();
        let isolate = self.core.isolation.create_isolate();
        let spec = UnitSpec::new(format!("{owner_name}::managed"))
            .with_input_label(required)
            .with_output_label(owner_output.clone())
            .with_privileges(owner_privileges);
        let state = UnitState::new(id, spec, isolate);
        self.core
            .memory
            .charge(MemoryCategory::UnitState, state.estimated_size());
        let slot = Arc::new(UnitSlot {
            cell: Mutex::new(UnitCell::new(state, instance)),
            mailbox_signal: parking_lot::Condvar::new(),
        });
        self.core.units.write().insert(id, Arc::clone(&slot));
        // Bound the number of live managed instances: orders protected by
        // per-order tags create one instance per contamination, so without a cap
        // a long run would accumulate unboundedly many handler objects.
        if instances.len() >= self.core.config.managed_instance_cap {
            let evicted_keys: Vec<_> = instances
                .keys()
                .take(instances.len() / 2 + 1)
                .cloned()
                .collect();
            // Unregister all victims under one short units.write(), collecting
            // their slots; their cell mutexes are only taken after the write
            // guard is gone. Locking a cell while holding units.write() would
            // invert the cell -> units order of in-progress deliveries (whose
            // unit code may call instantiate_unit) and deadlock the workers.
            let mut evicted_slots = Vec::with_capacity(evicted_keys.len());
            {
                let mut units = self.core.units.write();
                for evicted_key in evicted_keys {
                    if let Some(evicted_id) = instances.remove(&evicted_key) {
                        if let Some(evicted_slot) = units.remove(&evicted_id) {
                            evicted_slots.push(evicted_slot);
                        }
                    }
                }
            }
            for evicted_slot in evicted_slots {
                let mut cell = evicted_slot.cell.lock();
                // A dispatch may have resolved this slot just before eviction;
                // retiring it under the cell lock makes such racers skip the
                // delivery (and re-resolve) instead of running unit code against
                // a destroyed isolate.
                cell.retired = true;
                self.core.isolation.destroy_isolate(cell.state.isolate);
                self.core
                    .memory
                    .release(MemoryCategory::UnitState, cell.state.estimated_size());
            }
        }
        instances.insert(key, id);
        self.core
            .stats
            .managed_instances
            .fetch_add(1, Ordering::Relaxed);
        Ok(slot)
    }
}
