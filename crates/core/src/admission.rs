//! Typed admission results and the grouped ingress/elastic configuration.
//!
//! The v2 publish API returned a bare `usize` from
//! [`Publisher::publish_batch`](crate::Publisher::publish_batch), so callers
//! could not distinguish "accepted" from "shed" from "would block". This module
//! is the redesigned surface: every batched publish reports a typed
//! [`Admission`], the non-blocking
//! [`try_publish_batch`](crate::Publisher::try_publish_batch) returns a
//! [`TryPublish`] that hands un-admitted drafts back to the caller, and the
//! knobs governing bounded admission live in one [`IngressConfig`] handed to
//! [`EngineBuilder::ingress`](crate::EngineBuilder::ingress) — mirroring how
//! [`WalConfig`](defcon_durability::WalConfig) groups the durability knobs.
//!
//! The admission layer and the elastic worker band read the *same* depth
//! signal (the run queue's lock-free `len`), so scale-up decisions and
//! admission decisions can never disagree about how backlogged the engine is.

use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use crate::handle::EventDraft;

/// The outcome of a batched publish: how many events were accepted for
/// dispatch, how many were shed by an admission policy, and how many times the
/// publish stalled waiting for credit. Replaces the bare `usize` the v2 API
/// returned.
///
/// Accessors instead of public fields (and no `Deref` to a count): call sites
/// must say *which* number they mean.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
#[must_use = "an Admission reports shed events; ignoring it hides load shedding"]
pub struct Admission {
    accepted: usize,
    shed: usize,
    credit_waits: usize,
}

impl Admission {
    /// Builds an admission result from its three counters.
    pub fn new(accepted: usize, shed: usize, credit_waits: usize) -> Self {
        Admission {
            accepted,
            shed,
            credit_waits,
        }
    }

    /// Events accepted for dispatch — exactly the number that will be
    /// dispatched (a batch racing shutdown may be partially accepted).
    pub fn accepted(&self) -> usize {
        self.accepted
    }

    /// Events dropped by an admission policy (or a shutdown race) instead of
    /// being enqueued. Zero on the unbounded direct publish path unless the
    /// runtime is shutting down.
    pub fn shed(&self) -> usize {
        self.shed
    }

    /// Times the publish stalled waiting for credit or queue space before
    /// completing. Zero on the direct publish path; ingress sessions under the
    /// `Block` policy report their stalls here.
    pub fn credit_waits(&self) -> usize {
        self.credit_waits
    }

    /// Folds another admission result into this one (a session aggregates one
    /// `Admission` per submitted chunk).
    pub fn merge(&mut self, other: Admission) {
        self.accepted += other.accepted;
        self.shed += other.shed;
        self.credit_waits += other.credit_waits;
    }
}

/// Result of a non-blocking [`try_publish_batch`](crate::Publisher::try_publish_batch):
/// either the batch was admitted (with its typed [`Admission`]), or admitting
/// it would overflow the configured queue bound and the drafts are handed back
/// untouched so the caller can retry, shed, or buffer them.
#[derive(Debug)]
#[must_use = "a TryPublish may hand the drafts back; dropping it loses them"]
pub enum TryPublish {
    /// The batch was admitted; the admission reports exact accounting.
    Admitted(Admission),
    /// Admitting the batch would push queued depth past
    /// [`IngressConfig::queue_bound`]; nothing was enqueued.
    WouldBlock {
        /// The unmodified drafts, returned so the caller decides their fate.
        drafts: Vec<EventDraft>,
    },
}

/// What an ingress session (or a direct `try_publish_batch` caller) does when
/// admitting more events would overflow the configured bound.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum FullQueuePolicy {
    /// Apply backpressure: the submitter blocks until credit frees up. No
    /// event is ever dropped; slow consumers slow their producers down.
    #[default]
    Block,
    /// Shed the *incoming* events: the newest arrivals are dropped (and
    /// loudly counted) while everything already buffered keeps its place.
    ShedNewest,
    /// Shed the *oldest* buffered events to make room for the newest —
    /// conflation, the policy a market-data feed wants (a stale tick is
    /// worthless once a fresher one exists).
    ShedOldest,
}

impl FullQueuePolicy {
    /// Stable lowercase name, used in bench records and metric keys.
    pub fn as_str(&self) -> &'static str {
        match self {
            FullQueuePolicy::Block => "block",
            FullQueuePolicy::ShedNewest => "shed-newest",
            FullQueuePolicy::ShedOldest => "shed-oldest",
        }
    }

    /// All three policies, in documentation order.
    pub fn all() -> [FullQueuePolicy; 3] {
        [
            FullQueuePolicy::Block,
            FullQueuePolicy::ShedNewest,
            FullQueuePolicy::ShedOldest,
        ]
    }
}

impl std::fmt::Display for FullQueuePolicy {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.as_str())
    }
}

/// Bounded-admission configuration, grouped like
/// [`WalConfig`](defcon_durability::WalConfig) and handed to
/// [`EngineBuilder::ingress`](crate::EngineBuilder::ingress).
///
/// When set, [`try_publish_batch`](crate::Publisher::try_publish_batch)
/// enforces `queue_bound` on run-queue depth, and an ingress tier built over
/// the engine paces its sessions with `credit_window` credits under the
/// configured [`FullQueuePolicy`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct IngressConfig {
    /// Maximum run-queue depth admitted publishes may build up. A
    /// `try_publish_batch` that would push queued depth past this bound
    /// returns [`TryPublish::WouldBlock`] instead of enqueueing. Unrelated to
    /// cascade publications, which are never blocked (a dispatch in flight
    /// must always be able to publish).
    pub queue_bound: usize,
    /// Per-session credit window: the number of events one ingress session may
    /// have submitted-but-not-yet-drained at a time. Credits replenish as the
    /// session observes its events drain through dispatch.
    pub credit_window: usize,
    /// What happens when a session's window is full (see [`FullQueuePolicy`]).
    pub policy: FullQueuePolicy,
    /// OS threads the ingress executor drives sessions on (at least 1); many
    /// logical sessions multiplex onto each thread.
    pub executor_threads: usize,
}

impl IngressConfig {
    /// An ingress configuration bounding run-queue depth at `queue_bound`,
    /// with the default credit window (64), the `Block` policy and one
    /// executor thread.
    pub fn new(queue_bound: usize) -> Self {
        IngressConfig {
            queue_bound: queue_bound.max(1),
            credit_window: 64,
            policy: FullQueuePolicy::Block,
            executor_threads: 1,
        }
    }

    /// Sets the per-session credit window (clamped to at least 1).
    pub fn credit_window(mut self, credits: usize) -> Self {
        self.credit_window = credits.max(1);
        self
    }

    /// Sets the full-queue policy.
    pub fn policy(mut self, policy: FullQueuePolicy) -> Self {
        self.policy = policy;
        self
    }

    /// Sets the executor thread count (clamped to at least 1).
    pub fn executor_threads(mut self, threads: usize) -> Self {
        self.executor_threads = threads.max(1);
        self
    }
}

impl Default for IngressConfig {
    fn default() -> Self {
        IngressConfig::new(1024)
    }
}

/// Elastic worker-band tuning, grouped out of the loose
/// `elastic_scale_up_depth` / `elastic_idle_grace` knobs the v2 builder
/// carried (see [`EngineBuilder::elastic`](crate::EngineBuilder::elastic)).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ElasticConfig {
    /// Queue depth at or above which an enqueue counts toward recruiting
    /// another worker; `0` resolves to `4 * batch_size`. Two consecutive deep
    /// observations are required (up-side hysteresis).
    pub scale_up_depth: usize,
    /// How long an active worker above `workers_min` waits for work before
    /// parking back down. Arrival gaps shorter than this never thrash the
    /// pool.
    pub idle_grace: Duration,
}

impl ElasticConfig {
    /// The default tuning: depth threshold resolved from the batch size, 2 ms
    /// idle grace.
    pub fn new() -> Self {
        ElasticConfig::default()
    }

    /// Sets the scale-up depth threshold (`0` resolves to `4 * batch_size`).
    pub fn scale_up_depth(mut self, depth: usize) -> Self {
        self.scale_up_depth = depth;
        self
    }

    /// Sets the park-down idle grace.
    pub fn idle_grace(mut self, grace: Duration) -> Self {
        self.idle_grace = grace;
        self
    }
}

impl Default for ElasticConfig {
    fn default() -> Self {
        ElasticConfig {
            scale_up_depth: 0,
            idle_grace: Duration::from_millis(2),
        }
    }
}

/// The engine-side admission ledger: reservation state for the depth bound
/// plus the shed/admit/credit-stall counters `queue_stats()` exports — the
/// ingress tier records into these so operators read one set of numbers.
#[derive(Debug, Default)]
pub struct AdmissionCounters {
    /// Depth reserved by in-progress `try_publish_batch` calls: admission
    /// checks `depth + reserved + k <= bound` so concurrent admitters can
    /// never jointly overshoot the bound.
    pub(crate) reserved: AtomicUsize,
    pub(crate) admitted: AtomicU64,
    pub(crate) shed: AtomicU64,
    pub(crate) credit_stalls: AtomicU64,
}

impl AdmissionCounters {
    /// Events admitted through the admission layer (`try_publish_batch` and
    /// ingress sessions); direct `publish_batch` calls bypass it.
    pub fn admitted(&self) -> u64 {
        self.admitted.load(Ordering::Relaxed)
    }

    /// Events shed by a full-queue policy (loud accounting: every dropped
    /// event lands here).
    pub fn shed(&self) -> u64 {
        self.shed.load(Ordering::Relaxed)
    }

    /// Times a submitter stalled on an exhausted credit window or a full
    /// queue.
    pub fn credit_stalls(&self) -> u64 {
        self.credit_stalls.load(Ordering::Relaxed)
    }

    /// Records events admitted through the admission layer.
    pub fn record_admitted(&self, events: u64) {
        self.admitted.fetch_add(events, Ordering::Relaxed);
    }

    /// Records events shed by a full-queue policy.
    pub fn record_shed(&self, events: u64) {
        self.shed.fetch_add(events, Ordering::Relaxed);
    }

    /// Records submitter stalls on credit or queue space.
    pub fn record_credit_stalls(&self, stalls: u64) {
        self.credit_stalls.fetch_add(stalls, Ordering::Relaxed);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn admission_accessors_and_merge() {
        let mut total = Admission::default();
        assert_eq!(
            (total.accepted(), total.shed(), total.credit_waits()),
            (0, 0, 0)
        );
        total.merge(Admission::new(8, 2, 1));
        total.merge(Admission::new(4, 0, 3));
        assert_eq!(total.accepted(), 12);
        assert_eq!(total.shed(), 2);
        assert_eq!(total.credit_waits(), 4);
    }

    #[test]
    fn policy_names_are_stable_bench_keys() {
        let names: Vec<&str> = FullQueuePolicy::all()
            .iter()
            .map(FullQueuePolicy::as_str)
            .collect();
        assert_eq!(names, vec!["block", "shed-newest", "shed-oldest"]);
    }

    #[test]
    fn ingress_config_clamps_and_chains() {
        let config = IngressConfig::new(0)
            .credit_window(0)
            .policy(FullQueuePolicy::ShedOldest)
            .executor_threads(0);
        assert_eq!(config.queue_bound, 1);
        assert_eq!(config.credit_window, 1);
        assert_eq!(config.policy, FullQueuePolicy::ShedOldest);
        assert_eq!(config.executor_threads, 1);
    }

    #[test]
    fn elastic_config_defaults_match_the_v2_loose_knobs() {
        let config = ElasticConfig::default();
        assert_eq!(config.scale_up_depth, 0);
        assert_eq!(config.idle_grace, Duration::from_millis(2));
        let tuned = ElasticConfig::new()
            .scale_up_depth(8)
            .idle_grace(Duration::from_millis(5));
        assert_eq!(tuned.scale_up_depth, 8);
        assert_eq!(tuned.idle_grace, Duration::from_millis(5));
    }

    #[test]
    fn counters_accumulate() {
        let counters = AdmissionCounters::default();
        counters.record_admitted(10);
        counters.record_shed(3);
        counters.record_credit_stalls(2);
        counters.record_admitted(5);
        assert_eq!(counters.admitted(), 15);
        assert_eq!(counters.shed(), 3);
        assert_eq!(counters.credit_stalls(), 2);
    }
}
