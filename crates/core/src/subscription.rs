//! Subscriptions: how units declare interest in events.
//!
//! Table 1 defines two subscription calls:
//!
//! * `subscribe(filter)` — a plain subscription; matching events are delivered to
//!   the subscribing unit itself, contaminating it if it reads protected parts.
//! * `subscribeManaged(handler, filter)` — a *managed* subscription; the engine
//!   creates (and reuses) separate handler instances whose contamination matches
//!   each incoming event, so that the subscribing unit's own state never becomes
//!   permanently contaminated. These mirror Asbestos' event processes.

use std::fmt;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use defcon_events::Filter;

use crate::unit::{UnitFactory, UnitId};

/// Identifier of a subscription.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct SubscriptionId(u64);

static SUBSCRIPTION_SEQUENCE: AtomicU64 = AtomicU64::new(1);

impl SubscriptionId {
    /// Allocates the next subscription identifier.
    pub fn next() -> Self {
        SubscriptionId(SUBSCRIPTION_SEQUENCE.fetch_add(1, Ordering::Relaxed))
    }

    /// Returns the raw value.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for SubscriptionId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "sub#{}", self.0)
    }
}

/// Whether a subscription delivers to the subscribing unit or to managed instances.
pub enum SubscriptionKind {
    /// Deliver to the subscribing unit itself.
    Direct,
    /// Deliver to engine-managed handler instances created by the factory, keyed by
    /// the contamination required to read the triggering event.
    Managed(Arc<UnitFactory>),
}

impl fmt::Debug for SubscriptionKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            SubscriptionKind::Direct => write!(f, "Direct"),
            SubscriptionKind::Managed(_) => write!(f, "Managed(..)"),
        }
    }
}

impl Clone for SubscriptionKind {
    fn clone(&self) -> Self {
        match self {
            SubscriptionKind::Direct => SubscriptionKind::Direct,
            SubscriptionKind::Managed(factory) => SubscriptionKind::Managed(Arc::clone(factory)),
        }
    }
}

/// A registered subscription.
#[derive(Debug, Clone)]
pub struct Subscription {
    /// Subscription identifier.
    pub id: SubscriptionId,
    /// The unit that issued the subscription.
    pub owner: UnitId,
    /// The filter expression over part names and data.
    pub filter: Filter,
    /// Direct or managed delivery.
    pub kind: SubscriptionKind,
}

impl Subscription {
    /// Creates a direct subscription.
    pub fn direct(owner: UnitId, filter: Filter) -> Self {
        Subscription {
            id: SubscriptionId::next(),
            owner,
            filter,
            kind: SubscriptionKind::Direct,
        }
    }

    /// Creates a managed subscription with the given handler factory.
    pub fn managed(owner: UnitId, filter: Filter, factory: UnitFactory) -> Self {
        Subscription {
            id: SubscriptionId::next(),
            owner,
            filter,
            kind: SubscriptionKind::Managed(Arc::new(factory)),
        }
    }

    /// Returns `true` if this is a managed subscription.
    pub fn is_managed(&self) -> bool {
        matches!(self.kind, SubscriptionKind::Managed(_))
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::unit::NullUnit;

    #[test]
    fn ids_are_unique_and_displayable() {
        let a = SubscriptionId::next();
        let b = SubscriptionId::next();
        assert_ne!(a, b);
        assert!(a.to_string().starts_with("sub#"));
    }

    #[test]
    fn direct_and_managed_kinds() {
        let owner = UnitId::from_raw(1);
        let direct = Subscription::direct(owner, Filter::for_type("tick"));
        assert!(!direct.is_managed());
        assert_eq!(direct.owner, owner);

        let managed = Subscription::managed(
            owner,
            Filter::for_type("trade"),
            Box::new(|| Box::new(NullUnit) as Box<dyn crate::unit::Unit>),
        );
        assert!(managed.is_managed());
        assert_ne!(managed.id, direct.id);
        // Cloning preserves the kind.
        assert!(managed.clone().is_managed());
        assert!(format!("{:?}", managed.kind).contains("Managed"));
    }
}
