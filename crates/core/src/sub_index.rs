//! The inverted subscription index: sublinear candidate selection for dispatch.
//!
//! The naive matcher evaluates every subscription's filter against every event,
//! so planning cost is O(subscriptions × events) — unusable at the paper's
//! "millions of users" fan-out scale. This module inverts the problem the way
//! content-based pub/sub brokers do: each subscription is indexed under **one**
//! clause of its filter, and an event's candidate set is the union of the index
//! lists for its part names (and string part values). The exact filter — and
//! the flow check — then run only on candidates.
//!
//! # The candidate-superset invariant
//!
//! A [`Filter`] is a *conjunction* of clauses, and a clause on part `name` can
//! only be satisfied by a part named `name`. Therefore a filter can only match
//! an event if **every** clause's name occurs among the event's part names — in
//! particular the one clause this index chose for it. Unioning the lists for
//! all of the event's parts thus yields a **superset** of the true matches, for
//! any visibility predicate (visibility only shrinks the match set further).
//! False positives are eliminated by running the exact filter on candidates;
//! false negatives cannot happen.
//!
//! Two refinements sharpen the candidate sets without breaking the invariant:
//!
//! * A clause `name == "literal"` (or `name in [...]`) is keyed by **value** as
//!   well as name: [`Value::structurally_equals`] never equates across
//!   variants, so such a clause can only match a part whose data is exactly
//!   that string — looking up each string-valued part's content finds every
//!   such subscription, and non-string parts can never satisfy the clause.
//! * Among a filter's clauses the index prefers a string-equality clause (the
//!   most selective key available); only filters without one fall back to the
//!   name-only bucket.
//!
//! Keys hash by **string content**, not by interned-pointer identity: the
//! `part_name()` intern table stops deduplicating past its capacity, so pointer
//! identity is not guaranteed for rare names.
//!
//! # Maintenance
//!
//! The index is built inside the dispatcher's epoch-cached
//! `BatchContext` (see `Dispatcher::build_context`), so incremental maintenance
//! rides the existing invalidation protocol for free: every
//! subscribe/unsubscribe, unit registration/removal and swap already bumps the
//! engine's `security_epoch`, which retires the cached context — index
//! included — and the next batch rebuilds both atomically. Under scheduler v3
//! the rebuilt index is published through the process-shared context slot, so
//! one epoch bump costs one rebuild process-wide. [`IndexCounters`] exposes the
//! rebuild count plus per-plan candidate/reject telemetry through
//! `queue_stats()`.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};

use defcon_events::{Event, Filter, Predicate, Value};

/// Telemetry of the subscription index, sampled by `Engine::queue_stats`.
///
/// `candidates` versus the registered subscription count is the sublinearity
/// check: with the index on, accumulated candidate-set sizes stay proportional
/// to *matching* subscriptions, not registered ones.
#[derive(Debug, Default)]
pub(crate) struct IndexCounters {
    /// Candidate subscriptions produced across all indexed plans (accumulated
    /// candidate-set sizes; the linear scan would have counted every
    /// registered subscription once per event instead).
    pub(crate) candidates: AtomicU64,
    /// Candidates whose exact filter (or flow check) rejected the delivery —
    /// the index's false positives, paid at exact-match cost only.
    pub(crate) exact_rejects: AtomicU64,
    /// Times the index was (re)built: once per security epoch that dispatched,
    /// never once per batch.
    pub(crate) rebuilds: AtomicU64,
}

impl IndexCounters {
    pub(crate) fn candidates(&self) -> u64 {
        self.candidates.load(Ordering::Relaxed)
    }

    pub(crate) fn exact_rejects(&self) -> u64 {
        self.exact_rejects.load(Ordering::Relaxed)
    }

    pub(crate) fn rebuilds(&self) -> u64 {
        self.rebuilds.load(Ordering::Relaxed)
    }
}

/// The per-name bucket: subscriptions keyed by an exact string value of an
/// equality clause on this name, plus those keyed by name only.
#[derive(Debug, Default)]
struct NameEntry {
    /// Subscriptions whose chosen clause is `name == value` / `name in
    /// [...values]`, listed under each value they can match.
    by_value: HashMap<String, Vec<u32>>,
    /// Subscriptions whose chosen clause constrains this name with any other
    /// predicate shape (exists, ranges, non-string equality): candidates for
    /// every event carrying the name.
    any_value: Vec<u32>,
}

/// An inverted index from part name (and string part value) to the
/// subscription indices whose filters could match an event carrying that part.
///
/// Built per security epoch from the subscription snapshot; lists hold indices
/// into that snapshot in ascending order, so unioned candidate sets preserve
/// subscription order after a sort + dedup.
#[derive(Debug, Default)]
pub(crate) struct SubscriptionIndex {
    names: HashMap<String, NameEntry>,
}

impl SubscriptionIndex {
    /// Builds the index over a subscription snapshot's filters, in snapshot
    /// order. Empty filters (which never match — the engine rejects them at
    /// subscribe anyway) are left out entirely.
    pub(crate) fn build<'a>(filters: impl Iterator<Item = &'a Filter>) -> Self {
        let mut index = SubscriptionIndex::default();
        for (position, filter) in filters.enumerate() {
            index.insert(position as u32, filter);
        }
        index
    }

    fn insert(&mut self, position: u32, filter: &Filter) {
        let clauses = filter.clauses();
        // Prefer the most selective key available: a string-equality clause
        // confines the subscription to events carrying that exact value.
        let keyed = clauses.iter().find(|(_, predicate)| {
            matches!(predicate, Predicate::Equals(value) if value.as_str().is_some())
                || matches!(predicate, Predicate::OneOf(_))
        });
        match keyed {
            Some((name, Predicate::Equals(value))) => {
                let literal = value.as_str().expect("selected for string equality");
                self.entry(name).push_value(literal, position);
            }
            Some((name, Predicate::OneOf(options))) => {
                // `in []` matches nothing; indexing it nowhere keeps it out of
                // every candidate set, which is exactly its match set.
                let entry = self.entry(name);
                for option in options {
                    entry.push_value(option, position);
                }
            }
            Some(_) => unreachable!("keyed clause is string equality or one-of"),
            None => {
                if let Some((name, _)) = clauses.first() {
                    self.entry(name).any_value.push(position);
                }
            }
        }
    }

    fn entry(&mut self, name: &str) -> &mut NameEntry {
        // Owned-key insertion only on first sight of a name; lookups stay
        // borrowed.
        if !self.names.contains_key(name) {
            self.names.insert(name.to_string(), NameEntry::default());
        }
        self.names.get_mut(name).expect("entry just ensured")
    }

    /// Appends the candidate subscriptions for one part (by name, and by value
    /// for string-valued data) to `out`. Duplicates across parts are expected;
    /// callers dedupe once per event.
    pub(crate) fn candidates_for_part(&self, name: &str, data: &Value, out: &mut Vec<u32>) {
        let Some(entry) = self.names.get(name) else {
            return;
        };
        out.extend_from_slice(&entry.any_value);
        if let Some(literal) = data.as_str() {
            if let Some(list) = entry.by_value.get(literal) {
                out.extend_from_slice(list);
            }
        }
    }

    /// Replaces `out` with the deduplicated, ascending candidate set for
    /// `event`: the union over all of its parts. A superset of the
    /// subscriptions whose filters match the event under any visibility.
    pub(crate) fn candidates_into(&self, event: &Event, out: &mut Vec<u32>) {
        out.clear();
        for part in event.parts() {
            self.candidates_for_part(part.name(), part.data(), out);
        }
        out.sort_unstable();
        out.dedup();
    }
}

impl NameEntry {
    fn push_value(&mut self, literal: &str, position: u32) {
        let list = self.by_value.entry(literal.to_string()).or_default();
        // One-of clauses listing an option twice must not list the
        // subscription twice.
        if list.last() != Some(&position) {
            list.push(position);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_defc::Label;
    use defcon_events::EventBuilder;

    fn event(parts: &[(&str, Value)]) -> Event {
        let mut builder = EventBuilder::new();
        for (name, data) in parts {
            builder = builder.part(*name, Label::public(), data.clone());
        }
        builder.build().unwrap()
    }

    fn candidates(index: &SubscriptionIndex, event: &Event) -> Vec<u32> {
        let mut out = Vec::new();
        index.candidates_into(event, &mut out);
        out
    }

    #[test]
    fn string_equality_filters_key_by_value() {
        let filters = [
            Filter::for_type("tick"),
            Filter::for_type("order"),
            Filter::for_type("tick").where_exists("price"),
        ];
        let index = SubscriptionIndex::build(filters.iter());
        let tick = event(&[("type", Value::str("tick")), ("price", Value::Float(1.0))]);
        assert_eq!(candidates(&index, &tick), vec![0, 2]);
        let order = event(&[("type", Value::str("order"))]);
        assert_eq!(candidates(&index, &order), vec![1]);
    }

    #[test]
    fn non_equality_filters_fall_back_to_the_name_bucket() {
        let filters = [
            Filter::new().where_part("price", Predicate::GreaterThan(10.0)),
            Filter::new().where_exists("volume"),
        ];
        let index = SubscriptionIndex::build(filters.iter());
        let with_price = event(&[("price", Value::Float(5.0))]);
        // Candidate even though the exact filter will reject it: the index
        // promises a superset, never exactness.
        assert_eq!(candidates(&index, &with_price), vec![0]);
        let with_both = event(&[("price", Value::Int(1)), ("volume", Value::Int(2))]);
        assert_eq!(candidates(&index, &with_both), vec![0, 1]);
    }

    #[test]
    fn one_of_filters_are_listed_under_each_option() {
        let filters = [Filter::new().where_part(
            "symbol",
            Predicate::OneOf(vec!["MSFT".into(), "GOOG".into(), "MSFT".into()]),
        )];
        let index = SubscriptionIndex::build(filters.iter());
        let msft = event(&[("symbol", Value::str("MSFT"))]);
        assert_eq!(candidates(&index, &msft), vec![0], "deduplicated");
        let goog = event(&[("symbol", Value::str("GOOG"))]);
        assert_eq!(candidates(&index, &goog), vec![0]);
        let aapl = event(&[("symbol", Value::str("AAPL"))]);
        assert!(candidates(&index, &aapl).is_empty());
    }

    #[test]
    fn empty_filters_and_empty_one_of_are_never_candidates() {
        let filters = [
            Filter::new(),
            Filter::new().where_part("symbol", Predicate::OneOf(Vec::new())),
        ];
        let index = SubscriptionIndex::build(filters.iter());
        let anything = event(&[("symbol", Value::str("MSFT")), ("type", Value::str("x"))]);
        assert!(candidates(&index, &anything).is_empty());
    }

    #[test]
    fn candidate_sets_are_supersets_of_matches() {
        // Every filter that matches the event must be a candidate, whatever
        // clause the index chose for it.
        let filters = [
            Filter::for_type("tick").where_eq("symbol", "MSFT"),
            Filter::new()
                .where_part("price", Predicate::LessThan(100.0))
                .where_eq("symbol", "MSFT"),
            Filter::new().where_exists("price"),
            Filter::new().where_eq("symbol", 42i64), // non-string equality
            Filter::for_type("order"),               // does not match
        ];
        let index = SubscriptionIndex::build(filters.iter());
        let tick = event(&[
            ("type", Value::str("tick")),
            ("symbol", Value::str("MSFT")),
            ("price", Value::Float(9.5)),
        ]);
        let candidate_set = candidates(&index, &tick);
        for (position, filter) in filters.iter().enumerate() {
            if filter.matches_any_visibility(&tick) {
                assert!(
                    candidate_set.contains(&(position as u32)),
                    "matching filter {position} must be a candidate"
                );
            }
        }
        assert!(
            !candidate_set.contains(&4),
            "value-keyed miss prunes the non-matching type"
        );
    }

    #[test]
    fn duplicate_part_names_dedupe_candidates() {
        let filters = [Filter::new().where_exists("body")];
        let index = SubscriptionIndex::build(filters.iter());
        let two_bodies = event(&[("body", Value::Int(1)), ("body", Value::Int(2))]);
        assert_eq!(candidates(&index, &two_bodies), vec![0]);
    }
}
