//! Processing units and their per-unit security state.
//!
//! A unit is the paper's "processing unit": application code implementing business
//! logic, reacting to dispatched events and emitting new ones. The engine maintains
//! for each unit (§3.1.3, §3.1.4):
//!
//! * a contamination / input label `(S_in, I_in)`,
//! * an output label `(S_out, I_out)`,
//! * the four privilege sets `O+`, `O-`, `O+auth`, `O-auth`.
//!
//! Unit code never holds these directly; it manipulates them through the Table 1
//! API (`changeInOutLabel`, `changeOutLabel`, privilege-carrying events, ...).

use std::fmt;

use defcon_defc::{Label, Privilege, PrivilegeSet};
use defcon_events::Event;
use defcon_isolation::IsolateId;

use crate::context::UnitContext;
use crate::error::EngineResult;

/// Identifier of a registered processing unit.
///
/// Identifiers are allocated *per engine* (each engine numbers its units
/// 1, 2, 3, ...), so two engines in one process — or tests running in
/// parallel — produce identical, deterministic id sequences instead of
/// interleaving a process-global counter.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct UnitId(u64);

impl UnitId {
    /// Builds a unit identifier from a raw value. Engines allocate ids through
    /// their own sequence; this constructor exists for tests and diagnostics.
    pub fn from_raw(raw: u64) -> Self {
        UnitId(raw)
    }

    /// Returns the raw value.
    pub fn as_u64(&self) -> u64 {
        self.0
    }
}

impl fmt::Display for UnitId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "unit#{}", self.0)
    }
}

/// The behaviour of a processing unit.
///
/// Units are written against this trait and interact with the engine only through
/// the [`UnitContext`] passed to their callbacks, which is what lets the engine
/// treat them as untrusted code confined by their labels.
pub trait Unit: Send {
    /// Called once when the unit is registered; typically issues subscriptions and
    /// creates tags.
    fn init(&mut self, _ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        Ok(())
    }

    /// Called for every event delivered to one of the unit's subscriptions.
    ///
    /// Returning from this method is the implicit `release` of §3.1.6 — any parts
    /// added to `event` through the context become visible to subsequent deliveries.
    fn on_event(&mut self, ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()>;
}

/// A no-op unit, useful as an event source driven from outside via
/// [`Engine::with_unit`](crate::Engine::with_unit) or as a pure sink.
#[derive(Debug, Default)]
pub struct NullUnit;

impl Unit for NullUnit {
    fn on_event(&mut self, _ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
        Ok(())
    }
}

/// Factory used by managed subscriptions (§5, `subscribeManaged`) to create fresh
/// handler instances at the contamination required by each incoming event.
pub type UnitFactory = Box<dyn Fn() -> Box<dyn Unit> + Send + Sync>;

/// Static configuration with which a unit is registered.
#[derive(Default)]
pub struct UnitSpec {
    /// Human-readable name used in diagnostics.
    pub name: String,
    /// Initial input (contamination) label.
    pub input_label: Label,
    /// Initial output label.
    pub output_label: Label,
    /// Initial privileges granted by the registering principal.
    pub privileges: PrivilegeSet,
}

impl UnitSpec {
    /// Creates a spec with public labels and no privileges.
    pub fn new(name: impl Into<String>) -> Self {
        UnitSpec {
            name: name.into(),
            ..UnitSpec::default()
        }
    }

    /// Sets the initial input label.
    pub fn with_input_label(mut self, label: Label) -> Self {
        self.input_label = label;
        self
    }

    /// Sets the initial output label.
    pub fn with_output_label(mut self, label: Label) -> Self {
        self.output_label = label;
        self
    }

    /// Sets both labels to the same value (a unit instantiated "at" a label).
    pub fn at_label(mut self, label: Label) -> Self {
        self.input_label = label.clone();
        self.output_label = label;
        self
    }

    /// Grants an initial privilege.
    pub fn with_privilege(mut self, privilege: Privilege) -> Self {
        self.privileges.grant(privilege);
        self
    }

    /// Grants a whole privilege set.
    pub fn with_privileges(mut self, privileges: &PrivilegeSet) -> Self {
        self.privileges.absorb(privileges);
        self
    }
}

/// The engine-maintained security state of a registered unit.
#[derive(Debug, Clone)]
pub struct UnitState {
    /// Unit identifier.
    pub id: UnitId,
    /// Diagnostic name.
    pub name: String,
    /// Input label (contamination level), `(S_in, I_in)`.
    pub input_label: Label,
    /// Output label, `(S_out, I_out)`.
    pub output_label: Label,
    /// Privileges held by the unit.
    pub privileges: PrivilegeSet,
    /// Isolation domain hosting the unit.
    pub isolate: IsolateId,
    /// Number of events delivered to this unit (diagnostics / Figure 7 accounting).
    pub delivered: u64,
    /// Incarnation of this unit id: 1 at registration, incremented by every
    /// [`Engine::swap_unit`](crate::Engine::swap_unit). The id is stable across
    /// swaps (subscriptions and publishers keep working); the version tells
    /// observers *which* instance is currently serving it.
    pub version: u64,
}

impl UnitState {
    /// Creates the state for a newly registered unit.
    pub fn new(id: UnitId, spec: UnitSpec, isolate: IsolateId) -> Self {
        UnitState {
            id,
            name: spec.name,
            input_label: spec.input_label,
            output_label: spec.output_label,
            privileges: spec.privileges,
            isolate,
            delivered: 0,
            version: 1,
        }
    }

    /// Returns `true` if a part labelled `label` may be seen by this unit: the
    /// part's label must be able to flow to the unit's input label.
    pub fn can_see(&self, label: &Label) -> bool {
        label.can_flow_to(&self.input_label)
    }

    /// Estimated engine-side footprint of this unit's bookkeeping in bytes.
    pub fn estimated_size(&self) -> usize {
        self.name.len()
            + (self.input_label.tag_count() + self.output_label.tag_count()) * 16
            + self.privileges.len() * 16
            + 64
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_defc::{Tag, TagSet};

    #[test]
    fn unit_ids_compare_and_display_by_raw_value() {
        let a = UnitId::from_raw(1);
        let b = UnitId::from_raw(2);
        assert_ne!(a, b);
        assert!(b.as_u64() > a.as_u64());
        assert!(a.to_string().starts_with("unit#"));
    }

    #[test]
    fn engines_allocate_unit_ids_independently() {
        use crate::engine::Engine;

        // Two engines registering units "in parallel" must not interleave ids:
        // each numbers its own units from 1.
        let first = Engine::builder().build();
        let second = Engine::builder().build();
        let a1 = first
            .register_unit(UnitSpec::new("a1"), Box::new(NullUnit))
            .unwrap();
        let b1 = second
            .register_unit(UnitSpec::new("b1"), Box::new(NullUnit))
            .unwrap();
        let a2 = first
            .register_unit(UnitSpec::new("a2"), Box::new(NullUnit))
            .unwrap();
        assert_eq!(a1, b1, "both engines start their sequence at 1");
        assert_eq!(a1.as_u64() + 1, a2.as_u64());
    }

    #[test]
    fn spec_builder_sets_labels_and_privileges() {
        let t = Tag::with_name("t");
        let spec = UnitSpec::new("broker")
            .at_label(Label::confidential(TagSet::singleton(t.clone())))
            .with_privilege(Privilege::remove(t.clone()));
        assert_eq!(spec.name, "broker");
        assert!(spec.input_label.confidentiality().contains(&t));
        assert!(spec.output_label.confidentiality().contains(&t));
        assert!(spec
            .privileges
            .holds(&t, defcon_defc::PrivilegeKind::Remove));
    }

    #[test]
    fn can_see_follows_can_flow_to() {
        let t = Tag::with_name("t");
        let spec =
            UnitSpec::new("u").with_input_label(Label::confidential(TagSet::singleton(t.clone())));
        let state = UnitState::new(UnitId::from_raw(1), spec, IsolateId::engine());

        assert!(state.can_see(&Label::public()));
        assert!(state.can_see(&Label::confidential(TagSet::singleton(t.clone()))));
        let other = Tag::with_name("other");
        assert!(!state.can_see(&Label::confidential(TagSet::singleton(other))));
    }

    #[test]
    fn integrity_gates_visibility() {
        // A unit instantiated with read integrity {s} must only see parts that carry
        // the s integrity tag (the Pair Monitor rule of §6.1, step 2).
        let s = Tag::with_name("i-exchange");
        let spec = UnitSpec::new("monitor")
            .with_input_label(Label::endorsed(TagSet::singleton(s.clone())));
        let state = UnitState::new(UnitId::from_raw(1), spec, IsolateId::engine());

        assert!(state.can_see(&Label::endorsed(TagSet::singleton(s))));
        assert!(!state.can_see(&Label::public()));
    }

    #[test]
    fn estimated_size_is_positive() {
        let state = UnitState::new(UnitId::from_raw(1), UnitSpec::new("x"), IsolateId::engine());
        assert!(state.estimated_size() > 0);
    }
}
