//! The elastic dispatcher worker pool.
//!
//! PR 3 sized the pool once at build time (`workers_auto()`); this module makes
//! the size a *band*: [`Engine::start`](crate::Engine::start) spawns
//! `workers_max` threads, but only `workers_min` of them begin active — the
//! rest park on a pool condvar until observed queue depth says they are needed.
//! The design follows the SEDA stage-controller argument (and the sharded run
//! queue's work stealing makes it safe): the right worker count is a function
//! of *observed* load, not of build-time configuration.
//!
//! Mechanics:
//!
//! * **Scale-up** is driven by producers. Every enqueue samples the queue depth
//!   (an existing atomic, no extra locking); once `scale_up_observations`
//!   consecutive samples sit at or above `scale_up_depth`, the activation
//!   target rises by one and a parked worker is woken. The consecutive-sample
//!   requirement is the up-side hysteresis: a single deep burst does not
//!   immediately recruit the whole band.
//! * **Park-down** is driven by the workers themselves. An active worker above
//!   `workers_min` waits for work with a bounded `idle_grace` instead of the
//!   untimed base-worker wait; when the grace expires with the queue still
//!   empty *and* the worker is the highest-indexed active one, it lowers the
//!   target by one and parks on the pool condvar. Workers therefore activate
//!   and park in LIFO index order, and a bursty open/close arrival whose pauses
//!   are shorter than the grace never thrashes the pool — the workers simply
//!   ride out the gap in their timed wait.
//! * **Shutdown** wakes every parked worker ([`WorkerPool::release_all`]);
//!   gated workers observe the stopping queue, fall into the normal drain loop
//!   and exit with the base workers, so `shutdown()` always joins every thread
//!   it ever spawned, whatever the pool's scale at that moment.
//!
//! A fixed pool (`workers_min == workers_max`, what [`EngineBuilder::workers`]
//! (crate::EngineBuilder::workers) configures) takes none of these paths: the
//! pool reports [`WorkerPool::is_elastic`] `false` and the dispatcher uses the
//! classic untimed worker loop.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::run_queue::RunQueue;

/// Consecutive deep-queue observations required before the pool scales up.
const SCALE_UP_OBSERVATIONS: usize = 2;

/// Activation state of an engine's dispatcher worker band.
pub(crate) struct WorkerPool {
    /// Lower edge of the band: workers `0..min` never park down.
    min: usize,
    /// Upper edge of the band: the number of threads `Engine::start` spawns.
    max: usize,
    /// Workers `0..target` are active; the rest park on `unpark`.
    target: AtomicUsize,
    /// Highest activation target ever reached — the run's observed worker
    /// count, recorded by benches alongside the configured band.
    high_water: AtomicUsize,
    /// Consecutive deep-queue observations (reset by any shallow one).
    pressure: AtomicUsize,
    /// Queue depth at or above which an enqueue counts as a deep observation.
    scale_up_depth: usize,
    /// How long an above-min worker waits for work before parking down.
    idle_grace: Duration,
    /// Guards `unpark` (the counters themselves are atomics).
    lock: Mutex<()>,
    /// Signalled on scale-up and on shutdown.
    unpark: Condvar,
}

impl WorkerPool {
    pub(crate) fn new(min: usize, max: usize, scale_up_depth: usize, idle_grace: Duration) -> Self {
        let min = min.clamp(1, max.max(1));
        WorkerPool {
            min,
            max,
            target: AtomicUsize::new(min),
            high_water: AtomicUsize::new(min),
            pressure: AtomicUsize::new(0),
            scale_up_depth: scale_up_depth.max(1),
            idle_grace,
            lock: Mutex::new(()),
            unpark: Condvar::new(),
        }
    }

    /// `true` when the band has any slack (`min < max`); a fixed pool never
    /// gates, parks or samples.
    pub(crate) fn is_elastic(&self) -> bool {
        self.min < self.max
    }

    pub(crate) fn min(&self) -> usize {
        self.min
    }

    pub(crate) fn max(&self) -> usize {
        self.max
    }

    /// The current activation target (workers `0..target` are active).
    pub(crate) fn active_target(&self) -> usize {
        self.target.load(Ordering::Acquire)
    }

    /// The highest activation target the run has reached.
    pub(crate) fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    pub(crate) fn idle_grace(&self) -> Duration {
        self.idle_grace
    }

    /// Producer-side sampling hook: called with the post-enqueue queue depth.
    /// Counts consecutive deep observations and raises the activation target
    /// (waking a parked worker) once the hysteresis threshold is met.
    pub(crate) fn observe_depth(&self, depth: usize) {
        if !self.is_elastic() || self.target.load(Ordering::Relaxed) >= self.max {
            return;
        }
        if depth < self.scale_up_depth {
            self.pressure.store(0, Ordering::Relaxed);
            return;
        }
        if self.pressure.fetch_add(1, Ordering::Relaxed) + 1 < SCALE_UP_OBSERVATIONS {
            return;
        }
        self.pressure.store(0, Ordering::Relaxed);
        let raised = self
            .target
            .fetch_update(Ordering::AcqRel, Ordering::Acquire, |target| {
                (target < self.max).then_some(target + 1)
            });
        if let Ok(previous) = raised {
            self.high_water.fetch_max(previous + 1, Ordering::Relaxed);
            let _guard = self.lock.lock();
            self.unpark.notify_all();
        }
    }

    /// Parks the calling worker until its index is inside the activation target
    /// or the queue starts stopping (shutdown drains with every worker awake).
    pub(crate) fn wait_active(&self, index: usize, queue: &RunQueue) {
        loop {
            if index < self.target.load(Ordering::Acquire) || queue.is_stopping() {
                return;
            }
            let mut guard = self.lock.lock();
            // Re-check under the lock: a scale-up or stop between the check
            // above and the wait below would otherwise be missed.
            if index < self.target.load(Ordering::Acquire) || queue.is_stopping() {
                return;
            }
            self.unpark.wait(&mut guard);
        }
    }

    /// Lowers the activation target from `index + 1` to `index` — the calling
    /// worker volunteering to park after an idle grace. Only the highest-indexed
    /// active worker can succeed (LIFO park order); a concurrent scale-up makes
    /// the CAS fail harmlessly and the worker stays active.
    pub(crate) fn try_park_down(&self, index: usize) -> bool {
        if index < self.min {
            return false;
        }
        self.target
            .compare_exchange(index + 1, index, Ordering::AcqRel, Ordering::Acquire)
            .is_ok()
    }

    /// Wakes every parked worker (shutdown: they observe the stopping queue,
    /// help drain and exit).
    pub(crate) fn release_all(&self) {
        let _guard = self.lock.lock();
        self.unpark.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_pools_are_not_elastic() {
        let pool = WorkerPool::new(4, 4, 32, Duration::from_millis(2));
        assert!(!pool.is_elastic());
        assert_eq!(pool.active_target(), 4);
        assert_eq!(pool.high_water(), 4);
    }

    #[test]
    fn min_is_clamped_into_the_band() {
        let pool = WorkerPool::new(0, 3, 32, Duration::from_millis(2));
        assert_eq!(pool.min(), 1, "a live band always keeps one worker active");
        let pool = WorkerPool::new(9, 3, 32, Duration::from_millis(2));
        assert_eq!(pool.min(), 3, "min never exceeds max");
    }

    #[test]
    fn scale_up_needs_consecutive_deep_observations() {
        let pool = WorkerPool::new(1, 4, 10, Duration::from_millis(2));
        pool.observe_depth(50);
        assert_eq!(pool.active_target(), 1, "one deep sample is not enough");
        pool.observe_depth(3);
        pool.observe_depth(50);
        assert_eq!(
            pool.active_target(),
            1,
            "a shallow sample resets the pressure"
        );
        pool.observe_depth(50);
        assert_eq!(pool.active_target(), 2, "sustained depth scales up");
        assert_eq!(pool.high_water(), 2);
    }

    #[test]
    fn target_never_exceeds_max_and_park_down_is_lifo() {
        let pool = WorkerPool::new(1, 3, 1, Duration::from_millis(2));
        for _ in 0..32 {
            pool.observe_depth(100);
        }
        assert_eq!(pool.active_target(), 3);
        assert_eq!(pool.high_water(), 3);
        assert!(
            !pool.try_park_down(1),
            "only the highest active worker parks"
        );
        assert!(pool.try_park_down(2));
        assert!(pool.try_park_down(1));
        assert!(!pool.try_park_down(0), "workers below min never park down");
        assert_eq!(pool.active_target(), 1);
        assert_eq!(pool.high_water(), 3, "the high-water mark is sticky");
    }
}
