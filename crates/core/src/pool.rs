//! The elastic dispatcher worker pool.
//!
//! PR 3 sized the pool once at build time (`workers_auto()`); this module makes
//! the size a *band*: [`Engine::start`](crate::Engine::start) spawns
//! `workers_max` threads, but only `workers_min` of them begin active — the
//! rest park on a pool condvar until observed queue depth says they are needed.
//! The design follows the SEDA stage-controller argument (and the sharded run
//! queue's work stealing makes it safe): the right worker count is a function
//! of *observed* load, not of build-time configuration.
//!
//! Mechanics:
//!
//! * **Scale-up** is driven by producers. Every enqueue samples the queue depth
//!   (an existing atomic, no extra locking); once `scale_up_observations`
//!   consecutive samples sit at or above `scale_up_depth`, the activation
//!   target rises by one and a parked worker is woken. The consecutive-sample
//!   requirement is the up-side hysteresis: a single deep burst does not
//!   immediately recruit the whole band.
//! * **Park-down** is driven by the workers themselves. An active worker above
//!   `workers_min` waits for work with a bounded `idle_grace` instead of the
//!   untimed base-worker wait; when the grace expires with the queue still
//!   empty *and* the worker is the highest-indexed active one, it lowers the
//!   target by one and parks on the pool condvar. Workers therefore activate
//!   and park in LIFO index order, and a bursty open/close arrival whose pauses
//!   are shorter than the grace never thrashes the pool — the workers simply
//!   ride out the gap in their timed wait.
//! * **Shutdown** wakes every parked worker ([`WorkerPool::release_all`]);
//!   gated workers observe the stopping queue, fall into the normal drain loop
//!   and exit with the base workers, so `shutdown()` always joins every thread
//!   it ever spawned, whatever the pool's scale at that moment.
//!
//! A fixed pool (`workers_min == workers_max`, what [`EngineBuilder::workers`]
//! (crate::EngineBuilder::workers) configures) takes none of these paths: the
//! pool reports [`WorkerPool::is_elastic`] `false` and the dispatcher uses the
//! classic untimed worker loop.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::time::Duration;

use parking_lot::{Condvar, Mutex};

use crate::run_queue::RunQueue;

/// Consecutive deep-queue observations required before the pool scales up.
const SCALE_UP_OBSERVATIONS: usize = 2;

/// Depth-aware wake placement state (scheduler v3). Instead of activating
/// workers in index order (`0..target`), the pool tracks an explicit
/// per-worker activation set and recruits the *parked worker whose preferred
/// shard is deepest* — the woken worker starts next to its backlog instead of
/// at the back of the LIFO wake order. Activation flags are lock-free to read
/// (the worker hot loop checks its own flag every iteration); mutations
/// happen under the pool lock, which also orders them with the condvar.
struct Placement {
    /// `active[index]` — whether worker `index` is currently activated.
    active: Vec<AtomicBool>,
    /// Depth-aware recruits performed (`queue_stats().sched_wakes`).
    wakes: AtomicU64,
}

/// Activation state of an engine's dispatcher worker band.
pub(crate) struct WorkerPool {
    /// Lower edge of the band: workers `0..min` never park down.
    min: usize,
    /// Upper edge of the band: the number of threads `Engine::start` spawns.
    max: usize,
    /// Number of active workers. With LIFO placement (scheduler v2) workers
    /// `0..target` are active and the rest park on `unpark`; with depth-aware
    /// placement the active *set* lives in `placement` and this is its size.
    target: AtomicUsize,
    /// Highest activation target ever reached — the run's observed worker
    /// count, recorded by benches alongside the configured band.
    high_water: AtomicUsize,
    /// Consecutive deep-queue observations (reset by any shallow one).
    pressure: AtomicUsize,
    /// Queue depth at or above which an enqueue counts as a deep observation.
    scale_up_depth: usize,
    /// How long an above-min worker waits for work before parking down.
    idle_grace: Duration,
    /// Guards `unpark` (the counters themselves are atomics).
    lock: Mutex<()>,
    /// Signalled on scale-up and on shutdown.
    unpark: Condvar,
    /// Depth-aware wake placement, present when scheduler v3 is on.
    placement: Option<Placement>,
}

impl WorkerPool {
    pub(crate) fn new(
        min: usize,
        max: usize,
        scale_up_depth: usize,
        idle_grace: Duration,
        depth_aware: bool,
    ) -> Self {
        let min = min.clamp(1, max.max(1));
        WorkerPool {
            min,
            max,
            target: AtomicUsize::new(min),
            high_water: AtomicUsize::new(min),
            pressure: AtomicUsize::new(0),
            scale_up_depth: scale_up_depth.max(1),
            idle_grace,
            lock: Mutex::new(()),
            unpark: Condvar::new(),
            placement: depth_aware.then(|| Placement {
                active: (0..max).map(|index| AtomicBool::new(index < min)).collect(),
                wakes: AtomicU64::new(0),
            }),
        }
    }

    /// `true` when the band has any slack (`min < max`); a fixed pool never
    /// gates, parks or samples.
    pub(crate) fn is_elastic(&self) -> bool {
        self.min < self.max
    }

    pub(crate) fn min(&self) -> usize {
        self.min
    }

    pub(crate) fn max(&self) -> usize {
        self.max
    }

    /// The current activation target (workers `0..target` are active).
    pub(crate) fn active_target(&self) -> usize {
        self.target.load(Ordering::Acquire)
    }

    /// The highest activation target the run has reached.
    pub(crate) fn high_water(&self) -> usize {
        self.high_water.load(Ordering::Relaxed)
    }

    pub(crate) fn idle_grace(&self) -> Duration {
        self.idle_grace
    }

    /// Depth-aware recruits performed so far (`queue_stats().sched_wakes`);
    /// always 0 for a LIFO-placement pool.
    pub(crate) fn depth_wakes(&self) -> u64 {
        self.placement
            .as_ref()
            .map_or(0, |placement| placement.wakes.load(Ordering::Relaxed))
    }

    /// Whether worker `index` is currently activated.
    fn is_active(&self, index: usize) -> bool {
        match &self.placement {
            Some(placement) => placement.active[index].load(Ordering::Acquire),
            None => index < self.target.load(Ordering::Acquire),
        }
    }

    /// Test probe for the activation set (wake-placement unit tests).
    #[cfg(test)]
    pub(crate) fn is_active_slot(&self, index: usize) -> bool {
        self.is_active(index)
    }

    /// Test probe: `true` when the pool recruits by shard depth (scheduler
    /// v3) instead of LIFO index order.
    #[cfg(test)]
    pub(crate) fn depth_aware(&self) -> bool {
        self.placement.is_some()
    }

    /// Producer-side sampling hook: called with the post-enqueue queue depth
    /// and the queue itself (depth-aware placement consults per-shard depths).
    /// Counts consecutive deep observations and recruits a parked worker once
    /// the hysteresis threshold is met — the next one in index order for a
    /// LIFO pool, the one whose preferred shard is deepest for a depth-aware
    /// pool.
    pub(crate) fn observe_depth(&self, depth: usize, queue: &RunQueue) {
        if !self.is_elastic() || self.target.load(Ordering::Relaxed) >= self.max {
            return;
        }
        if depth < self.scale_up_depth {
            self.pressure.store(0, Ordering::Relaxed);
            return;
        }
        if self.pressure.fetch_add(1, Ordering::Relaxed) + 1 < SCALE_UP_OBSERVATIONS {
            return;
        }
        self.pressure.store(0, Ordering::Relaxed);
        match &self.placement {
            None => {
                let raised =
                    self.target
                        .fetch_update(Ordering::AcqRel, Ordering::Acquire, |target| {
                            (target < self.max).then_some(target + 1)
                        });
                if let Ok(previous) = raised {
                    self.high_water.fetch_max(previous + 1, Ordering::Relaxed);
                    let _guard = self.lock.lock();
                    self.unpark.notify_all();
                }
            }
            Some(placement) => {
                // Sample shard depths *before* taking the pool lock: the probe
                // locks each shard briefly and recruiting is rare, so keeping
                // it outside shortens the pool critical section.
                let depths = queue.shard_depths();
                let guard = self.lock.lock();
                if self.target.load(Ordering::Relaxed) >= self.max {
                    return;
                }
                // Deepest-preferred-shard parked worker; ties go to the lowest
                // index (worker i prefers shard i % shard_count, and the grid
                // is sized so they coincide).
                let mut chosen: Option<(usize, usize)> = None;
                for index in 0..self.max {
                    if placement.active[index].load(Ordering::Relaxed) {
                        continue;
                    }
                    let shard_depth = depths[index % depths.len()];
                    if chosen.is_none_or(|(_, best)| shard_depth > best) {
                        chosen = Some((index, shard_depth));
                    }
                }
                if let Some((index, _)) = chosen {
                    placement.active[index].store(true, Ordering::Release);
                    let now = self.target.fetch_add(1, Ordering::AcqRel) + 1;
                    self.high_water.fetch_max(now, Ordering::Relaxed);
                    placement.wakes.fetch_add(1, Ordering::Relaxed);
                    self.unpark.notify_all();
                }
                drop(guard);
            }
        }
    }

    /// Parks the calling worker until it is activated or the queue starts
    /// stopping (shutdown drains with every worker awake).
    pub(crate) fn wait_active(&self, index: usize, queue: &RunQueue) {
        loop {
            if self.is_active(index) || queue.is_stopping() {
                return;
            }
            let mut guard = self.lock.lock();
            // Re-check under the lock: a scale-up or stop between the check
            // above and the wait below would otherwise be missed.
            if self.is_active(index) || queue.is_stopping() {
                return;
            }
            self.unpark.wait(&mut guard);
        }
    }

    /// The calling worker volunteering to park after an idle grace. With LIFO
    /// placement only the highest-indexed active worker can succeed (a
    /// concurrent scale-up makes the CAS fail harmlessly); with depth-aware
    /// placement any active worker above the band floor can park, as long as
    /// the active count stays at or above `min`.
    pub(crate) fn try_park_down(&self, index: usize) -> bool {
        if index < self.min {
            return false;
        }
        match &self.placement {
            None => self
                .target
                .compare_exchange(index + 1, index, Ordering::AcqRel, Ordering::Acquire)
                .is_ok(),
            Some(placement) => {
                let _guard = self.lock.lock();
                if !placement.active[index].load(Ordering::Relaxed)
                    || self.target.load(Ordering::Relaxed) <= self.min
                {
                    return false;
                }
                placement.active[index].store(false, Ordering::Release);
                self.target.fetch_sub(1, Ordering::AcqRel);
                true
            }
        }
    }

    /// Wakes every parked worker (shutdown: they observe the stopping queue,
    /// help drain and exit).
    pub(crate) fn release_all(&self) {
        let _guard = self.lock.lock();
        self.unpark.notify_all();
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn fixed_pools_are_not_elastic() {
        let pool = WorkerPool::new(4, 4, 32, Duration::from_millis(2), false);
        assert!(!pool.is_elastic());
        assert_eq!(pool.active_target(), 4);
        assert_eq!(pool.high_water(), 4);
    }

    #[test]
    fn min_is_clamped_into_the_band() {
        let pool = WorkerPool::new(0, 3, 32, Duration::from_millis(2), false);
        assert_eq!(pool.min(), 1, "a live band always keeps one worker active");
        let pool = WorkerPool::new(9, 3, 32, Duration::from_millis(2), false);
        assert_eq!(pool.min(), 3, "min never exceeds max");
    }

    #[test]
    fn scale_up_needs_consecutive_deep_observations() {
        let queue = RunQueue::new(4);
        let pool = WorkerPool::new(1, 4, 10, Duration::from_millis(2), false);
        pool.observe_depth(50, &queue);
        assert_eq!(pool.active_target(), 1, "one deep sample is not enough");
        pool.observe_depth(3, &queue);
        pool.observe_depth(50, &queue);
        assert_eq!(
            pool.active_target(),
            1,
            "a shallow sample resets the pressure"
        );
        pool.observe_depth(50, &queue);
        assert_eq!(pool.active_target(), 2, "sustained depth scales up");
        assert_eq!(pool.high_water(), 2);
    }

    #[test]
    fn target_never_exceeds_max_and_park_down_is_lifo() {
        let queue = RunQueue::new(3);
        let pool = WorkerPool::new(1, 3, 1, Duration::from_millis(2), false);
        for _ in 0..32 {
            pool.observe_depth(100, &queue);
        }
        assert_eq!(pool.active_target(), 3);
        assert_eq!(pool.high_water(), 3);
        assert!(
            !pool.try_park_down(1),
            "only the highest active worker parks"
        );
        assert!(pool.try_park_down(2));
        assert!(pool.try_park_down(1));
        assert!(!pool.try_park_down(0), "workers below min never park down");
        assert_eq!(pool.active_target(), 1);
        assert_eq!(pool.high_water(), 3, "the high-water mark is sticky");
    }

    fn test_event(n: i64) -> defcon_events::Event {
        defcon_events::EventBuilder::new()
            .part(
                "n",
                defcon_defc::Label::public(),
                defcon_events::Value::Int(n),
            )
            .build()
            .unwrap()
    }

    /// The depth-aware wake-placement pin: with skewed shard depths, the
    /// recruit goes to the parked worker whose preferred shard is deepest —
    /// not to the lowest parked index, which is what LIFO placement would do.
    #[test]
    fn depth_aware_recruit_wakes_the_worker_of_the_deepest_shard() {
        let queue = RunQueue::new(3);
        // Round-robin push lands events 0,3,6 on shard 0; 1,4,7 on shard 1;
        // 2,5,8 on shard 2 — then drain shard 0 fully and shard 1 partially,
        // leaving depths [0, 1, 3].
        for n in 0..9 {
            queue.push(test_event(n));
        }
        let mut scratch = Vec::new();
        assert_eq!(queue.pop_batch_into(0, 3, &mut scratch), 3);
        scratch.clear();
        assert_eq!(queue.pop_batch_into(1, 2, &mut scratch), 2);
        assert_eq!(queue.shard_depths(), vec![0, 1, 3]);

        let pool = WorkerPool::new(1, 3, 1, Duration::from_millis(2), true);
        assert!(pool.depth_aware());
        assert!(pool.is_active_slot(0), "the band floor starts active");
        pool.observe_depth(4, &queue);
        pool.observe_depth(4, &queue);
        assert!(
            pool.is_active_slot(2),
            "worker 2 (preferred shard depth 3) is recruited first"
        );
        assert!(!pool.is_active_slot(1), "worker 1 (depth 1) stays parked");
        assert_eq!(pool.active_target(), 2);
        assert_eq!(pool.depth_wakes(), 1, "the recruit is counted");

        // The next recruit takes the remaining parked worker.
        pool.observe_depth(4, &queue);
        pool.observe_depth(4, &queue);
        assert!(pool.is_active_slot(1));
        assert_eq!(pool.active_target(), 3);
        assert_eq!(pool.high_water(), 3);
        assert_eq!(pool.depth_wakes(), 2);
    }

    /// Depth-aware park-down has no LIFO constraint: any active worker above
    /// the floor may park, and the active count never drops below `min`.
    #[test]
    fn depth_aware_park_down_is_not_lifo_but_respects_the_floor() {
        let queue = RunQueue::new(3);
        let pool = WorkerPool::new(1, 3, 1, Duration::from_millis(2), true);
        queue.push(test_event(0));
        for _ in 0..8 {
            pool.observe_depth(100, &queue);
        }
        assert_eq!(pool.active_target(), 3);
        assert!(
            pool.try_park_down(1),
            "a mid-index worker can park before higher ones"
        );
        assert!(!pool.try_park_down(1), "an already-parked worker cannot");
        assert!(pool.try_park_down(2));
        assert!(
            !pool.try_park_down(0),
            "the floor worker never parks, so the count stays at min"
        );
        assert_eq!(pool.active_target(), 1);
        assert_eq!(pool.high_water(), 3, "the high-water mark is sticky");
        assert_eq!(pool.depth_wakes(), 2);
    }
}
