//! Fluent construction of engines — the entry point of the runtime API v2.
//!
//! ```
//! use defcon_core::{Engine, SecurityMode};
//!
//! let engine = Engine::builder()
//!     .mode(SecurityMode::LabelsFreezeIsolation)
//!     .workers(4)
//!     .event_cache(5_000)
//!     .build();
//! assert_eq!(engine.configured_workers(), 4);
//! ```

use crate::admission::{ElasticConfig, IngressConfig};
use crate::engine::{Engine, EngineConfig, SecurityMode};
use crate::fault::FaultPolicy;
use crate::handle::EngineHandle;

/// The worker count [`EngineBuilder::workers_auto`] resolves to on this host:
/// [`std::thread::available_parallelism`], or 1 when the platform cannot report
/// it. A 1-core container therefore gets a single dispatcher (the dispatch
/// micro-bench shows extra workers *losing* there to cross-thread handoff),
/// while a 16-way host gets 16 without any per-deployment tuning.
pub fn auto_worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder for [`Engine`] instances.
///
/// Defaults match [`EngineConfig::default`]: `labels+freeze`, no worker threads
/// (manual pumping), a 10,000-event cache and a 1,024-instance managed cap.
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    config: EngineConfig,
}

impl EngineBuilder {
    /// Creates a builder with the default configuration.
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Selects the security configuration (one of the paper's four series).
    pub fn mode(mut self, mode: SecurityMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Sets a *fixed* dispatcher worker pool: [`Engine::start`] spawns exactly
    /// `workers` threads and all of them stay active (`workers_min ==
    /// workers_max == workers`).
    ///
    /// Zero (the default) means no background dispatch: the started handle is
    /// pumped manually, which keeps single-threaded tests deterministic.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers_min = workers;
        self.config.workers_max = workers;
        self
    }

    /// Sets the lower edge of the worker band: how many workers stay active
    /// when the engine idles. Clamped into `1..=workers_max` at build for live
    /// pools. Combine with [`EngineBuilder::workers_max`] for an elastic pool;
    /// on its own (without a larger max) it behaves like
    /// [`EngineBuilder::workers`].
    pub fn workers_min(mut self, workers_min: usize) -> Self {
        self.config.workers_min = workers_min;
        if self.config.workers_max < workers_min {
            self.config.workers_max = workers_min;
        }
        self
    }

    /// Sets the upper edge of the worker band: the number of worker threads
    /// [`Engine::start`] spawns. When it exceeds `workers_min` the pool is
    /// **elastic**: workers above the minimum park until sampled queue depth
    /// recruits them, and park back down after an idle grace — see
    /// [`EngineConfig::workers_max`](crate::EngineConfig) and the grouped
    /// tuning in [`EngineBuilder::elastic`].
    pub fn workers_max(mut self, workers_max: usize) -> Self {
        self.config.workers_max = workers_max;
        self
    }

    /// Sizes a fixed dispatcher worker pool from the host's available
    /// parallelism ([`auto_worker_count`]): as many workers as the hardware
    /// can actually run, no more. The run queue's shard count is clamped to
    /// the same number (one shard per worker), so the resolved count also
    /// bounds producer-side lock spreading. The resolved number is readable
    /// afterwards via [`Engine::configured_workers`] — benchmark reports
    /// record it so results stay comparable across hosts. For a pool that
    /// adapts to *load* rather than only to hardware, pair
    /// [`EngineBuilder::workers_min`] with a larger
    /// [`EngineBuilder::workers_max`].
    pub fn workers_auto(self) -> Self {
        let workers = auto_worker_count();
        self.workers(workers)
    }

    /// Sets the elastic worker-band tuning in one grouped config (scale-up
    /// depth threshold, park-down idle grace) — replaces the loose v2
    /// `elastic_scale_up_depth` / `elastic_idle_grace` knobs:
    ///
    /// ```
    /// use defcon_core::{ElasticConfig, Engine};
    /// use std::time::Duration;
    ///
    /// let engine = Engine::builder()
    ///     .workers_min(1)
    ///     .workers_max(4)
    ///     .elastic(
    ///         ElasticConfig::new()
    ///             .scale_up_depth(8)
    ///             .idle_grace(Duration::from_millis(2)),
    ///     )
    ///     .build();
    /// assert_eq!(engine.configured_workers(), 4);
    /// ```
    pub fn elastic(mut self, config: ElasticConfig) -> Self {
        self.config.elastic = config;
        self
    }

    /// Enables bounded admission, grouped like [`EngineBuilder::wal`]: the
    /// engine enforces the configured
    /// [`queue_bound`](crate::IngressConfig::queue_bound) on
    /// [`try_publish_batch`](crate::Publisher::try_publish_batch) calls, and
    /// an ingress tier built over the engine paces its sessions with
    /// [`credit_window`](crate::IngressConfig::credit_window) credits under
    /// the configured [`FullQueuePolicy`](crate::FullQueuePolicy).
    pub fn ingress(mut self, config: IngressConfig) -> Self {
        self.config.ingress = Some(config);
        self
    }

    /// Enables fault handling, grouped like [`EngineBuilder::ingress`] and
    /// [`EngineBuilder::wal`]: the engine counts panicking deliveries per unit
    /// and, when a unit exceeds the policy's panic budget within its delivery
    /// window, auto-swaps it to its registered standby
    /// ([`Engine::set_standby`](crate::Engine::set_standby)) or quarantines
    /// it — see [`FaultPolicy`].
    pub fn fault(mut self, policy: FaultPolicy) -> Self {
        self.config.fault = Some(policy);
        self
    }

    /// Enables or disables per-unit grouped delivery of popped batches (on by
    /// default; see [`EngineConfig::grouped_delivery`](crate::EngineConfig)
    /// for the exact semantics). Disable to recover strict event-by-event
    /// subscription-order interleaving across units within a batch.
    pub fn grouped_delivery(mut self, grouped: bool) -> Self {
        self.config.grouped_delivery = grouped;
        self
    }

    /// Selects the dispatcher scheduler (v3, the default, when `true`): local
    /// run deques with shard-affine prefetch, whole-run stealing from the
    /// deepest sibling, depth-aware wake placement for elastic scale-up, and
    /// a process-shared epoch-validated security snapshot. `false` runs the
    /// v2 scheduler — the shared sharded queue only — which is the baseline
    /// the scheduler A/B bench replays against (see
    /// [`EngineConfig::scheduler_v3`](crate::EngineConfig)).
    pub fn scheduler_v3(mut self, scheduler_v3: bool) -> Self {
        self.config.scheduler_v3 = scheduler_v3;
        self
    }

    /// Selects the subscription matcher (the inverted index, the default, when
    /// `true`): planning consults a part-name/value index for a candidate
    /// superset per event and runs the exact filter only on candidates, so
    /// matching cost scales with matching subscriptions instead of registered
    /// ones. `false` keeps the linear scan over every subscription — the
    /// baseline the fan-out A/B bench replays against (see
    /// [`EngineConfig::subscription_index`](crate::EngineConfig)). Delivery
    /// sets are identical under either matcher.
    pub fn subscription_index(mut self, subscription_index: bool) -> Self {
        self.config.subscription_index = subscription_index;
        self
    }

    /// Sets the dispatch batch size: how many events a dispatcher pops (and
    /// accounts for) per run-queue lock round-trip, and the chunk size batched
    /// publishers enqueue with. The default of 1 preserves classic
    /// one-event-at-a-time queueing; values are clamped to at least 1 at use.
    /// Per-unit serialisation and subscription order are unchanged either
    /// way; dispatch observes subscriber security state as snapshotted at
    /// batch start (see [`EngineConfig::batch_size`](crate::EngineConfig)).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.batch_size = batch_size.max(1);
        self
    }

    /// Sets the capacity of the recently-dispatched event cache.
    pub fn event_cache(mut self, capacity: usize) -> Self {
        self.config.event_cache_capacity = capacity;
        self
    }

    /// Sets the cap on live managed handler instances.
    pub fn managed_instance_cap(mut self, cap: usize) -> Self {
        self.config.managed_instance_cap = cap;
        self
    }

    /// Enables the write-ahead event log: every externally published batch is
    /// appended (one CRC-framed record per batch, fsynced per the config's
    /// [`FsyncPolicy`](defcon_durability::FsyncPolicy)) *before* it is
    /// enqueued, and [`Engine::recover_from`] replays the directory after a
    /// crash. Cascade publications are not logged — dispatch regenerates them
    /// on replay. [`Engine::new`] panics if the log directory cannot be
    /// opened.
    pub fn wal(mut self, config: defcon_durability::WalConfig) -> Self {
        self.config.wal = Some(config);
        self
    }

    /// Replaces the whole configuration (for deployments described
    /// declaratively as an [`EngineConfig`] value).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the engine without starting its runtime.
    pub fn build(self) -> Engine {
        Engine::new(self.config)
    }

    /// Builds the engine and starts its runtime in one step — shorthand for
    /// `builder.build().start()`.
    pub fn start(self) -> EngineHandle {
        self.build().start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_applies_every_knob() {
        use crate::admission::FullQueuePolicy;
        use crate::fault::FaultAction;
        let engine = Engine::builder()
            .mode(SecurityMode::LabelsClone)
            .workers(3)
            .batch_size(16)
            .grouped_delivery(false)
            .scheduler_v3(false)
            .subscription_index(false)
            .event_cache(7)
            .managed_instance_cap(9)
            .elastic(
                ElasticConfig::new()
                    .scale_up_depth(12)
                    .idle_grace(std::time::Duration::from_millis(3)),
            )
            .ingress(
                IngressConfig::new(256)
                    .credit_window(32)
                    .policy(FullQueuePolicy::ShedNewest),
            )
            .fault(
                FaultPolicy::new(2)
                    .window(50)
                    .action(FaultAction::Quarantine),
            )
            .build();
        assert_eq!(engine.mode(), SecurityMode::LabelsClone);
        assert_eq!(engine.configured_workers(), 3);
        assert_eq!(
            engine.configured_workers_min(),
            3,
            "workers(n) is a fixed pool"
        );
        assert_eq!(engine.configured_batch_size(), 16);
        assert!(!engine.grouped_delivery());
        assert!(!engine.scheduler_v3());
        assert!(!engine.subscription_index());
        let ingress = engine.ingress_config().expect("ingress config set");
        assert_eq!(ingress.queue_bound, 256);
        assert_eq!(ingress.credit_window, 32);
        assert_eq!(ingress.policy, FullQueuePolicy::ShedNewest);
        let fault = engine.fault_policy().expect("fault policy set");
        assert_eq!(fault.max_panics, 2);
        assert_eq!(fault.window, 50);
        assert_eq!(fault.action, FaultAction::Quarantine);
    }

    #[test]
    fn worker_band_clamps_and_reports_through_queue_stats() {
        let engine = Engine::builder().workers_min(1).workers_max(4).build();
        assert_eq!(engine.configured_workers_min(), 1);
        assert_eq!(engine.configured_workers(), 4);
        let stats = engine.queue_stats();
        assert_eq!(stats.workers_min, 1);
        assert_eq!(stats.workers_max, 4);
        assert_eq!(
            stats.workers_active, 1,
            "elastic pools start at the minimum"
        );
        assert_eq!(stats.workers_high_water, 1);
        assert_eq!(stats.depth, 0);
        assert_eq!(stats.in_flight, 0);
        assert_eq!(stats.shard_depths.len(), engine.run_queue_shards());

        // workers_min alone raises the max with it (fixed pool semantics)...
        let fixed = Engine::builder().workers_min(3).build();
        assert_eq!(fixed.configured_workers(), 3);
        assert_eq!(fixed.configured_workers_min(), 3);
        // ...and a zero min on a live band is clamped to one active worker.
        let clamped = Engine::builder().workers_min(0).workers_max(2).build();
        assert_eq!(clamped.configured_workers_min(), 1);
    }

    #[test]
    fn manual_engines_report_an_empty_worker_band() {
        let engine = Engine::builder().build();
        let stats = engine.queue_stats();
        assert_eq!(stats.workers_min, 0);
        assert_eq!(stats.workers_max, 0);
        assert_eq!(stats.workers_active, 0);
        assert_eq!(stats.workers_high_water, 0);
    }

    #[test]
    fn batch_size_zero_clamps_to_one() {
        let engine = Engine::builder().batch_size(0).build();
        assert_eq!(engine.configured_batch_size(), 1);
    }

    #[test]
    fn builder_defaults_match_engine_config_defaults() {
        let engine = EngineBuilder::new().build();
        assert_eq!(engine.mode(), SecurityMode::LabelsFreeze);
        assert_eq!(engine.configured_workers(), 0);
        assert_eq!(engine.configured_batch_size(), 1);
        assert!(engine.scheduler_v3(), "v3 is the default scheduler");
        assert!(
            engine.subscription_index(),
            "the inverted index is the default matcher"
        );
    }

    #[test]
    fn workers_auto_matches_available_parallelism_and_shard_count() {
        let engine = Engine::builder().workers_auto().build();
        let resolved = auto_worker_count();
        assert!(resolved >= 1);
        assert_eq!(engine.configured_workers(), resolved);
        // One run-queue shard per worker: the clamp keeps producers spreading
        // over exactly as many locks as there are consumers to drain them.
        assert_eq!(engine.run_queue_shards(), resolved);
    }

    #[test]
    fn config_override_replaces_prior_settings() {
        let config = EngineConfig {
            mode: SecurityMode::NoSecurity,
            workers_min: 2,
            workers_max: 2,
            ..EngineConfig::default()
        };
        let engine = Engine::builder()
            .mode(SecurityMode::LabelsClone)
            .config(config)
            .build();
        assert_eq!(engine.mode(), SecurityMode::NoSecurity);
        assert_eq!(engine.configured_workers(), 2);
    }
}
