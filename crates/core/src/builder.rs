//! Fluent construction of engines — the entry point of the runtime API v2.
//!
//! ```
//! use defcon_core::{Engine, SecurityMode};
//!
//! let engine = Engine::builder()
//!     .mode(SecurityMode::LabelsFreezeIsolation)
//!     .workers(4)
//!     .event_cache(5_000)
//!     .build();
//! assert_eq!(engine.configured_workers(), 4);
//! ```

use crate::engine::{Engine, EngineConfig, SecurityMode};
use crate::handle::EngineHandle;

/// The worker count [`EngineBuilder::workers_auto`] resolves to on this host:
/// [`std::thread::available_parallelism`], or 1 when the platform cannot report
/// it. A 1-core container therefore gets a single dispatcher (the dispatch
/// micro-bench shows extra workers *losing* there to cross-thread handoff),
/// while a 16-way host gets 16 without any per-deployment tuning.
pub fn auto_worker_count() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
}

/// Builder for [`Engine`] instances.
///
/// Defaults match [`EngineConfig::default`]: `labels+freeze`, no worker threads
/// (manual pumping), a 10,000-event cache and a 1,024-instance managed cap.
#[derive(Debug, Clone, Default)]
pub struct EngineBuilder {
    config: EngineConfig,
}

impl EngineBuilder {
    /// Creates a builder with the default configuration.
    pub fn new() -> Self {
        EngineBuilder::default()
    }

    /// Selects the security configuration (one of the paper's four series).
    pub fn mode(mut self, mode: SecurityMode) -> Self {
        self.config.mode = mode;
        self
    }

    /// Sets the number of dispatcher worker threads [`Engine::start`] spawns.
    ///
    /// Zero (the default) means no background dispatch: the started handle is
    /// pumped manually, which keeps single-threaded tests deterministic.
    pub fn workers(mut self, workers: usize) -> Self {
        self.config.workers = workers;
        self
    }

    /// Sizes the dispatcher worker pool from the host's available parallelism
    /// ([`auto_worker_count`]): as many workers as the hardware can actually
    /// run, no more. The run queue's shard count is clamped to the same number
    /// (one shard per worker), so the resolved count also bounds producer-side
    /// lock spreading. The resolved number is readable afterwards via
    /// [`Engine::configured_workers`] — benchmark reports record it so results
    /// stay comparable across hosts.
    pub fn workers_auto(self) -> Self {
        let workers = auto_worker_count();
        self.workers(workers)
    }

    /// Sets the dispatch batch size: how many events a dispatcher pops (and
    /// accounts for) per run-queue lock round-trip, and the chunk size batched
    /// publishers enqueue with. The default of 1 preserves classic
    /// one-event-at-a-time queueing; values are clamped to at least 1 at use.
    /// Per-unit serialisation and subscription order are unchanged either
    /// way; dispatch observes subscriber security state as snapshotted at
    /// batch start (see [`EngineConfig::batch_size`](crate::EngineConfig)).
    pub fn batch_size(mut self, batch_size: usize) -> Self {
        self.config.batch_size = batch_size.max(1);
        self
    }

    /// Sets the capacity of the recently-dispatched event cache.
    pub fn event_cache(mut self, capacity: usize) -> Self {
        self.config.event_cache_capacity = capacity;
        self
    }

    /// Sets the cap on live managed handler instances.
    pub fn managed_instance_cap(mut self, cap: usize) -> Self {
        self.config.managed_instance_cap = cap;
        self
    }

    /// Replaces the whole configuration (for deployments described
    /// declaratively as an [`EngineConfig`] value).
    pub fn config(mut self, config: EngineConfig) -> Self {
        self.config = config;
        self
    }

    /// Builds the engine without starting its runtime.
    pub fn build(self) -> Engine {
        Engine::new(self.config)
    }

    /// Builds the engine and starts its runtime in one step — shorthand for
    /// `builder.build().start()`.
    pub fn start(self) -> EngineHandle {
        self.build().start()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_applies_every_knob() {
        let engine = Engine::builder()
            .mode(SecurityMode::LabelsClone)
            .workers(3)
            .batch_size(16)
            .event_cache(7)
            .managed_instance_cap(9)
            .build();
        assert_eq!(engine.mode(), SecurityMode::LabelsClone);
        assert_eq!(engine.configured_workers(), 3);
        assert_eq!(engine.configured_batch_size(), 16);
    }

    #[test]
    fn batch_size_zero_clamps_to_one() {
        let engine = Engine::builder().batch_size(0).build();
        assert_eq!(engine.configured_batch_size(), 1);
    }

    #[test]
    fn builder_defaults_match_engine_config_defaults() {
        let engine = EngineBuilder::new().build();
        assert_eq!(engine.mode(), SecurityMode::LabelsFreeze);
        assert_eq!(engine.configured_workers(), 0);
        assert_eq!(engine.configured_batch_size(), 1);
    }

    #[test]
    fn workers_auto_matches_available_parallelism_and_shard_count() {
        let engine = Engine::builder().workers_auto().build();
        let resolved = auto_worker_count();
        assert!(resolved >= 1);
        assert_eq!(engine.configured_workers(), resolved);
        // One run-queue shard per worker: the clamp keeps producers spreading
        // over exactly as many locks as there are consumers to drain them.
        assert_eq!(engine.run_queue_shards(), resolved);
    }

    #[test]
    fn config_override_replaces_prior_settings() {
        let config = EngineConfig {
            mode: SecurityMode::NoSecurity,
            workers: 2,
            ..EngineConfig::default()
        };
        let engine = Engine::builder()
            .mode(SecurityMode::LabelsClone)
            .config(config)
            .build();
        assert_eq!(engine.mode(), SecurityMode::NoSecurity);
        assert_eq!(engine.configured_workers(), 2);
    }
}
