//! The engine's tag store.
//!
//! §3.2 ("Label/tag management"): DEFCon maintains the set of defined tags; units
//! access tags by reference but cannot modify or forge them. Units request fresh
//! tags at run time (e.g. when a new client joins), receiving `t+auth`/`t-auth` over
//! the new tag (§3.1.3).

use std::collections::HashMap;

use defcon_defc::{Tag, TagId};
use parking_lot::RwLock;

use crate::unit::UnitId;

/// Records every tag created through the engine together with its creator.
#[derive(Debug, Default)]
pub struct TagStore {
    tags: RwLock<HashMap<TagId, TagRecord>>,
}

#[derive(Debug, Clone)]
struct TagRecord {
    tag: Tag,
    creator: UnitId,
}

impl TagStore {
    /// Creates an empty tag store.
    pub fn new() -> Self {
        TagStore::default()
    }

    /// Creates a fresh tag on behalf of `creator`.
    pub fn create_tag(&self, creator: UnitId, name: Option<&str>) -> Tag {
        let tag = match name {
            Some(n) => Tag::with_name(n),
            None => Tag::new(),
        };
        self.tags.write().insert(
            tag.id(),
            TagRecord {
                tag: tag.clone(),
                creator,
            },
        );
        tag
    }

    /// Returns the tag with the given identifier, if it was created through this
    /// store.
    pub fn lookup(&self, id: TagId) -> Option<Tag> {
        self.tags.read().get(&id).map(|r| r.tag.clone())
    }

    /// Returns the unit that created the tag, if known.
    pub fn creator_of(&self, id: TagId) -> Option<UnitId> {
        self.tags.read().get(&id).map(|r| r.creator)
    }

    /// Returns the number of tags ever created.
    pub fn len(&self) -> usize {
        self.tags.read().len()
    }

    /// Returns `true` if no tags have been created.
    pub fn is_empty(&self) -> bool {
        self.len() == 0
    }

    /// Estimated bytes used by the store (engine memory accounting): the
    /// per-record bookkeeping plus the actual interned name bytes, instead of
    /// the former flat per-tag guess.
    pub fn estimated_size(&self) -> usize {
        let tags = self.tags.read();
        // Map entry (id + record + bucket overhead) per tag...
        let records = tags.len() * 72;
        // ...plus each tag's shared name allocation, counted once here (the
        // `Arc<str>` is shared with every label that carries the tag).
        let names: usize = tags
            .values()
            .map(|record| record.tag.name().map_or(0, str::len))
            .sum();
        records + names
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn created_tags_are_tracked() {
        let store = TagStore::new();
        assert!(store.is_empty());
        let creator = UnitId::from_raw(7);
        let tag = store.create_tag(creator, Some("s-trader-1"));
        assert_eq!(store.len(), 1);
        assert_eq!(store.lookup(tag.id()), Some(tag.clone()));
        assert_eq!(store.creator_of(tag.id()), Some(creator));
        assert_eq!(tag.name(), Some("s-trader-1"));
    }

    #[test]
    fn anonymous_tags_and_unknown_lookups() {
        let store = TagStore::new();
        let tag = store.create_tag(UnitId::from_raw(1), None);
        assert_eq!(tag.name(), None);
        assert_eq!(store.lookup(defcon_defc::TagId::from_raw(12345)), None);
        assert!(store.estimated_size() > 0);
    }
}
