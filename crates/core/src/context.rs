//! The Table 1 API surface exposed to processing units.
//!
//! A [`UnitContext`] is constructed by the engine for the duration of a single unit
//! callback (`init`, `on_event`, or a driver closure run through
//! [`Engine::with_unit`](crate::Engine::with_unit)). All of Table 1 is available
//! through it:
//!
//! | Paper call                      | Context method                         |
//! |---------------------------------|----------------------------------------|
//! | `createEvent()`                 | [`UnitContext::create_event`]          |
//! | `addPart(e, S, I, name, data)`  | [`UnitContext::add_part`] / [`UnitContext::add_part_to_current`] |
//! | `delPart(e, S, I, name)`        | [`UnitContext::del_part`]              |
//! | `readPart(e, name)`             | [`UnitContext::read_part`]             |
//! | `attachPrivilegeToPart(...)`    | [`UnitContext::attach_privilege_to_part`] |
//! | `cloneEvent(e, S, I)`           | [`UnitContext::clone_event`]           |
//! | `publish(e)`                    | [`UnitContext::publish`]               |
//! | `release(e)`                    | [`UnitContext::release`] (also implicit on return) |
//! | `subscribe(filter)`             | [`UnitContext::subscribe`]             |
//! | `subscribeManaged(handler, f)`  | [`UnitContext::subscribe_managed`]     |
//! | `getEvent()`                    | [`Engine::get_event`](crate::Engine::get_event) (pull mode) |
//! | `instantiateUnit(...)`          | [`UnitContext::instantiate_unit`]      |
//! | `changeOutLabel(...)`           | [`UnitContext::change_out_label`]      |
//! | `changeInOutLabel(...)`         | [`UnitContext::change_in_out_label`]   |
//!
//! Contamination independence (§5): the `S` and `I` a unit passes to `add_part` are
//! transparently raised to include the unit's output label, so a unit sandboxed at a
//! higher contamination cannot write below it.

use std::collections::HashMap;
use std::sync::Arc;

use defcon_defc::{Component, Label, Privilege, PrivilegeKind, PrivilegeSet, Tag};
use defcon_events::{Event, Filter, Part, Value};

use crate::engine::EngineCore;
use crate::error::{EngineError, EngineResult};
use crate::subscription::{Subscription, SubscriptionId};
use crate::unit::{Unit, UnitFactory, UnitId, UnitSpec, UnitState};

/// Whether a label-change call adds or removes a tag (the `⟨add|del⟩` argument of
/// `changeOutLabel` / `changeInOutLabel` in Table 1).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum LabelOp {
    /// Add the tag to the component (raise secrecy / endorse integrity).
    Add,
    /// Remove the tag from the component (declassify / drop integrity).
    Remove,
}

/// A handle to an event under construction (`createEvent`).
///
/// Drafts live inside the [`UnitContext`] that created them and are consumed by
/// [`UnitContext::publish`].
#[derive(Debug, PartialEq, Eq, Hash)]
pub struct DraftEvent {
    id: u64,
}

#[derive(Debug, Default)]
struct DraftState {
    parts: Vec<Part>,
    origin_ns: Option<u64>,
}

/// The API object handed to unit code for the duration of one callback.
pub struct UnitContext<'a> {
    core: &'a Arc<EngineCore>,
    state: &'a mut UnitState,
    current: Option<&'a Event>,
    outputs: &'a mut Vec<Event>,
    additions: Vec<Part>,
    released_additions: Vec<Part>,
    drafts: HashMap<u64, DraftState>,
    next_draft: u64,
    /// Whether this context runs inside an in-flight dispatch (an `on_event`
    /// delivery, or an `init` triggered transitively by one). Publications from
    /// such contexts are main-path cascades and survive the shutdown drain;
    /// driver-context publications are external and get rejected once the
    /// runtime stops.
    in_dispatch: bool,
}

impl<'a> UnitContext<'a> {
    pub(crate) fn new(
        core: &'a Arc<EngineCore>,
        state: &'a mut UnitState,
        current: Option<&'a Event>,
        outputs: &'a mut Vec<Event>,
        in_dispatch: bool,
    ) -> Self {
        UnitContext {
            core,
            state,
            current,
            outputs,
            additions: Vec::new(),
            released_additions: Vec::new(),
            drafts: HashMap::new(),
            next_draft: 1,
            in_dispatch,
        }
    }

    /// Consumes the context, returning the parts the unit added to the delivered
    /// event (both released and pending — returning from the callback is an
    /// implicit release, §3.1.6).
    pub(crate) fn finish(mut self) -> Vec<Part> {
        let mut parts = std::mem::take(&mut self.released_additions);
        parts.append(&mut self.additions);
        parts
    }

    fn checks_labels(&self) -> bool {
        self.core.config.mode.checks_labels()
    }

    fn intercept(&self) {
        if self.core.config.mode.isolates() {
            self.core.isolation.intercept();
        }
    }

    // ------------------------------------------------------------------
    // Introspection
    // ------------------------------------------------------------------

    /// The unit's identifier.
    pub fn unit_id(&self) -> UnitId {
        self.state.id
    }

    /// The unit's diagnostic name.
    pub fn unit_name(&self) -> &str {
        &self.state.name
    }

    /// The unit's current input (contamination) label.
    pub fn input_label(&self) -> Label {
        self.state.input_label.clone()
    }

    /// The unit's current output label.
    pub fn output_label(&self) -> Label {
        self.state.output_label.clone()
    }

    /// Returns `true` if the unit currently holds `kind` over `tag`.
    pub fn has_privilege(&self, tag: &Tag, kind: PrivilegeKind) -> bool {
        self.state.privileges.holds(tag, kind)
    }

    /// The event currently being delivered, if this context was created for
    /// `on_event`.
    pub fn current_event(&self) -> Option<&Event> {
        self.current
    }

    // ------------------------------------------------------------------
    // Tag management
    // ------------------------------------------------------------------

    /// Creates a fresh tag; the unit receives `t+auth` and `t-auth` over it
    /// (§3.1.3).
    pub fn create_tag(&mut self, name: impl AsRef<str>) -> Tag {
        let tag = self
            .core
            .tags
            .create_tag(self.state.id, Some(name.as_ref()));
        self.state
            .privileges
            .absorb(&PrivilegeSet::for_created_tag(&tag));
        self.core.bump_security_epoch();
        tag
    }

    /// Creates a fresh tag and immediately self-delegates `t+` and `t-`, giving the
    /// unit complete control (the common pattern noted in §3.1.3).
    pub fn create_owned_tag(&mut self, name: impl AsRef<str>) -> Tag {
        let tag = self.create_tag(name);
        // Self-delegation always succeeds because creation granted both authorities.
        self.self_delegate(&tag, PrivilegeKind::Add)
            .expect("creator holds t+auth");
        self.self_delegate(&tag, PrivilegeKind::Remove)
            .expect("creator holds t-auth");
        tag
    }

    /// Grants the unit the given privilege over a tag for which it already holds the
    /// corresponding delegation authority.
    pub fn self_delegate(&mut self, tag: &Tag, kind: PrivilegeKind) -> EngineResult<()> {
        let privilege = Privilege::new(tag.clone(), kind);
        self.state.privileges.check_may_delegate(&privilege)?;
        self.state.privileges.grant(privilege);
        self.core.bump_security_epoch();
        Ok(())
    }

    // ------------------------------------------------------------------
    // Event construction (createEvent / addPart / delPart / attachPrivilege)
    // ------------------------------------------------------------------

    /// Creates a new, empty draft event (`createEvent`).
    pub fn create_event(&mut self) -> DraftEvent {
        let id = self.next_draft;
        self.next_draft += 1;
        self.drafts.insert(id, DraftState::default());
        DraftEvent { id }
    }

    /// Adds a part to a draft event (`addPart`).
    ///
    /// The part's label is transparently raised to the unit's output label
    /// (contamination independence); when label checks are disabled the requested
    /// label is used as-is.
    pub fn add_part(
        &mut self,
        draft: &DraftEvent,
        label: Label,
        name: impl AsRef<str>,
        data: Value,
    ) -> EngineResult<()> {
        self.intercept();
        let label = self.effective_label(label);
        let draft_state = self
            .drafts
            .get_mut(&draft.id)
            .ok_or(EngineError::UnknownDraft(draft.id))?;
        draft_state.parts.push(Part::new(name, label, data));
        Ok(())
    }

    /// Removes all parts with the given name and label from a draft (`delPart`).
    pub fn del_part(
        &mut self,
        draft: &DraftEvent,
        label: Label,
        name: impl AsRef<str>,
    ) -> EngineResult<()> {
        self.intercept();
        let label = self.effective_label(label);
        let name = name.as_ref();
        let draft_state = self
            .drafts
            .get_mut(&draft.id)
            .ok_or(EngineError::UnknownDraft(draft.id))?;
        draft_state
            .parts
            .retain(|p| !(p.name() == name && p.label() == &label));
        Ok(())
    }

    /// Attaches a privilege over `tag` to the named part of a draft, creating a
    /// privilege-carrying part for delegation (`attachPrivilegeToPart`, §3.1.5).
    ///
    /// The caller must hold the matching delegation authority (`t+auth`/`t-auth`).
    pub fn attach_privilege_to_part(
        &mut self,
        draft: &DraftEvent,
        name: impl AsRef<str>,
        label: Label,
        privilege: Privilege,
    ) -> EngineResult<()> {
        self.intercept();
        self.state.privileges.check_may_delegate(&privilege)?;
        let label = self.effective_label(label);
        let name = name.as_ref();
        let draft_state = self
            .drafts
            .get_mut(&draft.id)
            .ok_or(EngineError::UnknownDraft(draft.id))?;
        let part = draft_state
            .parts
            .iter_mut()
            .find(|p| p.name() == name && p.label() == &label)
            .ok_or_else(|| {
                EngineError::Event(defcon_events::EventError::NoSuchPart(name.into()))
            })?;
        *part = part.with_additional_privilege(privilege);
        Ok(())
    }

    /// Creates a draft that is a clone of `event` at the unit's output label
    /// (`cloneEvent`): output confidentiality tags are added to every part and only
    /// output integrity tags are retained, and the clone has a fresh identity so
    /// that receivers cannot count the original deliveries.
    pub fn clone_event(&mut self, event: &Event) -> DraftEvent {
        self.intercept();
        let cloned = if self.checks_labels() {
            event.clone_at_output_label(&self.state.output_label)
        } else {
            event.clone_at_output_label(&Label::public())
        };
        let id = self.next_draft;
        self.next_draft += 1;
        self.drafts.insert(
            id,
            DraftState {
                parts: cloned.parts().to_vec(),
                origin_ns: Some(cloned.origin_ns()),
            },
        );
        DraftEvent { id }
    }

    // ------------------------------------------------------------------
    // Reading parts
    // ------------------------------------------------------------------

    /// Returns the label and data of every part named `name` that the unit's input
    /// label allows it to see (`readPart`).
    ///
    /// Reading a privilege-carrying part bestows the attached privileges on the unit
    /// (§3.1.5).
    pub fn read_part(
        &mut self,
        event: &Event,
        name: impl AsRef<str>,
    ) -> EngineResult<Vec<(Label, Value)>> {
        let name = name.as_ref();
        let checks = self.checks_labels();
        let mut results = Vec::new();
        for part in event.parts_named(name) {
            self.intercept();
            if checks && !self.state.can_see(part.label()) {
                continue;
            }
            for privilege in part.privileges() {
                // Reading a privilege-carrying part changes the unit's
                // security state: retire cached dispatch snapshots.
                self.state.privileges.grant(privilege.clone());
                self.core.bump_security_epoch();
            }
            results.push((part.label().clone(), part.data().clone()));
        }
        if results.is_empty() {
            return Err(EngineError::Event(defcon_events::EventError::NoSuchPart(
                name.into(),
            )));
        }
        Ok(results)
    }

    /// Convenience: returns the data of the first visible part with the given name.
    pub fn read_first(&mut self, event: &Event, name: impl AsRef<str>) -> EngineResult<Value> {
        Ok(self.read_part(event, name)?.remove(0).1)
    }

    // ------------------------------------------------------------------
    // Main-path augmentation (partial event processing, §3.1.6)
    // ------------------------------------------------------------------

    /// Adds a part to the event currently being delivered (`addPart` on the main
    /// dataflow path). The part becomes visible to subsequent deliveries once the
    /// unit releases the event (explicitly or by returning from `on_event`).
    pub fn add_part_to_current(
        &mut self,
        label: Label,
        name: impl AsRef<str>,
        data: Value,
    ) -> EngineResult<()> {
        self.intercept();
        if self.current.is_none() {
            return Err(EngineError::InvalidOperation(
                "no event is currently being delivered".into(),
            ));
        }
        let label = self.effective_label(label);
        self.additions.push(Part::new(name, label, data));
        Ok(())
    }

    /// Explicitly releases the event currently being delivered (`release`),
    /// making any parts added so far available to subsequent deliveries.
    pub fn release(&mut self) {
        self.released_additions.append(&mut self.additions);
    }

    // ------------------------------------------------------------------
    // Publishing
    // ------------------------------------------------------------------

    /// Publishes a draft event (`publish`). Drafts without parts are dropped, as
    /// required by Table 1; publishing such a draft is not an error but returns
    /// `Ok(false)`.
    pub fn publish(&mut self, draft: DraftEvent) -> EngineResult<bool> {
        let draft_state = self
            .drafts
            .remove(&draft.id)
            .ok_or(EngineError::UnknownDraft(draft.id))?;
        if draft_state.parts.is_empty() {
            return Ok(false);
        }
        let origin = draft_state
            .origin_ns
            .or_else(|| self.current.map(Event::origin_ns));
        let event = match origin {
            Some(origin_ns) => Event::with_origin(draft_state.parts, origin_ns)?,
            None => Event::new(draft_state.parts)?,
        };
        self.outputs.push(event);
        Ok(true)
    }

    // ------------------------------------------------------------------
    // Subscriptions
    // ------------------------------------------------------------------

    /// Subscribes the unit to events matching `filter` (`subscribe`). Empty filters
    /// are rejected.
    pub fn subscribe(&mut self, filter: Filter) -> EngineResult<SubscriptionId> {
        if filter.is_empty() {
            return Err(EngineError::EmptyFilter);
        }
        let subscription = Subscription::direct(self.state.id, filter);
        let id = subscription.id;
        self.push_subscription(subscription);
        Ok(id)
    }

    /// Declares a managed subscription (`subscribeManaged`): matching events are
    /// processed by engine-managed handler instances created by `factory` at the
    /// contamination each event requires, leaving this unit's own label unchanged.
    pub fn subscribe_managed(
        &mut self,
        factory: UnitFactory,
        filter: Filter,
    ) -> EngineResult<SubscriptionId> {
        if filter.is_empty() {
            return Err(EngineError::EmptyFilter);
        }
        let subscription = Subscription::managed(self.state.id, filter, factory);
        let id = subscription.id;
        self.push_subscription(subscription);
        Ok(id)
    }

    /// Cancels a subscription owned by this unit.
    pub fn unsubscribe(&mut self, id: SubscriptionId) -> EngineResult<()> {
        let mut subs = self.core.subscriptions.write();
        let before = subs.len();
        let filtered: Vec<Subscription> = subs
            .iter()
            .filter(|s| !(s.id == id && s.owner == self.state.id))
            .cloned()
            .collect();
        if filtered.len() == before {
            return Err(EngineError::UnknownSubscription(id.as_u64()));
        }
        *subs = Arc::new(filtered);
        drop(subs);
        self.core.bump_security_epoch();
        Ok(())
    }

    /// Appends a subscription using copy-on-write so that concurrent dispatch passes
    /// keep iterating over their own immutable snapshot.
    fn push_subscription(&mut self, subscription: Subscription) {
        let mut subs = self.core.subscriptions.write();
        let mut next: Vec<Subscription> = (**subs).clone();
        next.push(subscription);
        *subs = Arc::new(next);
        drop(subs);
        self.core.bump_security_epoch();
    }

    // ------------------------------------------------------------------
    // Label management (changeOutLabel / changeInOutLabel)
    // ------------------------------------------------------------------

    /// Adds or removes a tag in the unit's output label only (`changeOutLabel`).
    pub fn change_out_label(
        &mut self,
        component: Component,
        op: LabelOp,
        tag: &Tag,
    ) -> EngineResult<()> {
        let new_output =
            self.apply_label_op(&self.state.output_label.clone(), component, op, tag)?;
        self.state.output_label = new_output;
        self.core.bump_security_epoch();
        Ok(())
    }

    /// Adds or removes a tag in both the input and output labels
    /// (`changeInOutLabel`).
    pub fn change_in_out_label(
        &mut self,
        component: Component,
        op: LabelOp,
        tag: &Tag,
    ) -> EngineResult<()> {
        let new_input = self.apply_label_op(&self.state.input_label.clone(), component, op, tag)?;
        let new_output =
            self.apply_label_op(&self.state.output_label.clone(), component, op, tag)?;
        self.state.input_label = new_input;
        self.state.output_label = new_output;
        self.core.bump_security_epoch();
        Ok(())
    }

    fn apply_label_op(
        &self,
        label: &Label,
        component: Component,
        op: LabelOp,
        tag: &Tag,
    ) -> EngineResult<Label> {
        if self.checks_labels() {
            match op {
                LabelOp::Add => self.state.privileges.check_may_add(tag)?,
                LabelOp::Remove => self.state.privileges.check_may_remove(tag)?,
            }
        }
        Ok(match op {
            LabelOp::Add => label.with_tag(component, tag.clone()),
            LabelOp::Remove => label.without_tag(component, tag),
        })
    }

    // ------------------------------------------------------------------
    // Unit instantiation
    // ------------------------------------------------------------------

    /// Instantiates a new unit at a given label with delegated privileges
    /// (`instantiateUnit`).
    ///
    /// Every privilege in `spec.privileges` must be delegatable by the caller
    /// (`t±auth`). The new unit inherits the caller's contamination:
    ///
    /// * its input label accumulates the caller's input confidentiality tags and any
    ///   requested integrity restriction (requiring *more* integrity on inputs is
    ///   always safe and is how Pair Monitors are instantiated "with read integrity
    ///   s", §6.1 step 2);
    /// * its output label accumulates the caller's output confidentiality tags and
    ///   may not claim more integrity than the caller's output label allows.
    pub fn instantiate_unit(
        &mut self,
        mut spec: UnitSpec,
        instance: Box<dyn Unit>,
    ) -> EngineResult<UnitId> {
        if self.checks_labels() {
            for privilege in spec.privileges.iter().collect::<Vec<_>>() {
                self.state.privileges.check_may_delegate(&privilege)?;
            }
            spec.input_label = Label::new(
                spec.input_label
                    .confidentiality()
                    .union(self.state.input_label.confidentiality()),
                spec.input_label
                    .integrity()
                    .union(self.state.input_label.integrity()),
            );
            spec.output_label = Label::new(
                spec.output_label
                    .confidentiality()
                    .union(self.state.output_label.confidentiality()),
                spec.output_label
                    .integrity()
                    .intersection(self.state.output_label.integrity()),
            );
        }
        self.core.register_unit(spec, instance, self.in_dispatch)
    }

    // ------------------------------------------------------------------
    // Internal helpers
    // ------------------------------------------------------------------

    /// Applies contamination independence: `S' = S ∪ S_out`, `I' = I ∩ I_out`.
    fn effective_label(&self, requested: Label) -> Label {
        if self.checks_labels() {
            requested.raised_to_output(&self.state.output_label)
        } else {
            requested
        }
    }
}
