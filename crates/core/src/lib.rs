//! `defcon-core`: the DEFCon event processing engine.
//!
//! This crate is the paper's primary contribution (§3.2, §5): a runtime environment
//! for event processing units that enforces decentralised event flow control (DEFC)
//! on every event exchanged between units.
//!
//! The engine provides:
//!
//! * **Label/tag management** — a [`TagStore`] creating opaque tags on behalf of
//!   units and tracking per-unit input/output labels and privileges.
//! * **Inter-unit communication** — a publish/subscribe [`Dispatcher`] that matches
//!   events against subscriptions, checking the can-flow-to relation per part at
//!   matching time, and delivers events to units without revealing who else was
//!   notified.
//! * **Unit life-cycle management** — units are instantiated inside isolates (via
//!   `defcon-isolation`), may instantiate further units at a chosen contamination
//!   level, and interact with the engine exclusively through the Table 1 API
//!   exposed by [`UnitContext`].
//!
//! The [`SecurityMode`] enum selects one of the four configurations evaluated in
//! Figures 5–7 of the paper: `NoSecurity`, `LabelsFreeze`, `LabelsClone` and
//! `LabelsFreezeIsolation`.
//!
//! # Quick start
//!
//! ```
//! use defcon_core::{Engine, EngineConfig, SecurityMode, Unit, UnitContext, UnitSpec};
//! use defcon_core::EngineResult;
//! use defcon_defc::Label;
//! use defcon_events::{Event, Filter, Value};
//!
//! struct Printer;
//! impl Unit for Printer {
//!     fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
//!         ctx.subscribe(Filter::for_type("greeting"))?;
//!         Ok(())
//!     }
//!     fn on_event(&mut self, ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()> {
//!         let parts = ctx.read_part(event, "text")?;
//!         assert_eq!(parts[0].1.as_str(), Some("hello"));
//!         Ok(())
//!     }
//! }
//!
//! let engine = Engine::new(EngineConfig::new(SecurityMode::LabelsFreeze));
//! let printer = engine.register_unit(UnitSpec::new("printer"), Box::new(Printer)).unwrap();
//! # let _ = printer;
//!
//! // Publish an event from outside (e.g. a driver thread) on behalf of a source unit.
//! let source = engine.register_unit(UnitSpec::new("source"), Box::new(defcon_core::unit::NullUnit)).unwrap();
//! engine.with_unit(source, |_, ctx| {
//!     let draft = ctx.create_event();
//!     ctx.add_part(&draft, Label::public(), "type", Value::str("greeting"))?;
//!     ctx.add_part(&draft, Label::public(), "text", Value::str("hello"))?;
//!     ctx.publish(draft)
//! }).unwrap();
//!
//! engine.pump_until_idle().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod context;
pub mod dispatcher;
pub mod engine;
pub mod error;
pub mod subscription;
pub mod tag_store;
pub mod unit;

pub use context::{DraftEvent, UnitContext};
pub use dispatcher::Dispatcher;
pub use engine::{Engine, EngineConfig, EngineStats, SecurityMode};
pub use error::{EngineError, EngineResult};
pub use subscription::{Subscription, SubscriptionId, SubscriptionKind};
pub use tag_store::TagStore;
pub use unit::{Unit, UnitFactory, UnitId, UnitSpec, UnitState};
