//! `defcon-core`: the DEFCon event processing engine.
//!
//! This crate is the paper's primary contribution (§3.2, §5): a runtime environment
//! for event processing units that enforces decentralised event flow control (DEFC)
//! on every event exchanged between units.
//!
//! The engine provides:
//!
//! * **Label/tag management** — a [`TagStore`] creating opaque tags on behalf of
//!   units and tracking per-unit input/output labels and privileges.
//! * **Inter-unit communication** — a publish/subscribe [`Dispatcher`] that matches
//!   events against subscriptions, checking the can-flow-to relation per part at
//!   matching time, and delivers events to units without revealing who else was
//!   notified.
//! * **Unit life-cycle management** — units are instantiated inside isolates (via
//!   `defcon-isolation`), may instantiate further units at a chosen contamination
//!   level, and interact with the engine exclusively through the Table 1 API
//!   exposed by [`UnitContext`].
//!
//! The [`SecurityMode`] enum selects one of the four configurations evaluated in
//! Figures 5–7 of the paper: `NoSecurity`, `LabelsFreeze`, `LabelsClone` and
//! `LabelsFreezeIsolation`.
//!
//! # Quick start
//!
//! The runtime API follows an [`EngineBuilder`] → [`Engine`] → [`EngineHandle`]
//! lifecycle: configure, register units, start (optionally with dispatcher
//! worker threads), publish through typed [`Publisher`] handles, and shut down
//! gracefully.
//!
//! ```
//! use defcon_core::{Engine, EngineResult, EventDraft, SecurityMode, Unit, UnitContext, UnitSpec};
//! use defcon_core::unit::NullUnit;
//! use defcon_events::{Event, Filter, Value};
//!
//! struct Printer;
//! impl Unit for Printer {
//!     fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
//!         ctx.subscribe(Filter::for_type("greeting"))?;
//!         Ok(())
//!     }
//!     fn on_event(&mut self, ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()> {
//!         let parts = ctx.read_part(event, "text")?;
//!         assert_eq!(parts[0].1.as_str(), Some("hello"));
//!         Ok(())
//!     }
//! }
//!
//! let engine = Engine::builder()
//!     .mode(SecurityMode::LabelsFreeze)
//!     .workers(2) // distinct units dispatch in parallel; use 0 for manual pumping
//!     .build();
//! engine.register_unit(UnitSpec::new("printer"), Box::new(Printer)).unwrap();
//! let source = engine.register_unit(UnitSpec::new("source"), Box::new(NullUnit)).unwrap();
//!
//! // Start the runtime and publish from outside (e.g. a market-data feed
//! // thread) through a typed publisher handle.
//! let handle = engine.start();
//! let feed = handle.publisher(source).unwrap();
//! feed.publish(
//!     EventDraft::new()
//!         .public_part("type", Value::str("greeting"))
//!         .public_part("text", Value::str("hello")),
//! ).unwrap();
//!
//! // Graceful termination: drain the queue, join the workers.
//! handle.shutdown().unwrap();
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod admission;
pub mod builder;
pub mod context;
pub mod dispatcher;
pub mod engine;
pub mod error;
pub mod fault;
pub mod handle;
mod pool;
mod run_queue;
mod steal;
mod sub_index;
pub mod subscription;
pub mod tag_store;
pub mod unit;

pub use admission::{
    Admission, AdmissionCounters, ElasticConfig, FullQueuePolicy, IngressConfig, TryPublish,
};
pub use builder::{auto_worker_count, EngineBuilder};
pub use context::{DraftEvent, UnitContext};
pub use dispatcher::Dispatcher;
pub use engine::{Engine, EngineConfig, EngineStats, QueueStats, RecoveryReport, SecurityMode};
pub use error::{EngineError, EngineResult};
pub use fault::{FaultAction, FaultCounters, FaultPolicy};
pub use handle::{EngineHandle, EventDraft, Publisher};
pub use subscription::{Subscription, SubscriptionId, SubscriptionKind};
pub use tag_store::TagStore;
pub use unit::{Unit, UnitFactory, UnitId, UnitSpec, UnitState};

// Durability configuration types, re-exported so deployments can enable the
// write-ahead log (`EngineBuilder::wal`) without a direct crate dependency.
pub use defcon_durability::{FsyncPolicy, WalConfig};
