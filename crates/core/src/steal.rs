//! Per-worker local run deques with whole-run stealing (scheduler v3).
//!
//! Each dispatcher worker owns a local deque of *runs* — contiguous slices of
//! one shard's FIFO, popped from the global [`RunQueue`](crate::run_queue::RunQueue)
//! in one lock acquisition. The owner works its deque front-to-back with no
//! synchronisation against producers; when a sibling runs dry (its own deque
//! empty, global queue empty) it steals a **whole run** from the deepest
//! sibling's deque instead of individual events. Runs never split across
//! workers, so the FIFO order within a run — the order a publish batch landed
//! on its shard in — is preserved no matter who ends up dispatching it; the
//! engine has never promised a global order across independent runs (see the
//! run-queue module docs), and stealing does not change that.
//!
//! This is the crossbeam-deque idiom (owner-pops-front, thief-steals-back)
//! over the vendored `crossbeam::deque` shim, with the grid itself holding the
//! stealer handles plus a parked copy of each worker's [`Worker`] end that the
//! worker thread claims at startup.
//!
//! Accounting invariant: every event inside a local deque has already left the
//! global queue's `len` but still counts in its `pending` — exactly like an
//! in-flight batch. A worker that exits (or panics) with runs still parked
//! locally must flush them back via `RunQueue::requeue_batch`, which restores
//! `len` without double-counting `pending`; [`LocalRuns`] is the RAII guard
//! that makes the flush unconditional.

use std::sync::atomic::{AtomicU64, Ordering};

use crossbeam::deque::{Stealer, Worker};
use defcon_events::Event;
use parking_lot::Mutex;

use crate::run_queue::RunQueue;

/// One contiguous slice of a shard's FIFO — the unit of stealing.
pub(crate) type Run = Vec<Event>;

/// The shared side of the per-worker deques: stealer handles for every worker
/// slot, plus the steal counter `queue_stats()` exports.
pub(crate) struct StealGrid {
    slots: Vec<GridSlot>,
    steals: AtomicU64,
}

struct GridSlot {
    /// The owner end, parked here until the worker thread claims it. A `None`
    /// slot means the worker is live (or the slot was never claimed back).
    worker: Mutex<Option<Worker<Run>>>,
    stealer: Stealer<Run>,
}

impl StealGrid {
    /// Creates a grid with one deque per worker slot.
    pub(crate) fn new(workers: usize) -> Self {
        let slots = (0..workers)
            .map(|_| {
                let worker = Worker::new_fifo();
                let stealer = worker.stealer();
                GridSlot {
                    worker: Mutex::new(Some(worker)),
                    stealer,
                }
            })
            .collect();
        StealGrid {
            slots,
            steals: AtomicU64::new(0),
        }
    }

    /// Claims the owner end of slot `index` for its worker thread. Panics if
    /// the slot was already claimed — each worker index runs exactly once.
    pub(crate) fn claim_worker(&self, index: usize) -> Worker<Run> {
        self.slots[index]
            .worker
            .lock()
            .take()
            .expect("each worker slot is claimed exactly once")
    }

    /// Current depth (in runs) of slot `index`'s deque — a lock-free probe.
    #[cfg(test)]
    pub(crate) fn depth(&self, index: usize) -> usize {
        self.slots[index].stealer.len()
    }

    /// Steals one whole run from the deepest sibling of `thief`, or `None`
    /// when every sibling deque is empty. Depths are probed lock-free first so
    /// an idle grid costs N atomic loads, not N lock acquisitions; the steal
    /// itself re-races (the probe is advisory), falling through to the next
    /// deepest candidate if the victim drained in between.
    pub(crate) fn steal_for(&self, thief: usize) -> Option<Run> {
        loop {
            let mut victim = None;
            let mut deepest = 0;
            for (index, slot) in self.slots.iter().enumerate() {
                if index == thief {
                    continue;
                }
                let depth = slot.stealer.len();
                if depth > deepest {
                    deepest = depth;
                    victim = Some(index);
                }
            }
            let victim = victim?;
            if let Some(run) = self.slots[victim].stealer.steal().success() {
                self.steals.fetch_add(1, Ordering::Relaxed);
                return Some(run);
            }
            // The probed victim drained before we got there; re-probe. The
            // loop terminates because each iteration observes strictly less
            // total work or succeeds.
        }
    }

    /// Total successful whole-run steals since engine start.
    pub(crate) fn steals(&self) -> u64 {
        self.steals.load(Ordering::Relaxed)
    }
}

impl std::fmt::Debug for StealGrid {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("StealGrid")
            .field("slots", &self.slots.len())
            .field("steals", &self.steals())
            .finish()
    }
}

/// RAII owner of one worker's local deque: pops runs for the worker loop and
/// flushes any leftover runs back to the global queue on drop, so a panicking
/// (or exiting) worker can never strand events that are still `pending`.
pub(crate) struct LocalRuns<'a> {
    queue: &'a RunQueue,
    worker: Worker<Run>,
}

impl<'a> LocalRuns<'a> {
    pub(crate) fn new(queue: &'a RunQueue, worker: Worker<Run>) -> Self {
        LocalRuns { queue, worker }
    }

    /// Parks a run on the local deque (newest at the back, where thieves look).
    pub(crate) fn push(&self, run: Run) {
        self.worker.push(run);
    }

    /// Pops the oldest local run, preserving the order runs were prefetched in.
    pub(crate) fn pop(&self) -> Option<Run> {
        self.worker.pop()
    }

    /// Whether the local deque is empty — the park-down grace check consults
    /// this so a worker never parks while it still owns undispatched runs.
    pub(crate) fn is_empty(&self) -> bool {
        self.worker.is_empty()
    }
}

impl Drop for LocalRuns<'_> {
    fn drop(&mut self) {
        while let Some(run) = self.worker.pop() {
            self.queue.requeue_batch(run);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_defc::Label;
    use defcon_events::{EventBuilder, Value};

    fn event(n: i64) -> Event {
        EventBuilder::new()
            .part("n", Label::public(), Value::Int(n))
            .build()
            .unwrap()
    }

    fn values(run: &[Event]) -> Vec<i64> {
        run.iter()
            .map(
                |event| match event.first_part("n").map(|part| part.data().clone()) {
                    Some(Value::Int(n)) => n,
                    other => panic!("unexpected part payload: {other:?}"),
                },
            )
            .collect()
    }

    /// The deterministic mid-drain steal pin: worker 0 has prefetched two
    /// runs; while it is busy dispatching the first, a thief steals — and must
    /// get the *whole* second run, in order, with nothing lost or duplicated.
    #[test]
    fn a_mid_drain_steal_takes_a_whole_run_in_order_exactly_once() {
        let grid = StealGrid::new(2);
        let owner = grid.claim_worker(0);
        owner.push((0..4).map(event).collect::<Run>());
        owner.push((4..8).map(event).collect::<Run>());

        // Owner starts draining: takes its oldest run off the deque (it is now
        // "mid-drain" — dispatching run 1 outside any lock).
        let first = owner.pop().expect("owner takes the oldest run");
        assert_eq!(values(&first), vec![0, 1, 2, 3]);

        // Thief (worker 1) steals while the owner is busy: it must take the
        // remaining run whole — never a prefix or suffix of it.
        let stolen = grid.steal_for(1).expect("sibling deque has a run");
        assert_eq!(
            values(&stolen),
            vec![4, 5, 6, 7],
            "the stolen run is intact and in per-run FIFO order"
        );
        assert_eq!(grid.steals(), 1);

        // Nothing left: exactly-once across owner and thief.
        assert!(owner.pop().is_none());
        assert!(grid.steal_for(1).is_none());
    }

    #[test]
    fn steal_prefers_the_deepest_sibling_and_skips_the_thief_itself() {
        let grid = StealGrid::new(3);
        let shallow = grid.claim_worker(0);
        let deep = grid.claim_worker(1);
        let thief = grid.claim_worker(2);
        shallow.push(vec![event(0)]);
        deep.push(vec![event(10)]);
        deep.push(vec![event(11)]);
        thief.push(vec![event(99)]); // the thief's own work must never be "stolen"

        let run = grid.steal_for(2).expect("siblings have work");
        assert_eq!(values(&run), vec![11], "newest run of the deepest sibling");
        assert_eq!(grid.depth(1), 1);
        assert_eq!(grid.depth(2), 1, "the thief's own deque is untouched");
    }

    #[test]
    fn dropping_local_runs_flushes_leftovers_back_to_the_global_queue() {
        let queue = RunQueue::new(1);
        queue.push_batch((0..6).map(event).collect());
        let run_a = queue.pop_batch(0, 3);
        let run_b = queue.pop_batch(0, 3);
        assert_eq!(queue.len(), 0);
        assert_eq!(queue.pending(), 6);

        let grid = StealGrid::new(1);
        {
            let local = LocalRuns::new(&queue, grid.claim_worker(0));
            local.push(run_a);
            local.push(run_b);
            assert!(!local.is_empty());
            // Simulated worker death: the guard drops with runs still parked.
        }
        assert_eq!(
            queue.len(),
            6,
            "flushed runs are visible to other consumers again"
        );
        assert_eq!(queue.pending(), 6, "pending is not double-counted");
        let drained = queue.pop_batch(0, 6);
        assert_eq!(values(&drained), vec![0, 1, 2, 3, 4, 5]);
        queue.complete_many(6);
        assert!(queue.is_idle());
    }
}
