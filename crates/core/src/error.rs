//! Engine error type.

use std::fmt;

use defcon_defc::DefcError;
use defcon_events::EventError;
use defcon_isolation::SecurityException;

/// Result alias used across the engine.
pub type EngineResult<T> = Result<T, EngineError>;

/// Errors surfaced to units and drivers by the DEFCon engine.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum EngineError {
    /// A DEFC model violation (missing privilege, forbidden flow).
    Defc(DefcError),
    /// An event-model error (frozen value, empty event, missing part).
    Event(EventError),
    /// An isolation violation (access to a non-white-listed target).
    Isolation(SecurityException),
    /// The referenced unit does not exist.
    UnknownUnit(String),
    /// The referenced unit was quarantined by the engine's
    /// [`FaultPolicy`](crate::FaultPolicy): it repeatedly panicked and no
    /// standby was available (or the policy demands quarantine). Publishing as
    /// it fails loudly instead of feeding events that would be shed.
    UnitQuarantined(String),
    /// The referenced subscription does not exist or belongs to another unit.
    UnknownSubscription(u64),
    /// The referenced draft event does not exist (already published or dropped).
    UnknownDraft(u64),
    /// A subscription was registered with an empty filter (§5 forbids this).
    EmptyFilter,
    /// The unit attempted an operation the engine forbids in its current state.
    InvalidOperation(String),
    /// The write-ahead log failed (I/O error on append or recovery scan). The
    /// publish that triggered it was *not* enqueued: the write-ahead contract
    /// refuses work it cannot make durable.
    Durability(String),
}

impl fmt::Display for EngineError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            EngineError::Defc(e) => write!(f, "event flow control violation: {e}"),
            EngineError::Event(e) => write!(f, "event error: {e}"),
            EngineError::Isolation(e) => write!(f, "isolation violation: {e}"),
            EngineError::UnknownUnit(name) => write!(f, "unknown unit: {name}"),
            EngineError::UnitQuarantined(name) => write!(f, "unit quarantined: {name}"),
            EngineError::UnknownSubscription(id) => write!(f, "unknown subscription: {id}"),
            EngineError::UnknownDraft(id) => write!(f, "unknown draft event: {id}"),
            EngineError::EmptyFilter => {
                write!(f, "subscriptions require a non-empty filter (Table 1)")
            }
            EngineError::InvalidOperation(msg) => write!(f, "invalid operation: {msg}"),
            EngineError::Durability(msg) => write!(f, "durability failure: {msg}"),
        }
    }
}

impl std::error::Error for EngineError {}

impl From<DefcError> for EngineError {
    fn from(e: DefcError) -> Self {
        EngineError::Defc(e)
    }
}

impl From<EventError> for EngineError {
    fn from(e: EventError) -> Self {
        EngineError::Event(e)
    }
}

impl From<SecurityException> for EngineError {
    fn from(e: SecurityException) -> Self {
        EngineError::Isolation(e)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use defcon_defc::TagId;

    #[test]
    fn conversions_and_display() {
        let defc: EngineError = DefcError::UnknownTag(TagId::from_raw(1)).into();
        assert!(defc.to_string().contains("flow control"));

        let event: EngineError = EventError::EmptyEvent.into();
        assert!(event.to_string().contains("event"));

        let isolation: EngineError = SecurityException::new("t", "r").into();
        assert!(isolation.to_string().contains("isolation"));

        assert!(EngineError::EmptyFilter.to_string().contains("filter"));
        assert!(EngineError::UnknownUnit("x".into())
            .to_string()
            .contains('x'));
        assert!(EngineError::UnitQuarantined("unit#7".into())
            .to_string()
            .contains("quarantined"));
        assert!(EngineError::UnknownSubscription(3)
            .to_string()
            .contains('3'));
        assert!(EngineError::UnknownDraft(9).to_string().contains('9'));
        assert!(EngineError::InvalidOperation("nope".into())
            .to_string()
            .contains("nope"));
    }
}
