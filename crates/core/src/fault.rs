//! Fault policy: what the engine does about a unit whose handler keeps
//! panicking.
//!
//! Every delivery is already panic-isolated (the dispatcher catches unwinds
//! per `on_event` call, so a misbehaving unit can neither take a worker down
//! nor rob later subscribers of the same event). A [`FaultPolicy`] adds the
//! next step: the engine counts panics per unit over a sliding window of
//! deliveries and, when a unit exceeds `max_panics` within `window`
//! deliveries, *trips* it —
//!
//! * [`FaultAction::AutoSwap`] hot-replaces the unit with the standby
//!   registered via [`Engine::set_standby`](crate::Engine::set_standby)
//!   (through the same drain-and-swap as
//!   [`Engine::swap_unit`](crate::Engine::swap_unit), so exactly-once and
//!   per-unit order hold across the replacement). A tripped unit with no
//!   standby falls back to quarantine.
//! * [`FaultAction::Quarantine`] marks the unit quarantined: subsequent
//!   deliveries to it are shed loudly (counted per delivery in
//!   `queue_stats().quarantine_shed`), and publishing *as* it fails with
//!   [`EngineError::UnitQuarantined`](crate::EngineError::UnitQuarantined).
//!
//! All fault activity is visible in [`QueueStats`](crate::QueueStats):
//! `unit_panics`, `unit_swaps`, `fault_swaps`, `units_quarantined` and
//! `quarantine_shed`.

use std::sync::atomic::{AtomicU64, Ordering};

/// What happens when a unit trips its fault window.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum FaultAction {
    /// Swap the tripped unit for its registered standby
    /// ([`Engine::set_standby`](crate::Engine::set_standby)); quarantine it
    /// when no standby is registered.
    #[default]
    AutoSwap,
    /// Quarantine the tripped unit: shed its deliveries loudly until an
    /// explicit [`Engine::swap_unit`](crate::Engine::swap_unit) replaces it.
    Quarantine,
}

impl FaultAction {
    /// Stable lowercase key for bench/CI reports.
    pub fn as_str(&self) -> &'static str {
        match self {
            FaultAction::AutoSwap => "auto-swap",
            FaultAction::Quarantine => "quarantine",
        }
    }
}

/// Per-unit panic budget: more than `max_panics` panicking deliveries within a
/// window of `window` deliveries trips the configured [`FaultAction`].
///
/// The window is counted in *deliveries to that unit*, not wall-clock time, so
/// fault handling is deterministic under test and replay. `window == 0` means
/// the panic count never resets (a lifetime budget).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct FaultPolicy {
    /// Panicking deliveries that trip the unit (at least 1; the trip fires on
    /// the `max_panics`-th panic inside one window).
    pub max_panics: u32,
    /// Deliveries per counting window; 0 disables the reset.
    pub window: u32,
    /// What tripping does.
    pub action: FaultAction,
}

impl FaultPolicy {
    /// A policy tripping after `max_panics` panics (clamped to at least 1)
    /// with an unbounded window and the default [`FaultAction::AutoSwap`].
    pub fn new(max_panics: u32) -> Self {
        FaultPolicy {
            max_panics: max_panics.max(1),
            window: 0,
            action: FaultAction::default(),
        }
    }

    /// Sets the delivery-count window after which the panic count resets.
    pub fn window(mut self, window: u32) -> Self {
        self.window = window;
        self
    }

    /// Sets the action taken when a unit trips.
    pub fn action(mut self, action: FaultAction) -> Self {
        self.action = action;
        self
    }
}

/// Swap and fault telemetry counters, exported through
/// [`Engine::queue_stats`](crate::Engine::queue_stats). Kept separate from
/// [`EngineStats`](crate::EngineStats) so the classic counters stay exactly
/// what they were.
#[derive(Debug, Default)]
pub struct FaultCounters {
    /// Successful unit swaps, manual and fault-triggered.
    pub unit_swaps: AtomicU64,
    /// The subset of `unit_swaps` tripped by the fault policy.
    pub fault_swaps: AtomicU64,
    /// Panicking deliveries (a subset of `EngineStats::unit_errors`).
    pub unit_panics: AtomicU64,
    /// Units put into quarantine by the fault policy.
    pub units_quarantined: AtomicU64,
    /// Deliveries shed because their target was quarantined (one count per
    /// shed delivery — loud accounting, like ingress shed).
    pub quarantine_shed: AtomicU64,
}

impl FaultCounters {
    /// Successful unit swaps, manual and fault-triggered.
    pub fn unit_swaps(&self) -> u64 {
        self.unit_swaps.load(Ordering::Relaxed)
    }

    /// Fault-policy-triggered swaps.
    pub fn fault_swaps(&self) -> u64 {
        self.fault_swaps.load(Ordering::Relaxed)
    }

    /// Panicking deliveries.
    pub fn unit_panics(&self) -> u64 {
        self.unit_panics.load(Ordering::Relaxed)
    }

    /// Units quarantined.
    pub fn units_quarantined(&self) -> u64 {
        self.units_quarantined.load(Ordering::Relaxed)
    }

    /// Deliveries shed at quarantined units.
    pub fn quarantine_shed(&self) -> u64 {
        self.quarantine_shed.load(Ordering::Relaxed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policy_builder_clamps_and_applies() {
        let policy = FaultPolicy::new(0);
        assert_eq!(policy.max_panics, 1, "a zero budget clamps to one");
        assert_eq!(policy.window, 0);
        assert_eq!(policy.action, FaultAction::AutoSwap);

        let policy = FaultPolicy::new(3)
            .window(64)
            .action(FaultAction::Quarantine);
        assert_eq!(policy.max_panics, 3);
        assert_eq!(policy.window, 64);
        assert_eq!(policy.action, FaultAction::Quarantine);
        assert_eq!(policy.action.as_str(), "quarantine");
        assert_eq!(FaultAction::AutoSwap.as_str(), "auto-swap");
    }

    #[test]
    fn counters_start_at_zero() {
        let counters = FaultCounters::default();
        assert_eq!(counters.unit_swaps(), 0);
        assert_eq!(counters.fault_swaps(), 0);
        assert_eq!(counters.unit_panics(), 0);
        assert_eq!(counters.units_quarantined(), 0);
        assert_eq!(counters.quarantine_shed(), 0);
    }
}
