//! Crash-recovery integration: publish batches with `fsync: EveryBatch`, drop
//! the engine without shutdown (the queue's contents die with the process),
//! recover the log into a fresh engine and assert exactly-once delivery with
//! per-unit order matching a clean run — including a torn-tail variant.

use std::fs;
use std::path::PathBuf;
use std::sync::Arc;

use defcon_core::{
    Engine, EngineResult, EventDraft, FsyncPolicy, SecurityMode, Unit, UnitContext, UnitSpec,
    WalConfig,
};
use defcon_events::{Event, Filter, Value};
use parking_lot::Mutex;

fn temp_dir(name: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("defcon-recovery-{}-{name}", std::process::id()));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// Records the `seq` part of every delivered event, in delivery order.
struct Recorder {
    lane: &'static str,
    log: Arc<Mutex<Vec<i64>>>,
}

impl Unit for Recorder {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        ctx.subscribe(Filter::for_type(self.lane))?;
        Ok(())
    }

    fn on_event(&mut self, _ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()> {
        if let Some(Value::Int(seq)) = event.first_part("seq").map(|p| p.data()) {
            self.log.lock().push(*seq);
        }
        Ok(())
    }
}

struct Fixture {
    engine: Engine,
    source: defcon_core::UnitId,
    alpha_id: defcon_core::UnitId,
    alpha: Arc<Mutex<Vec<i64>>>,
    beta: Arc<Mutex<Vec<i64>>>,
}

/// A manual (workers(0)) engine: dispatch only happens when pumped, so an
/// un-pumped drop models a crash with events accepted but not yet processed.
fn build_engine(wal: Option<WalConfig>) -> Fixture {
    let mut builder = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .batch_size(8);
    if let Some(config) = wal {
        builder = builder.wal(config);
    }
    let engine = builder.build();
    let alpha = Arc::new(Mutex::new(Vec::new()));
    let beta = Arc::new(Mutex::new(Vec::new()));
    let alpha_id = engine
        .register_unit(
            UnitSpec::new("alpha-recorder"),
            Box::new(Recorder {
                lane: "alpha",
                log: Arc::clone(&alpha),
            }),
        )
        .unwrap();
    engine
        .register_unit(
            UnitSpec::new("beta-recorder"),
            Box::new(Recorder {
                lane: "beta",
                log: Arc::clone(&beta),
            }),
        )
        .unwrap();
    let source = engine
        .register_unit(
            UnitSpec::new("source"),
            Box::new(defcon_core::unit::NullUnit),
        )
        .unwrap();
    Fixture {
        engine,
        source,
        alpha_id,
        alpha,
        beta,
    }
}

/// Ten batches of eight drafts, alternating lanes, seq strictly increasing —
/// so per-unit order violations and duplicates are both detectable.
fn workload() -> Vec<Vec<EventDraft>> {
    let mut seq = 0i64;
    (0..10)
        .map(|_| {
            (0..8)
                .map(|_| {
                    seq += 1;
                    let lane = if seq % 2 == 0 { "alpha" } else { "beta" };
                    EventDraft::new()
                        .public_part("type", Value::str(lane))
                        .public_part("seq", Value::Int(seq))
                })
                .collect()
        })
        .collect()
}

fn publish_all(fixture: &Fixture) -> usize {
    let publisher = fixture.engine.publisher(fixture.source).unwrap();
    workload()
        .into_iter()
        .map(|batch| publisher.publish_batch(batch).unwrap().accepted())
        .sum()
}

fn clean_run() -> (Vec<i64>, Vec<i64>) {
    let fixture = build_engine(None);
    let handle = fixture.engine.start();
    assert_eq!(publish_all(&fixture), 80);
    handle.pump_until_idle().unwrap();
    handle.shutdown().unwrap();
    let alpha = fixture.alpha.lock().clone();
    let beta = fixture.beta.lock().clone();
    (alpha, beta)
}

#[test]
fn unclean_drop_then_recover_matches_clean_run() {
    let (clean_alpha, clean_beta) = clean_run();
    assert_eq!(clean_alpha.len() + clean_beta.len(), 80);

    // "Crash": accept all batches durably, never dispatch, drop everything.
    let dir = temp_dir("crash");
    let crashed = build_engine(Some(WalConfig::new(&dir).fsync(FsyncPolicy::EveryBatch)));
    assert_eq!(publish_all(&crashed), 80);
    assert_eq!(crashed.engine.stats().dispatched(), 0);
    drop(crashed);

    // Recover into a fresh engine with the same units and replay through
    // normal dispatch.
    let recovered = build_engine(None);
    let report = recovered.engine.recover_from(&dir).unwrap();
    assert_eq!(report.batches, 10);
    assert_eq!(report.events, 80);
    assert!(!report.torn_tail_truncated);

    let handle = recovered.engine.start();
    handle.pump_until_idle().unwrap();
    handle.shutdown().unwrap();

    // Exactly-once: same deliveries, same per-unit order as the clean run.
    assert_eq!(*recovered.alpha.lock(), clean_alpha);
    assert_eq!(*recovered.beta.lock(), clean_beta);
    assert_eq!(recovered.engine.stats().dispatched(), 80);
    assert_eq!(recovered.engine.stats().published(), 80);
}

#[test]
fn torn_tail_is_truncated_and_the_prefix_replays_exactly_once() {
    let (clean_alpha, clean_beta) = clean_run();

    let dir = temp_dir("torn");
    let crashed = build_engine(Some(WalConfig::new(&dir).fsync(FsyncPolicy::EveryBatch)));
    assert_eq!(publish_all(&crashed), 80);
    drop(crashed);

    // Tear the log mid-frame: chop a few bytes off the single segment, as a
    // crash between write and fsync would.
    let segment = fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .find(|p| p.extension().is_some_and(|e| e == "seg"))
        .unwrap();
    let bytes = fs::read(&segment).unwrap();
    fs::write(&segment, &bytes[..bytes.len() - 5]).unwrap();

    let recovered = build_engine(None);
    let report = recovered.engine.recover_from(&dir).unwrap();
    assert!(report.torn_tail_truncated);
    assert_eq!(report.batches, 9, "the torn final batch is dropped");
    assert_eq!(report.events, 72);

    let handle = recovered.engine.start();
    handle.pump_until_idle().unwrap();
    handle.shutdown().unwrap();

    // The surviving prefix is delivered exactly once, in clean-run order.
    let alpha = recovered.alpha.lock().clone();
    let beta = recovered.beta.lock().clone();
    assert_eq!(alpha.len() + beta.len(), 72);
    assert_eq!(alpha[..], clean_alpha[..alpha.len()]);
    assert_eq!(beta[..], clean_beta[..beta.len()]);
}

#[test]
fn recovery_into_an_engine_with_its_own_wal_does_not_relog() {
    let dir = temp_dir("relog");
    let crashed = build_engine(Some(WalConfig::new(&dir).fsync(FsyncPolicy::EveryBatch)));
    assert_eq!(publish_all(&crashed), 80);
    drop(crashed);

    // Recover in place: the new engine logs to the same directory. Recovery
    // must not re-append the replayed batches — only genuinely new publishes
    // grow the log.
    let segment_count = |dir: &PathBuf| fs::read_dir(dir).unwrap().count();
    let before = segment_count(&dir);
    let recovered = build_engine(Some(WalConfig::new(&dir).fsync(FsyncPolicy::Never)));
    let report = recovered.engine.recover_from(&dir).unwrap();
    assert_eq!(report.events, 80);
    // Opening the writer adds exactly one fresh segment; replay adds nothing.
    assert_eq!(segment_count(&dir), before + 1);

    let handle = recovered.engine.start();
    handle.pump_until_idle().unwrap();
    assert_eq!(recovered.engine.stats().dispatched(), 80);

    // A second crash+recovery now sees the same 80 events exactly once more —
    // the in-place log did not duplicate them.
    handle.shutdown().unwrap();
    let again = build_engine(None);
    let report = again.engine.recover_from(&dir).unwrap();
    assert_eq!(report.events, 80);
}

/// Crash recovery after a mid-log `swap_unit`: the swap itself is a runtime
/// reconfiguration, not a durable event — it is never logged. Recovering the
/// log into a fresh engine with the replacement unit registered must replay
/// every accepted event exactly once, matching a never-crashed run, with no
/// phantom swap resurfacing in the recovered engine's stats.
#[test]
fn recovery_after_a_mid_log_swap_matches_a_never_crashed_run() {
    let (clean_alpha, clean_beta) = clean_run();

    // Record run: accept the first half durably, dispatch it on incarnation 1,
    // hot-swap the alpha recorder, accept the second half durably — then
    // "crash" with the second half still undispatched.
    let dir = temp_dir("swap");
    let crashed = build_engine(Some(WalConfig::new(&dir).fsync(FsyncPolicy::EveryBatch)));
    let handle = crashed.engine.start();
    let publisher = crashed.engine.publisher(crashed.source).unwrap();
    let mut batches = workload().into_iter();
    for batch in batches.by_ref().take(5) {
        assert_eq!(publisher.publish_batch(batch).unwrap().accepted(), 8);
    }
    handle.pump_until_idle().unwrap();
    assert_eq!(crashed.engine.stats().dispatched(), 40);
    let version = crashed
        .engine
        .swap_unit(
            crashed.alpha_id,
            Box::new(Recorder {
                lane: "alpha",
                log: Arc::clone(&crashed.alpha),
            }),
        )
        .unwrap();
    assert_eq!(version, 2);
    assert_eq!(crashed.engine.queue_stats().unit_swaps, 1);
    for batch in batches {
        assert_eq!(publisher.publish_batch(batch).unwrap().accepted(), 8);
    }
    drop(handle);
    drop(crashed);

    // Recover into a fresh engine whose alpha unit IS the replacement (a
    // fresh registration at version 1). All 80 events replay — recovery does
    // not know or care which incarnation served them before the crash.
    let recovered = build_engine(None);
    let report = recovered.engine.recover_from(&dir).unwrap();
    assert_eq!(report.batches, 10);
    assert_eq!(report.events, 80);
    assert!(!report.torn_tail_truncated);

    let handle = recovered.engine.start();
    handle.pump_until_idle().unwrap();
    handle.shutdown().unwrap();

    assert_eq!(*recovered.alpha.lock(), clean_alpha);
    assert_eq!(*recovered.beta.lock(), clean_beta);
    assert_eq!(recovered.engine.stats().dispatched(), 80);
    let stats = recovered.engine.queue_stats();
    assert_eq!(stats.unit_swaps, 0, "swaps are not logged, so none replay");
    assert_eq!(
        recovered
            .engine
            .unit_state(recovered.alpha_id)
            .unwrap()
            .version,
        1,
        "the recovered replacement is a fresh version-1 registration"
    );
}
