//! Fault-triggered swap and quarantine semantics, plus the publisher rebind
//! regression: a long-lived [`Publisher`] caches its unit's slot, and before
//! the rebind fix a `swap_unit` left that cached slot pointing at the retired
//! cell — publishes silently targeted a dead unit. These tests pin the fixed
//! behaviour: transparent rebind to the replacement, loud typed errors for
//! quarantined and removed units, and the deterministic `FaultPolicy` paths
//! (auto-swap to a registered standby, quarantine-and-shed with exact
//! accounting).
//!
//! Everything runs at `workers(0)` with `batch_size(1)`: deliveries happen on
//! the pumping thread in publish order, so panic counts, swap points and shed
//! counts are exact, not statistical.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;

use defcon_core::unit::NullUnit;
use defcon_core::{
    Engine, EngineError, EngineResult, EventDraft, FaultAction, FaultPolicy, SecurityMode, Unit,
    UnitContext, UnitSpec,
};
use defcon_events::{Event, Filter, Value};

/// Counts every successful delivery into a shared counter.
struct Counter {
    seen: Arc<AtomicU64>,
}

impl Unit for Counter {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        ctx.subscribe(Filter::for_type("tick"))?;
        Ok(())
    }
    fn on_event(&mut self, _ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
        self.seen.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }
}

/// Panics on every `every`-th delivery (1-based), counting the successful ones.
struct Panicky {
    every: u64,
    deliveries: u64,
    ok: Arc<AtomicU64>,
}

impl Unit for Panicky {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        ctx.subscribe(Filter::for_type("tick"))?;
        Ok(())
    }
    fn on_event(&mut self, _ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
        self.deliveries += 1;
        if self.deliveries.is_multiple_of(self.every) {
            panic!("injected fault on delivery {}", self.deliveries);
        }
        self.ok.fetch_add(1, Ordering::SeqCst);
        Ok(())
    }
}

fn tick() -> EventDraft {
    EventDraft::new().public_part("type", Value::str("tick"))
}

/// The stale-slot regression: a publisher created before a swap of its own
/// publishing unit must transparently rebind to the replacement slot and keep
/// admitting — not silently publish into the retired cell.
#[test]
fn publisher_rebinds_transparently_across_a_swap_of_its_unit() {
    let engine = Engine::builder().mode(SecurityMode::LabelsFreeze).build();
    let seen = Arc::new(AtomicU64::new(0));
    engine
        .register_unit(
            UnitSpec::new("sink"),
            Box::new(Counter {
                seen: Arc::clone(&seen),
            }),
        )
        .unwrap();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();

    let handle = engine.start();
    let publisher = handle.publisher(source).unwrap();
    assert!(publisher.publish(tick()).unwrap());

    // Swap the *publishing* unit out from under its long-lived publisher.
    assert_eq!(handle.swap_unit(source, Box::new(NullUnit)).unwrap(), 2);

    // Same publisher, no re-resolution by the caller: both paths must land.
    assert!(publisher.publish(tick()).unwrap());
    assert_eq!(
        publisher
            .publish_batch(vec![tick(), tick()])
            .unwrap()
            .accepted(),
        2
    );

    handle.pump_until_idle().unwrap();
    assert_eq!(
        seen.load(Ordering::SeqCst),
        4,
        "no publish may be silently dropped"
    );
    assert_eq!(engine.stats().published(), 4);
    assert_eq!(engine.unit_state(source).unwrap().version, 2);
    handle.shutdown().unwrap();
}

/// A removed unit stays a loud error: rebind only chases *swapped* slots, and
/// a publisher whose unit is gone reports `UnknownUnit` exactly as before.
#[test]
fn publisher_to_a_removed_unit_still_fails_loudly() {
    let engine = Engine::builder().build();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();
    let handle = engine.start();
    let publisher = handle.publisher(source).unwrap();
    assert!(publisher.publish(tick()).unwrap());
    engine.remove_unit(source).unwrap();
    let result = publisher.publish(tick());
    assert!(
        matches!(result, Err(EngineError::UnknownUnit(_))),
        "got {result:?}"
    );
    handle.shutdown().unwrap();
}

/// Quarantine refuses publishes with the typed error, and a subsequent swap
/// revives the unit: the replacement starts clean and admits again.
#[test]
fn quarantined_unit_refuses_publishes_until_swapped() {
    let engine = Engine::builder().build();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();
    let handle = engine.start();
    let publisher = handle.publisher(source).unwrap();
    assert!(publisher.publish(tick()).unwrap());

    engine.quarantine_unit(source).unwrap();
    let result = publisher.publish(tick());
    assert!(
        matches!(result, Err(EngineError::UnitQuarantined(_))),
        "got {result:?}"
    );
    let batch_result = publisher.publish_batch(vec![tick()]);
    assert!(
        matches!(batch_result, Err(EngineError::UnitQuarantined(_))),
        "got {batch_result:?}"
    );
    assert_eq!(engine.queue_stats().units_quarantined, 1);

    // swap_unit is the revival path: the replacement is a fresh, healthy cell.
    assert_eq!(engine.swap_unit(source, Box::new(NullUnit)).unwrap(), 2);
    assert!(
        publisher.publish(tick()).unwrap(),
        "the same publisher rebinds and admits"
    );
    handle.pump_until_idle().unwrap();
    assert_eq!(engine.stats().published(), 2);
    handle.shutdown().unwrap();
}

/// The deterministic auto-swap path: a unit panicking on every 2nd delivery
/// under `FaultPolicy::new(3)` trips after its 3rd panic (6th delivery), the
/// registered standby takes over at version 2, and every admitted event is
/// accounted for — delivered by the old incarnation, panicked, or delivered by
/// the standby. Nothing is lost.
#[test]
fn auto_swap_replaces_a_panicking_unit_within_the_fault_window() {
    let engine = Engine::builder()
        .batch_size(1)
        .fault(FaultPolicy::new(3).window(0).action(FaultAction::AutoSwap))
        .build();
    let flaky_ok = Arc::new(AtomicU64::new(0));
    let standby_ok = Arc::new(AtomicU64::new(0));
    let target = engine
        .register_unit(
            UnitSpec::new("flaky"),
            Box::new(Panicky {
                every: 2,
                deliveries: 0,
                ok: Arc::clone(&flaky_ok),
            }),
        )
        .unwrap();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();

    let handle = engine.start();
    {
        let standby_ok = Arc::clone(&standby_ok);
        handle
            .set_standby(
                target,
                Box::new(move || {
                    Box::new(Counter {
                        seen: Arc::clone(&standby_ok),
                    })
                }),
            )
            .unwrap();
    }

    let publisher = handle.publisher(source).unwrap();
    const TOTAL: u64 = 10;
    for _ in 0..TOTAL {
        publisher.publish(tick()).unwrap();
    }
    let pumped = handle.pump_until_idle().unwrap();
    assert_eq!(pumped as u64, TOTAL, "every admitted event is dispatched");

    // Deliveries 1..=6 hit the flaky incarnation (panics at 2, 4, 6; the 3rd
    // panic trips the policy), deliveries 7..=10 hit the standby.
    assert_eq!(flaky_ok.load(Ordering::SeqCst), 3);
    assert_eq!(standby_ok.load(Ordering::SeqCst), 4);

    let stats = engine.queue_stats();
    assert_eq!(stats.unit_panics, 3, "three injected panics counted");
    assert_eq!(
        stats.fault_swaps, 1,
        "the policy performed exactly one swap"
    );
    assert_eq!(stats.unit_swaps, 1);
    assert_eq!(stats.units_quarantined, 0);
    assert_eq!(stats.quarantine_shed, 0);
    assert_eq!(engine.unit_state(target).unwrap().version, 2);
    handle.shutdown().unwrap();
}

/// The quarantine path with exact accounting: a unit panicking on *every*
/// delivery under `Quarantine` with a budget of 2 takes two deliveries, is
/// quarantined, and the remaining queued events shed loudly — each one counted
/// in `quarantine_shed`, none silently vanishing.
#[test]
fn quarantine_policy_sheds_the_remaining_stream_with_exact_accounting() {
    let engine = Engine::builder()
        .batch_size(1)
        .fault(
            FaultPolicy::new(2)
                .window(0)
                .action(FaultAction::Quarantine),
        )
        .build();
    let ok = Arc::new(AtomicU64::new(0));
    let target = engine
        .register_unit(
            UnitSpec::new("doomed"),
            Box::new(Panicky {
                every: 1,
                deliveries: 0,
                ok: Arc::clone(&ok),
            }),
        )
        .unwrap();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();

    let handle = engine.start();
    let publisher = handle.publisher(source).unwrap();
    const TOTAL: u64 = 10;
    for _ in 0..TOTAL {
        publisher.publish(tick()).unwrap();
    }
    let pumped = handle.pump_until_idle().unwrap();
    assert_eq!(
        pumped as u64, TOTAL,
        "shed events are still consumed from the queue"
    );

    assert_eq!(
        ok.load(Ordering::SeqCst),
        0,
        "every attempted delivery panicked"
    );
    let stats = engine.queue_stats();
    assert_eq!(stats.unit_panics, 2, "the budget caps attempted deliveries");
    assert_eq!(stats.units_quarantined, 1);
    assert_eq!(
        stats.quarantine_shed,
        TOTAL - 2,
        "the rest shed, each one counted"
    );
    assert_eq!(stats.unit_swaps, 0);
    assert_eq!(stats.fault_swaps, 0);
    assert_eq!(
        engine.unit_state(target).unwrap().version,
        1,
        "no swap happened"
    );

    // The quarantined unit also refuses direct publishes.
    let poisoned = handle.publisher(target).unwrap();
    let result = poisoned.publish(tick());
    assert!(
        matches!(result, Err(EngineError::UnitQuarantined(_))),
        "got {result:?}"
    );
    handle.shutdown().unwrap();
}

/// `AutoSwap` with no registered standby cannot replace the unit — it must
/// degrade to quarantine rather than let the fault loop forever.
#[test]
fn auto_swap_without_a_standby_falls_back_to_quarantine() {
    let engine = Engine::builder()
        .batch_size(1)
        .fault(FaultPolicy::new(1).window(0).action(FaultAction::AutoSwap))
        .build();
    let ok = Arc::new(AtomicU64::new(0));
    engine
        .register_unit(
            UnitSpec::new("flaky"),
            Box::new(Panicky {
                every: 1,
                deliveries: 0,
                ok: Arc::clone(&ok),
            }),
        )
        .unwrap();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();

    let handle = engine.start();
    let publisher = handle.publisher(source).unwrap();
    for _ in 0..5 {
        publisher.publish(tick()).unwrap();
    }
    handle.pump_until_idle().unwrap();

    let stats = engine.queue_stats();
    assert_eq!(stats.unit_panics, 1);
    assert_eq!(stats.unit_swaps, 0, "no standby, no swap");
    assert_eq!(stats.units_quarantined, 1);
    assert_eq!(stats.quarantine_shed, 4);
    handle.shutdown().unwrap();
}

/// The windowed budget: panics further apart than the window never trip the
/// policy — the delivery-counted window resets the panic budget, so a unit
/// with a tolerable background fault rate keeps running untouched.
#[test]
fn panics_outside_the_window_do_not_trip_the_policy() {
    let engine = Engine::builder()
        .batch_size(1)
        // Budget of 2 panics within any 5-delivery window; the unit panics
        // every 8th delivery, so each window sees at most one panic.
        .fault(
            FaultPolicy::new(2)
                .window(5)
                .action(FaultAction::Quarantine),
        )
        .build();
    let ok = Arc::new(AtomicU64::new(0));
    let target = engine
        .register_unit(
            UnitSpec::new("mostly-fine"),
            Box::new(Panicky {
                every: 8,
                deliveries: 0,
                ok: Arc::clone(&ok),
            }),
        )
        .unwrap();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();

    let handle = engine.start();
    let publisher = handle.publisher(source).unwrap();
    const TOTAL: u64 = 40;
    for _ in 0..TOTAL {
        publisher.publish(tick()).unwrap();
    }
    handle.pump_until_idle().unwrap();

    let stats = engine.queue_stats();
    assert_eq!(stats.unit_panics, 5, "one panic per 8 deliveries over 40");
    assert_eq!(
        stats.units_quarantined, 0,
        "spread-out panics never trip the budget"
    );
    assert_eq!(stats.unit_swaps, 0);
    assert_eq!(stats.quarantine_shed, 0);
    assert_eq!(ok.load(Ordering::SeqCst), TOTAL - 5);
    assert_eq!(engine.unit_state(target).unwrap().version, 1);
    handle.shutdown().unwrap();
}
