//! Property-based tests of the runtime's delivery guarantees.
//!
//! Instead of hand-picked `(workers, batch_size)` points, these generate
//! random runtime configurations — worker count (including the manually pumped
//! `workers(0)` mode), batch size, grouped-vs-ungrouped delivery, the v2 and
//! v3 schedulers, security mode, publisher count and event count — and assert
//! the two invariants every configuration must uphold:
//!
//! 1. **Exactly-once delivery**: every event the engine accepted reaches every
//!    matching subscriber exactly once, and graceful shutdown drains them all.
//! 2. **Per-unit serialisation**: a unit's `on_event` is never re-entered,
//!    no matter how many workers dispatch or how events are batched.
//!
//! The vendored proptest shim generates cases deterministically from a fixed
//! seed, so a failure reproduces by re-running the test. Because a fixed seed
//! also means a fixed sample of the grid, the historical hottest point —
//! `workers(4) × batch(8)` under four contending publishers, the cell the
//! deleted hand-picked sweeps pinned — keeps a guaranteed dedicated case
//! below alongside the random exploration.

use std::sync::atomic::{AtomicBool, AtomicU64, Ordering};
use std::sync::Arc;

use defcon_core::unit::NullUnit;
use defcon_core::{Engine, EngineResult, EventDraft, SecurityMode, Unit, UnitContext, UnitSpec};
use defcon_events::{Event, Filter, Value};
use proptest::prelude::*;

/// Counts deliveries and asserts it is never re-entered.
struct SerialProbe {
    received: Arc<AtomicU64>,
    reentered: Arc<AtomicBool>,
    in_callback: AtomicBool,
}

impl Unit for SerialProbe {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        ctx.subscribe(Filter::for_type("tick"))?;
        Ok(())
    }

    fn on_event(&mut self, _ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
        if self.in_callback.swap(true, Ordering::SeqCst) {
            self.reentered.store(true, Ordering::SeqCst);
        }
        self.received.fetch_add(1, Ordering::SeqCst);
        self.in_callback.store(false, Ordering::SeqCst);
        Ok(())
    }
}

const SUBSCRIBERS: u64 = 2;

/// Runs one configuration end to end and asserts the delivery invariants.
fn check_delivery_invariants(
    workers: usize,
    batch_size: usize,
    grouped: bool,
    scheduler_v3: bool,
    mode: SecurityMode,
    publishers: u64,
    events_each: u64,
) {
    let engine = Engine::builder()
        .mode(mode)
        .workers(workers)
        .batch_size(batch_size)
        .grouped_delivery(grouped)
        .scheduler_v3(scheduler_v3)
        .build();

    let reentered = Arc::new(AtomicBool::new(false));
    let counters: Vec<Arc<AtomicU64>> = (0..SUBSCRIBERS)
        .map(|i| {
            let received = Arc::new(AtomicU64::new(0));
            engine
                .register_unit(
                    UnitSpec::new(format!("probe-{i}")),
                    Box::new(SerialProbe {
                        received: Arc::clone(&received),
                        reentered: Arc::clone(&reentered),
                        in_callback: AtomicBool::new(false),
                    }),
                )
                .unwrap();
            received
        })
        .collect();
    let sources: Vec<_> = (0..publishers)
        .map(|i| {
            engine
                .register_unit(UnitSpec::new(format!("feed-{i}")), Box::new(NullUnit))
                .unwrap()
        })
        .collect();

    let handle = engine.start();
    assert_eq!(handle.worker_count(), workers);

    // Each publisher thread feeds its share in batch_size-sized chunks
    // (publishing singles when the chunk degenerates to one draft), so the
    // batch size exercises both enqueue paths while workers — or nobody, at
    // workers(0) — drain concurrently.
    let threads: Vec<_> = sources
        .iter()
        .map(|&source| {
            let publisher = handle.publisher(source).unwrap();
            let batch = batch_size;
            let total = events_each;
            std::thread::spawn(move || {
                let mut remaining = total;
                while remaining > 0 {
                    let take = remaining.min(batch as u64);
                    if take == 1 {
                        publisher
                            .publish(EventDraft::new().public_part("type", Value::str("tick")))
                            .unwrap();
                    } else {
                        let drafts = (0..take)
                            .map(|_| EventDraft::new().public_part("type", Value::str("tick")))
                            .collect();
                        assert_eq!(
                            publisher.publish_batch(drafts).unwrap().accepted(),
                            take as usize
                        );
                    }
                    remaining -= take;
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().unwrap();
    }

    let published = publishers * events_each;
    // Graceful shutdown drains everything the publishers got accepted — on
    // worker threads or, at workers(0), on this thread.
    let dispatched = handle.shutdown().unwrap();
    assert_eq!(
        dispatched, published,
        "workers={workers} batch={batch_size} grouped={grouped} v3={scheduler_v3} mode={mode}: \
         shutdown must drain"
    );
    for (i, counter) in counters.iter().enumerate() {
        assert_eq!(
            counter.load(Ordering::SeqCst),
            published,
            "workers={workers} batch={batch_size} grouped={grouped} v3={scheduler_v3} mode={mode}: \
             probe {i} must see every event exactly once"
        );
    }
    assert!(
        !reentered.load(Ordering::SeqCst),
        "workers={workers} batch={batch_size} grouped={grouped} v3={scheduler_v3} mode={mode}: \
         per-unit delivery must stay serialised"
    );
    assert_eq!(engine.stats().published(), published);
    assert_eq!(engine.stats().dispatched(), published);
    assert_eq!(engine.stats().deliveries(), published * SUBSCRIBERS);
    assert_eq!(engine.queue_depth(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exactly_once_delivery_and_per_unit_serialisation_hold_for_random_configs(
        workers in 0usize..5,
        batch_size in 1usize..65,
        grouped_index in 0usize..2,
        scheduler_index in 0usize..2,
        mode_index in 0usize..4,
        publishers in 1u64..5,
        events_each in 0u64..200,
    ) {
        let mode = SecurityMode::all()[mode_index];
        let grouped = grouped_index == 1;
        let scheduler_v3 = scheduler_index == 1;
        check_delivery_invariants(
            workers,
            batch_size,
            grouped,
            scheduler_v3,
            mode,
            publishers,
            events_each,
        );
    }
}

/// The historical hot point, guaranteed every run regardless of what the
/// seeded random cases sample: four workers popping batches of eight while
/// four publisher threads contend, in every security mode, with grouped
/// delivery both on and off and under both schedulers — the configuration the
/// deleted `workers(4) × batch(8)` sweeps exercised, at their original
/// contention level. Under v3 this is also the point where prefetched runs
/// outnumber the work a single worker can drain before its siblings go
/// looking, so whole-run stealing is exercised under real contention.
#[test]
fn the_hot_point_stays_covered_at_full_contention() {
    for mode in SecurityMode::all() {
        for grouped in [false, true] {
            for scheduler_v3 in [false, true] {
                check_delivery_invariants(4, 8, grouped, scheduler_v3, mode, 4, 320);
            }
        }
    }
}
