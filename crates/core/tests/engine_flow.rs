//! End-to-end tests of the DEFCon engine: the Table 1 API, the can-flow-to checks
//! performed during dispatch, privilege delegation through events, managed
//! subscriptions and the four security modes — driven through the v2 runtime API
//! (`Engine::builder()` → `Engine` → `EngineHandle`), plus concurrent-dispatch
//! coverage for multi-worker engines.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::Duration;

use defcon_core::context::LabelOp;
use defcon_core::unit::NullUnit;
use defcon_core::{
    Engine, EngineError, EngineHandle, EngineResult, EventDraft, SecurityMode, Unit, UnitContext,
    UnitSpec,
};
use defcon_defc::{Component, Label, Privilege, PrivilegeKind, Tag, TagSet};
use defcon_events::{Event, Filter, Value};

/// Builds an unstarted single-threaded engine in the given mode.
fn engine(mode: SecurityMode) -> Engine {
    Engine::builder().mode(mode).build()
}

/// Starts a single-threaded (manually pumped) engine in the given mode.
fn started(mode: SecurityMode) -> EngineHandle {
    engine(mode).start()
}

/// A unit that records how many events it received and, optionally, the data of a
/// named part of each.
struct Recorder {
    filter: Filter,
    part: Option<String>,
    received: Arc<AtomicU64>,
    seen: Arc<parking_lot::Mutex<Vec<Value>>>,
}

impl Recorder {
    fn new(filter: Filter) -> (Self, Arc<AtomicU64>, Arc<parking_lot::Mutex<Vec<Value>>>) {
        let received = Arc::new(AtomicU64::new(0));
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        (
            Recorder {
                filter,
                part: None,
                received: Arc::clone(&received),
                seen: Arc::clone(&seen),
            },
            received,
            seen,
        )
    }

    fn reading(mut self, part: &str) -> Self {
        self.part = Some(part.to_string());
        self
    }
}

impl Unit for Recorder {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        ctx.subscribe(self.filter.clone())?;
        Ok(())
    }

    fn on_event(&mut self, ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()> {
        self.received.fetch_add(1, Ordering::Relaxed);
        if let Some(part) = &self.part {
            if let Ok(value) = ctx.read_first(event, part) {
                self.seen.lock().push(value);
            }
        }
        Ok(())
    }
}

/// Publishes an event with the given public parts from a throwaway source unit,
/// through the typed publisher handle.
fn publish_public(engine: &Engine, parts: &[(&str, Value)]) {
    let source = engine
        .register_unit(UnitSpec::new("source"), Box::new(NullUnit))
        .unwrap();
    let publisher = engine.publisher(source).unwrap();
    let mut draft = EventDraft::new();
    for (name, value) in parts {
        draft = draft.public_part(*name, value.clone());
    }
    publisher.publish(draft).unwrap();
}

#[test]
fn basic_publish_subscribe_roundtrip() {
    let handle = started(SecurityMode::LabelsFreeze);
    let engine = handle.engine();
    let (recorder, received, seen) = Recorder::new(Filter::for_type("tick"));
    engine
        .register_unit(
            UnitSpec::new("recorder"),
            Box::new(recorder.reading("price")),
        )
        .unwrap();

    publish_public(
        engine,
        &[("type", Value::str("tick")), ("price", Value::Float(10.0))],
    );
    publish_public(engine, &[("type", Value::str("other"))]);
    handle.pump_until_idle().unwrap();

    assert_eq!(received.load(Ordering::Relaxed), 1);
    assert_eq!(seen.lock().as_slice(), &[Value::Float(10.0)]);
    assert_eq!(engine.stats().published(), 2);
    assert_eq!(engine.stats().dispatched(), 2);
    assert_eq!(engine.stats().deliveries(), 1);
}

#[test]
fn confidential_parts_are_hidden_from_untagged_units() {
    // A subscriber without the secrecy tag must not receive events whose filtered
    // part is confidential, and must not be able to read hidden parts of events it
    // does receive.
    let handle = started(SecurityMode::LabelsFreeze);
    let engine = handle.engine();

    let (recorder, received, _) = Recorder::new(Filter::for_type("order"));
    engine
        .register_unit(UnitSpec::new("curious"), Box::new(recorder))
        .unwrap();

    // The publisher owns a tag and publishes the order body under it, with a public
    // type part.
    let publisher_unit = engine
        .register_unit(UnitSpec::new("publisher"), Box::new(NullUnit))
        .unwrap();
    let publisher = engine.publisher(publisher_unit).unwrap();
    publisher
        .with_context(|ctx| {
            let t = ctx.create_owned_tag("s-trader-1");
            let draft = ctx.create_event();
            ctx.add_part(&draft, Label::public(), "type", Value::str("order"))?;
            ctx.add_part(
                &draft,
                Label::confidential(TagSet::singleton(t.clone())),
                "body",
                Value::Float(99.0),
            )?;
            ctx.publish(draft)?;
            Ok(())
        })
        .unwrap();
    handle.pump_until_idle().unwrap();

    // The curious unit receives the event (the type part is public)...
    assert_eq!(received.load(Ordering::Relaxed), 1);

    // ...but reading the confidential body from a unit without the tag fails.
    let curious2 = engine
        .register_unit(UnitSpec::new("curious2"), Box::new(NullUnit))
        .unwrap();
    // Re-publish and read through a context to verify part-level hiding. The
    // draft can also be built externally: the confidential label is a request
    // honoured by the typed publisher.
    let tag = publisher
        .with_context(|ctx| Ok(ctx.create_owned_tag("s-trader-2")))
        .unwrap();
    publisher
        .publish(
            EventDraft::new()
                .public_part("type", Value::str("order"))
                .part(
                    "body",
                    Label::confidential(TagSet::singleton(tag)),
                    Value::Float(1.0),
                ),
        )
        .unwrap();
    engine.set_pull_mode(curious2, true).unwrap();
    engine
        .with_unit(curious2, |_, ctx| {
            ctx.subscribe(Filter::for_type("order"))?;
            Ok(())
        })
        .unwrap();
    handle.pump_until_idle().unwrap();
    let (event, _) = engine.poll_event(curious2).unwrap().expect("delivered");
    engine
        .with_unit(curious2, |_, ctx| {
            assert!(
                ctx.read_part(&event, "body").is_err(),
                "body must be hidden"
            );
            assert!(ctx.read_part(&event, "type").is_ok());
            Ok(())
        })
        .unwrap();
}

#[test]
fn integrity_subscription_requires_endorsed_events() {
    // A unit instantiated with read integrity {s} only perceives events published
    // with that integrity tag (the Pair Monitor rule, §6.1 step 2).
    let handle = started(SecurityMode::LabelsFreeze);
    let engine = handle.engine();

    let exchange = engine
        .register_unit(UnitSpec::new("exchange"), Box::new(NullUnit))
        .unwrap();
    let feed = engine.publisher(exchange).unwrap();
    // The exchange owns the integrity tag s and endorses its ticks with it.
    let s = feed
        .with_context(|ctx| Ok(ctx.create_owned_tag("i-exchange")))
        .unwrap();

    let (recorder, received, _) = Recorder::new(Filter::for_type("tick"));
    engine
        .register_unit(
            UnitSpec::new("monitor")
                .with_input_label(Label::endorsed(TagSet::singleton(s.clone()))),
            Box::new(recorder),
        )
        .unwrap();

    // An endorsed tick is delivered. The exchange must hold s in its output label
    // (the precondition for endorsing) and request the endorsed label for the part;
    // the contamination-independence transform I' = I ∩ I_out keeps the tag.
    feed.with_context(|ctx| {
        ctx.change_out_label(Component::Integrity, LabelOp::Add, &s)?;
        Ok(())
    })
    .unwrap();
    feed.publish(EventDraft::new().part(
        "type",
        Label::endorsed(TagSet::singleton(s.clone())),
        Value::str("tick"),
    ))
    .unwrap();
    // A forged tick from a unit without the integrity tag is not delivered.
    publish_public(engine, &[("type", Value::str("tick"))]);

    handle.pump_until_idle().unwrap();
    assert_eq!(received.load(Ordering::Relaxed), 1);
    assert!(engine.stats().label_rejections() >= 1);
}

#[test]
fn no_security_mode_skips_label_checks() {
    let handle = started(SecurityMode::NoSecurity);
    let engine = handle.engine();
    let (recorder, received, seen) = Recorder::new(Filter::for_type("order"));
    engine
        .register_unit(
            UnitSpec::new("observer"),
            Box::new(recorder.reading("body")),
        )
        .unwrap();

    let publisher_unit = engine
        .register_unit(UnitSpec::new("publisher"), Box::new(NullUnit))
        .unwrap();
    let publisher = engine.publisher(publisher_unit).unwrap();
    publisher
        .with_context(|ctx| {
            let t = ctx.create_owned_tag("secret");
            let draft = ctx.create_event();
            ctx.add_part(&draft, Label::public(), "type", Value::str("order"))?;
            ctx.add_part(
                &draft,
                Label::confidential(TagSet::singleton(t)),
                "body",
                Value::Float(7.0),
            )?;
            ctx.publish(draft)?;
            Ok(())
        })
        .unwrap();
    handle.pump_until_idle().unwrap();

    // Without security, the confidential body is visible to everyone.
    assert_eq!(received.load(Ordering::Relaxed), 1);
    assert_eq!(seen.lock().as_slice(), &[Value::Float(7.0)]);
}

#[test]
fn privilege_carrying_parts_bestow_privileges_on_read() {
    // A regulator-like unit gains t+ by reading a privilege-carrying part and can
    // then raise its input label to read the protected identity (§3.1.5).
    let handle = started(SecurityMode::LabelsFreeze);
    let engine = handle.engine();

    let trader = engine
        .register_unit(UnitSpec::new("trader"), Box::new(NullUnit))
        .unwrap();
    let regulator = engine
        .register_unit(UnitSpec::new("regulator"), Box::new(NullUnit))
        .unwrap();
    engine.set_pull_mode(regulator, true).unwrap();
    engine
        .with_unit(regulator, |_, ctx| {
            ctx.subscribe(Filter::for_type("trade"))?;
            Ok(())
        })
        .unwrap();

    let tag = engine
        .with_unit(trader, |_, ctx| {
            let t = ctx.create_owned_tag("t-order");
            let draft = ctx.create_event();
            ctx.add_part(&draft, Label::public(), "type", Value::str("trade"))?;
            ctx.add_part(
                &draft,
                Label::confidential(TagSet::singleton(t.clone())),
                "identity",
                Value::str("trader-77"),
            )?;
            // The grant part is public and carries t+ together with the tag itself.
            ctx.add_part(&draft, Label::public(), "grant", Value::Tag(t.id()))?;
            ctx.attach_privilege_to_part(
                &draft,
                "grant",
                Label::public(),
                Privilege::add(t.clone()),
            )?;
            ctx.publish(draft)?;
            Ok(t)
        })
        .unwrap();

    handle.pump_until_idle().unwrap();
    let (event, _) = engine.poll_event(regulator).unwrap().expect("delivered");

    engine
        .with_unit(regulator, |_, ctx| {
            // Before reading the grant, the identity is invisible.
            assert!(ctx.read_part(&event, "identity").is_err());
            assert!(!ctx.has_privilege(&tag, PrivilegeKind::Add));

            // Reading the grant part bestows t+ and hands over the tag reference.
            let grant = ctx.read_first(&event, "grant")?;
            assert_eq!(grant.as_tag(), Some(tag.id()));
            assert!(ctx.has_privilege(&tag, PrivilegeKind::Add));

            // Raising the input label (now permitted) reveals the identity.
            ctx.change_in_out_label(Component::Confidentiality, LabelOp::Add, &tag)?;
            let identity = ctx.read_first(&event, "identity")?;
            assert_eq!(identity.as_str(), Some("trader-77"));
            Ok(())
        })
        .unwrap();
}

#[test]
fn label_changes_require_privileges() {
    let engine = engine(SecurityMode::LabelsFreeze);
    let unit = engine
        .register_unit(UnitSpec::new("u"), Box::new(NullUnit))
        .unwrap();
    let foreign = Tag::with_name("foreign");
    engine
        .with_unit(unit, |_, ctx| {
            // No privilege over the foreign tag: both add and remove must fail.
            assert!(matches!(
                ctx.change_in_out_label(Component::Confidentiality, LabelOp::Add, &foreign),
                Err(EngineError::Defc(_))
            ));
            assert!(matches!(
                ctx.change_out_label(Component::Integrity, LabelOp::Add, &foreign),
                Err(EngineError::Defc(_))
            ));
            // Over an owned tag, changes succeed and are reflected in the state.
            let own = ctx.create_owned_tag("own");
            ctx.change_in_out_label(Component::Confidentiality, LabelOp::Add, &own)?;
            assert!(ctx.input_label().confidentiality().contains(&own));
            assert!(ctx.output_label().confidentiality().contains(&own));
            ctx.change_in_out_label(Component::Confidentiality, LabelOp::Remove, &own)?;
            assert!(ctx.input_label().is_public());
            Ok(())
        })
        .unwrap();
}

#[test]
fn contamination_independence_raises_part_labels() {
    // A unit whose output label carries tag d cannot write a public part: the tag is
    // transparently added (Table 1 footnote) — including for parts published through
    // the typed publisher handle.
    let handle = started(SecurityMode::LabelsFreeze);
    let engine = handle.engine();

    let publisher_unit = engine
        .register_unit(UnitSpec::new("publisher"), Box::new(NullUnit))
        .unwrap();
    let observer = engine
        .register_unit(UnitSpec::new("observer"), Box::new(NullUnit))
        .unwrap();
    engine.set_pull_mode(observer, true).unwrap();
    engine
        .with_unit(observer, |_, ctx| {
            ctx.subscribe(Filter::for_type("note"))?;
            Ok(())
        })
        .unwrap();

    let publisher = engine.publisher(publisher_unit).unwrap();
    publisher
        .with_context(|ctx| {
            let d = ctx.create_owned_tag("d");
            ctx.change_out_label(Component::Confidentiality, LabelOp::Add, &d)?;
            Ok(())
        })
        .unwrap();
    // The driver *asks* for a public label, but the part must come out tagged.
    publisher
        .publish(EventDraft::new().public_part("type", Value::str("note")))
        .unwrap();
    handle.pump_until_idle().unwrap();

    // The observer lacks tag d, so the filtered part is invisible and the event is
    // not delivered at all.
    assert!(engine.poll_event(observer).unwrap().is_none());
    assert!(engine.stats().label_rejections() >= 1);
}

#[test]
fn managed_subscription_keeps_owner_clean() {
    // A broker-like unit uses a managed subscription to process confidential orders
    // without permanently contaminating its own state.
    let handle = started(SecurityMode::LabelsFreeze);
    let engine = handle.engine();

    struct ManagedHandler {
        processed: Arc<AtomicU64>,
    }
    impl Unit for ManagedHandler {
        fn on_event(&mut self, ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()> {
            // The managed instance is contaminated enough to read the body.
            let body = ctx.read_first(event, "body")?;
            assert!(body.as_float().is_some());
            self.processed.fetch_add(1, Ordering::Relaxed);
            Ok(())
        }
    }

    struct Broker {
        processed: Arc<AtomicU64>,
    }
    impl Unit for Broker {
        fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
            let processed = Arc::clone(&self.processed);
            ctx.subscribe_managed(
                Box::new(move || {
                    Box::new(ManagedHandler {
                        processed: Arc::clone(&processed),
                    }) as Box<dyn Unit>
                }),
                Filter::for_type("order"),
            )?;
            Ok(())
        }
        fn on_event(&mut self, _ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
            panic!("the broker itself must never be invoked for managed deliveries");
        }
    }

    let processed = Arc::new(AtomicU64::new(0));
    let broker = engine
        .register_unit(
            UnitSpec::new("broker"),
            Box::new(Broker {
                processed: Arc::clone(&processed),
            }),
        )
        .unwrap();

    // Two traders publish orders under their own tags.
    for name in ["alice", "bob"] {
        let trader = engine
            .register_unit(UnitSpec::new(name), Box::new(NullUnit))
            .unwrap();
        let publisher = engine.publisher(trader).unwrap();
        let tag = publisher
            .with_context(|ctx| Ok(ctx.create_owned_tag(format!("s-{name}"))))
            .unwrap();
        publisher
            .publish(
                EventDraft::new()
                    .public_part("type", Value::str("order"))
                    .part(
                        "body",
                        Label::confidential(TagSet::singleton(tag)),
                        Value::Float(10.0),
                    ),
            )
            .unwrap();
    }
    handle.pump_until_idle().unwrap();

    assert_eq!(processed.load(Ordering::Relaxed), 2);
    // Two distinct contaminations -> two managed instances.
    assert_eq!(engine.stats().managed_instances(), 2);
    // The broker's own label is still public.
    let broker_state = engine.unit_state(broker).unwrap();
    assert!(broker_state.input_label.is_public());
}

#[test]
fn main_path_augmentation_is_visible_to_later_subscribers() {
    // Unit A (registered first) annotates orders with a "reason" part; unit B
    // (registered later) sees the annotation on the same event (§3.1.6).
    let handle = started(SecurityMode::LabelsFreeze);
    let engine = handle.engine();

    struct Annotator;
    impl Unit for Annotator {
        fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
            ctx.subscribe(Filter::for_type("order"))?;
            Ok(())
        }
        fn on_event(&mut self, ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
            ctx.add_part_to_current(Label::public(), "reason", Value::str("checked"))?;
            ctx.release();
            Ok(())
        }
    }

    engine
        .register_unit(UnitSpec::new("annotator"), Box::new(Annotator))
        .unwrap();
    let (recorder, received, seen) = Recorder::new(Filter::for_type("order"));
    engine
        .register_unit(
            UnitSpec::new("auditor"),
            Box::new(recorder.reading("reason")),
        )
        .unwrap();

    publish_public(engine, &[("type", Value::str("order"))]);
    handle.pump_until_idle().unwrap();

    assert_eq!(received.load(Ordering::Relaxed), 1);
    assert_eq!(seen.lock().as_slice(), &[Value::str("checked")]);
}

#[test]
fn clone_event_applies_output_label_and_new_identity() {
    let handle = started(SecurityMode::LabelsFreeze);
    let engine = handle.engine();
    let unit = engine
        .register_unit(UnitSpec::new("cloner"), Box::new(NullUnit))
        .unwrap();
    engine.set_pull_mode(unit, true).unwrap();
    engine
        .with_unit(unit, |_, ctx| {
            ctx.subscribe(Filter::for_type("copy"))?;
            Ok(())
        })
        .unwrap();

    engine
        .with_unit(unit, |_, ctx| {
            let d = ctx.create_owned_tag("d");
            ctx.change_out_label(Component::Confidentiality, LabelOp::Add, &d)?;
            let original = defcon_events::EventBuilder::new()
                .part("type", Label::public(), Value::str("copy"))
                .build()
                .unwrap();
            let clone = ctx.clone_event(&original);
            ctx.publish(clone)?;
            Ok(())
        })
        .unwrap();
    handle.pump_until_idle().unwrap();

    // The clone's parts now carry tag d, so the (untagged) subscription of the same
    // unit cannot see them — the event is filtered out.
    assert!(engine.poll_event(unit).unwrap().is_none());
}

#[test]
fn instantiate_unit_checks_delegation_and_inherits_contamination() {
    let engine = engine(SecurityMode::LabelsFreeze);
    let parent = engine
        .register_unit(UnitSpec::new("parent"), Box::new(NullUnit))
        .unwrap();

    let child = engine
        .with_unit(parent, |_, ctx| {
            let owned = ctx.create_owned_tag("owned");
            // Raise the parent's contamination; the child must inherit it.
            ctx.change_in_out_label(Component::Confidentiality, LabelOp::Add, &owned)?;

            // Delegating a privilege the parent cannot delegate fails.
            let foreign = Tag::with_name("foreign");
            let bad = UnitSpec::new("child-bad").with_privilege(Privilege::add(foreign));
            assert!(ctx.instantiate_unit(bad, Box::new(NullUnit)).is_err());

            // Delegating an owned privilege succeeds.
            let good = UnitSpec::new("child").with_privilege(Privilege::add(owned.clone()));
            let child = ctx.instantiate_unit(good, Box::new(NullUnit))?;
            Ok((child, owned))
        })
        .unwrap();

    let (child_id, owned) = child;
    let child_state = engine.unit_state(child_id).unwrap();
    assert!(child_state.input_label.confidentiality().contains(&owned));
    assert!(child_state.privileges.holds(&owned, PrivilegeKind::Add));
}

#[test]
fn empty_filters_and_empty_events_are_rejected() {
    let handle = started(SecurityMode::LabelsFreeze);
    let engine = handle.engine();
    let unit = engine
        .register_unit(UnitSpec::new("u"), Box::new(NullUnit))
        .unwrap();
    engine
        .with_unit(unit, |_, ctx| {
            assert!(matches!(
                ctx.subscribe(Filter::new()),
                Err(EngineError::EmptyFilter)
            ));
            // Publishing a draft without parts is dropped (returns false).
            let draft = ctx.create_event();
            assert!(!ctx.publish(draft)?);
            Ok(())
        })
        .unwrap();
    handle.pump_until_idle().unwrap();
    assert_eq!(engine.stats().published(), 0);
}

#[test]
fn all_security_modes_deliver_functional_events() {
    for mode in SecurityMode::all() {
        let handle = started(mode);
        let engine = handle.engine();
        let (recorder, received, seen) = Recorder::new(Filter::for_type("tick"));
        engine
            .register_unit(UnitSpec::new("r"), Box::new(recorder.reading("price")))
            .unwrap();
        publish_public(
            engine,
            &[("type", Value::str("tick")), ("price", Value::Float(3.5))],
        );
        handle.pump_until_idle().unwrap();
        assert_eq!(received.load(Ordering::Relaxed), 1, "mode {mode}");
        assert_eq!(seen.lock().as_slice(), &[Value::Float(3.5)], "mode {mode}");
    }
}

#[test]
fn pull_mode_get_event_blocks_until_delivery() {
    let handle = started(SecurityMode::LabelsFreeze);
    let engine = handle.engine();
    let unit = engine
        .register_unit(UnitSpec::new("puller"), Box::new(NullUnit))
        .unwrap();
    engine.set_pull_mode(unit, true).unwrap();
    engine
        .with_unit(unit, |_, ctx| {
            ctx.subscribe(Filter::for_type("tick"))?;
            Ok(())
        })
        .unwrap();

    // get_event without anything queued times out with None.
    let nothing = engine
        .get_event(unit, std::time::Duration::from_millis(10))
        .unwrap();
    assert!(nothing.is_none());

    publish_public(engine, &[("type", Value::str("tick"))]);
    handle.pump_until_idle().unwrap();
    let something = engine
        .get_event(unit, std::time::Duration::from_millis(100))
        .unwrap();
    assert!(something.is_some());

    // get_event on a unit not in pull mode is an invalid operation.
    let other = engine
        .register_unit(UnitSpec::new("other"), Box::new(NullUnit))
        .unwrap();
    assert!(matches!(
        engine.get_event(other, std::time::Duration::from_millis(1)),
        Err(EngineError::InvalidOperation(_))
    ));
}

#[test]
fn remove_unit_cleans_up_subscriptions() {
    let handle = started(SecurityMode::LabelsFreeze);
    let engine = handle.engine();
    let (recorder, received, _) = Recorder::new(Filter::for_type("tick"));
    let unit = engine
        .register_unit(UnitSpec::new("r"), Box::new(recorder))
        .unwrap();
    assert_eq!(engine.subscription_count(), 1);
    engine.remove_unit(unit).unwrap();
    assert_eq!(engine.subscription_count(), 0);
    publish_public(engine, &[("type", Value::str("tick"))]);
    handle.pump_until_idle().unwrap();
    assert_eq!(received.load(Ordering::Relaxed), 0);
    assert!(engine.remove_unit(unit).is_err());
}

#[test]
fn memory_accounting_reflects_cached_events_and_units() {
    let handle = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .event_cache(100)
        .start();
    let engine = handle.engine();
    let before = engine.memory_mib();
    for _ in 0..50 {
        publish_public(
            engine,
            &[
                ("type", Value::str("tick")),
                ("blob", Value::str("x".repeat(10_000))),
            ],
        );
    }
    handle.pump_until_idle().unwrap();
    let after = engine.memory_mib();
    assert!(
        after > before,
        "memory accounting must grow: {before} -> {after}"
    );
}

#[test]
fn unit_errors_are_isolated_and_counted() {
    struct Faulty;
    impl Unit for Faulty {
        fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
            ctx.subscribe(Filter::for_type("tick"))?;
            Ok(())
        }
        fn on_event(&mut self, ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()> {
            // Attempt to read a part that does not exist.
            ctx.read_part(event, "missing")?;
            Ok(())
        }
    }

    let handle = started(SecurityMode::LabelsFreeze);
    let engine = handle.engine();
    engine
        .register_unit(UnitSpec::new("faulty"), Box::new(Faulty))
        .unwrap();
    let (recorder, received, _) = Recorder::new(Filter::for_type("tick"));
    engine
        .register_unit(UnitSpec::new("healthy"), Box::new(recorder))
        .unwrap();

    publish_public(engine, &[("type", Value::str("tick"))]);
    handle.pump_until_idle().unwrap();

    assert_eq!(engine.stats().unit_errors(), 1);
    assert_eq!(
        received.load(Ordering::Relaxed),
        1,
        "other units still receive the event"
    );
}

// ---------------------------------------------------------------------------
// Concurrent dispatch: workers(4) over the sharded run queue. (Exactly-once
// delivery and per-unit serialisation over the full random grid of
// `(workers, batch_size, mode, publishers, events)` live in
// `tests/dispatch_properties.rs`; here only the label-check and lifecycle
// behaviours that need bespoke setups remain.)
// ---------------------------------------------------------------------------

#[test]
fn label_checks_hold_under_concurrent_dispatch() {
    const PUBLISHERS: u64 = 4;
    const EVENTS_EACH: u64 = 150;

    for mode in SecurityMode::all() {
        let engine = Engine::builder().mode(mode).workers(4).build();

        // A curious unit subscribes on the public type part and tries to read the
        // confidential body of every delivery.
        struct Curious {
            received: Arc<AtomicU64>,
            bodies_seen: Arc<AtomicU64>,
        }
        impl Unit for Curious {
            fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
                ctx.subscribe(Filter::for_type("order"))?;
                Ok(())
            }
            fn on_event(&mut self, ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()> {
                self.received.fetch_add(1, Ordering::SeqCst);
                if ctx.read_part(event, "body").is_ok() {
                    self.bodies_seen.fetch_add(1, Ordering::SeqCst);
                }
                Ok(())
            }
        }

        let received = Arc::new(AtomicU64::new(0));
        let bodies_seen = Arc::new(AtomicU64::new(0));
        engine
            .register_unit(
                UnitSpec::new("curious"),
                Box::new(Curious {
                    received: Arc::clone(&received),
                    bodies_seen: Arc::clone(&bodies_seen),
                }),
            )
            .unwrap();

        let sources: Vec<_> = (0..PUBLISHERS)
            .map(|i| {
                engine
                    .register_unit(UnitSpec::new(format!("trader-{i}")), Box::new(NullUnit))
                    .unwrap()
            })
            .collect();

        let handle = engine.start();
        let threads: Vec<_> = sources
            .iter()
            .enumerate()
            .map(|(i, &source)| {
                let publisher = handle.publisher(source).unwrap();
                std::thread::spawn(move || {
                    // Each driver confines its order bodies under its own tag.
                    let tag = publisher
                        .with_context(|ctx| Ok(ctx.create_owned_tag(format!("s-{i}"))))
                        .unwrap();
                    for _ in 0..EVENTS_EACH {
                        publisher
                            .publish(
                                EventDraft::new()
                                    .public_part("type", Value::str("order"))
                                    .part(
                                        "body",
                                        Label::confidential(TagSet::singleton(tag.clone())),
                                        Value::Float(1.0),
                                    ),
                            )
                            .unwrap();
                    }
                })
            })
            .collect();
        for thread in threads {
            thread.join().unwrap();
        }
        handle.shutdown().unwrap();

        let published = PUBLISHERS * EVENTS_EACH;
        assert_eq!(received.load(Ordering::SeqCst), published, "mode {mode}");
        if mode.checks_labels() {
            assert_eq!(
                bodies_seen.load(Ordering::SeqCst),
                0,
                "mode {mode}: confidential bodies must stay hidden under contention"
            );
        } else {
            assert_eq!(
                bodies_seen.load(Ordering::SeqCst),
                published,
                "mode {mode}: without security every body is readable"
            );
        }
    }
}

#[test]
fn managed_eviction_under_workers_does_not_deadlock_or_leak() {
    // A tight managed-instance cap plus per-event tags forces constant handler
    // creation and eviction while four workers dispatch, and each managed
    // delivery calls instantiate_unit (cell -> units.write lock order) — the
    // combination that would deadlock if eviction locked cells while holding
    // the units registry.
    struct SpawningHandler {
        processed: Arc<AtomicU64>,
    }
    impl Unit for SpawningHandler {
        fn on_event(&mut self, ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
            ctx.instantiate_unit(UnitSpec::new("ephemeral"), Box::new(NullUnit))?;
            self.processed.fetch_add(1, Ordering::SeqCst);
            Ok(())
        }
    }

    struct Broker {
        processed: Arc<AtomicU64>,
    }
    impl Unit for Broker {
        fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
            let processed = Arc::clone(&self.processed);
            ctx.subscribe_managed(
                Box::new(move || {
                    Box::new(SpawningHandler {
                        processed: Arc::clone(&processed),
                    }) as Box<dyn Unit>
                }),
                Filter::for_type("order"),
            )?;
            Ok(())
        }
        fn on_event(&mut self, _ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
            Ok(())
        }
    }

    let engine = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .workers(4)
        .managed_instance_cap(4)
        .build();
    let processed = Arc::new(AtomicU64::new(0));
    engine
        .register_unit(
            UnitSpec::new("broker"),
            Box::new(Broker {
                processed: Arc::clone(&processed),
            }),
        )
        .unwrap();
    let sources: Vec<_> = (0..4)
        .map(|i| {
            engine
                .register_unit(UnitSpec::new(format!("trader-{i}")), Box::new(NullUnit))
                .unwrap()
        })
        .collect();

    let handle = engine.start();
    let threads: Vec<_> = sources
        .iter()
        .enumerate()
        .map(|(i, &source)| {
            let publisher = handle.publisher(source).unwrap();
            std::thread::spawn(move || {
                for n in 0..100u64 {
                    // A fresh tag per order: every event demands a new managed
                    // contamination, churning the capped instance registry.
                    let tag = publisher
                        .with_context(|ctx| Ok(ctx.create_owned_tag(format!("s-{i}-{n}"))))
                        .unwrap();
                    publisher
                        .publish(
                            EventDraft::new()
                                .public_part("type", Value::str("order"))
                                .part(
                                    "body",
                                    Label::confidential(TagSet::singleton(tag)),
                                    Value::Float(1.0),
                                ),
                        )
                        .unwrap();
                }
            })
        })
        .collect();
    for thread in threads {
        thread.join().unwrap();
    }
    let dispatched = handle.shutdown().unwrap();
    assert_eq!(dispatched, 400);
    assert_eq!(processed.load(Ordering::SeqCst), 400);
    // Eviction kept the registry bounded: 1 broker + 4 traders + at most the
    // capped handlers, plus the 400 ephemeral instantiations.
    assert!(
        engine.stats().managed_instances() >= 396,
        "one handler per contamination"
    );
}

#[test]
fn run_for_drives_dispatch_against_live_publishers() {
    let handle = Engine::builder().mode(SecurityMode::LabelsFreeze).start();
    let engine = handle.engine();
    let (recorder, received, _) = Recorder::new(Filter::for_type("tick"));
    engine
        .register_unit(UnitSpec::new("r"), Box::new(recorder))
        .unwrap();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();
    let publisher = handle.publisher(source).unwrap();

    let driver = std::thread::spawn(move || {
        for _ in 0..50 {
            publisher
                .publish(EventDraft::new().public_part("type", Value::str("tick")))
                .unwrap();
            std::thread::sleep(Duration::from_millis(1));
        }
    });
    // run_for keeps pumping while the driver publishes from another thread.
    while received.load(Ordering::Relaxed) < 50 {
        handle.run_for(Duration::from_millis(20)).unwrap();
    }
    driver.join().unwrap();
    assert_eq!(received.load(Ordering::Relaxed), 50);
    handle.shutdown().unwrap();
}

#[test]
fn shutdown_waits_for_cascading_publications() {
    // A relay republishes every tick as a "boom" event from inside dispatch;
    // shutdown must also drain the events published *during* the drain.
    struct Relay;
    impl Unit for Relay {
        fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
            ctx.subscribe(Filter::for_type("tick"))?;
            Ok(())
        }
        fn on_event(&mut self, ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
            let draft = ctx.create_event();
            ctx.add_part(&draft, Label::public(), "type", Value::str("boom"))?;
            ctx.publish(draft)?;
            Ok(())
        }
    }

    let engine = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .workers(4)
        .build();
    engine
        .register_unit(UnitSpec::new("relay"), Box::new(Relay))
        .unwrap();
    let (recorder, received, _) = Recorder::new(Filter::for_type("boom"));
    engine
        .register_unit(UnitSpec::new("sink"), Box::new(recorder))
        .unwrap();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();

    let handle = engine.start();
    let publisher = handle.publisher(source).unwrap();
    for _ in 0..200 {
        publisher
            .publish(EventDraft::new().public_part("type", Value::str("tick")))
            .unwrap();
    }
    let dispatched = handle.shutdown().unwrap();
    assert_eq!(dispatched, 400, "ticks plus relayed booms must both drain");
    assert_eq!(received.load(Ordering::Relaxed), 200);
}
