//! Deterministic tests of the elastic dispatcher worker pool.
//!
//! The pool's contract: a sustained backlog recruits workers up to
//! `workers_max`, an idle engine parks them back down to `workers_min` (after
//! the idle grace, in LIFO order), and `shutdown()` always drains and joins
//! every thread the band ever spawned — whatever the pool's scale at that
//! moment. The tests pin the *transitions* (scale-up under flood, park-down
//! after drain) by polling [`EngineHandle::queue_stats`] against generous
//! deadlines: the outcome is deterministic even though the exact instant of
//! each transition is scheduler-dependent.

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::Arc;
use std::time::{Duration, Instant};

use defcon_core::unit::NullUnit;
use defcon_core::{
    Engine, EngineHandle, EngineResult, EventDraft, Publisher, SecurityMode, Unit, UnitContext,
    UnitSpec,
};
use defcon_events::{Event, Filter, Value};

/// A subscriber that sleeps per event, so the queue backs up and the pool has
/// a reason to scale.
struct SlowSink {
    received: Arc<AtomicU64>,
    delay: Duration,
}

impl Unit for SlowSink {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        ctx.subscribe(Filter::for_type("tick"))?;
        Ok(())
    }

    fn on_event(&mut self, _ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
        std::thread::sleep(self.delay);
        self.received.fetch_add(1, Ordering::Relaxed);
        Ok(())
    }
}

const BAND_MIN: usize = 1;
const BAND_MAX: usize = 3;

fn elastic_engine(received: &Arc<AtomicU64>) -> (Engine, defcon_core::unit::UnitId) {
    let engine = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .workers_min(BAND_MIN)
        .workers_max(BAND_MAX)
        .batch_size(8)
        .elastic(
            defcon_core::ElasticConfig::new()
                .scale_up_depth(8)
                .idle_grace(Duration::from_millis(2)),
        )
        .event_cache(0)
        .build();
    engine
        .register_unit(
            UnitSpec::new("slow-sink"),
            Box::new(SlowSink {
                received: Arc::clone(received),
                delay: Duration::from_micros(200),
            }),
        )
        .unwrap();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();
    (engine, source)
}

fn tick_batch(n: usize) -> Vec<EventDraft> {
    (0..n)
        .map(|_| EventDraft::new().public_part("type", Value::str("tick")))
        .collect()
}

/// Publishes flood bursts until the pool's activation reaches `target` (every
/// enqueue feeds the pool's depth sampling), returning how many events were
/// accepted. Panics if the pool has not reached `target` within the deadline.
fn flood_until_active(
    handle: &EngineHandle,
    publisher: &Publisher,
    target: usize,
    deadline: Duration,
) -> u64 {
    let start = Instant::now();
    let mut published = 0u64;
    while handle.queue_stats().workers_active < target {
        assert!(
            start.elapsed() < deadline,
            "pool stuck at {} active workers (target {target}) after {deadline:?}; stats: {:?}",
            handle.queue_stats().workers_active,
            handle.queue_stats(),
        );
        published += publisher.publish_batch(tick_batch(32)).unwrap().accepted() as u64;
    }
    published
}

fn wait_for_active(handle: &EngineHandle, target: usize, deadline: Duration) {
    let start = Instant::now();
    while handle.queue_stats().workers_active != target {
        assert!(
            start.elapsed() < deadline,
            "pool did not settle at {target} active workers: {:?}",
            handle.queue_stats(),
        );
        std::thread::sleep(Duration::from_millis(1));
    }
}

#[test]
fn flood_scales_to_max_and_idle_drain_parks_back_to_min() {
    let received = Arc::new(AtomicU64::new(0));
    let (engine, source) = elastic_engine(&received);
    let handle = engine.start();
    assert_eq!(handle.worker_count(), BAND_MAX, "the whole band is spawned");
    let stats = handle.queue_stats();
    assert_eq!(
        stats.workers_active, BAND_MIN,
        "the band starts at its floor"
    );
    assert_eq!(stats.workers_high_water, BAND_MIN);

    // A sustained backlog (slow sink, bursty publishes) must recruit the
    // whole band.
    let publisher = handle.publisher(source).unwrap();
    let mut published = flood_until_active(&handle, &publisher, BAND_MAX, Duration::from_secs(30));
    assert_eq!(handle.queue_stats().workers_high_water, BAND_MAX);

    // Once the backlog drains and the engine idles past the grace, the band
    // parks back down to its floor — and the high-water mark stays.
    assert!(
        handle.wait_idle(Duration::from_secs(60)),
        "flood must drain"
    );
    wait_for_active(&handle, BAND_MIN, Duration::from_secs(10));
    assert_eq!(handle.queue_stats().workers_high_water, BAND_MAX);

    // The shrunk pool still dispatches: the floor workers carry new load.
    published += publisher.publish_batch(tick_batch(8)).unwrap().accepted() as u64;
    assert!(handle.wait_idle(Duration::from_secs(30)));
    assert_eq!(received.load(Ordering::Relaxed), published);

    let dispatched = handle.shutdown().unwrap();
    assert_eq!(dispatched, published, "shutdown accounts for every event");
}

#[test]
fn mid_scale_shutdown_drains_and_joins_every_spawned_worker() {
    let received = Arc::new(AtomicU64::new(0));
    let (engine, source) = elastic_engine(&received);
    let handle = engine.start();
    let publisher = handle.publisher(source).unwrap();

    // Scale at least one worker beyond the floor, then shut down *while the
    // backlog is still live* — mid-scale, nothing parked-down yet.
    let published = flood_until_active(&handle, &publisher, 2, Duration::from_secs(30));
    let dispatched = handle.shutdown().unwrap();
    assert_eq!(
        dispatched, published,
        "a mid-scale shutdown must drain everything it accepted"
    );
    assert_eq!(received.load(Ordering::Relaxed), published);
    assert_eq!(engine.queue_depth(), 0);

    // Late publishes fail loudly — the drained runtime is really gone.
    let result = publisher.publish_batch(tick_batch(4));
    assert!(result.is_err(), "got {result:?}");
}

#[test]
fn fixed_pools_never_change_their_activation() {
    let received = Arc::new(AtomicU64::new(0));
    let engine = Engine::builder()
        .workers(2)
        .batch_size(8)
        .event_cache(0)
        .build();
    engine
        .register_unit(
            UnitSpec::new("sink"),
            Box::new(SlowSink {
                received: Arc::clone(&received),
                delay: Duration::ZERO,
            }),
        )
        .unwrap();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();
    let handle = engine.start();
    let publisher = handle.publisher(source).unwrap();
    for _ in 0..64 {
        let _ = publisher.publish_batch(tick_batch(32)).unwrap();
    }
    assert!(handle.wait_idle(Duration::from_secs(30)));
    let stats = handle.queue_stats();
    assert_eq!(stats.workers_active, 2);
    assert_eq!(stats.workers_high_water, 2);
    assert_eq!(stats.workers_min, 2);
    assert_eq!(stats.workers_max, 2);
    handle.shutdown().unwrap();
    assert_eq!(received.load(Ordering::Relaxed), 64 * 32);
}
