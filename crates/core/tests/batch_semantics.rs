//! Semantics of batched dispatch: turning on `batch_size(n)` changes how many
//! events a worker carries per run-queue visit — it must change nothing about
//! *what* is delivered. These tests pin exactly-once delivery, per-unit
//! serialisation and in-batch ordering at `workers(4) × batch_size(8)` across
//! all four security modes, plus the publish-batch-vs-shutdown race at the
//! engine level.

use std::sync::atomic::{AtomicBool, AtomicU64, AtomicUsize, Ordering};
use std::sync::Arc;

use defcon_core::unit::NullUnit;
use defcon_core::{Engine, EngineResult, EventDraft, SecurityMode, Unit, UnitContext, UnitSpec};
use defcon_events::{Event, Filter, Value};

/// Counts deliveries and asserts it is never re-entered: batched dispatch must
/// keep per-unit delivery serialised.
struct SerialProbe {
    received: Arc<AtomicU64>,
    reentered: Arc<AtomicBool>,
    in_callback: AtomicBool,
}

impl Unit for SerialProbe {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        ctx.subscribe(Filter::for_type("tick"))?;
        Ok(())
    }

    fn on_event(&mut self, _ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
        if self.in_callback.swap(true, Ordering::SeqCst) {
            self.reentered.store(true, Ordering::SeqCst);
        }
        self.received.fetch_add(1, Ordering::SeqCst);
        self.in_callback.store(false, Ordering::SeqCst);
        Ok(())
    }
}

fn tick_draft(n: i64) -> EventDraft {
    EventDraft::new()
        .public_part("type", Value::str("tick"))
        .public_part("n", Value::Int(n))
}

// The headline `workers(4) × batch_size(8)` exactly-once sweep was replaced
// by the random-configuration property test in `tests/dispatch_properties.rs`,
// which covers that point (and the rest of the grid) with the same
// assertions; what remains here are the batching-specific semantics.

/// A recording subscriber used for ordering assertions.
struct OrderProbe {
    seen: Arc<parking_lot::Mutex<Vec<i64>>>,
}

impl Unit for OrderProbe {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        ctx.subscribe(Filter::for_type("tick"))?;
        Ok(())
    }

    fn on_event(&mut self, ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()> {
        if let Ok(versions) = ctx.read_part(event, "n") {
            if let Some((_, Value::Int(n))) = versions.into_iter().next() {
                self.seen.lock().push(n);
            }
        }
        Ok(())
    }
}

/// With a single worker (one shard) the queue is FIFO, and a `publish_batch`
/// lands on one shard in draft order — so a subscriber must observe the exact
/// publication order even though events travel in batches of 8.
#[test]
fn publish_batch_order_is_preserved_with_a_single_worker() {
    for mode in SecurityMode::all() {
        let engine = Engine::builder()
            .mode(mode)
            .workers(1)
            .batch_size(8)
            .build();
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        engine
            .register_unit(
                UnitSpec::new("order-probe"),
                Box::new(OrderProbe {
                    seen: Arc::clone(&seen),
                }),
            )
            .unwrap();
        let source = engine
            .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
            .unwrap();

        let handle = engine.start();
        let publisher = handle.publisher(source).unwrap();
        const TOTAL: i64 = 20 * 8;
        for batch in 0..20 {
            let drafts = (0..8).map(|i| tick_draft(batch * 8 + i)).collect();
            let _ = publisher.publish_batch(drafts).unwrap();
        }
        handle.shutdown().unwrap();

        let seen = seen.lock();
        assert_eq!(
            *seen,
            (0..TOTAL).collect::<Vec<_>>(),
            "mode {mode}: single-worker batched dispatch must preserve publish order"
        );
    }
}

/// `batch_size(1)` (the default) and `batch_size(8)` must be observationally
/// identical on a deterministic single-threaded engine — batching is a carrier
/// change, not a semantics change.
#[test]
fn batch_size_does_not_change_single_threaded_results() {
    let run = |batch_size: usize| -> (u64, u64, Vec<i64>) {
        let engine = Engine::builder()
            .mode(SecurityMode::LabelsFreeze)
            .batch_size(batch_size)
            .build();
        let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
        engine
            .register_unit(
                UnitSpec::new("order-probe"),
                Box::new(OrderProbe {
                    seen: Arc::clone(&seen),
                }),
            )
            .unwrap();
        let source = engine
            .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
            .unwrap();
        let handle = engine.start();
        let publisher = handle.publisher(source).unwrap();
        for batch in 0..10 {
            let drafts = (0..7).map(|i| tick_draft(batch * 7 + i)).collect();
            let _ = publisher.publish_batch(drafts).unwrap();
        }
        handle.pump_until_idle().unwrap();
        let stats = (
            engine.stats().dispatched(),
            engine.stats().deliveries(),
            seen.lock().clone(),
        );
        handle.shutdown().unwrap();
        stats
    };

    assert_eq!(run(1), run(8));
}

/// The batch snapshot semantics and their escape hatch: dispatch observes each
/// subscriber's security state as snapshotted when its batch began, so a unit
/// raising its own label *during* a delivery does not affect the visibility
/// checks of later events in the same batch. `batch_size(1)` is the documented
/// escape hatch — every event is its own batch, so every dispatch re-reads the
/// owner state and mid-batch label changes become observable immediately.
#[test]
fn batch_size_one_makes_mid_batch_label_changes_observable() {
    use defcon_core::context::LabelOp;
    use defcon_defc::{Component, Label, Privilege, Tag, TagSet};

    /// Raises its own input label (it holds `tag+`) when it sees a trigger
    /// event; counts every delivery it receives.
    struct Chameleon {
        tag: Tag,
        delivered: Arc<AtomicU64>,
    }

    impl Unit for Chameleon {
        fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
            ctx.subscribe(Filter::for_type("tick"))?;
            Ok(())
        }

        fn on_event(&mut self, ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()> {
            self.delivered.fetch_add(1, Ordering::SeqCst);
            if ctx.read_part(event, "trigger").is_ok() {
                ctx.change_in_out_label(Component::Confidentiality, LabelOp::Add, &self.tag)?;
            }
            Ok(())
        }
    }

    let run = |batch_size: usize| -> u64 {
        let engine = Engine::builder()
            .mode(SecurityMode::LabelsFreeze)
            .batch_size(batch_size)
            .build();
        let source = engine
            .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
            .unwrap();
        let publisher = engine.publisher(source).unwrap();
        let tag = publisher
            .with_context(|ctx| Ok(ctx.create_owned_tag("s-secret")))
            .unwrap();
        let delivered = Arc::new(AtomicU64::new(0));
        engine
            .register_unit(
                UnitSpec::new("chameleon").with_privilege(Privilege::add(tag.clone())),
                Box::new(Chameleon {
                    tag: tag.clone(),
                    delivered: Arc::clone(&delivered),
                }),
            )
            .unwrap();

        let handle = engine.start();
        // One batch: a public trigger (on which the chameleon raises its own
        // input label) followed by an event whose filtered part is
        // confidential under the tag the raise would make visible.
        let _ = publisher
            .publish_batch(vec![
                EventDraft::new()
                    .public_part("type", Value::str("tick"))
                    .public_part("trigger", Value::Int(1)),
                EventDraft::new().part(
                    "type",
                    Label::confidential(TagSet::singleton(tag.clone())),
                    Value::str("tick"),
                ),
            ])
            .unwrap();
        handle.pump_until_idle().unwrap();
        let seen = delivered.load(Ordering::SeqCst);
        handle.shutdown().unwrap();
        seen
    };

    assert_eq!(
        run(8),
        1,
        "with both events in one batch, the second is checked against the \
         batch-start snapshot: the mid-batch raise is not observed"
    );
    assert_eq!(
        run(1),
        2,
        "batch_size(1) re-snapshots per event: the raise is observable by the \
         very next dispatch"
    );
}

/// The engine-level batch-straddles-stop race: batches racing `shutdown` are
/// either rejected whole, or partially accepted with the accepted count exactly
/// matching what reaches the subscriber. Nothing is lost, nothing is duplicated
/// and the engine always settles idle.
#[test]
fn publish_batch_racing_shutdown_is_exact() {
    for round in 0..20 {
        let engine = Engine::builder()
            .mode(SecurityMode::LabelsFreeze)
            .workers(2)
            .batch_size(4)
            .build();
        let received = Arc::new(AtomicU64::new(0));
        let reentered = Arc::new(AtomicBool::new(false));
        engine
            .register_unit(
                UnitSpec::new("probe"),
                Box::new(SerialProbe {
                    received: Arc::clone(&received),
                    reentered: Arc::clone(&reentered),
                    in_callback: AtomicBool::new(false),
                }),
            )
            .unwrap();
        let source = engine
            .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
            .unwrap();

        let handle = engine.start();
        let publisher = handle.publisher(source).unwrap();
        let accepted = Arc::new(AtomicUsize::new(0));
        let driver = {
            let accepted = Arc::clone(&accepted);
            std::thread::spawn(move || {
                for batch in 0..50i64 {
                    let drafts = (0..4).map(|i| tick_draft(batch * 4 + i)).collect();
                    match publisher.publish_batch(drafts) {
                        Ok(admission) => {
                            accepted.fetch_add(admission.accepted(), Ordering::SeqCst);
                        }
                        // The runtime shut down underneath us: rejected loudly,
                        // nothing partially enqueued from this call onwards.
                        Err(_) => return,
                    }
                }
            })
        };
        if round % 2 == 0 {
            std::thread::yield_now();
        }
        handle.shutdown().unwrap();
        driver.join().unwrap();

        assert_eq!(
            received.load(Ordering::SeqCst) as usize,
            accepted.load(Ordering::SeqCst),
            "round {round}: accepted events are delivered exactly once, rejected ones never"
        );
        assert_eq!(engine.queue_depth(), 0, "round {round}");
    }
}
