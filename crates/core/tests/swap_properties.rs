//! Property-based tests of live unit swap (`swap_unit`) under dispatch load.
//!
//! Random runtime configurations — worker count, batch size, grouped delivery,
//! swap count and swap timing — run a publish workload while a racing thread
//! hot-swaps the subscriber mid-dispatch. Every configuration must uphold:
//!
//! 1. **Exactly-once across the boundary**: every accepted event is delivered
//!    exactly once — to the old incarnation or the new one, never both, never
//!    zero — and graceful shutdown drains them all.
//! 2. **Version monotonicity**: once any delivery lands on incarnation `v`,
//!    no later delivery lands on an incarnation `< v`. The swap quiesces the
//!    old cell before the replacement goes live, so versions never interleave.
//! 3. **Per-unit serialisation**: `on_event` is never re-entered, even across
//!    the swap boundary (old and new incarnation share the re-entry flag).
//!
//! The vendored proptest shim generates cases deterministically from a fixed
//! seed; the `workers(4)` hot point from ISSUE acceptance is pinned by a
//! dedicated test below, grouped delivery both on and off, and a single-worker
//! test pins exact FIFO order across the swap boundary.

use std::sync::atomic::{AtomicBool, AtomicU32, AtomicU64, Ordering};
use std::sync::Arc;

use defcon_core::unit::NullUnit;
use defcon_core::{
    Engine, EngineResult, EventDraft, SecurityMode, Unit, UnitContext, UnitId, UnitSpec,
};
use defcon_events::{Event, Filter, Value};
use proptest::prelude::*;

/// Delivery ledger shared by every incarnation of the swapped unit.
struct SwapLedger {
    /// Per-sequence-number delivery count; each must end at exactly 1.
    delivered: Vec<AtomicU32>,
    /// Highest incarnation that has delivered so far (for monotonicity).
    last_version: AtomicU64,
    /// Set if any delivery observed a *lower* incarnation than one already seen.
    version_regressed: AtomicBool,
    /// Set if `on_event` was ever re-entered, across incarnations.
    reentered: AtomicBool,
    in_callback: AtomicBool,
}

impl SwapLedger {
    fn new(total_events: usize) -> Self {
        SwapLedger {
            delivered: (0..total_events).map(|_| AtomicU32::new(0)).collect(),
            last_version: AtomicU64::new(0),
            version_regressed: AtomicBool::new(false),
            reentered: AtomicBool::new(false),
            in_callback: AtomicBool::new(false),
        }
    }
}

/// One incarnation of the swapped unit. The initial registration has
/// `incarnation == 1`; the replacement passed to the k-th `swap_unit` call has
/// `incarnation == k + 1`, matching the engine-assigned version.
struct VersionedProbe {
    incarnation: u64,
    ledger: Arc<SwapLedger>,
}

impl Unit for VersionedProbe {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        // Only the initial registration runs init; replacements inherit the
        // subscription so no event can be double-matched across the swap.
        ctx.subscribe(Filter::for_type("tick"))?;
        Ok(())
    }

    fn on_event(&mut self, ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()> {
        if self.ledger.in_callback.swap(true, Ordering::SeqCst) {
            self.ledger.reentered.store(true, Ordering::SeqCst);
        }
        if let Ok(parts) = ctx.read_part(event, "seq") {
            if let Some((_, Value::Int(seq))) = parts.into_iter().next() {
                self.ledger.delivered[seq as usize].fetch_add(1, Ordering::SeqCst);
            }
        }
        let prev = self
            .ledger
            .last_version
            .fetch_max(self.incarnation, Ordering::SeqCst);
        if prev > self.incarnation {
            self.ledger.version_regressed.store(true, Ordering::SeqCst);
        }
        self.ledger.in_callback.store(false, Ordering::SeqCst);
        Ok(())
    }
}

fn tick_draft(seq: i64) -> EventDraft {
    EventDraft::new()
        .public_part("type", Value::str("tick"))
        .public_part("seq", Value::Int(seq))
}

/// Runs one configuration: `publishers` threads feed a total of
/// `publishers * events_each` uniquely numbered events while a racing thread
/// performs `swaps` hot swaps of the subscriber, `spacing_us` apart. Asserts
/// the swap invariants at the end.
fn check_swap_invariants(
    workers: usize,
    batch_size: usize,
    grouped: bool,
    mode: SecurityMode,
    swaps: u64,
    spacing_us: u64,
) {
    const PUBLISHERS: u64 = 2;
    const EVENTS_EACH: u64 = 150;
    let total = (PUBLISHERS * EVENTS_EACH) as usize;

    let engine = Engine::builder()
        .mode(mode)
        .workers(workers)
        .batch_size(batch_size)
        .grouped_delivery(grouped)
        .build();

    let ledger = Arc::new(SwapLedger::new(total));
    let target = engine
        .register_unit(
            UnitSpec::new("swap-target"),
            Box::new(VersionedProbe {
                incarnation: 1,
                ledger: Arc::clone(&ledger),
            }),
        )
        .unwrap();
    let sources: Vec<UnitId> = (0..PUBLISHERS)
        .map(|i| {
            engine
                .register_unit(UnitSpec::new(format!("feed-{i}")), Box::new(NullUnit))
                .unwrap()
        })
        .collect();

    let handle = engine.start();

    std::thread::scope(|scope| {
        for (p, &source) in sources.iter().enumerate() {
            let publisher = handle.publisher(source).unwrap();
            scope.spawn(move || {
                let base = p as u64 * EVENTS_EACH;
                let mut next = base;
                let end = base + EVENTS_EACH;
                while next < end {
                    let take = (end - next).min(batch_size as u64);
                    let drafts = (next..next + take)
                        .map(|seq| tick_draft(seq as i64))
                        .collect();
                    assert_eq!(
                        publisher.publish_batch(drafts).unwrap().accepted(),
                        take as usize
                    );
                    next += take;
                }
            });
        }
        // The racing swapper: replacement k carries incarnation k + 2 and the
        // engine must assign exactly that version.
        let swap_ledger = Arc::clone(&ledger);
        let handle_ref = &handle;
        scope.spawn(move || {
            for k in 0..swaps {
                std::thread::sleep(std::time::Duration::from_micros(spacing_us));
                let version = handle_ref
                    .swap_unit(
                        target,
                        Box::new(VersionedProbe {
                            incarnation: k + 2,
                            ledger: Arc::clone(&swap_ledger),
                        }),
                    )
                    .unwrap();
                assert_eq!(version, k + 2, "swap versions must be sequential");
            }
        });
    });

    let published = PUBLISHERS * EVENTS_EACH;
    let dispatched = handle.shutdown().unwrap();
    let config = format!(
        "workers={workers} batch={batch_size} grouped={grouped} mode={mode} \
         swaps={swaps} spacing={spacing_us}us"
    );
    assert_eq!(dispatched, published, "{config}: shutdown must drain");
    for (seq, count) in ledger.delivered.iter().enumerate() {
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "{config}: event {seq} must be delivered exactly once (old or new \
             incarnation, never both, never zero)"
        );
    }
    assert!(
        !ledger.version_regressed.load(Ordering::SeqCst),
        "{config}: incarnation versions must be monotone across the swap"
    );
    assert!(
        !ledger.reentered.load(Ordering::SeqCst),
        "{config}: per-unit delivery must stay serialised across the swap"
    );

    let stats = engine.queue_stats();
    assert_eq!(
        stats.unit_swaps, swaps,
        "{config}: every swap must be counted"
    );
    assert_eq!(stats.fault_swaps, 0, "{config}: no fault policy ran");
    assert_eq!(
        engine.unit_state(target).unwrap().version,
        swaps + 1,
        "{config}: final unit version must reflect every swap"
    );
    assert_eq!(engine.stats().published(), published);
    assert_eq!(engine.stats().dispatched(), published);
    assert_eq!(engine.stats().deliveries(), published);
    assert_eq!(engine.queue_depth(), 0);
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn exactly_once_and_version_monotonicity_hold_across_racing_swaps(
        workers in 1usize..5,
        batch_size in 1usize..65,
        grouped_index in 0usize..2,
        mode_index in 0usize..4,
        swaps in 1u64..4,
        spacing_us in 0u64..300,
    ) {
        let mode = SecurityMode::all()[mode_index];
        let grouped = grouped_index == 1;
        check_swap_invariants(workers, batch_size, grouped, mode, swaps, spacing_us);
    }
}

/// The acceptance hot point, guaranteed every run regardless of what the
/// seeded random cases sample: four workers at batch 8 under two contending
/// publishers with three mid-dispatch swaps — grouped delivery both on and
/// off, in every security mode.
#[test]
fn the_swap_hot_point_stays_covered_at_workers_4() {
    for mode in SecurityMode::all() {
        for grouped in [false, true] {
            check_swap_invariants(4, 8, grouped, mode, 3, 150);
        }
    }
}

/// Swap-then-publish index consistency: with the subscription index on, the
/// epoch bump inside `swap_unit` must atomically retire the cached index
/// alongside the owner snapshot, migrating the swapped unit's entries to the
/// replacement before any post-swap event plans. Events published before the
/// swap land on incarnation 1, events published after land on incarnation 2 —
/// each exactly once — and the index provably rebuilt across the boundary.
#[test]
fn swap_unit_migrates_index_entries_under_the_epoch_bump() {
    const BEFORE: u64 = 12;
    const AFTER: u64 = 9;
    let engine = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .workers(0)
        .batch_size(4)
        .subscription_index(true)
        .build();
    let ledger = Arc::new(SwapLedger::new((BEFORE + AFTER) as usize));
    let target = engine
        .register_unit(
            UnitSpec::new("swap-target"),
            Box::new(VersionedProbe {
                incarnation: 1,
                ledger: Arc::clone(&ledger),
            }),
        )
        .unwrap();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();

    let handle = engine.start();
    let publisher = handle.publisher(source).unwrap();
    for seq in 0..BEFORE {
        publisher.publish(tick_draft(seq as i64)).unwrap();
    }
    handle.pump_until_idle().unwrap();
    let rebuilds_before_swap = engine.queue_stats().index_rebuilds;
    assert!(
        rebuilds_before_swap > 0,
        "pumping with the index on must have built it"
    );
    assert_eq!(
        ledger.last_version.load(Ordering::SeqCst),
        1,
        "pre-swap events belong to incarnation 1"
    );

    let version = handle
        .swap_unit(
            target,
            Box::new(VersionedProbe {
                incarnation: 2,
                ledger: Arc::clone(&ledger),
            }),
        )
        .unwrap();
    assert_eq!(version, 2);
    for seq in BEFORE..BEFORE + AFTER {
        publisher.publish(tick_draft(seq as i64)).unwrap();
    }
    handle.pump_until_idle().unwrap();
    handle.shutdown().unwrap();

    for (seq, count) in ledger.delivered.iter().enumerate() {
        assert_eq!(
            count.load(Ordering::SeqCst),
            1,
            "event {seq} must be delivered exactly once across the swap"
        );
    }
    assert_eq!(
        ledger.last_version.load(Ordering::SeqCst),
        2,
        "post-swap events must reach the replacement (its index entries \
         migrated with the epoch bump)"
    );
    assert!(
        !ledger.version_regressed.load(Ordering::SeqCst),
        "no post-swap delivery may land on the old incarnation"
    );
    assert!(
        engine.queue_stats().index_rebuilds > rebuilds_before_swap,
        "the swap's epoch bump must have retired the cached index"
    );
    assert_eq!(engine.stats().deliveries(), BEFORE + AFTER);
}

/// Per-unit FIFO across the swap boundary, pinned exactly: with one worker the
/// run queue is a single FIFO shard, so the recorded `(seq, incarnation)`
/// stream must be `0..N` in publish order with a non-decreasing incarnation —
/// the swap may move the cut point but never reorder or drop events.
#[test]
fn single_worker_fifo_order_is_preserved_across_the_swap_boundary() {
    struct OrderProbe {
        incarnation: u64,
        seen: Arc<parking_lot::Mutex<Vec<(i64, u64)>>>,
    }
    impl Unit for OrderProbe {
        fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
            ctx.subscribe(Filter::for_type("tick"))?;
            Ok(())
        }
        fn on_event(&mut self, ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()> {
            if let Ok(parts) = ctx.read_part(event, "seq") {
                if let Some((_, Value::Int(seq))) = parts.into_iter().next() {
                    self.seen.lock().push((seq, self.incarnation));
                }
            }
            Ok(())
        }
    }

    const TOTAL: i64 = 20 * 8;
    let engine = Engine::builder()
        .mode(SecurityMode::LabelsFreeze)
        .workers(1)
        .batch_size(8)
        .build();
    let seen = Arc::new(parking_lot::Mutex::new(Vec::new()));
    let target = engine
        .register_unit(
            UnitSpec::new("order-target"),
            Box::new(OrderProbe {
                incarnation: 1,
                seen: Arc::clone(&seen),
            }),
        )
        .unwrap();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();

    let handle = engine.start();
    let publisher = handle.publisher(source).unwrap();
    for batch in 0..20i64 {
        let drafts = (0..8).map(|i| tick_draft(batch * 8 + i)).collect();
        let _ = publisher.publish_batch(drafts).unwrap();
        if batch == 10 {
            // Don't swap before the worker has delivered anything — the swap
            // migrates the pending mailbox, so an early swap would hand the
            // whole stream to incarnation 2 and the mid-stream cut would
            // vanish. Bounded wait: ~500ms before giving up loudly below.
            for _ in 0..10_000 {
                if !seen.lock().is_empty() {
                    break;
                }
                std::thread::sleep(std::time::Duration::from_micros(50));
            }
            // Mid-stream swap while the worker is draining earlier batches.
            let version = handle
                .swap_unit(
                    target,
                    Box::new(OrderProbe {
                        incarnation: 2,
                        seen: Arc::clone(&seen),
                    }),
                )
                .unwrap();
            assert_eq!(version, 2);
        }
    }
    handle.shutdown().unwrap();

    let seen = seen.lock();
    let seqs: Vec<i64> = seen.iter().map(|&(seq, _)| seq).collect();
    assert_eq!(
        seqs,
        (0..TOTAL).collect::<Vec<_>>(),
        "single-worker dispatch must preserve exact publish order across the swap"
    );
    let versions: Vec<u64> = seen.iter().map(|&(_, v)| v).collect();
    assert!(
        versions.windows(2).all(|w| w[0] <= w[1]),
        "incarnation must be non-decreasing along the delivery stream"
    );
    assert!(
        versions.contains(&1) && versions.contains(&2),
        "both incarnations must have delivered (swap landed mid-stream)"
    );
}
