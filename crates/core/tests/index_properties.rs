//! Property tests of the subscription index: for any subscription population,
//! event stream and runtime configuration, planning through the inverted
//! index must produce *exactly* the delivery sets the linear scan produces.
//!
//! Each case generates a random population of filters (string equality,
//! `OneOf`, existence, numeric range and inequality clauses — the index's
//! value-keyed fast path plus every name-bucket fallback), a random event
//! stream over a small part-name vocabulary, and a random runtime
//! configuration (workers, batch size, grouped on/off, all four
//! [`SecurityMode`]s). The same workload then runs twice — index on, index
//! off — and every subscriber's multiset of received sequence numbers must be
//! identical. Since the linear scan is ground truth, equality pins both
//! directions at once: no false negatives (the candidate set is a superset of
//! the matches) and no false positives surviving the exact filter.
//!
//! The pinned test below covers the augmentation edge the random sweep keeps
//! out of the way: a filter naming a part that only exists once an earlier
//! delivery releases it must match under grouped delivery (the overflow
//! re-match wave) and ungrouped delivery alike, with either matcher.

use std::sync::{Arc, Mutex};

use defcon_core::unit::NullUnit;
use defcon_core::{Engine, EngineResult, EventDraft, SecurityMode, Unit, UnitContext, UnitSpec};
use defcon_defc::Label;
use defcon_events::{Event, Filter, Predicate, Value};
use proptest::prelude::*;

/// Deterministic xorshift64* generator, so each proptest case expands one
/// seed into a full population/stream reproducibly.
struct Rng(u64);

impl Rng {
    fn new(seed: u64) -> Self {
        Rng(seed | 1)
    }

    fn next(&mut self) -> u64 {
        let mut x = self.0;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.0 = x;
        x.wrapping_mul(0x2545_f491_4f6c_dd1d)
    }

    fn below(&mut self, bound: u64) -> u64 {
        self.next() % bound
    }
}

const LANES: [&str; 4] = ["alpha", "beta", "gamma", "delta"];
const TYPES: [&str; 2] = ["tick", "trade"];

/// One random filter: one or two clauses drawn across every predicate shape
/// the index treats differently (value-keyed string equality and `OneOf`,
/// name-bucketed everything else).
fn random_filter(rng: &mut Rng) -> Filter {
    let mut filter = Filter::new();
    let clauses = 1 + rng.below(2);
    for _ in 0..clauses {
        filter = match rng.below(6) {
            0 => filter.where_eq("lane", Value::str(LANES[rng.below(4) as usize])),
            1 => {
                let first = LANES[rng.below(4) as usize].to_string();
                let second = LANES[rng.below(4) as usize].to_string();
                filter.where_part("lane", Predicate::OneOf(vec![first, second]))
            }
            2 => filter.where_exists("flag"),
            3 => filter.where_part("price", Predicate::GreaterThan(rng.below(100) as f64)),
            4 => filter.where_part("price", Predicate::LessThan(rng.below(100) as f64)),
            _ => filter.where_part(
                "lane",
                Predicate::NotEquals(Value::str(LANES[rng.below(4) as usize])),
            ),
        };
    }
    filter
}

/// One random event draft: always a type, a lane, a price and a unique
/// sequence number; sometimes a flag (so existence clauses discriminate).
fn random_draft(rng: &mut Rng, seq: i64) -> EventDraft {
    let mut draft = EventDraft::new()
        .public_part("type", Value::str(TYPES[rng.below(2) as usize]))
        .public_part("lane", Value::str(LANES[rng.below(4) as usize]))
        .public_part("price", Value::Float(rng.below(100) as f64))
        .public_part("seq", Value::Int(seq));
    if rng.below(2) == 0 {
        draft = draft.public_part("flag", Value::Bool(true));
    }
    draft
}

/// Records the sequence numbers of every event delivered through its filter.
struct Recorder {
    filter: Filter,
    seen: Arc<Mutex<Vec<i64>>>,
}

impl Unit for Recorder {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        ctx.subscribe(self.filter.clone())?;
        Ok(())
    }

    fn on_event(&mut self, ctx: &mut UnitContext<'_>, event: &Event) -> EngineResult<()> {
        let seq = ctx.read_first(event, "seq")?.as_int().unwrap();
        self.seen.lock().unwrap().push(seq);
        Ok(())
    }
}

/// Runs one leg (index on or off) of a generated workload and returns each
/// subscriber's sorted multiset of received sequence numbers.
#[allow(clippy::too_many_arguments)]
fn run_leg(
    indexed: bool,
    workers: usize,
    batch_size: usize,
    grouped: bool,
    mode: SecurityMode,
    filters: &[Filter],
    stream_seed: u64,
    events: u64,
) -> Vec<Vec<i64>> {
    let engine = Engine::builder()
        .mode(mode)
        .workers(workers)
        .batch_size(batch_size)
        .grouped_delivery(grouped)
        .subscription_index(indexed)
        .build();
    let logs: Vec<Arc<Mutex<Vec<i64>>>> = filters
        .iter()
        .enumerate()
        .map(|(i, filter)| {
            let seen = Arc::new(Mutex::new(Vec::new()));
            engine
                .register_unit(
                    UnitSpec::new(format!("recorder-{i}")),
                    Box::new(Recorder {
                        filter: filter.clone(),
                        seen: Arc::clone(&seen),
                    }),
                )
                .unwrap();
            seen
        })
        .collect();
    let source = engine
        .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
        .unwrap();

    let handle = engine.start();
    let publisher = handle.publisher(source).unwrap();
    let mut stream = Rng::new(stream_seed);
    for seq in 0..events {
        publisher
            .publish(random_draft(&mut stream, seq as i64))
            .unwrap();
    }
    handle.shutdown().unwrap();

    let stats = engine.queue_stats();
    if indexed {
        assert!(
            stats.index_rebuilds > 0,
            "the indexed leg must have built its index at least once"
        );
    } else {
        assert_eq!(
            stats.index_rebuilds, 0,
            "the linear leg must never build an index"
        );
        assert_eq!(stats.index_candidates, 0);
        assert_eq!(stats.index_exact_rejects, 0);
    }

    logs.iter()
        .map(|log| {
            let mut seen = log.lock().unwrap().clone();
            seen.sort_unstable();
            seen
        })
        .collect()
}

/// Generates a workload from the seeds and asserts indexed ≡ linear.
#[allow(clippy::too_many_arguments)]
fn check_index_equivalence(
    workers: usize,
    batch_size: usize,
    grouped: bool,
    mode: SecurityMode,
    population_seed: u64,
    stream_seed: u64,
    subscriptions: u64,
    events: u64,
) {
    let mut rng = Rng::new(population_seed);
    let filters: Vec<Filter> = (0..subscriptions)
        .map(|_| random_filter(&mut rng))
        .collect();
    let config = format!(
        "workers={workers} batch={batch_size} grouped={grouped} mode={mode} \
         subs={subscriptions} events={events}"
    );
    let indexed = run_leg(
        true,
        workers,
        batch_size,
        grouped,
        mode,
        &filters,
        stream_seed,
        events,
    );
    let linear = run_leg(
        false,
        workers,
        batch_size,
        grouped,
        mode,
        &filters,
        stream_seed,
        events,
    );
    assert_eq!(
        indexed, linear,
        "{config}: indexed and linear planning must produce identical delivery sets"
    );
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn indexed_and_linear_planning_deliver_identically(
        workers in 0usize..3,
        batch_size in 1usize..17,
        grouped_index in 0usize..2,
        mode_index in 0usize..4,
        population_seed in 1u64..u64::MAX,
        stream_seed in 1u64..u64::MAX,
        subscriptions in 1u64..24,
        events in 1u64..80,
    ) {
        check_index_equivalence(
            workers,
            batch_size,
            grouped_index == 1,
            SecurityMode::all()[mode_index],
            population_seed,
            stream_seed,
            subscriptions,
            events,
        );
    }
}

/// Adds an `audit` part to every `tick` it sees — releasing it onto the main
/// dataflow path for the deliveries that follow.
struct Stamper;

impl Unit for Stamper {
    fn init(&mut self, ctx: &mut UnitContext<'_>) -> EngineResult<()> {
        ctx.subscribe(Filter::for_type("tick"))?;
        Ok(())
    }

    fn on_event(&mut self, ctx: &mut UnitContext<'_>, _event: &Event) -> EngineResult<()> {
        ctx.add_part_to_current(Label::public(), "audit", Value::str("stamped"))?;
        Ok(())
    }
}

/// The augmentation-named-filter fix, pinned: a subscription filtering on a
/// part that only exists once the stamper's delivery releases it receives
/// every event — under grouped delivery (via the overflow re-match wave) and
/// ungrouped delivery alike, with the index on and off. Before the overflow
/// wave, such workloads had to run `grouped_delivery(false)`.
#[test]
fn augmentation_named_filters_match_with_grouped_delivery_on() {
    for indexed in [false, true] {
        for grouped in [false, true] {
            let engine = Engine::builder()
                .workers(0)
                .batch_size(8)
                .grouped_delivery(grouped)
                .subscription_index(indexed)
                .build();
            engine
                .register_unit(UnitSpec::new("stamper"), Box::new(Stamper))
                .unwrap();
            let seen = Arc::new(Mutex::new(Vec::new()));
            engine
                .register_unit(
                    UnitSpec::new("auditor"),
                    Box::new(Recorder {
                        filter: Filter::new().where_eq("audit", Value::str("stamped")),
                        seen: Arc::clone(&seen),
                    }),
                )
                .unwrap();
            let source = engine
                .register_unit(UnitSpec::new("feed"), Box::new(NullUnit))
                .unwrap();

            let handle = engine.start();
            let publisher = handle.publisher(source).unwrap();
            let drafts = (0..8)
                .map(|seq| {
                    EventDraft::new()
                        .public_part("type", Value::str("tick"))
                        .public_part("seq", Value::Int(seq))
                })
                .collect();
            assert_eq!(publisher.publish_batch(drafts).unwrap().accepted(), 8);
            handle.shutdown().unwrap();

            let mut received = seen.lock().unwrap().clone();
            received.sort_unstable();
            assert_eq!(
                received,
                (0..8).collect::<Vec<i64>>(),
                "indexed={indexed} grouped={grouped}: a filter naming an \
                 augmentation-released part must match every stamped event"
            );
        }
    }
}
